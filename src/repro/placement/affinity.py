"""Affinity extraction from ORWL programs.

The paper: the add-on "automatically extracts task/threads affinity
based on the way they are composed in the application".  Composition
means handle declarations — if operation *r* holds a READ handle on a
location that operation *w* WRITEs, then every iteration moves the
location's payload from *w*'s thread to *r*'s thread.

Two extractors are provided:

* :func:`static_matrix` — purely structural, available *before* any
  execution (what the paper's launch-time mapping uses): volume =
  location payload size per writer→reader pair, i.e. per-iteration
  traffic.  Absolute scale is irrelevant to TreeMatch; ratios are what
  grouping consumes.
* :func:`traced_matrix` — from a :class:`~repro.comm.trace.CommTracer`
  filled by a profiling run, reindexed to program operation order.
  Ablation A5 compares the two.
"""

from __future__ import annotations

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.comm.trace import CommTracer
from repro.orwl.program import Program
from repro.util.validate import ValidationError


def static_matrix(
    program: Program, iterations: int = 1, use_affinity_hints: bool = True
) -> CommMatrix:
    """Build the op-level communication matrix from handle declarations.

    For every location, every (writer, reader) operation pair exchanges
    ``location.nbytes * iterations`` — the structural traffic of the
    iterative model.  Writer==reader pairs (an op reading back its own
    location) contribute nothing.

    With *use_affinity_hints* (the default for placement), a location's
    ``affinity_bytes`` override is honoured — expressing shared-buffer
    footprints larger than the exported payload.  Pass ``False`` to get
    the pure payload-volume matrix (comparable with runtime traces).
    """
    if iterations <= 0:
        raise ValidationError(f"iterations must be > 0, got {iterations}")
    ops = program.operations()
    n = len(ops)
    # One pass over all handles to index writers/readers per location
    # (calling Program.writers_of per location would be O(locations·ops)).
    from repro.orwl.fifo import AccessMode

    writers: dict[str, list[int]] = {}
    readers: dict[str, list[int]] = {}
    for k, op in enumerate(ops):
        for h in op.handles:
            bucket = writers if h.mode is AccessMode.WRITE else readers
            bucket.setdefault(h.location.name, []).append(k)
    m = np.zeros((n, n))
    for loc_name, loc in program.locations.items():
        if use_affinity_hints and loc.affinity_bytes is not None:
            weight = loc.affinity_bytes
        else:
            weight = loc.nbytes
        if weight <= 0:
            continue
        for wi in writers.get(loc_name, ()):
            for ri in readers.get(loc_name, ()):
                if wi == ri:
                    continue
                vol = weight * iterations
                m[wi, ri] += vol
                m[ri, wi] += vol
    return CommMatrix(m, labels=[op.name for op in ops])


def traced_matrix(program: Program, tracer: CommTracer) -> CommMatrix:
    """Reindex a runtime trace to program-operation order.

    Operations absent from the trace (they never communicated) get zero
    rows; trace entities that are not program operations (e.g. control
    threads) are dropped.
    """
    ops = program.operations()
    raw = tracer.to_matrix()
    pos_in_trace = {name: k for k, name in enumerate(raw.labels)}
    n = len(ops)
    m = np.zeros((n, n))
    for i, a in enumerate(ops):
        ti = pos_in_trace.get(a.name)
        if ti is None:
            continue
        for j in range(i + 1, n):
            tj = pos_in_trace.get(ops[j].name)
            if tj is None:
                continue
            v = raw.values[ti, tj]
            m[i, j] = m[j, i] = v
    return CommMatrix(m, labels=[op.name for op in ops])


def control_pairing(program: Program) -> tuple[int, ...]:
    """Pair each task's control thread with its main operation's index.

    Falls back to the task's first declared operation when it has no
    ``main``.  Order: program task declaration order (the same order the
    runtime creates control threads in).
    """
    ops = program.operations()
    index = {op.name: k for k, op in enumerate(ops)}
    pairing: list[int] = []
    for task in program.tasks.values():
        main = task.main_operation
        if main is None:
            if not task.operations:
                raise ValidationError(f"task {task.name!r} has no operations")
            main = next(iter(task.operations.values()))
        pairing.append(index[main.name])
    return tuple(pairing)


def matrix_correlation(a: CommMatrix, b: CommMatrix) -> float:
    """Pearson correlation of two matrices' off-diagonal entries.

    Used by ablation A5 to quantify how well the static extraction
    predicts the traced reality (1.0 = identical structure).
    """
    if a.order != b.order:
        raise ValidationError(f"orders differ: {a.order} vs {b.order}")
    n = a.order
    if n < 2:
        return 1.0
    iu = np.triu_indices(n, k=1)
    x = a.values[iu]
    y = b.values[iu]
    sx, sy = float(x.std()), float(y.std())
    if sx == 0.0 or sy == 0.0:
        return 1.0 if np.allclose(x * sy, y * sx) else 0.0
    return float(np.corrcoef(x, y)[0, 1])
