"""Discrete-event simulation core.

A tiny, deterministic event engine: a priority heap of ``(time, seq,
callback)`` entries.  ``seq`` is a monotonically increasing tie-breaker,
so two events at the same timestamp always fire in scheduling order and
every simulation is bit-for-bit reproducible.

Everything above (machine, threads, ORWL runtime) is built out of
:meth:`Engine.schedule` plus :class:`SimEvent` wait/notify.

Two engine modes share the same heap and ordering contract:

* ``"scalar"`` — the reference implementation: one heap entry per
  event, one pop per fired event.  This is the original engine,
  preserved verbatim as the oracle the differential test harness
  (``tests/test_engine_differential.py``) compares against.
* ``"batched"`` (default) — the event-cohort engine.  The drain loop
  pops *all* entries sharing the front timestamp as one cohort
  (preserving ``seq`` order within it), and :meth:`SimEvent.fire`
  releases its waiters as **one** heap entry carrying the whole waiter
  list instead of one push per waiter.  A barrier-style wakeup of N
  threads — the common ORWL case — therefore costs one push and one
  pop instead of N of each, which is where the ≥10× event-throughput
  headline of ``benchmarks/bench_engine_throughput.py`` comes from.

The contract between the modes is absolute: identical firing order,
identical ``events_fired`` / ``pending`` / ``now``, identical trace
streams, metrics, and determinism fingerprints.  See the "Determinism
contract" section of DESIGN.md for the cohort semantics and the seq
tie-break rule, and the differential harness for the enforcement.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle guard)
    from repro.simulate.machine import Machine, SimThread

_INF = float("inf")

#: Engine modes, default first.
ENGINE_MODES = ("batched", "scalar")


class SimulationError(RuntimeError):
    """Raised on engine misuse (non-finite delays, deadlock detection)."""


def _sequence(callbacks: Sequence[Callable[[], None]]) -> Callable[[], None]:
    """One callable invoking *callbacks* in order (cohort release unit)."""

    def run_all() -> None:
        for cb in callbacks:
            cb()

    return run_all


class _ThreadRun:
    """A run of consecutive machine threads parked on one event.

    The batched machine registers waiting threads through
    :meth:`SimEvent.wait_thread`; consecutive registrations against the
    same machine coalesce into one run, released by a single
    :meth:`~repro.simulate.machine.Machine._release_batch` call that
    vectorizes the wakeup accounting over the whole run.
    """

    __slots__ = ("machine", "threads", "names")

    def __init__(self, machine: "Machine", thread: "SimThread", name: str) -> None:
        self.machine = machine
        self.threads = [thread]
        self.names = [name]

    def release(self) -> None:
        self.machine._release_batch(self.threads, self.names)


class _WaiterCohort:
    """Heap payload standing for *n* logical events released together.

    ``items`` is a list of ``(count, fn)`` release units in seq order;
    the counts sum to ``n``.  The engine expands a cohort in place:
    ``events_fired`` advances by ``count`` and the probe fires ``count``
    times before each unit runs, so every observable counter matches
    the scalar engine exactly.
    """

    __slots__ = ("items", "n")

    def __init__(
        self, items: List[tuple[int, Callable[[], None]]], n: int
    ) -> None:
        self.items = items
        self.n = n


class Engine:
    """The event loop owning simulated time.

    The event loop is the single hottest code path in the repo — a
    paper-scale sweep fires tens of millions of events — so ``run``
    binds its hot names once per drain and the class carries
    ``__slots__`` (one engine exists per machine, but its attributes
    are read per event).  The scalar drain deliberately delegates
    per-event work to :meth:`step` (on CPython 3.11+ the specializing
    interpreter inlines the call and keeps one hot code path); the
    batched drain processes whole same-timestamp cohorts per heap
    entry — ``repro.tools.bench`` and
    ``benchmarks/bench_engine_throughput.py`` guard both the
    equivalence and the throughput.
    """

    __slots__ = (
        "_now", "_heap", "_seq", "_events_fired", "_pending", "mode",
        "probe", "metrics_sink",
    )

    def __init__(self, mode: str = "batched") -> None:
        if mode not in ENGINE_MODES:
            raise SimulationError(
                f"unknown engine mode {mode!r}; one of {ENGINE_MODES}"
            )
        #: "batched" (cohort engine, default) or "scalar" (reference).
        self.mode = mode
        self._now = 0.0
        self._heap: list[tuple[float, int, Union[Callable[[], None], _WaiterCohort]]] = []
        self._seq = 0
        self._events_fired = 0
        self._pending = 0
        #: optional observability probe, called with the new simulated
        #: time once per fired event (see repro.observe.Tracer
        #: .on_engine_step).  One ``is None`` check per event when
        #: unused.  Within a batched waiter cohort the probe calls for
        #: one release unit are issued back-to-back before the unit's
        #: callbacks run; the probe must therefore be order-insensitive
        #: within a single timestamp (counting and clock-monotonicity
        #: checks are).
        self.probe: Optional[Callable[[float], None]] = None
        #: optional live-telemetry sink, called with the cohort size
        #: once per dispatched waiter cohort (see
        #: repro.metrics.bridge.cohort_sink).  One ``is None`` check
        #: per cohort — not per event — when unused, so the disabled
        #: cost is far below the 1.05x metrics-overhead budget.
        self.metrics_sink: Optional[Callable[[int], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events processed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (cohorts count every waiter)."""
        return self._pending

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay`` (delay may be 0; must be finite
        and non-negative).

        NaN and infinite delays are rejected: ``delay < 0`` is False
        for NaN, so without the explicit finiteness check a NaN would
        slip into the heap and silently corrupt its ordering (every
        comparison against NaN is False, breaking the sift invariant).
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        self._seq = seq = self._seq + 1
        self._pending += 1
        heapq.heappush(self._heap, (self._now + delay, seq, fn))

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute simulated *time* (>= now, finite)."""
        if not self._now <= time < _INF:
            raise SimulationError(
                f"time must be finite and >= now, got {time} (now={self._now})"
            )
        self._seq = seq = self._seq + 1
        self._pending += 1
        heapq.heappush(self._heap, (time, seq, fn))

    def _schedule_cohort(
        self, delay: float, items: List[tuple[int, Callable[[], None]]], n: int
    ) -> None:
        """Push one heap entry releasing *n* waiters (batched mode).

        Reserves *n* sequence numbers so the tie-break counter stays in
        lockstep with the scalar engine's n individual pushes — any
        event scheduled afterwards sorts after every waiter, exactly as
        it would have with n separate entries.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        seq = self._seq + 1
        self._seq += n
        self._pending += n
        heapq.heappush(self._heap, (self._now + delay, seq, _WaiterCohort(items, n)))

    def _fire_cohort(self, time: float, cohort: _WaiterCohort) -> None:
        """Expand a waiter cohort: n logical events at one timestamp."""
        self._pending -= cohort.n
        if self.metrics_sink is not None:
            self.metrics_sink(cohort.n)
        probe = self.probe
        if probe is None:
            self._events_fired += cohort.n
            for _count, fn in cohort.items:
                fn()
        else:
            for count, fn in cohort.items:
                self._events_fired += count
                for _ in range(count):
                    probe(time)
                fn()

    def step(self) -> bool:
        """Fire the next heap entry; returns False when the queue is empty.

        In scalar mode an entry is one event.  In batched mode an entry
        may be a whole waiter cohort, fired in registration order as a
        unit (``events_fired`` advances by the cohort size).
        """
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self._now = time
        if fn.__class__ is _WaiterCohort:
            self._fire_cohort(time, fn)  # type: ignore[arg-type]
        else:
            self._pending -= 1
            self._events_fired += 1
            if self.probe is not None:
                self.probe(time)
            fn()  # type: ignore[operator]
        return True

    def run(self, until: Optional[float] = None, max_events: int = 500_000_000) -> float:
        """Drain the event queue (optionally stopping at time *until*).

        Returns the final simulated time.  *max_events* is a runaway
        guard; exceeding it raises :class:`SimulationError` (the
        batched engine checks it between heap entries, so a single
        cohort may overshoot the limit by its width before raising).

        Callbacks may keep scheduling — ``schedule`` / ``at`` push onto
        the same heap the drain pops from, and a zero-delay event
        scheduled from inside a cohort joins the *end* of the current
        timestamp's cohort (its seq is necessarily higher).
        """
        if self.mode == "batched":
            return self._run_batched(until, max_events)
        step = self.step
        fired = 0
        if until is None:
            while step():
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock?"
                    )
        else:
            heap = self._heap
            while heap:
                if heap[0][0] > until:
                    self._now = until
                    break
                step()
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock?"
                    )
        return self._now

    def _run_batched(self, until: Optional[float], max_events: int) -> float:
        """Cohort drain: the ``until`` check and the clock write happen
        once per distinct timestamp instead of once per event.

        The loop carries the peeked front timestamp forward, so each
        fired entry costs exactly one ``heap[0][0]`` peek — the one
        that detects the cohort boundary.  (The scalar drain needs no
        peek at all; this is the batched engine's only per-event
        overhead on workloads without same-time cohorts.)
        """
        heap = self._heap
        pop = heapq.heappop
        limit = self._events_fired + max_events
        if not heap:
            return self._now
        t0 = heap[0][0]
        while True:
            if until is not None and t0 > until:
                self._now = until
                return self._now
            self._now = t0
            # Drain every entry at exactly t0 — including entries the
            # callbacks below push at zero delay, which re-enter the
            # front of the heap with a higher seq.
            while True:
                fn = pop(heap)[2]
                if fn.__class__ is _WaiterCohort:
                    self._fire_cohort(t0, fn)  # type: ignore[arg-type]
                else:
                    self._pending -= 1
                    self._events_fired += 1
                    if self.probe is not None:
                        self.probe(t0)
                    fn()  # type: ignore[operator]
                if self._events_fired > limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock?"
                    )
                if not heap:
                    return self._now
                t1 = heap[0][0]
                if t1 != t0:
                    t0 = t1
                    break


class SimEvent:
    """One-shot wait/notify: threads park on it, ``fire`` releases them.

    The callbacks are whatever the machine registers to resume a thread;
    firing an already-fired event is an error (ORWL grants are unique).

    On a batched engine the waiter list is kept as homogeneous
    *segments* (runs of plain callbacks, runs of machine threads) so
    :meth:`fire` can release everything as one cohort heap entry
    without scanning; on a scalar engine it is a flat callback list and
    ``fire`` schedules one entry per waiter — the reference behaviour.
    """

    __slots__ = ("_engine", "_fired", "_release_at", "_waiters", "_batched", "name")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self._engine = engine
        self._fired = False
        self._release_at = 0.0
        self._batched = engine.mode == "batched"
        # scalar: list of callbacks; batched: list of segments, each a
        # list of callbacks or a _ThreadRun (registration order kept).
        self._waiters: list = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    def wait(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* when the event releases.

        Waiting on an already-fired event still honours the fire delay:
        the callback runs at the event's release time (or immediately if
        that has passed).
        """
        if self._fired:
            self._engine.schedule(max(0.0, self._release_at - self._engine.now), callback)
            return
        if self._batched:
            segments = self._waiters
            if segments and segments[-1].__class__ is list:
                segments[-1].append(callback)
            else:
                segments.append([callback])
        else:
            self._waiters.append(callback)

    def wait_thread(self, machine: "Machine", thread: "SimThread", name: str = "") -> None:
        """Park a simulated *thread* of *machine* on this event.

        The batched release path: consecutive thread registrations
        coalesce into one :class:`_ThreadRun` whose wakeup accounting
        the machine vectorizes (see ``Machine._release_batch``).  On a
        scalar engine this degrades to a plain :meth:`wait` with a
        single-thread release closure — same arithmetic, same trace.
        """
        if self._fired:
            self._engine.schedule(
                max(0.0, self._release_at - self._engine.now),
                _ThreadRun(machine, thread, name).release,
            )
            return
        if self._batched:
            segments = self._waiters
            last = segments[-1] if segments else None
            if last is not None and last.__class__ is _ThreadRun and last.machine is machine:
                last.threads.append(thread)
                last.names.append(name)
            else:
                segments.append(_ThreadRun(machine, thread, name))
        else:
            self._waiters.append(_ThreadRun(machine, thread, name).release)

    def fire(self, delay: float = 0.0) -> None:
        """Release all waiters after *delay*; one-shot.

        On a batched engine all waiters leave as a single cohort heap
        entry (one push instead of one per waiter); on a scalar engine
        each waiter is scheduled individually.  Both orders are the
        registration order.
        """
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        self._fired = True
        self._release_at = self._engine.now + delay
        waiters, self._waiters = self._waiters, []
        if not self._batched:
            for cb in waiters:
                self._engine.schedule(delay, cb)
            return
        items: List[tuple[int, Callable[[], None]]] = []
        n = 0
        for segment in waiters:
            if segment.__class__ is _ThreadRun:
                k = len(segment.threads)
                items.append((k, segment.release))
            else:
                k = len(segment)
                items.append((1, segment[0]) if k == 1 else (k, _sequence(segment)))
            n += k
        if n == 0:
            return
        if n == 1:
            self._engine.schedule(delay, items[0][1])
        else:
            self._engine._schedule_cohort(delay, items, n)

    def __repr__(self) -> str:
        if self._fired:
            state = "fired"
        elif self._batched:
            waiting = sum(
                len(s.threads) if s.__class__ is _ThreadRun else len(s)
                for s in self._waiters
            )
            state = f"{waiting} waiting"
        else:
            state = f"{len(self._waiters)} waiting"
        return f"<SimEvent {self.name!r} {state}>"
