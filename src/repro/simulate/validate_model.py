"""Self-validation of a machine's cost model.

Users who customize :data:`~repro.topology.distance.DEFAULT_LEVEL_COSTS`
or the contention/scheduler configs can violate the physical invariants
the experiments rely on — e.g. a "remote" level cheaper than a local
one makes placement results meaningless.  :func:`validate_machine_model`
runs a battery of analytic checks and returns a report; the CLI tools
and tests use it, and it is cheap enough to call before any experiment.

Checks
------
* **Monotone hierarchy**: latency non-decreasing and bandwidth
  non-increasing as the sharing level widens along every root-to-leaf
  cost path actually present in the topology.
* **Transfer sanity**: moving more bytes never takes less time;
  transfers between farther PUs never cost less than nearer ones
  (same byte count).
* **Contention sanity**: the slowdown factor is ≥ 1 and non-decreasing
  in the in-flight count.
* **Scheduler sanity**: migration penalty and quantum are positive and
  the penalty is small relative to the quantum (a model where migrating
  costs more CPU than the balancing period is self-defeating).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulate.contention import ContentionModel
from repro.simulate.machine import Machine
from repro.topology.objects import ObjType


@dataclass
class ValidationReport:
    """Outcome of the model self-check."""

    problems: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)

    def __repr__(self) -> str:
        state = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return f"<ValidationReport {self.checks_run} checks: {state}>"


#: Sharing levels from narrowest to widest (the order costs must follow).
_WIDENING = [
    ObjType.CORE,
    ObjType.L1,
    ObjType.L2,
    ObjType.L3,
    ObjType.PACKAGE,
    ObjType.NUMANODE,
    ObjType.GROUP,
    ObjType.MACHINE,
]


def validate_machine_model(machine: Machine) -> ValidationReport:
    """Run all checks against a machine's models; see module docstring."""
    report = ValidationReport()
    dm = machine.distances

    # -- monotone hierarchy over levels present in this topology -------
    present = [t for t in _WIDENING if machine.topo.nbobjs_by_type(t) > 0 or t in (ObjType.MACHINE,)]
    costs = [dm.level_costs.get(t) for t in present]
    pairs = [
        (ta, ca, tb, cb)
        for (ta, ca), (tb, cb) in zip(
            [(t, c) for t, c in zip(present, costs) if c is not None][:-1],
            [(t, c) for t, c in zip(present, costs) if c is not None][1:],
        )
    ]
    for ta, ca, tb, cb in pairs:
        report.checks_run += 1
        if cb.latency < ca.latency:
            report.add(
                f"latency decreases widening {ta.name} -> {tb.name} "
                f"({ca.latency:g} -> {cb.latency:g})"
            )
        report.checks_run += 1
        if cb.bandwidth > ca.bandwidth:
            report.add(
                f"bandwidth increases widening {ta.name} -> {tb.name} "
                f"({ca.bandwidth:g} -> {cb.bandwidth:g})"
            )

    # -- transfer sanity on actual PU pairs ------------------------------
    n = machine.topo.nb_pus
    if n >= 2:
        hops = dm.hop_matrix()
        sample = range(min(n, 8))
        for i in sample:
            for j in sample:
                if i == j:
                    continue
                report.checks_run += 1
                if dm.transfer_time(i, j, 2 << 20) < dm.transfer_time(i, j, 1 << 20):
                    report.add(f"more bytes cheaper between PUs {i},{j}")
        # distance monotonicity: compare a near and a far pair
        flat = [(int(hops[i, j]), i, j) for i in sample for j in sample if i != j]
        flat.sort()
        if flat:
            _, ni, nj = flat[0]
            _, fi, fj = flat[-1]
            report.checks_run += 1
            if dm.transfer_time(fi, fj, 1 << 20) < dm.transfer_time(ni, nj, 1 << 20):
                report.add(
                    f"farther pair ({fi},{fj}) cheaper than nearer ({ni},{nj})"
                )

    # -- contention sanity --------------------------------------------------
    cc = machine.contention.config
    probe = ContentionModel(1, cc)
    last = 0.0
    for k in range(0, 64, 8):
        while probe.node_inflight(0) < k:
            probe.begin(ObjType.MACHINE, 0)
        s = probe.slowdown(ObjType.MACHINE, 0)
        report.checks_run += 1
        if s < 1.0:
            report.add(f"contention slowdown {s:g} < 1 at inflight {k}")
        report.checks_run += 1
        if s < last:
            report.add(f"contention slowdown decreases at inflight {k}")
        last = s

    # -- scheduler sanity ------------------------------------------------------
    sc = machine.scheduler.config
    report.checks_run += 1
    if sc.migration_penalty >= sc.migration_quantum:
        report.add(
            "migration penalty >= balancing quantum: migrating costs more "
            "CPU than the period it optimizes"
        )
    return report
