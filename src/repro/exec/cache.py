"""Worker-side construction caches, keyed by preset.

Building a :class:`~repro.topology.tree.Topology` is cheap, but the
:class:`~repro.topology.distance.DistanceModel` on top of it runs an
O(P²) pure-Python LCA sweep — ~0.2 s for the paper's 192-PU machine.
A Fig. 1 sweep touches each machine shape three times (once per
implementation), and a parallel sweep touches it once *per worker per
point* unless the construction is memoized.

These caches are plain module-level dicts, so each worker process (and
the parent, for serial runs) pays the construction cost once per
distinct ``(preset, shape)`` and reuses the objects after that.  That is
safe because both objects are immutable after construction: the
simulator only reads them (`Machine` keeps its own mutable state), and
the :class:`DistanceModel`'s lazily cached hop matrix is derived purely
from the topology.  Determinism is unaffected — a cached topology is
byte-identical to a freshly built one.
"""

from __future__ import annotations

from typing import Optional

from repro.topology import presets
from repro.topology.distance import (
    CLUSTER_LEVEL_COSTS,
    DEFAULT_LEVEL_COSTS,
    DistanceModel,
)
from repro.topology.tree import Topology
from repro.util.validate import ValidationError

#: Named cost tables selectable by :func:`cached_distance_model`.
COST_TABLES = {
    "default": DEFAULT_LEVEL_COSTS,
    "cluster": CLUSTER_LEVEL_COSTS,
}

_TOPOLOGIES: dict[tuple, Topology] = {}
_MODELS: dict[tuple, DistanceModel] = {}


def cached_topology(preset: str, *args: int) -> Topology:
    """Build (or fetch) the preset topology ``presets.PRESETS[preset](*args)``.

    The cache key is ``(preset, args)``; the returned object is shared,
    so treat it as read-only (everything in the repo already does).
    """
    try:
        factory = presets.PRESETS[preset]
    except KeyError:
        raise ValidationError(
            f"unknown preset {preset!r}; available: {', '.join(sorted(presets.PRESETS))}"
        ) from None
    key = (preset, args)
    topo = _TOPOLOGIES.get(key)
    if topo is None:
        topo = _TOPOLOGIES[key] = factory(*args)
    return topo


def cached_distance_model(
    preset: str, *args: int, costs: str = "default"
) -> DistanceModel:
    """A shared :class:`DistanceModel` over :func:`cached_topology`.

    *costs* selects a table from :data:`COST_TABLES` (``"default"`` or
    ``"cluster"``).
    """
    try:
        table = COST_TABLES[costs]
    except KeyError:
        raise ValidationError(
            f"unknown cost table {costs!r}; one of {tuple(COST_TABLES)}"
        ) from None
    key = (preset, args, costs)
    model = _MODELS.get(key)
    if model is None:
        topo = cached_topology(preset, *args)
        model = _MODELS[key] = DistanceModel(topo, level_costs=dict(table))
    return model


def machine_inputs(
    preset: str, *args: int, costs: str = "default"
) -> tuple[Topology, DistanceModel]:
    """The ``(topology, distance_model)`` pair a :class:`Machine` needs.

    The single call sites use: ``Machine(topo, distance_model=model, ...)``.
    """
    model = cached_distance_model(preset, *args, costs=costs)
    return model.topo, model


def clear_cache() -> Optional[int]:
    """Drop all cached objects; returns how many were dropped."""
    n = len(_TOPOLOGIES) + len(_MODELS)
    _TOPOLOGIES.clear()
    _MODELS.clear()
    return n
