"""The parallel sweep executor: determinism, crash recovery, caching.

The contract under test (see ``repro.exec``): a sweep's results are in
input order and bit-identical no matter how many workers ran it; worker
crashes are retried and, past the retry budget, the remainder finishes
serially in-process; ordinary task exceptions propagate unchanged.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.comm import patterns
from repro.exec import (
    ExecError,
    PointCache,
    SweepRunner,
    Task,
    cached_distance_model,
    cached_topology,
    cached_tree_match,
    clear_cache,
    derive_seed,
    machine_inputs,
    matrix_digest,
    point_key,
    resolve_workers,
    run_sweep,
    topology_fingerprint,
)
from repro.exec import shm
from repro.exec.cache import (
    _LRUDict,
    TOPOLOGY_CACHE_CAP,
    _TOPOLOGIES,
    cache_stats,
    placement_key,
    stats_delta,
)
from repro.experiments.fig1 import Fig1Point, Fig1Result, run_fig1
from repro.util.validate import ValidationError

# ---------------------------------------------------------------------------
# Worker payloads — module-level so the pool can pickle them by reference.
# ---------------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom at {x}")


def _crash_once(x: int, sentinel: str) -> int:
    """Die hard (os._exit — no exception, no cleanup) on the first call.

    The sentinel file records that the crash already happened, so the
    retried task succeeds: exactly one pool-breaking worker death.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("crashed")
        os._exit(42)
    return x * x


def _crash_always(x: int) -> int:
    os._exit(42)


class TestDeriveSeed:
    def test_stable_and_hash_seed_independent(self):
        # sha-256-based: the same inputs give the same seed in any process.
        assert derive_seed(0, "fig1", "openmp", 8) == derive_seed(0, "fig1", "openmp", 8)
        assert 0 <= derive_seed(123, "a") < 2**63

    def test_distinct_keys_distinct_seeds(self):
        seeds = {
            derive_seed(0, impl, c)
            for impl in ("a", "b", "c")
            for c in (8, 16, 32)
        }
        assert len(seeds) == 9

    def test_base_seed_matters(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")


class TestResolveWorkers:
    def test_auto_is_positive(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_workers(-1)


class TestSweepRunnerOrdering:
    def test_serial_matches_comprehension(self):
        out = run_sweep(_square, [{"x": i} for i in range(10)], n_workers=1)
        assert out == [i * i for i in range(10)]

    def test_parallel_matches_serial(self):
        kwargs = [{"x": i} for i in range(13)]
        serial = run_sweep(_square, kwargs, n_workers=1)
        parallel = run_sweep(_square, kwargs, n_workers=2, chunk_size=3)
        assert parallel == serial

    def test_single_task_stays_in_process(self):
        runner = SweepRunner(n_workers=4)
        assert runner.map([Task(_square, {"x": 5})]) == [25]
        assert runner.last_stats["mode"] == "serial"

    def test_chunk_indices_cover_everything(self):
        runner = SweepRunner(n_workers=3, chunk_size=4)
        chunks = runner._chunk_indices(11)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(11))
        assert all(len(c) <= 4 for c in chunks)

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            SweepRunner(chunk_size=0)
        with pytest.raises(ValidationError):
            SweepRunner(max_retries=-1)
        with pytest.raises(ValidationError):
            run_sweep(_square, [{"x": 1}], labels=["a", "b"])


class TestProgressEvents:
    def test_event_envelope(self):
        events = []
        runner = SweepRunner(n_workers=1, on_event=events.append)
        runner.map([Task(_square, {"x": i}) for i in range(3)])
        kinds = [e.kind for e in events]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_end"
        assert kinds.count("point_done") == 3
        assert events[-1].done == events[-1].total == 3

    def test_parallel_points_all_reported(self):
        events = []
        runner = SweepRunner(n_workers=2, chunk_size=2, on_event=events.append)
        runner.map([Task(_square, {"x": i}) for i in range(6)])
        assert sum(1 for e in events if e.kind == "point_done") == 6
        assert sum(1 for e in events if e.kind == "chunk_done") == 3


class TestErrorPaths:
    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom at 2"):
            run_sweep(_boom, [{"x": 2}], n_workers=1)

    def test_task_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            run_sweep(_boom, [{"x": i} for i in range(4)], n_workers=2)

    def test_worker_crash_retried(self, tmp_path):
        """One worker death breaks the pool; the retry completes the sweep."""
        sentinel = str(tmp_path / "crashed")
        events = []
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=1, on_event=events.append
        )
        tasks = [Task(_crash_once, {"x": i, "sentinel": sentinel}) for i in range(4)]
        assert runner.map(tasks) == [0, 1, 4, 9]
        assert runner.last_stats["crashes"] == 1
        assert runner.last_stats["serial_fallback"] is False
        kinds = [e.kind for e in events]
        assert "worker_crash" in kinds
        assert "retry" in kinds

    def test_crashes_exhaust_retries_then_serial_fallback(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        events = []
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=0, on_event=events.append
        )
        tasks = [Task(_crash_once, {"x": i, "sentinel": sentinel}) for i in range(4)]
        assert runner.map(tasks) == [0, 1, 4, 9]
        assert runner.last_stats["serial_fallback"] is True
        assert "serial_fallback" in [e.kind for e in events]

    def test_fallback_disabled_raises(self):
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=0, serial_fallback=False
        )
        with pytest.raises(ExecError, match="unfinished"):
            runner.map([Task(_crash_always, {"x": i}) for i in range(4)])


class TestWorkerCaches:
    def test_topology_cached_per_key(self):
        clear_cache()
        t1 = cached_topology("paper-smp", 2, 8)
        t2 = cached_topology("paper-smp", 2, 8)
        t3 = cached_topology("paper-smp", 4, 8)
        assert t1 is t2
        assert t1 is not t3

    def test_distance_model_cached_and_bound_to_topology(self):
        clear_cache()
        topo, dm = machine_inputs("paper-smp", 2, 8)
        assert dm is cached_distance_model("paper-smp", 2, 8)
        assert dm.topo is topo

    def test_cluster_costs_variant(self):
        from repro.topology.distance import CLUSTER_LEVEL_COSTS
        from repro.topology.objects import ObjType

        clear_cache()
        _, dm = machine_inputs("cluster", 2, 2, 4, costs="cluster")
        assert dm.level_costs[ObjType.MACHINE] == CLUSTER_LEVEL_COSTS[ObjType.MACHINE]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValidationError):
            cached_topology("no-such-preset")


class TestFig1TimeIndex:
    def test_first_point_wins_like_linear_scan(self):
        r = Fig1Result()
        r.points.append(Fig1Point("openmp", 8, 1.5, 1.0, 0, 0.0))
        r.points.append(Fig1Point("openmp", 8, 9.9, 1.0, 0, 0.0))
        assert r.time_of("openmp", 8) == 1.5

    def test_index_follows_appends(self):
        r = Fig1Result()
        r.points.append(Fig1Point("openmp", 8, 1.5, 1.0, 0, 0.0))
        assert r.time_of("openmp", 8) == 1.5
        r.points.append(Fig1Point("openmp", 16, 0.9, 1.0, 0, 0.0))
        assert r.time_of("openmp", 16) == 0.9

    def test_missing_point_raises_keyerror(self):
        with pytest.raises(KeyError, match="no point"):
            Fig1Result().time_of("openmp", 8)


def _fig1_rows(result):
    """Every replicate as a comparable (impl, cores, time, fingerprint) row."""
    return [
        (p.implementation, p.n_cores, p.time, p.fingerprint)
        for reps in result.replicates.values()
        for p in reps
    ]


class TestLRUBound:
    def test_evicts_least_recently_used(self):
        d = _LRUDict(2)
        d.put("a", 1)
        d.put("b", 2)
        assert d.get("a") == 1  # refresh "a" — "b" is now the LRU entry
        d.put("c", 3)
        assert "b" not in d
        assert d.get("a") == 1 and d.get("c") == 3
        assert len(d) == 2

    def test_bad_cap_rejected(self):
        with pytest.raises(ValidationError):
            _LRUDict(0)

    def test_topology_cache_stays_bounded(self):
        clear_cache()
        for i in range(TOPOLOGY_CACHE_CAP + 8):
            cached_topology("paper-smp", 1, i + 1)
        assert len(_TOPOLOGIES) == TOPOLOGY_CACHE_CAP
        clear_cache()


class TestPlacementMemo:
    """Tier 1: tree_match memoized by (topology, matrix, params)."""

    def _inputs(self):
        topo = cached_topology("paper-smp", 2, 8)
        cm = patterns.clustered(4, 4, intra_volume=50, inter_volume=1, seed=5)
        return topo, cm

    def test_digest_sensitive_to_single_cell(self):
        m = np.array(patterns.clustered(4, 4, seed=5).values)
        flipped = m.copy()
        flipped[2, 3] += 1.0
        assert matrix_digest(m) != matrix_digest(flipped)

    def test_placement_key_covers_all_inputs(self):
        topo, cm = self._inputs()
        other_topo = cached_topology("paper-smp", 4, 4)
        base = placement_key(topo, cm, strategy="auto")
        assert base != placement_key(other_topo, cm, strategy="auto")
        assert base != placement_key(topo, cm, strategy="greedy")
        assert topology_fingerprint(topo) == topology_fingerprint(topo)

    def test_memo_hit_equals_cold_computation(self, monkeypatch):
        clear_cache()
        topo, cm = self._inputs()
        first = cached_tree_match(topo, cm)
        again = cached_tree_match(topo, cm)
        assert again is first  # in-process LRU hit
        monkeypatch.setenv("REPRO_CACHE", "off")
        cold = cached_tree_match(topo, cm)  # pure pass-through
        assert cold is not first
        assert cold.mapping == first.mapping
        assert cold.hierarchy == first.hierarchy

    def test_disk_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        topo, cm = self._inputs()
        before = cache_stats()
        first = cached_tree_match(topo, cm)
        assert stats_delta(before).get("placement_miss") == 1
        stored = list(tmp_path.glob("placements/*/*.pkl"))
        assert len(stored) == 1

        clear_cache()  # drop the LRU so only the disk copy remains
        before = cache_stats()
        second = cached_tree_match(topo, cm)
        assert stats_delta(before).get("placement_disk_hit") == 1
        assert second.mapping == first.mapping

    def test_corrupted_disk_entry_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        topo, cm = self._inputs()
        first = cached_tree_match(topo, cm)
        [stored] = tmp_path.glob("placements/*/*.pkl")
        stored.write_bytes(b"not a pickle at all")

        clear_cache()
        before = cache_stats()
        second = cached_tree_match(topo, cm)
        # Corruption reads as a transparent miss, never an error...
        assert stats_delta(before).get("placement_miss") == 1
        assert second.mapping == first.mapping
        # ...and the recomputed result replaced the damaged payload.
        clear_cache()
        before = cache_stats()
        cached_tree_match(topo, cm)
        assert stats_delta(before).get("placement_disk_hit") == 1

    def test_failed_set_is_part_of_the_key(self):
        topo, cm = self._inputs()
        base = placement_key(topo, cm, strategy="auto", failed=())
        one = placement_key(topo, cm, strategy="auto", failed=(0,))
        two = placement_key(topo, cm, strategy="auto", failed=(0, 8))
        assert len({base, one, two}) == 3

    def test_post_failure_query_never_sees_pre_failure_mapping(
        self, tmp_path, monkeypatch
    ):
        """Regression: a failure must invalidate both cache tiers.

        Before ``failed`` entered the digest, a service that marked a
        PU dead and re-queried would be handed the stale pre-failure
        mapping — still binding threads to the dead PU.  Exercises the
        in-process LRU and the disk tier separately.
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        topo, cm = self._inputs()
        healthy = cached_tree_match(topo, cm)
        dead = healthy.mapping.pu(0)

        # Memory tier: the healthy mapping is hot in the LRU.
        after = cached_tree_match(topo, cm, failed=[dead])
        assert dead not in after.mapping.pu_of
        assert dead in healthy.mapping.pu_of

        # Disk tier: drop the LRU so only on-disk payloads remain.
        clear_cache()
        before = cache_stats()
        again = cached_tree_match(topo, cm, failed=[dead])
        assert stats_delta(before).get("placement_disk_hit") == 1
        assert again.mapping == after.mapping
        # The healthy entry is still served for healthy queries.
        assert cached_tree_match(topo, cm).mapping == healthy.mapping

    def test_failed_rejects_control_and_allowed(self):
        from repro.topology.cpuset import CpuSet
        from repro.util.validate import ValidationError

        topo, cm = self._inputs()
        with pytest.raises(ValidationError):
            cached_tree_match(topo, cm, n_control=1, failed=[0])
        with pytest.raises(ValidationError):
            cached_tree_match(
                topo, cm, allowed=CpuSet(range(4)), failed=[0]
            )


class TestPointCacheSweep:
    """Tier 3: content-addressed whole-point results."""

    COMMON = dict(
        core_counts=(8,), iterations=2, n=512, seed=3,
        fingerprint=True, seeds=2, n_workers=1,
    )

    def test_point_key_sensitive_to_kwargs(self):
        k1 = point_key(_square, {"x": 1})
        assert k1 == point_key(_square, {"x": 1})
        assert k1 != point_key(_square, {"x": 2})
        assert k1 != point_key(_boom, {"x": 1})

    def test_cached_rerun_bit_identical(self, tmp_path):
        cold_cache = PointCache(tmp_path / "points")
        cold = run_fig1(point_cache=cold_cache, **self.COMMON)
        assert cold_cache.hits == 0
        assert cold_cache.stores == cold_cache.misses > 0

        warm_cache = PointCache(tmp_path / "points")
        warm = run_fig1(point_cache=warm_cache, **self.COMMON)
        assert warm_cache.misses == 0
        assert warm_cache.hits == cold_cache.stores
        assert _fig1_rows(warm) == _fig1_rows(cold)

    def test_no_cache_runs_reproduce_cached_runs(self, tmp_path, monkeypatch):
        cached = run_fig1(
            point_cache=PointCache(tmp_path / "points"), **self.COMMON
        )
        monkeypatch.setenv("REPRO_CACHE", "off")
        uncached = run_fig1(point_cache=False, **self.COMMON)
        assert _fig1_rows(uncached) == _fig1_rows(cached)

    def test_corrupted_point_recomputed(self, tmp_path):
        cold_cache = PointCache(tmp_path / "points")
        cold = run_fig1(point_cache=cold_cache, **self.COMMON)
        victim = sorted((tmp_path / "points").glob("*/*.pkl"))[0]
        victim.write_bytes(b"\x00garbage\x00")

        warm_cache = PointCache(tmp_path / "points")
        warm = run_fig1(point_cache=warm_cache, **self.COMMON)
        assert warm_cache.misses == 1  # exactly the damaged entry
        assert warm_cache.hits == cold_cache.stores - 1
        assert _fig1_rows(warm) == _fig1_rows(cold)

    def test_cache_stats_event_and_cached_detail(self, tmp_path):
        cache = PointCache(tmp_path / "points")
        tasks = [
            Task(_square, {"x": i}, cache_key=point_key(_square, {"x": i}))
            for i in range(4)
        ]
        events = []
        cold = SweepRunner(
            n_workers=1, point_cache=cache, on_event=events.append
        )
        assert cold.map(tasks) == [0, 1, 4, 9]
        kinds = [e.kind for e in events]
        assert "cache_stats" in kinds
        assert kinds.index("cache_stats") < kinds.index("sweep_end")
        assert cold.last_stats["cache"].get("point_miss") == 4

        events.clear()
        warm = SweepRunner(
            n_workers=1, point_cache=PointCache(tmp_path / "points"),
            on_event=events.append,
        )
        assert warm.map(tasks) == [0, 1, 4, 9]
        cached_dones = [
            e for e in events if e.kind == "point_done" and e.detail == "cached"
        ]
        assert len(cached_dones) == 4
        assert warm.last_stats["cached_points"] == 4
        assert warm.last_stats["cache"].get("point_hit") == 4


class TestSharedTopologies:
    """Tier 2: zero-copy shared-memory DistanceModel tables."""

    PRESET = ("paper-smp", (2, 8), "default")

    def _fresh(self):
        clear_cache()
        shm.detach_all()

    def test_export_attach_round_trip(self):
        self._fresh()
        model = cached_distance_model("paper-smp", 2, 8)
        key = shm.shm_key(*self.PRESET)
        with shm.SharedTopologyStore() as store:
            store.export_model(key, model)
            store.publish()
            tables = shm.attach_tables(key)
            assert tables is not None
            for name in shm.TABLE_NAMES:
                np.testing.assert_array_equal(
                    tables[name], getattr(model, f"_{name}")
                )
                assert not tables[name].flags.writeable

            # A model assembled from the shared views is bit-identical.
            clear_cache()
            before = cache_stats()
            attached = cached_distance_model("paper-smp", 2, 8)
            assert stats_delta(before).get("model_shm_attach") == 1
            np.testing.assert_array_equal(
                attached._lca_depth, model._lca_depth
            )
            np.testing.assert_array_equal(attached._lca_type, model._lca_type)
        self._fresh()

    def test_close_unlinks_segments(self):
        self._fresh()
        from multiprocessing import shared_memory

        model = cached_distance_model("paper-smp", 2, 8)
        key = shm.shm_key(*self.PRESET)
        store = shm.SharedTopologyStore()
        store.export_model(key, model)
        store.publish()
        names = [
            spec["segment"] for spec in store.manifest[key].values()
        ]
        store.close()
        shm.detach_all()
        assert os.environ.get(shm.ENV_MANIFEST) is None
        assert shm.attach_tables(key) is None
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        clear_cache()

    def test_worker_crash_leaves_no_segments(self, tmp_path):
        """A sweep whose workers die must still unlink every segment."""
        self._fresh()
        from multiprocessing import shared_memory

        manifests = []
        runner = SweepRunner(
            n_workers=2, chunk_size=1, max_retries=0,
            shared_topologies=[self.PRESET],
            on_event=lambda e: manifests.append(
                os.environ.get(shm.ENV_MANIFEST)
            ),
        )
        sentinel = str(tmp_path / "crashed")
        tasks = [
            Task(_crash_once, {"x": i, "sentinel": sentinel}) for i in range(4)
        ]
        assert runner.map(tasks) == [0, 1, 4, 9]
        assert runner.last_stats["serial_fallback"] is True

        published = [m for m in manifests if m]
        assert published, "the store never published a manifest"
        import json

        names = [
            spec["segment"]
            for entry in json.loads(published[0]).values()
            for spec in entry.values()
        ]
        assert names
        assert os.environ.get(shm.ENV_MANIFEST) is None
        shm.detach_all()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        clear_cache()


class TestSerialParallelDeterminism:
    """The headline guarantee: worker count never changes the science."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        common = dict(
            core_counts=(8, 16), iterations=2, n=1024, seed=7, fingerprint=True
        )
        serial = run_fig1(n_workers=1, **common)
        parallel = run_fig1(n_workers=2, **common)
        return serial, parallel

    def test_same_point_order(self, sweeps):
        serial, parallel = sweeps
        assert [(p.implementation, p.n_cores) for p in serial.points] == [
            (p.implementation, p.n_cores) for p in parallel.points
        ]

    def test_metrics_bit_identical(self, sweeps):
        serial, parallel = sweeps
        for a, b in zip(serial.points, parallel.points):
            assert a.time == b.time  # == on floats: bit-exact, no tolerance
            assert a.local_fraction == b.local_fraction
            assert a.migrations == b.migrations
            assert a.remote_bytes == b.remote_bytes

    def test_determinism_fingerprints_identical(self, sweeps):
        serial, parallel = sweeps
        for a, b in zip(serial.points, parallel.points):
            assert a.fingerprint and a.fingerprint == b.fingerprint
