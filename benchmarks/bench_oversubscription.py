"""Ablation A4 — the oversubscription extension (tasks > cores).

Scales the LK23 task count to 1x, 2x, 4x the core count on a 64-core
machine.  The virtual-level extension must keep the compute load
perfectly balanced (exactly ``factor`` main ops per PU) and the
simulated time should grow roughly linearly with the factor (the work
grows with the block count while the machine stays fixed).
"""

import pytest

from repro.experiments.ablations import oversubscription_study


def test_oversubscription(benchmark):
    rows = benchmark.pedantic(
        oversubscription_study, kwargs=dict(factors=(1, 2, 4), iterations=3),
        rounds=1, iterations=1,
    )
    for row in rows:
        f = int(row["factor"])
        benchmark.extra_info[f"time_x{f}"] = row["time"]
        benchmark.extra_info[f"max_mains_per_pu_x{f}"] = row["max_mains_per_pu"]
        # perfect balance: the virtual level gives each PU exactly f mains
        assert row["max_mains_per_pu"] == f

    t1 = rows[0]["time"]
    t4 = rows[2]["time"]
    # 4x the tasks on the same matrix: total flops are constant but
    # per-iteration sync grows; time must stay within a sane envelope
    # (no pathological serialization from the virtual level).
    assert t4 < 4.0 * t1
