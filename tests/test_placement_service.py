"""The placement service and fault-aware re-mapping, proven trustworthy.

Four pillars:

* **Differential**: `remap_incremental` against the full-TreeMatch-on-
  restricted-topology reference (`remap_full`) — same hard guarantees
  (no dead PU, capacity bound), quality within ``QUALITY_BOUND``, and
  byte-determinism across repeated calls and fault-event orderings.
* **Properties** (hypothesis): random failure/drain sequences on
  generated topologies never map a thread to a dead PU, never exceed
  per-PU capacity, and never move a thread whose repair domain kept
  all its PUs (stability).
* **Fault injection**: a query that raises mid-remap leaves every cache
  tier uncorrupted and the next query succeeds; concurrent same-key
  queries compute exactly once (single-flight), asserted via
  ``cache_stats``.
* **Cache-digest regression**: a post-failure query can never be
  answered with a pre-failure cached mapping (the failed set is part
  of the placement key; see also TestPlacementMemo in test_exec.py).
"""

from __future__ import annotations

import asyncio
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.exec.cache import (
    cache_stats,
    cached_tree_match,
    clear_cache,
    reset_cache_stats,
    stats_delta,
)
from repro.observe.tracer import TraceEvent
from repro.placement import make_policy
from repro.placement.service import CommSketch, PlacementService
from repro.topology import presets, restrict_without
from repro.topology.objects import ObjType
from repro.topology.tree import TopologyError
from repro.treematch import (
    cost,
    remap_full,
    remap_incremental,
    repair_domains,
    tree_match,
)
from repro.util.validate import ValidationError

#: Documented quality bound: the incremental repair's hop-bytes may be
#: at most this factor of the full restrict-and-rerun reference.  The
#: worst observed case (losing a whole NUMA node, where full re-run
#: re-optimizes globally but incremental deliberately leaves survivors
#: untouched) is ~1.6x; 2.0 leaves margin without hiding regressions.
QUALITY_BOUND = 2.0


def _random_matrix(order: int, seed: int = 3) -> CommMatrix:
    rng = np.random.default_rng(seed)
    m = rng.random((order, order)) * 100.0
    m = m + m.T
    np.fill_diagonal(m, 0.0)
    return CommMatrix(m)


def _assert_valid(mapping, topo, dead, n_threads):
    """The two hard invariants every repair must satisfy."""
    survivors = topo.nb_pus - len(dead)
    bound = [mapping.pu(t) for t in range(n_threads) if mapping.pu(t) >= 0]
    for pu in bound:
        assert pu not in dead
    cap = max(1, -(-len(bound) // survivors))  # ceil
    assert not bound or Counter(bound).most_common(1)[0][1] <= cap


# ---------------------------------------------------------------------------
# Differential: incremental vs the full reference
# ---------------------------------------------------------------------------


class TestDifferential:
    SCENARIOS = [
        # (topology factory, matrix factory, failed sets to test)
        (
            lambda: presets.small_numa(2, 4),
            lambda: patterns.clustered(2, 4, intra_volume=100, inter_volume=1, seed=7),
            [(0,), (0, 1), (0, 4), (0, 1, 2, 3)],
        ),
        (
            lambda: presets.paper_smp(4, 8),
            lambda: patterns.stencil_2d(4, 8, edge_volume=100.0),
            [(0,), (0, 8), (0, 1, 2, 3, 4, 5, 6, 7)],
        ),
        (
            lambda: presets.paper_smp(4, 8),
            lambda: _random_matrix(32),
            [(5,), (5, 17, 29)],
        ),
    ]

    @pytest.mark.parametrize("scenario", range(len(SCENARIOS)))
    def test_never_places_on_dead_pu_and_respects_capacity(self, scenario):
        make_topo, make_matrix, failed_sets = self.SCENARIOS[scenario]
        topo, matrix = make_topo(), make_matrix()
        base = tree_match(topo, matrix)
        for failed in failed_sets:
            inc = remap_incremental(topo, matrix, base, failed=failed)
            full = remap_full(topo, matrix, failed=failed)
            for r in (inc, full):
                _assert_valid(r.mapping, topo, set(failed), matrix.order)
                assert r.mapping.max_load() <= r.capacity

    @pytest.mark.parametrize("scenario", range(len(SCENARIOS)))
    def test_quality_within_documented_bound(self, scenario):
        make_topo, make_matrix, failed_sets = self.SCENARIOS[scenario]
        topo, matrix = make_topo(), make_matrix()
        base = tree_match(topo, matrix)
        for failed in failed_sets:
            inc = remap_incremental(topo, matrix, base, failed=failed)
            full = remap_full(topo, matrix, failed=failed)
            hb_inc = cost.hop_bytes(inc.mapping, matrix, topo)
            hb_full = cost.hop_bytes(full.mapping, matrix, topo)
            if hb_full > 0:
                assert hb_inc <= QUALITY_BOUND * hb_full, (
                    f"failed={failed}: incremental {hb_inc:.0f} vs "
                    f"full {hb_full:.0f} exceeds {QUALITY_BOUND}x"
                )

    def test_full_on_balanced_restriction_is_exactly_treematch(
        self, paper_topo_small, stencil_matrix
    ):
        # Losing whole NUMA nodes keeps the tree balanced: the reference
        # must literally be tree_match on the restricted topology.
        node = paper_topo_small.objects_by_type(ObjType.NUMANODE)[0]
        failed = tuple(node.cpuset)
        full = remap_full(paper_topo_small, stencil_matrix, failed=failed)
        assert full.method == "treematch-restricted"
        restricted = restrict_without(paper_topo_small, failed)
        direct = tree_match(restricted, stencil_matrix)
        assert full.mapping.pu_of == direct.mapping.restricted(
            stencil_matrix.order
        ).pu_of

    def test_ragged_restriction_uses_capacity_fallback(
        self, small_topo, clustered_matrix
    ):
        # A single lost PU unbalances the tree; Algorithm 1 cannot run.
        restricted = restrict_without(small_topo, (0,))
        with pytest.raises(TopologyError):
            restricted.arities()
        full = remap_full(small_topo, clustered_matrix, failed=(0,))
        assert full.method == "capacity-greedy"
        _assert_valid(full.mapping, small_topo, {0}, clustered_matrix.order)

    def test_byte_deterministic_across_repeated_calls(
        self, paper_topo_small, stencil_matrix
    ):
        base = tree_match(paper_topo_small, stencil_matrix)
        results = [
            remap_incremental(
                paper_topo_small, stencil_matrix, base, failed=(0, 8, 17)
            )
            for _ in range(3)
        ]
        assert len({r.mapping.pu_of for r in results}) == 1
        assert len({r.moved for r in results}) == 1
        fulls = [
            remap_full(paper_topo_small, stencil_matrix, failed=(0, 8, 17))
            for _ in range(3)
        ]
        assert len({r.mapping.pu_of for r in fulls}) == 1

    def test_byte_deterministic_across_event_orderings(
        self, paper_topo_small, stencil_matrix
    ):
        """The service's answer depends on the cumulative dead set only.

        Three services observe the same three failures in different
        interleavings (including restore-then-refail noise); once the
        cumulative sets agree, the mappings are byte-identical.
        """
        failures = (3, 11, 25)
        orderings = [
            [(f,) for f in failures],
            [(f,) for f in reversed(failures)],
            [failures],  # all at once
        ]
        finals = []
        for order in orderings:
            svc = PlacementService(paper_topo_small)
            svc.query_sync(stencil_matrix)
            for batch in order:
                svc.fail(*batch)
                svc.query_sync(stencil_matrix)
            # Noise: a restore immediately undone must not matter.
            svc.restore(failures[0])
            svc.fail(failures[0])
            finals.append(svc.query_sync(stencil_matrix).mapping.pu_of)
        assert len(set(finals)) == 1

    def test_unchanged_without_failures(self, small_topo, clustered_matrix):
        base = tree_match(small_topo, clustered_matrix)
        r = remap_incremental(small_topo, clustered_matrix, base)
        assert r.method == "unchanged"
        assert r.mapping.pu_of == base.mapping.restricted(
            clustered_matrix.order
        ).pu_of
        assert r.moved == ()

    def test_all_pus_dead_is_an_error(self, small_topo, clustered_matrix):
        base = tree_match(small_topo, clustered_matrix)
        everyone = tuple(range(8))
        with pytest.raises(ValidationError):
            remap_incremental(small_topo, clustered_matrix, base, failed=everyone)
        with pytest.raises(ValidationError):
            remap_full(small_topo, clustered_matrix, failed=everyone)

    def test_unknown_pu_rejected(self, small_topo, clustered_matrix):
        base = tree_match(small_topo, clustered_matrix)
        with pytest.raises(ValidationError):
            remap_incremental(small_topo, clustered_matrix, base, failed=(99,))


# ---------------------------------------------------------------------------
# Hypothesis properties: random topologies, random fault sequences
# ---------------------------------------------------------------------------

topo_params = st.tuples(
    st.integers(min_value=1, max_value=3),   # NUMA nodes
    st.integers(min_value=2, max_value=4),   # cores per node
)


@settings(max_examples=40, deadline=None)
@given(
    params=topo_params,
    seed=st.integers(min_value=0, max_value=2**20),
    data=st.data(),
)
def test_random_fault_sequences_keep_invariants(params, seed, data):
    nodes, cores = params
    topo = presets.small_numa(nodes, cores)
    n_pus = nodes * cores
    order = data.draw(
        st.integers(min_value=2, max_value=2 * n_pus), label="order"
    )
    matrix = _random_matrix(order, seed=seed)
    base = tree_match(topo, matrix)

    # A cumulative fault sequence leaving at least one survivor.
    max_dead = n_pus - 1
    sequence = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_pus - 1),
            min_size=1,
            max_size=max(1, max_dead),
        ),
        label="fault sequence",
    )
    domains = repair_domains(topo)
    domain_of_pu = {}
    for di, obj in enumerate(domains):
        for os_index in obj.cpuset:
            domain_of_pu[os_index] = di

    dead: set[int] = set()
    for pu in sequence:
        if len(dead | {pu}) > max_dead:
            break
        dead.add(pu)
        split = len(dead) // 2
        as_failed = tuple(sorted(dead))[:split]
        as_drained = tuple(sorted(dead))[split:]
        r = remap_incremental(
            topo, matrix, base, failed=as_failed, drained=as_drained
        )

        # 1. never on a dead PU  2. never over capacity
        _assert_valid(r.mapping, topo, dead, order)
        assert r.mapping.max_load() <= r.capacity

        # 3. stability: a thread moves only if its repair domain lost a PU
        affected = {domain_of_pu[p] for p in dead}
        for t in range(order):
            before = base.mapping.pu(t)
            if before < 0:
                continue
            if domain_of_pu[before] not in affected:
                assert r.mapping.pu(t) == before, (
                    f"thread {t} moved out of untouched domain "
                    f"{domain_of_pu[before]}"
                )


@settings(max_examples=25, deadline=None)
@given(
    params=topo_params,
    seed=st.integers(min_value=0, max_value=2**20),
    n_dead=st.integers(min_value=1, max_value=5),
)
def test_full_reference_keeps_invariants(params, seed, n_dead):
    nodes, cores = params
    topo = presets.small_numa(nodes, cores)
    n_pus = nodes * cores
    if n_dead >= n_pus:
        n_dead = n_pus - 1
    if n_dead < 1:
        return
    order = min(2 * n_pus, 3 + seed % (2 * n_pus))
    if order < 2:
        order = 2
    matrix = _random_matrix(order, seed=seed)
    rng = np.random.default_rng(seed)
    dead = tuple(sorted(rng.choice(n_pus, size=n_dead, replace=False).tolist()))
    r = remap_full(topo, matrix, failed=dead)
    _assert_valid(r.mapping, topo, set(dead), order)
    assert r.mapping.max_load() <= r.capacity


# ---------------------------------------------------------------------------
# Fault injection: the service loop under errors and concurrency
# ---------------------------------------------------------------------------


class _Boom(RuntimeError):
    pass


class TestFaultInjection:
    def test_query_raising_mid_remap_leaves_cache_clean(
        self, small_topo, clustered_matrix, monkeypatch
    ):
        clear_cache()
        reset_cache_stats()
        svc = PlacementService(small_topo)
        svc.fail(0)

        calls = {"n": 0}
        import repro.placement.service as service_mod

        real = service_mod.remap_incremental

        def exploding(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise _Boom("mid-remap failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "remap_incremental", exploding)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)

        before = cache_stats()
        with pytest.raises(_Boom):
            svc.query_sync(clustered_matrix)
        # No partial decision was memoized by the failed query...
        assert svc.stats()["memo_entries"] == 0
        # ...and the next identical query simply succeeds.
        decision = svc.query_sync(clustered_matrix)
        assert decision.method == "incremental"
        assert 0 not in decision.mapping.pu_of
        delta = stats_delta(before)
        assert delta.get("service_query") == 2
        assert svc.stats()["inflight"] == 0

    def test_async_query_raising_propagates_and_recovers(
        self, small_topo, clustered_matrix, monkeypatch
    ):
        clear_cache()
        reset_cache_stats()
        svc = PlacementService(small_topo)

        import repro.placement.service as service_mod

        calls = {"n": 0}
        real = service_mod.cached_tree_match

        def exploding(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise _Boom("cold computation died")
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "cached_tree_match", exploding)

        async def scenario():
            with pytest.raises(_Boom):
                await svc.query(clustered_matrix)
            assert svc.stats()["inflight"] == 0
            return await svc.query(clustered_matrix)

        decision = asyncio.run(scenario())
        assert decision.method == "treematch"
        assert svc.stats()["inflight"] == 0

    def test_concurrent_same_key_queries_compute_exactly_once(
        self, paper_topo_small, stencil_matrix, monkeypatch
    ):
        # Hermetic: an earlier test may have left REPRO_CACHE_DIR in the
        # process env (CLI --cache-dir paths export it for workers),
        # which would turn the one compute into a placement_disk_hit.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_cache()
        reset_cache_stats()
        svc = PlacementService(paper_topo_small)
        before = cache_stats()

        async def hammer():
            return await asyncio.gather(
                *[svc.query(stencil_matrix) for _ in range(32)]
            )

        decisions = asyncio.run(hammer())
        assert len({d.mapping.pu_of for d in decisions}) == 1
        delta = stats_delta(before)
        # Exactly one TreeMatch run; everyone else piggybacked.
        assert delta.get("placement_miss") == 1
        assert "placement_hit" not in delta or delta["placement_hit"] == 0
        assert delta.get("service_single_flight") == 31
        assert svc.stats()["inflight"] == 0

    def test_sequential_warm_queries_are_memo_hits(
        self, paper_topo_small, stencil_matrix, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        clear_cache()
        reset_cache_stats()
        svc = PlacementService(paper_topo_small)
        cold = svc.query_sync(stencil_matrix)
        before = cache_stats()
        warm = svc.query_sync(stencil_matrix)
        delta = stats_delta(before)
        assert warm.cached and not cold.cached
        assert warm.mapping.pu_of == cold.mapping.pu_of
        assert delta.get("service_memo_hit") == 1
        assert "placement_miss" not in delta


# ---------------------------------------------------------------------------
# Cache-digest regression (service level; tiers covered in test_exec.py)
# ---------------------------------------------------------------------------


class TestFailureInvalidatesCache:
    def test_post_failure_query_never_returns_pre_failure_mapping(
        self, paper_topo_small, stencil_matrix
    ):
        clear_cache()
        svc = PlacementService(paper_topo_small)
        healthy = svc.query_sync(stencil_matrix)
        victim = healthy.mapping.pu(0)
        assert victim in healthy.mapping.pu_of

        svc.fail(victim)
        for mode in ("auto", "incremental", "full"):
            after = svc.query_sync(stencil_matrix, mode=mode)
            assert after.key != healthy.key
            assert victim not in after.mapping.pu_of

        # Restoring the PU serves the healthy mapping again, unchanged.
        svc.restore(victim)
        again = svc.query_sync(stencil_matrix)
        assert again.mapping.pu_of == healthy.mapping.pu_of

    def test_failed_and_drained_key_separately(
        self, small_topo, clustered_matrix
    ):
        svc = PlacementService(small_topo)
        svc.fail(0)
        failed_key = svc.query_sync(clustered_matrix).key
        svc.restore(0)
        svc.drain(0)
        drained_key = svc.query_sync(clustered_matrix).key
        assert failed_key != drained_key


# ---------------------------------------------------------------------------
# The sketch and phase-triggered re-placement
# ---------------------------------------------------------------------------


class TestCommSketch:
    def test_record_and_matrix(self):
        sketch = CommSketch(4, window=16)
        sketch.record(0, 1, 100.0)
        sketch.record(2, 3, 50.0)
        m = sketch.matrix()
        assert m.values[0, 1] == m.values[1, 0] == 100.0
        assert m.values[2, 3] == m.values[3, 2] == 50.0
        assert m.values[0, 2] == 0.0

    def test_window_eviction_is_exact(self):
        sketch = CommSketch(2, window=3)
        for _ in range(10):
            sketch.record(0, 1, 7.0)
        assert sketch.n_events == 3
        assert sketch.total_recorded == 10
        assert sketch.matrix().values[0, 1] == 21.0

    def test_self_and_nonpositive_records_ignored(self):
        sketch = CommSketch(3)
        sketch.record(1, 1, 100.0)
        sketch.record(0, 1, 0.0)
        sketch.record(0, 1, -5.0)
        assert sketch.n_events == 0
        with pytest.raises(ValidationError):
            sketch.record(0, 7, 1.0)

    def test_observe_splits_volume_across_node_peers(self, small_topo):
        # Threads 1 and 2 both live on NUMA node 1's PUs; a transfer
        # into thread 0 from node 1 splits evenly between them.
        from repro.treematch.mapping import Mapping

        mapping = Mapping((0, 4, 5), ("a", "b", "c"), policy="test")
        node_of = {p.os_index: small_topo.numa_node_of(p.os_index).logical_index
                   for p in small_topo.pus()}
        sketch = CommSketch(3)
        event = TraceEvent(seq=0, kind="transfer", ts=0.0, dur=1.0, tid=0,
                           nbytes=100.0, detail="from-node:1")
        added = sketch.observe(event, mapping, node_of)
        assert added == 2
        m = sketch.matrix()
        assert m.values[0, 1] == 50.0
        assert m.values[0, 2] == 50.0

    def test_observe_ignores_irrelevant_events(self, small_topo):
        from repro.treematch.mapping import Mapping

        mapping = Mapping((0, 1), ("a", "b"), policy="test")
        node_of = {p.os_index: 0 for p in small_topo.pus()}
        sketch = CommSketch(2)
        for event in (
            TraceEvent(seq=0, kind="compute", ts=0.0, tid=0, nbytes=5.0),
            TraceEvent(seq=1, kind="transfer", ts=0.0, tid=0, nbytes=0.0),
            TraceEvent(seq=2, kind="transfer", ts=0.0, tid=9, nbytes=5.0,
                       detail="from-node:0"),
            TraceEvent(seq=3, kind="transfer", ts=0.0, tid=0, nbytes=5.0,
                       detail="weird"),
        ):
            assert sketch.observe(event, mapping, node_of) == 0


class TestPhaseReplacement:
    def _drifted_events(self, svc, decision, n=50):
        """Synthesize transfers matching an anti-phase pattern."""
        node_of = svc._node_of_pu
        events = []
        order = decision.mapping.n_threads
        for k in range(n):
            t = k % (order // 2)
            peer = t + order // 2
            pu = decision.mapping.pu(peer)
            events.append(TraceEvent(
                seq=k, kind="transfer", ts=float(k), dur=0.1, tid=t,
                nbytes=1000.0, detail=f"from-node:{node_of[pu]}",
            ))
        return events

    def test_phase_shift_triggers_replacement(self, small_topo):
        a = np.zeros((8, 8))
        a[:4, :4] = 10.0
        a[4:, 4:] = 10.0
        np.fill_diagonal(a, 0.0)
        svc = PlacementService(small_topo, min_events=8, phase_threshold=0.9)
        decision = svc.query_sync(CommMatrix(a))
        assert svc.maybe_replace() is None  # no events yet

        svc.ingest(self._drifted_events(svc, decision))
        corr = svc.phase_shift()
        assert corr is not None and corr < 0.9
        replaced = svc.maybe_replace()
        assert replaced is not None
        assert replaced.epoch == decision.epoch + 1
        # The new decision resets the phase reference.
        assert svc.maybe_replace() is None

    def test_stable_phase_does_not_replace(self, small_topo):
        # Thread 0 talks to 1–3; TreeMatch co-locates the four on one
        # node, so node-level attribution (volume split across the
        # producer node's peers) reconstructs exactly this pattern.
        a = np.zeros((8, 8))
        a[0, 1:4] = a[1:4, 0] = 10.0
        svc = PlacementService(small_topo, min_events=4, phase_threshold=0.75)
        decision = svc.query_sync(CommMatrix(a))
        node_of = svc._node_of_pu
        pu = decision.mapping.pu(1)
        events = [
            TraceEvent(seq=k, kind="transfer", ts=float(k), dur=0.1, tid=0,
                       nbytes=1000.0, detail=f"from-node:{node_of[pu]}")
            for k in range(20)
        ]
        svc.ingest(events)
        shift = svc.phase_shift()
        assert shift is not None and shift >= 0.75
        assert svc.maybe_replace() is None

    def test_ingest_requires_active_decision(self, small_topo):
        svc = PlacementService(small_topo)
        with pytest.raises(ValidationError):
            svc.ingest([])


# ---------------------------------------------------------------------------
# Service plumbing: modes, policy, epoch bookkeeping
# ---------------------------------------------------------------------------


class TestServicePlumbing:
    def test_mode_validation(self, small_topo, clustered_matrix):
        svc = PlacementService(small_topo)
        with pytest.raises(ValidationError):
            svc.query_sync(clustered_matrix, mode="nonsense")

    def test_unknown_pu_rejected(self, small_topo):
        svc = PlacementService(small_topo)
        with pytest.raises(ValidationError):
            svc.fail(123)

    def test_epoch_advances_on_fault_events(self, small_topo):
        svc = PlacementService(small_topo)
        assert svc.epoch == 0
        svc.fail(0)
        svc.drain(1)
        svc.restore(0)
        assert svc.epoch == 3
        assert svc.failed == ()
        assert svc.drained == (1,)

    def test_service_policy_places_like_treematch_when_healthy(
        self, paper_topo_small, stencil_matrix
    ):
        clear_cache()
        service_policy = make_policy("service")
        treematch_policy = make_policy("treematch")
        a = service_policy.place(
            paper_topo_small, stencil_matrix.order, matrix=stencil_matrix
        )
        b = treematch_policy.place(
            paper_topo_small, stencil_matrix.order, matrix=stencil_matrix
        )
        assert a.pu_of == b.pu_of
        assert a.policy == "service"

    def test_service_policy_honors_injected_faults(
        self, paper_topo_small, stencil_matrix
    ):
        policy = make_policy("service")
        healthy = policy.place(
            paper_topo_small, stencil_matrix.order, matrix=stencil_matrix
        )
        victim = healthy.pu(0)
        policy.service_for(paper_topo_small).fail(victim)
        repaired = policy.place(
            paper_topo_small, stencil_matrix.order, matrix=stencil_matrix
        )
        assert victim not in repaired.pu_of
        assert policy.last_decision.method == "incremental"

    def test_service_policy_requires_matrix(self, small_topo):
        policy = make_policy("service")
        with pytest.raises(ValidationError):
            policy.place(small_topo, 4)

    def test_stats_shape(self, small_topo, clustered_matrix):
        svc = PlacementService(small_topo)
        svc.query_sync(clustered_matrix)
        stats = svc.stats()
        assert set(stats) == {
            "topology", "epoch", "failed", "drained",
            "memo_entries", "inflight", "sketch_events",
        }
        assert stats["memo_entries"] == 1
