"""Ablation A3 — the paper's three control-thread strategies.

Runs LK23 in the three scenarios that trigger each branch of the
control-thread extension (hyperthread reservation, spare cores,
unmapped) and records the simulated time plus which branch fired.
"""

import pytest

from repro.experiments.ablations import control_strategy_comparison


def test_control_strategies(benchmark):
    out = benchmark.pedantic(
        control_strategy_comparison, kwargs=dict(iterations=3), rounds=1, iterations=1
    )
    for name, row in out.items():
        benchmark.extra_info[f"{name}_time_s"] = row["time"]
        benchmark.extra_info[f"{name}_strategy"] = row["strategy"]
    # each scenario must exercise its intended branch
    assert out["hyperthread"]["strategy"] == "hyperthread"
    assert out["spare-cores"]["strategy"] == "spare-cores"
    assert out["unmapped"]["strategy"] == "unmapped"


def test_hyperthread_reservation_pays_off(benchmark):
    """On a hyperthreaded machine, placing control threads on sibling
    hyperthreads (treematch plan) beats leaving them unbound."""
    from repro.kernels.lk23_orwl import Lk23Config, build_program
    from repro.orwl.runtime import Runtime
    from repro.placement.binder import bind_program
    from repro.simulate.machine import Machine
    from repro.topology import presets

    def run(place_control):
        topo = presets.hyperthreaded_smp(4, 8)
        cfg = Lk23Config(n=4096, grid_rows=4, grid_cols=8, iterations=3)
        prog = build_program(cfg)
        plan = bind_program(prog, topo, policy="treematch", place_control=place_control)
        machine = Machine(topo, seed=1)
        rt = Runtime(prog, machine, mapping=plan.mapping,
                     control_mapping=plan.control_mapping)
        return rt.run().time

    t_placed = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    t_unplaced = run(False)
    benchmark.extra_info["placed_s"] = t_placed
    benchmark.extra_info["unplaced_s"] = t_unplaced
    # Placement must never be a large regression (and usually helps).
    assert t_placed <= t_unplaced * 1.15
