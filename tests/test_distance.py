"""Tests for repro.topology.distance: LCA/hop matrices and cost model."""

import numpy as np
import pytest

from repro.topology.builder import from_spec
from repro.topology.distance import (
    DEFAULT_LEVEL_COSTS,
    DistanceModel,
    LinkCosts,
    hop_distance_matrix,
    lca_depth_matrix,
)
from repro.topology.objects import ObjType
from repro.topology import presets


class TestLcaMatrix:
    def test_diagonal_is_pu_depth(self, small_topo):
        lca = lca_depth_matrix(small_topo)
        assert all(lca[i, i] == 5 for i in range(8))

    def test_same_node_pair(self, small_topo):
        lca = lca_depth_matrix(small_topo)
        # PUs 0 and 1 share the L3 at depth 3.
        assert lca[0, 1] == 3

    def test_cross_node_pair(self, small_topo):
        lca = lca_depth_matrix(small_topo)
        assert lca[0, 4] == 0  # machine

    def test_symmetric(self, small_topo):
        lca = lca_depth_matrix(small_topo)
        assert np.array_equal(lca, lca.T)


class TestHopMatrix:
    def test_zero_diagonal(self, small_topo):
        hops = hop_distance_matrix(small_topo)
        assert np.all(np.diag(hops) == 0)

    def test_same_l3_distance(self, small_topo):
        hops = hop_distance_matrix(small_topo)
        # depth 5 + 5 - 2*3 = 4 hops within a node
        assert hops[0, 1] == 4

    def test_cross_node_distance(self, small_topo):
        hops = hop_distance_matrix(small_topo)
        assert hops[0, 4] == 10

    def test_triangle_inequality_holds(self, paper_topo_small):
        hops = hop_distance_matrix(paper_topo_small)
        n = hops.shape[0]
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j, k = rng.integers(0, n, 3)
            assert hops[i, j] <= hops[i, k] + hops[k, j]


class TestLinkCosts:
    def test_transfer_time_formula(self):
        c = LinkCosts(latency=1e-6, bandwidth=1e9)
        assert c.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_free(self):
        c = LinkCosts(latency=1e-6, bandwidth=1e9)
        assert c.transfer_time(0) == 0.0

    def test_default_costs_monotone(self):
        # Latency grows (and bandwidth shrinks) as sharing gets wider.
        order = [ObjType.L1, ObjType.L2, ObjType.L3, ObjType.NUMANODE, ObjType.MACHINE]
        lats = [DEFAULT_LEVEL_COSTS[t].latency for t in order]
        bws = [DEFAULT_LEVEL_COSTS[t].bandwidth for t in order]
        assert lats == sorted(lats)
        assert bws == sorted(bws, reverse=True)


class TestDistanceModel:
    def test_lca_type_same_socket(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.lca_type(0, 1) is ObjType.L3

    def test_lca_type_cross_socket(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.lca_type(0, 4) is ObjType.MACHINE

    def test_lca_type_same_pu_is_core(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.lca_type(3, 3) is ObjType.CORE

    def test_transfer_time_scales_with_distance(self, small_topo):
        m = DistanceModel(small_topo)
        near = m.transfer_time(0, 1, 1 << 20)
        far = m.transfer_time(0, 4, 1 << 20)
        assert far > near

    def test_transfer_time_zero_bytes(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.transfer_time(0, 4, 0) == 0.0

    def test_latency_bandwidth_lookup(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.latency(0, 4) == DEFAULT_LEVEL_COSTS[ObjType.MACHINE].latency
        assert m.bandwidth(0, 1) == DEFAULT_LEVEL_COSTS[ObjType.L3].bandwidth

    def test_matrices_shapes(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.latency_matrix().shape == (8, 8)
        assert m.bandwidth_matrix().shape == (8, 8)
        assert m.hop_matrix().shape == (8, 8)

    def test_matrices_readonly(self, small_topo):
        m = DistanceModel(small_topo)
        with pytest.raises(ValueError):
            m.hop_matrix()[0, 0] = 5
        with pytest.raises(ValueError):
            m.lca_depths[0, 0] = 5

    def test_logical_of_os(self, small_topo):
        m = DistanceModel(small_topo)
        assert m.logical_of_os(3) == 3
        with pytest.raises(KeyError):
            m.logical_of_os(99)

    def test_custom_level_costs(self, small_topo):
        costs = dict(DEFAULT_LEVEL_COSTS)
        costs[ObjType.MACHINE] = LinkCosts(latency=1.0, bandwidth=1.0)
        m = DistanceModel(small_topo, level_costs=costs)
        assert m.latency(0, 4) == 1.0

    def test_hyperthread_sibling_core_level(self, ht_topo):
        m = DistanceModel(ht_topo)
        # PUs 0 and 1 share a core.
        assert m.lca_type(0, 1) is ObjType.CORE

    def test_missing_level_falls_back_to_machine(self):
        t = from_spec("numa:2 pu:4")
        m = DistanceModel(t)
        # Cross-node LCA is MACHINE; lookup must not fail.
        assert m.latency(0, 4) > 0
