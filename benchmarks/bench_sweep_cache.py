"""A warm content-addressed sweep rerun must be >= 5x the cold run.

The point cache (:class:`repro.exec.cache.PointCache`) stores every
sweep-point result under ``sha256(schema ⊕ function ⊕ kwargs)``; a
repeated sweep looks each replicate up before dispatching and only
simulates what is missing.  This benchmark pins the payoff on the
workload the cache targets: the paper-preset Figure-1 sweep replicated
over 5 seeds, run cold (empty store, every point simulated and stored)
and then warm (every point served from the store).

The timed region is the warm rerun alone.  Identity is not optional:
every warm replicate must carry the same simulated time and the same
determinism fingerprint as its cold twin, so the speedup can only come
from *not recomputing*, never from computing something else.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.exec.cache import PointCache
from repro.experiments.fig1 import run_fig1

CORE_COUNTS = (8, 16)
ITERATIONS = 2
N = 2048
SEEDS = 5
MIN_SPEEDUP = 5.0


def run_sweep(cache: PointCache):
    return run_fig1(
        core_counts=CORE_COUNTS, iterations=ITERATIONS, n=N, seed=0,
        fingerprint=True, n_workers=1, seeds=SEEDS, point_cache=cache,
    )


def replicate_rows(result):
    return [
        (p.implementation, p.n_cores, p.time, p.fingerprint)
        for reps in result.replicates.values()
        for p in reps
    ]


def test_warm_sweep_cache_speedup(benchmark):
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cold_cache = PointCache(tmp / "points")
        t0 = time.perf_counter()
        cold = run_sweep(cold_cache)
        cold_wall = time.perf_counter() - t0
        assert cold_cache.hits == 0
        assert cold_cache.stores == cold_cache.misses > 0

        warm_cache = PointCache(tmp / "points")

        def timed():
            return run_sweep(warm_cache)

        warm = benchmark.pedantic(timed, rounds=1, iterations=1)
        warm_wall = benchmark.stats.stats.max
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # Identity contract: the cached sweep is byte-for-byte the cold one.
    assert replicate_rows(warm) == replicate_rows(cold)
    assert warm_cache.misses == 0
    assert warm_cache.hits == cold_cache.stores

    speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")
    benchmark.extra_info["n_runs"] = warm_cache.hits
    benchmark.extra_info["cold_wall_s"] = cold_wall
    benchmark.extra_info["warm_wall_s"] = warm_wall
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["sim_time_s"] = cold.best_time("orwl-bind")[1]
    assert speedup >= MIN_SPEEDUP, (
        f"warm sweep only {speedup:.1f}x cold "
        f"(cold {cold_wall:.2f}s, warm {warm_wall:.3f}s); "
        f"contract requires >= {MIN_SPEEDUP}x on the paper-preset "
        f"{SEEDS}-seed sweep"
    )
