"""Tests for the machine-model self-validation."""

import pytest

from repro.simulate.contention import ContentionConfig
from repro.simulate.machine import Machine
from repro.simulate.scheduler import SchedulerConfig
from repro.simulate.validate_model import validate_machine_model
from repro.topology import presets
from repro.topology.distance import DEFAULT_LEVEL_COSTS, DistanceModel, LinkCosts
from repro.topology.objects import ObjType


class TestValidateModel:
    def test_default_model_is_clean(self, small_topo):
        report = validate_machine_model(Machine(small_topo, seed=0))
        assert report.ok, report.problems
        assert report.checks_run > 10

    def test_paper_machine_clean(self):
        report = validate_machine_model(Machine(presets.paper_smp(4, 8), seed=0))
        assert report.ok, report.problems

    def test_cluster_model_clean(self):
        from repro.topology.distance import cluster_distance_model

        topo = presets.cluster(2, 2, 4)
        m = Machine(topo, distance_model=cluster_distance_model(topo), seed=0)
        report = validate_machine_model(m)
        assert report.ok, report.problems

    def test_inverted_latency_detected(self, small_topo):
        costs = dict(DEFAULT_LEVEL_COSTS)
        # Make cross-socket cheaper than shared-L3: nonsense.
        costs[ObjType.MACHINE] = LinkCosts(latency=1e-9, bandwidth=500e9)
        dm = DistanceModel(small_topo, level_costs=costs)
        report = validate_machine_model(Machine(small_topo, distance_model=dm, seed=0))
        assert not report.ok
        assert any("latency decreases" in p for p in report.problems)
        assert any("bandwidth increases" in p for p in report.problems)

    def test_pathological_scheduler_detected(self, small_topo):
        m = Machine(
            small_topo,
            seed=0,
            scheduler=SchedulerConfig(migration_quantum=1e-5, migration_penalty=1e-4),
        )
        report = validate_machine_model(m)
        assert any("migration penalty" in p for p in report.problems)

    def test_repr(self, small_topo):
        report = validate_machine_model(Machine(small_topo, seed=0))
        assert "OK" in repr(report)
