"""Property-based tests for ``repro.stats`` and ``repro.exec.derive_seed``.

Hypothesis sweeps the input space for the invariants the statistical
layer's correctness rests on:

* the bootstrap CI always contains the sample mean;
* aggregation is a pure function of the *multiset* of values — any
  permutation gives bit-identical ``SeedStats`` (seed-order
  invariance: a parallel sweep finishing replicates in any order can
  never change the statistics);
* N=1 aggregation reproduces the single value exactly;
* ``derive_seed`` is injective in practice (distinct keys, distinct
  seeds), stable across processes and ``PYTHONHASHSEED`` values, and
  the numpy streams of adjacent replicate indices are uncorrelated at
  a sanity level.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.runner import derive_seed
from repro.stats import summarize

#: Finite, well-conditioned measurement values (simulated seconds).
values_st = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=16,
)


@settings(max_examples=60, deadline=None)
@given(values=values_st)
def test_bootstrap_ci_contains_sample_mean(values):
    s = summarize(values, n_boot=200)
    assert s.ci_lo <= s.mean <= s.ci_hi


@settings(max_examples=60, deadline=None)
@given(values=values_st, seed=st.integers(min_value=0, max_value=2**31))
def test_summarize_is_seed_order_invariant(values, seed):
    rng = np.random.default_rng(seed)
    shuffled = list(values)
    rng.shuffle(shuffled)
    assert summarize(shuffled, n_boot=200) == summarize(values, n_boot=200)


@settings(max_examples=60, deadline=None)
@given(value=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
def test_n1_aggregation_is_the_single_run_number(value):
    s = summarize([value])
    assert s.mean == value
    assert s.median == value
    assert s.stddev == 0.0
    assert s.ci == (value, value)
    assert s.n == 1


@settings(max_examples=60, deadline=None)
@given(values=values_st)
def test_stddev_matches_numpy_sample_estimate(values):
    s = summarize(values, n_boot=50)
    expected = float(np.std(np.sort(np.asarray(values)), ddof=1)) if len(values) > 1 else 0.0
    assert s.stddev == expected


# ---------------------------------------------------------------------------
# derive_seed
# ---------------------------------------------------------------------------

_key_part = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=12),
)
_keys = st.lists(_key_part, min_size=1, max_size=4)


@settings(max_examples=80, deadline=None)
@given(base=st.integers(min_value=0, max_value=2**62), k1=_keys, k2=_keys)
def test_distinct_keys_distinct_seeds(base, k1, k2):
    s1 = derive_seed(base, *k1)
    s2 = derive_seed(base, *k2)
    assert 0 <= s1 < 2**63
    if tuple(map(repr, k1)) != tuple(map(repr, k2)):
        # sha-256 collision over a 63-bit digest slice: finding one
        # here would be publishable; treat it as a failure.
        assert s1 != s2
    else:
        assert s1 == s2


@settings(max_examples=40, deadline=None)
@given(base=st.integers(min_value=0, max_value=2**62), key=_keys)
def test_derive_seed_is_pure(base, key):
    assert derive_seed(base, *key) == derive_seed(base, *key)


@pytest.mark.parametrize("hashseed", ["0", "424242"])
def test_derive_seed_stable_across_processes(hashseed):
    """The same inputs give the same seed in a fresh interpreter with a
    different ``PYTHONHASHSEED`` — the property the parallel sweep's
    reproducibility hangs on."""
    expected = derive_seed(7, "fig1", "openmp", 8, 3)
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.exec.runner import derive_seed;"
         "print(derive_seed(7, 'fig1', 'openmp', 8, 3))"],
        capture_output=True, text=True, env=env, check=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert int(out.stdout.strip()) == expected


def test_adjacent_replicate_streams_uncorrelated():
    """Streams seeded from adjacent replicate indices of the same point
    must not be visibly correlated (sanity level, not a PRNG test)."""
    for impl in ("orwl-bind", "openmp"):
        for rep in (1, 2, 3):
            a = np.random.default_rng(derive_seed(0, "fig1", impl, 8, rep))
            b = np.random.default_rng(derive_seed(0, "fig1", impl, 8, rep + 1))
            xs = a.standard_normal(2048)
            ys = b.standard_normal(2048)
            corr = abs(float(np.corrcoef(xs, ys)[0, 1]))
            assert corr < 0.1, (impl, rep, corr)


def test_adjacent_point_streams_uncorrelated():
    a = np.random.default_rng(derive_seed(0, "fig1", "openmp", 8, 1))
    b = np.random.default_rng(derive_seed(0, "fig1", "openmp", 16, 1))
    corr = abs(float(np.corrcoef(a.standard_normal(2048),
                                 b.standard_normal(2048))[0, 1]))
    assert corr < 0.1
