"""Topology restriction: hwloc's ``hwloc_topology_restrict``.

Produces a new :class:`~repro.topology.tree.Topology` containing only
the PUs of a given cpuset, dropping emptied internal objects.  This is
how real deployments express "run on sockets 0–3 of the big machine":
the experiments' core-count sweeps and the ``allowed`` placement
constraint both build on it.

Restriction preserves PU ``os_index`` values, so a mapping computed on
the restricted topology is directly valid on the full machine.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.topology.cpuset import CpuSet
from repro.topology.objects import ObjType, TopologyObject
from repro.topology.tree import Topology, TopologyError


def _clone_filtered(obj: TopologyObject, keep: CpuSet) -> Optional[TopologyObject]:
    """Deep-copy the subtree of *obj* keeping only PUs inside *keep*."""
    if obj.type is ObjType.PU:
        assert obj.os_index is not None
        if obj.os_index not in keep:
            return None
        clone = TopologyObject(
            obj.type, os_index=obj.os_index, name=obj.name,
            cache=copy.deepcopy(obj.cache), memory=copy.deepcopy(obj.memory),
        )
        return clone
    children = []
    for child in obj.children:
        cc = _clone_filtered(child, keep)
        if cc is not None:
            children.append(cc)
    if not children:
        return None
    clone = TopologyObject(
        obj.type, os_index=obj.os_index, name=obj.name,
        cache=copy.deepcopy(obj.cache), memory=copy.deepcopy(obj.memory),
    )
    for cc in children:
        clone.add_child(cc)
    return clone


def restrict(topo: Topology, cpuset: CpuSet, name: str = "") -> Topology:
    """A new topology containing only the PUs of *cpuset*.

    Raises :class:`TopologyError` if the intersection with the machine
    is empty.  Note the result must still be *balanced* to feed the
    mapping algorithm (restrict whole objects — nodes, packages, cores —
    for that; :func:`restrict_to_objects` helps).
    """
    keep = cpuset & topo.cpuset
    if keep.is_empty():
        raise TopologyError("restriction cpuset does not intersect the machine")
    root = _clone_filtered(topo.root, keep)
    assert root is not None
    return Topology(root, name=name or f"{topo.name}:restricted")


def restrict_without(topo: Topology, dead, name: str = "") -> Topology:
    """A new topology with the PUs in *dead* removed.

    The subtractive form of :func:`restrict`, used by fault-aware
    re-mapping: ``dead`` is any iterable of PU os indices (or a
    :class:`CpuSet`) marking failed or drained units.  Removing
    arbitrary single PUs generally leaves a *ragged* tree that
    :func:`~repro.treematch.tree_match` will reject — see
    :func:`repro.treematch.remap.remap_full` for the capacity-aware
    fallback that handles it.

    Raises :class:`TopologyError` if no PU survives.
    """
    dead_set = dead if isinstance(dead, CpuSet) else CpuSet(dead)
    keep = topo.cpuset - dead_set
    if keep.is_empty():
        raise TopologyError("restriction removes every PU of the machine")
    return restrict(topo, keep, name=name or f"{topo.name}:survivors")


def restrict_to_objects(
    topo: Topology, type_: ObjType, count: int, name: str = ""
) -> Topology:
    """Keep the first *count* objects of *type_* (logical order).

    The balanced way to shrink a machine: e.g. ``restrict_to_objects(t,
    ObjType.NUMANODE, 4)`` is "the first four sockets of the SMP".
    """
    objs = topo.objects_by_type(type_)
    if count <= 0 or count > len(objs):
        raise TopologyError(
            f"cannot keep {count} of {len(objs)} {type_.name} objects"
        )
    keep = CpuSet()
    for obj in objs[:count]:
        keep = keep | obj.cpuset
    return restrict(topo, keep, name=name or f"{topo.name}:{count}x{type_.name}")
