"""One-shot experiment runner CLI.

Usage::

    python -m repro.tools.simulate                           # paper defaults
    python -m repro.tools.simulate --policy nobind --iterations 3
    python -m repro.tools.simulate --topology "numa:4 core:8 pu:1" \\
        --policy treematch --tasks 32 --report
"""

from __future__ import annotations

import argparse

from repro.core.api import ExperimentConfig, run_lk23
from repro.placement.policies import POLICY_REGISTRY
from repro.tools._common import resolve_topology


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.simulate", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--topology", default="paper-smp",
        help="preset name, 'host', JSON/XML file, or synthetic spec",
    )
    parser.add_argument(
        "--policy", default="treematch", choices=sorted(POLICY_REGISTRY)
    )
    parser.add_argument("--n", type=int, default=16384, help="matrix size")
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--tasks", type=int, default=None,
                        help="ORWL tasks (default: one per core)")
    parser.add_argument("--granularity", default="task", choices=["task", "op"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", action="store_true",
                        help="print the placement report too")
    args = parser.parse_args(argv)

    topo = resolve_topology(args.topology)
    cfg = ExperimentConfig(
        topology=topo,
        policy=args.policy,
        n=args.n,
        iterations=args.iterations,
        tasks=args.tasks,
        granularity=args.granularity,
        seed=args.seed,
    )
    result = run_lk23(cfg)
    m = result.metrics
    print(f"machine      : {topo}")
    print(f"policy       : {args.policy} (control: {result.plan.control_strategy})")
    print(f"processing   : {result.time:.6f} simulated s "
          f"({args.iterations} sweeps of {args.n}x{args.n})")
    print(f"locality     : {m.local_fraction:.1%} of {m.total_bytes / 1e6:.1f} MB "
          "stayed NUMA-local")
    print(f"migrations   : {m.migrations}")
    print(f"lock waiting : {m.wait_time:.3f} thread-seconds")
    if args.report and result.plan.matrix is not None:
        from repro.placement.report import render_report

        placed = result.plan.placed_mapping or result.plan.mapping
        print()
        print(render_report(placed, result.plan.matrix, topo))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
