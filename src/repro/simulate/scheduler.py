"""OS-scheduler model for unbound threads (the "NoBind" substrate).

When a thread has no affinity, the real kernel's CFS decides where it
runs — and periodically load-balances it to another core, cooling its
caches and randomizing its distance to the threads it talks to.  This
module models that with three ingredients:

* **initial placement**: least-loaded PU, ties broken randomly (a decent
  scheduler, deliberately not adversarial — the paper's NoBind numbers
  are not a strawman);
* **periodic migration**: after each ``migration_quantum`` of consumed
  CPU time, the thread is re-balanced with probability ``migration_prob``
  to the currently least-loaded PU, which is topology-blind;
* **migration cost**: a cache-refill penalty added to the thread's next
  compute burst.

All randomness comes from a seeded generator owned by the machine, so
NoBind runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validate import check_in_range, check_positive


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the OS-scheduler model.

    Defaults: a balancing decision every 10 ms of consumed CPU time
    (the magnitude of CFS load-balancing intervals); a thread migrates
    when its PU's CPU backlog exceeds the least-loaded PU's by
    ``imbalance_threshold`` (pull-style balancing), plus a small random
    migration probability modelling wakeup-placement noise; each
    migration charges a 50 µs cache-refill penalty, in line with
    measured cache-warmup costs on NUMA machines.
    """

    migration_quantum: float = 10e-3
    migration_prob: float = 0.02
    migration_penalty: float = 50e-6
    imbalance_threshold: float = 2e-3

    def __post_init__(self) -> None:
        check_positive(self.migration_quantum, "migration_quantum")
        check_in_range(self.migration_prob, 0.0, 1.0, "migration_prob")
        check_in_range(self.migration_penalty, 0.0, None, "migration_penalty")
        check_in_range(self.imbalance_threshold, 0.0, None, "imbalance_threshold")


class OsScheduler:
    """Decides placement of unbound threads on behalf of the machine."""

    def __init__(
        self,
        n_pus: int,
        config: SchedulerConfig | None = None,
        seed: SeedLike = None,
    ) -> None:
        if n_pus <= 0:
            raise ValueError(f"n_pus must be > 0, got {n_pus}")
        self.config = config or SchedulerConfig()
        self._rng = make_rng(seed)
        self._load = np.zeros(n_pus, dtype=np.int64)  # threads per PU
        #: optional observability probe ``(kind, src_pu, dst_pu)`` fired on
        #: every placement decision — ``"initial"`` / ``"pull"`` /
        #: ``"noise"`` — wired by Machine.attach_tracer.
        self.observer: Callable[[str, int, int], None] | None = None

    # -- load bookkeeping ----------------------------------------------------

    def occupy(self, pu: int) -> None:
        self._load[pu] += 1

    def vacate(self, pu: int) -> None:
        self._load[pu] -= 1
        assert self._load[pu] >= 0

    def load_of(self, pu: int) -> int:
        return int(self._load[pu])

    # -- decisions -----------------------------------------------------------

    def initial_pu(self) -> int:
        """Pick a PU for a newly started unbound thread (least loaded)."""
        lowest = int(self._load.min())
        candidates = np.flatnonzero(self._load == lowest)
        choice = int(candidates[self._rng.integers(len(candidates))])
        if self.observer is not None:
            self.observer("initial", -1, choice)
        return choice

    def pull_target(self, current_pu: int, backlog: np.ndarray) -> int | None:
        """Idle-balance pull: where a ready thread should run *now*.

        When the thread's PU is booked ``imbalance_threshold`` seconds
        beyond the least-loaded PU, return that least-loaded PU (random
        tie-break) — topology-blind, like a real kernel's idle balance.
        Returns ``None`` when the placement is fine.
        """
        # One reduction pass: the minimum feeds both the imbalance test
        # and the candidate mask (the backlog vector arrives in the
        # machine's scratch buffer, so this path allocates nothing but
        # the candidate index array).
        low = backlog.min()
        imbalance = float(backlog[current_pu] - low)
        if imbalance <= self.config.imbalance_threshold:
            return None
        candidates = np.flatnonzero(backlog == low)
        target = int(candidates[self._rng.integers(len(candidates))])
        if target == current_pu:
            return None
        if self.observer is not None:
            self.observer("pull", current_pu, target)
        return target

    def maybe_migrate(
        self, current_pu: int, backlog: np.ndarray | None = None
    ) -> int | None:
        """Return a new PU if the balancer moves the thread, else ``None``.

        Called by the machine once per consumed migration quantum.
        *backlog* is the per-PU pending-CPU-seconds vector (how far in
        the future each PU is booked); when the current PU's backlog
        exceeds the minimum by ``imbalance_threshold``, the thread is
        pulled to the least-backlogged PU — topology-blind, like the
        real balancer.  Otherwise a small random migration models
        wakeup-placement noise.
        """
        if backlog is not None:
            target = self.pull_target(current_pu, backlog)
            if target is not None:
                return target
        if self._rng.random() >= self.config.migration_prob:
            return None
        # Random noise migration toward a lightly loaded PU.
        load = self._load.copy()
        load[current_pu] -= 1
        lowest = int(load.min())
        candidates = np.flatnonzero(load == lowest)
        target = int(candidates[self._rng.integers(len(candidates))])
        if target == current_pu:
            return None
        if self.observer is not None:
            self.observer("noise", current_pu, target)
        return target
