"""Structured observability for the simulator (``repro.observe``).

Three layers over one event stream:

* :mod:`~repro.observe.tracer` — :class:`Tracer` collects one
  :class:`TraceEvent` per machine activity (compute, transfer, lock
  wait, runq wait, migration, grant, scheduler decision), each tagged
  with PU / NUMA node / sharing level; probes subscribe live.
* :mod:`~repro.observe.export` — lossless JSON-lines round-trip plus
  Chrome ``trace_event`` output for Perfetto timelines
  (``python -m repro.tools.trace`` is the CLI).
* :mod:`~repro.observe.invariants` — :class:`InvariantChecker` audits
  every run's conservation laws (time ledgers, per-level byte totals,
  monotonic clocks) across the three independent records the simulator
  keeps: aggregate counters, per-thread counters, and the trace.
* :mod:`~repro.observe.determinism` — bit-exact run fingerprints for
  same-seed regression tests.

:func:`capture` attaches tracers to every machine built inside a code
block (examples, tools, experiment sweeps) so whole workflows can be
audited without plumbing a tracer through their APIs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.observe.determinism import (
    metrics_fingerprint,
    run_fingerprint,
    stream_hash,
)
from repro.observe.export import (
    chrome_payload,
    dumps_jsonl,
    loads_jsonl,
    read_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.observe.invariants import (
    ALL_INVARIANTS,
    InvariantChecker,
    InvariantError,
    InvariantReport,
    Violation,
    check_run,
)
from repro.observe.tracer import (
    KNOWN_KINDS,
    SPAN_KINDS,
    EventFilter,
    Probe,
    TraceEvent,
    Tracer,
    TraceSummary,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulate.machine import Machine

__all__ = [
    "ALL_INVARIANTS",
    "KNOWN_KINDS",
    "SPAN_KINDS",
    "Capture",
    "EventFilter",
    "InvariantChecker",
    "InvariantError",
    "InvariantReport",
    "Probe",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "Violation",
    "capture",
    "check_run",
    "chrome_payload",
    "dumps_jsonl",
    "loads_jsonl",
    "metrics_fingerprint",
    "read_jsonl",
    "run_fingerprint",
    "stream_hash",
    "write_chrome",
    "write_jsonl",
]


class Capture:
    """Machines (and their tracers) collected by :func:`capture`."""

    def __init__(self) -> None:
        self.machines: list["Machine"] = []

    def _on_machine(self, machine: "Machine") -> None:
        if machine.tracer is None:
            machine.attach_tracer(Tracer())
        self.machines.append(machine)

    @property
    def tracers(self) -> list[Tracer]:
        return [m.tracer for m in self.machines if m.tracer is not None]

    def check_all(self, raise_on_violation: bool = True) -> list[InvariantReport]:
        """Audit every captured machine that completed a run."""
        reports = []
        for machine in self.machines:
            if not machine._started:  # built but never run — nothing to audit
                continue
            reports.append(check_run(machine, raise_on_violation=raise_on_violation))
        return reports


@contextmanager
def capture() -> Iterator[Capture]:
    """Attach a fresh :class:`Tracer` to every machine built in the block.

    ::

        with observe.capture() as cap:
            run_lk23(policy="treematch", n=1024)
        for report in cap.check_all():
            assert report.ok

    Nesting restores the previous hook on exit; machines that already
    carry a tracer keep it (and are still collected).
    """
    from repro.simulate import machine as machine_mod

    cap = Capture()
    previous = machine_mod.new_machine_hook
    machine_mod.new_machine_hook = cap._on_machine
    try:
        yield cap
    finally:
        machine_mod.new_machine_hook = previous
