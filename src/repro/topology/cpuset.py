"""CPU sets: the hwloc_bitmap equivalent.

A :class:`CpuSet` is an immutable set of processing-unit (PU) indices.
Every topology object carries the cpuset of the PUs below it, and the
binder expresses placements as cpusets, mirroring how hwloc and
``sched_setaffinity`` work on real systems.

Internally a Python ``int`` is used as the bit vector, which gives O(1)
set algebra on arbitrarily wide machines and cheap hashing/equality.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class CpuSet:
    """An immutable set of PU indices backed by an integer bitmask.

    Supports the usual set algebra (``|``, ``&``, ``-``, ``^``),
    containment, iteration in increasing index order, and the hwloc-style
    operations ``first``, ``last``, ``next_set``, ``singlify`` and
    ``weight`` (popcount).
    """

    __slots__ = ("_bits",)

    def __init__(self, indices: Iterable[int] = ()) -> None:
        bits = 0
        for i in indices:
            if i < 0:
                raise ValueError(f"PU index must be >= 0, got {i}")
            bits |= 1 << i
        self._bits = bits

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_mask(cls, bits: int) -> "CpuSet":
        """Build from a raw bitmask integer (bit *i* set means PU *i*)."""
        if bits < 0:
            raise ValueError("bitmask must be non-negative")
        cs = cls.__new__(cls)
        cs._bits = bits
        return cs

    @classmethod
    def from_range(cls, start: int, stop: int) -> "CpuSet":
        """Build the contiguous set ``{start, ..., stop - 1}``."""
        if start < 0 or stop < start:
            raise ValueError(f"invalid range [{start}, {stop})")
        return cls.from_mask(((1 << (stop - start)) - 1) << start)

    @classmethod
    def singleton(cls, index: int) -> "CpuSet":
        """Build the one-element set ``{index}``."""
        if index < 0:
            raise ValueError(f"PU index must be >= 0, got {index}")
        return cls.from_mask(1 << index)

    @classmethod
    def parse(cls, text: str) -> "CpuSet":
        """Parse a cpuset list string like ``"0-3,8,10-11"``.

        The inverse of :meth:`to_list_string`.  Whitespace is ignored and
        an empty string parses to the empty set.
        """
        bits = 0
        text = text.strip()
        if not text:
            return cls.from_mask(0)
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "-" in part:
                lo_s, hi_s = part.split("-", 1)
                lo, hi = int(lo_s), int(hi_s)
                if hi < lo:
                    raise ValueError(f"descending range {part!r}")
                bits |= ((1 << (hi - lo + 1)) - 1) << lo
            else:
                bits |= 1 << int(part)
        return cls.from_mask(bits)

    # -- queries -----------------------------------------------------------

    @property
    def mask(self) -> int:
        """The raw bitmask integer."""
        return self._bits

    def weight(self) -> int:
        """Number of PUs in the set (popcount)."""
        return self._bits.bit_count()

    def is_empty(self) -> bool:
        return self._bits == 0

    def first(self) -> int:
        """Lowest set index; raises :class:`ValueError` on the empty set."""
        if self._bits == 0:
            raise ValueError("first() on empty CpuSet")
        return (self._bits & -self._bits).bit_length() - 1

    def last(self) -> int:
        """Highest set index; raises :class:`ValueError` on the empty set."""
        if self._bits == 0:
            raise ValueError("last() on empty CpuSet")
        return self._bits.bit_length() - 1

    def next_set(self, prev: int) -> Optional[int]:
        """Lowest set index strictly greater than *prev*, or ``None``."""
        rest = self._bits >> (prev + 1) << (prev + 1) if prev >= 0 else self._bits
        if rest == 0:
            return None
        return (rest & -rest).bit_length() - 1

    def singlify(self) -> "CpuSet":
        """Reduce to the singleton of the lowest index (hwloc semantics).

        The empty set singlifies to itself.
        """
        if self._bits == 0:
            return self
        return CpuSet.from_mask(self._bits & -self._bits)

    def isdisjoint(self, other: "CpuSet") -> bool:
        return (self._bits & other._bits) == 0

    def issubset(self, other: "CpuSet") -> bool:
        return (self._bits & ~other._bits) == 0

    def issuperset(self, other: "CpuSet") -> bool:
        return other.issubset(self)

    # -- set algebra ---------------------------------------------------------

    def __or__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_mask(self._bits | other._bits)

    def __and__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_mask(self._bits & other._bits)

    def __sub__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_mask(self._bits & ~other._bits)

    def __xor__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_mask(self._bits ^ other._bits)

    # -- protocol ----------------------------------------------------------

    def __contains__(self, index: int) -> bool:
        return index >= 0 and bool((self._bits >> index) & 1)

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self.weight()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CpuSet):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(("CpuSet", self._bits))

    # -- formatting ----------------------------------------------------------

    def to_list_string(self) -> str:
        """Render as a compact list string like ``"0-3,8,10-11"``."""
        runs: list[str] = []
        it = iter(self)
        try:
            start = prev = next(it)
        except StopIteration:
            return ""
        for i in it:
            if i == prev + 1:
                prev = i
                continue
            runs.append(str(start) if start == prev else f"{start}-{prev}")
            start = prev = i
        runs.append(str(start) if start == prev else f"{start}-{prev}")
        return ",".join(runs)

    def to_hex(self) -> str:
        """Render as hwloc-style hex, e.g. ``"0x0000000f"``."""
        return f"0x{self._bits:08x}"

    def __repr__(self) -> str:
        return f"CpuSet({self.to_list_string()!r})"


#: The empty cpuset, shared.
EMPTY = CpuSet.from_mask(0)
