"""Shared utilities: validation helpers, deterministic RNG, simple logging.

Everything in :mod:`repro` that needs randomness takes an explicit seed or
:class:`numpy.random.Generator`; :func:`make_rng` is the single place that
turns "seed-ish" values into a generator so experiments are reproducible.
"""

from repro.util.rng import make_rng, SeedLike
from repro.util.validate import (
    check_square_matrix,
    check_symmetric,
    check_nonnegative,
    check_positive,
    check_in_range,
    ValidationError,
)
from repro.util.log import get_logger

__all__ = [
    "make_rng",
    "SeedLike",
    "check_square_matrix",
    "check_symmetric",
    "check_nonnegative",
    "check_positive",
    "check_in_range",
    "ValidationError",
    "get_logger",
]
