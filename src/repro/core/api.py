"""The one-call public API.

Everything the library does can be driven through the subpackages, but
the common case — "run LK23 on machine X under placement policy Y and
tell me the processing time" — is one function here.  The examples and
most benchmarks go through this façade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

from repro.comm.patterns import square_grid_shape
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import BindPlan, bind_program
from repro.simulate.machine import Machine
from repro.simulate.metrics import MachineMetrics
from repro.topology import presets
from repro.topology.tree import Topology
from repro.util.validate import ValidationError


@dataclass
class ExperimentConfig:
    """One LK23-on-a-machine experiment.

    Attributes
    ----------
    topology:
        A :class:`Topology` instance or a preset name from
        :data:`repro.topology.presets.PRESETS` (default: the paper's
        24×8 SMP).
    policy:
        Placement policy registry name (``"treematch"``, ``"nobind"``,
        ``"compact"``, ``"scatter"``, ``"round-robin"``, ``"random"``).
    n, iterations:
        Matrix size and sweep count (paper: 16384, 100).
    tasks:
        Number of ORWL tasks/blocks; ``None`` = one per core.
    granularity:
        Mapping granularity, ``"task"`` (paper mode) or ``"op"``.
    seed:
        Simulation seed (scheduler noise, jitter).
    engine_mode:
        Discrete-event engine variant, ``"batched"`` (cohort dispatch,
        the default) or ``"scalar"`` (the bit-identical reference);
        ``None`` defers to :data:`repro.simulate.DEFAULT_ENGINE_MODE`.
    trace:
        Attach a :class:`repro.observe.Tracer` to the machine; the
        structured event stream lands in :attr:`ExperimentResult.trace`
        (exportable, hashable, invariant-checkable).
    """

    topology: Topology | str = "paper-smp"
    policy: str = "treematch"
    n: int = 16384
    iterations: int = 5
    tasks: Optional[int] = None
    granularity: str = "task"
    seed: int = 0
    engine_mode: Optional[str] = None
    trace: bool = False

    def resolve_topology(self) -> Topology:
        if isinstance(self.topology, Topology):
            return self.topology
        return presets.by_name(self.topology)


@dataclass
class ExperimentResult:
    """What :func:`run_lk23` returns."""

    #: simulated processing time in seconds (the figure's y-axis).
    time: float
    #: machine counters (bytes per level, migrations, waits ...).
    metrics: MachineMetrics
    #: the placement decision that was applied.
    plan: BindPlan
    #: the configuration that produced this result.
    config: ExperimentConfig
    #: structured event stream (None unless ``config.trace``).
    trace: Optional["Tracer"] = None

    def summary(self) -> dict[str, float]:
        out = {"time": self.time}
        out.update(self.metrics.summary())
        return out


def run_lk23(config: ExperimentConfig | None = None, **overrides) -> ExperimentResult:
    """Run one LK23 experiment end to end.

    Accepts a prepared :class:`ExperimentConfig` or keyword overrides
    for its fields::

        result = run_lk23(policy="nobind", iterations=3, topology="small-numa")
        print(result.time)
    """
    if config is None:
        config = ExperimentConfig(**overrides)
    elif overrides:
        raise ValidationError("give either a config object or keyword overrides, not both")

    topo = config.resolve_topology()
    n_tasks = config.tasks if config.tasks is not None else topo.nb_pus
    rows, cols = square_grid_shape(n_tasks)
    kcfg = Lk23Config(
        n=config.n, grid_rows=rows, grid_cols=cols, iterations=config.iterations
    )
    program = build_program(kcfg)
    plan = bind_program(
        program, topo, policy=config.policy, granularity=config.granularity
    )
    tracer = None
    if config.trace:
        from repro.observe.tracer import Tracer

        tracer = Tracer()
    machine = Machine(
        topo, seed=config.seed, tracer=tracer, engine_mode=config.engine_mode
    )
    runtime = Runtime(
        program, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    )
    run = runtime.run()
    return ExperimentResult(
        time=run.time, metrics=run.metrics, plan=plan, config=config, trace=run.trace
    )


def compare_policies(
    policies: tuple[str, ...] = ("treematch", "compact", "scatter", "nobind"),
    **config_kwargs,
) -> dict[str, ExperimentResult]:
    """Run the same experiment under several policies.

    Returns ``{policy: result}``; all runs share topology, workload and
    seed so the only variable is placement.
    """
    out: dict[str, ExperimentResult] = {}
    for policy in policies:
        cfg = ExperimentConfig(policy=policy, **config_kwargs)
        out[policy] = run_lk23(cfg)
    return out
