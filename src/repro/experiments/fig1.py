"""Figure 1 reproduction: LK23 processing time, three implementations.

The paper's only figure compares the processing time of three LK23
implementations on the 24-socket × 8-core SMP as the run scales: ORWL
with the topology-aware binding (ORWL-Bind), ORWL left to the OS
scheduler (ORWL-NoBind), and the fork-join OpenMP port.  The text
reports, at the best configuration: ~11 s for ORWL-Bind, a ≈5× speedup
over OpenMP, and ≈2.8× over ORWL-NoBind.

:func:`run_fig1` sweeps core counts (whole sockets at a time, like the
paper's machine partitioning) and runs all three implementations per
point on the simulated machine.  One task per core for ORWL (the
paper's configuration: 192 blocks on 192 cores), one worker per core
for OpenMP.

The result object renders the figure's data as a text table and checks
the three scalar claims as factor bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.comm.patterns import square_grid_shape
from repro.exec.cache import machine_inputs
from repro.exec.runner import SweepRunner, Task
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.kernels.openmp import OpenMpConfig, run_openmp_lk23
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.util.validate import ValidationError

#: The implementations of the figure, in its legend order.
IMPLEMENTATIONS = ("orwl-bind", "orwl-nobind", "openmp")


@dataclass
class Fig1Point:
    """One (implementation, core count) measurement."""

    implementation: str
    n_cores: int
    time: float
    local_fraction: float
    migrations: int
    remote_bytes: float
    #: sha-256 determinism fingerprint of the traced run (empty unless
    #: the point was run with ``fingerprint=True``); lets serial and
    #: parallel sweeps be compared bit-exactly, see tests/test_exec.py.
    fingerprint: str = ""


@dataclass
class Fig1Result:
    """All points of the sweep plus the paper-claim checks."""

    points: list[Fig1Point] = field(default_factory=list)
    iterations: int = 0
    n: int = 0

    def time_of(self, implementation: str, n_cores: int) -> float:
        try:
            return self._index()[implementation, n_cores]
        except KeyError:
            raise KeyError(f"no point ({implementation}, {n_cores})") from None

    def _index(self) -> dict[tuple[str, int], float]:
        """``(implementation, n_cores) -> time``, built once per points size.

        ``points`` is a public list that callers append to, so the index
        is rebuilt whenever the length changes; like the linear scan it
        replaces, the *first* point wins on duplicates.  Rendering a
        table calls :meth:`time_of` per cell, which made the old scan
        quadratic in sweep size.
        """
        cached = self.__dict__.get("_time_index")
        if cached is None or self.__dict__.get("_time_index_len") != len(self.points):
            cached = {}
            for p in self.points:
                cached.setdefault((p.implementation, p.n_cores), p.time)
            self.__dict__["_time_index"] = cached
            self.__dict__["_time_index_len"] = len(self.points)
        return cached

    def series(self, implementation: str) -> list[tuple[int, float]]:
        """(cores, time) pairs of one curve, sorted by cores."""
        pts = [
            (p.n_cores, p.time)
            for p in self.points
            if p.implementation == implementation
        ]
        return sorted(pts)

    def core_counts(self) -> list[int]:
        return sorted({p.n_cores for p in self.points})

    def best_time(self, implementation: str) -> tuple[int, float]:
        """(cores, time) of the implementation's fastest point."""
        series = self.series(implementation)
        if not series:
            raise KeyError(f"no points for {implementation}")
        return min(series, key=lambda cv: cv[1])

    # -- the paper's scalar claims ----------------------------------------

    def speedup_vs_openmp(self) -> float:
        """Best-point speedup of ORWL-Bind over OpenMP (paper: ≈5)."""
        return self.best_time("openmp")[1] / self.best_time("orwl-bind")[1]

    def speedup_vs_nobind(self) -> float:
        """Best-point speedup of ORWL-Bind over ORWL-NoBind (paper: ≈2.8)."""
        return self.best_time("orwl-nobind")[1] / self.best_time("orwl-bind")[1]

    def speedup_curve(self, implementation: str) -> list[tuple[int, float]]:
        """(cores, speedup-vs-smallest-point) for one implementation."""
        series = self.series(implementation)
        if not series:
            return []
        base_cores, base_time = series[0]
        return [(c, base_time / t) for c, t in series]

    def efficiency(self, implementation: str, n_cores: int) -> float:
        """Strong-scaling efficiency at *n_cores*: speedup / ideal.

        Ideal speedup from the smallest measured core count is
        ``n_cores / smallest``; 1.0 = perfect scaling.
        """
        series = self.series(implementation)
        if not series:
            raise KeyError(f"no points for {implementation}")
        base_cores, base_time = series[0]
        t = self.time_of(implementation, n_cores)
        return (base_time / t) / (n_cores / base_cores)

    def openmp_scaling_stalls_after(self) -> Optional[int]:
        """Core count beyond which adding cores stops helping OpenMP.

        The paper's claim C4: "as soon as we scale beyond one or two
        sockets, standard approaches ... fail [to] improve performance."
        Returns the last core count at which OpenMP still improved by
        more than 5 %, or ``None`` if it never stalls within the sweep.
        """
        series = self.series("openmp")
        for (c0, t0), (_, t1) in zip(series, series[1:]):
            if t1 > t0 * 0.95:
                return c0
        return None

    def table(self, show_efficiency: bool = False) -> str:
        """The figure's data as an aligned text table.

        With *show_efficiency*, each cell also shows the strong-scaling
        efficiency relative to the smallest core count.
        """
        cores = self.core_counts()
        header = f"{'cores':>6} | " + " | ".join(f"{impl:>12}" for impl in IMPLEMENTATIONS)
        lines = [header, "-" * len(header)]
        for c in cores:
            cells = []
            for impl in IMPLEMENTATIONS:
                try:
                    cell = f"{self.time_of(impl, c):12.4f}"
                    if show_efficiency:
                        cell = f"{self.time_of(impl, c):8.4f}({self.efficiency(impl, c):4.0%})"
                except KeyError:
                    cell = f"{'-':>12}"
                cells.append(cell)
            lines.append(f"{c:>6} | " + " | ".join(cells))
        # Summary lines need all three implementations to be present.
        have = {p.implementation for p in self.points}
        if set(IMPLEMENTATIONS) <= have:
            lines.append("")
            lines.append(
                f"best ORWL-Bind: {self.best_time('orwl-bind')[1]:.4f}s "
                f"at {self.best_time('orwl-bind')[0]} cores"
            )
            lines.append(
                f"speedup vs OpenMP: {self.speedup_vs_openmp():.2f}x (paper ~5)"
            )
            lines.append(
                f"speedup vs ORWL-NoBind: {self.speedup_vs_nobind():.2f}x (paper ~2.8)"
            )
            stall = self.openmp_scaling_stalls_after()
            lines.append(
                "OpenMP stops scaling after "
                + (f"{stall} cores" if stall is not None else "the sweep (never stalled)")
            )
        return "\n".join(lines)


def run_point(
    implementation: str,
    n_cores: int,
    iterations: int = 5,
    n: int = 16384,
    cores_per_socket: int = 8,
    seed: int = 0,
    fingerprint: bool = False,
) -> Fig1Point:
    """Run one implementation at one core count; returns the point.

    With *fingerprint*, the run is traced and the point carries its
    :func:`repro.observe.determinism.run_fingerprint` — the cheap way to
    assert two sweeps (e.g. serial vs parallel) did bit-identical work.
    """
    if implementation not in IMPLEMENTATIONS:
        raise ValidationError(
            f"unknown implementation {implementation!r}; one of {IMPLEMENTATIONS}"
        )
    if n_cores % cores_per_socket != 0:
        raise ValidationError(
            f"core count {n_cores} must be whole sockets of {cores_per_socket}"
        )
    # Topology and distance model come from the per-process cache: every
    # point at the same core count (and every worker process re-running
    # the preset) shares one immutable instance instead of re-deriving
    # the O(P²) distance table.
    topo, dm = machine_inputs(
        "paper-smp", n_cores // cores_per_socket, cores_per_socket
    )
    tracer = None
    if fingerprint:
        from repro.observe.tracer import Tracer

        tracer = Tracer()
    machine = Machine(topo, distance_model=dm, seed=seed, tracer=tracer)

    if implementation == "openmp":
        result = run_openmp_lk23(
            machine, OpenMpConfig(n=n, n_threads=n_cores, iterations=iterations)
        )
        metrics = result.metrics
        time = result.time
    else:
        rows, cols = square_grid_shape(n_cores)
        cfg = Lk23Config(n=n, grid_rows=rows, grid_cols=cols, iterations=iterations)
        prog = build_program(cfg)
        policy = "treematch" if implementation == "orwl-bind" else "nobind"
        plan = bind_program(prog, topo, policy=policy)
        runtime = Runtime(
            prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
        )
        run = runtime.run()
        metrics = run.metrics
        time = run.time

    fp = ""
    if fingerprint:
        from repro.observe.determinism import run_fingerprint

        fp = run_fingerprint(machine)

    return Fig1Point(
        implementation=implementation,
        n_cores=n_cores,
        time=time,
        local_fraction=metrics.local_fraction,
        migrations=metrics.migrations,
        remote_bytes=metrics.remote_bytes,
        fingerprint=fp,
    )


def run_fig1(
    core_counts: Sequence[int] = (8, 16, 32, 64, 96, 192),
    iterations: int = 5,
    n: int = 16384,
    implementations: Sequence[str] = IMPLEMENTATIONS,
    seed: int = 0,
    n_workers: int = 1,
    fingerprint: bool = False,
    runner: Optional[SweepRunner] = None,
) -> Fig1Result:
    """The full Figure-1 sweep.

    *iterations* defaults to 5 rather than the paper's 100: the
    simulated per-sweep time is steady after the first round, so the
    curve shape is iteration-count-invariant while the harness stays
    fast.  Scale it up to match the paper's absolute workload.

    Every point is an independent seeded simulation, so the sweep fans
    out over a :class:`repro.exec.SweepRunner` — *n_workers* ``1`` is the
    in-process reference path, ``0`` uses all host cores; results are in
    the same (core count, implementation) order either way and
    bit-identical across worker counts.  Pass a pre-configured *runner*
    (progress callbacks, crash policy) to override *n_workers*.
    """
    result = Fig1Result(iterations=iterations, n=n)
    tasks = [
        Task(
            run_point,
            dict(
                implementation=impl,
                n_cores=c,
                iterations=iterations,
                n=n,
                seed=seed,
                fingerprint=fingerprint,
            ),
            label=f"{impl}@{c}",
        )
        for c in core_counts
        for impl in implementations
    ]
    if runner is None:
        runner = SweepRunner(n_workers=n_workers)
    result.points.extend(runner.map(tasks))
    return result
