"""Cross-module property-based tests (hypothesis).

These pin the global invariants of the pipeline: any affinity matrix on
any balanced topology yields a valid mapping; simulations are
deterministic under a fixed seed; the ORWL round protocol neither
deadlocks nor loses requests for arbitrary small stencil programs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.topology.builder import from_spec
from repro.treematch.algorithm import tree_match

# Small balanced topology specs that keep runs fast.
topo_specs = st.sampled_from(
    [
        "numa:2 package:1 l3:1 core:2 pu:1",
        "numa:2 package:1 l3:1 core:4 pu:1",
        "numa:4 package:1 l3:1 core:2 pu:1",
        "numa:2 package:1 l3:1 core:2 pu:2",
        "core:8 pu:1",
    ]
)


@st.composite
def random_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    m = rng.random((n, n)) * 100
    m = m + m.T
    np.fill_diagonal(m, 0.0)
    return CommMatrix(m)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=topo_specs, matrix=random_matrices())
def test_treematch_always_yields_valid_mapping(spec, matrix):
    topo = from_spec(spec)
    result = tree_match(topo, matrix)
    mapping = result.mapping
    assert mapping.n_threads == matrix.order
    mapping.validate_against(topo)
    assert mapping.bound_fraction() == 1.0
    # Load never exceeds the oversubscription factor.
    import math

    factor = math.ceil(matrix.order / topo.nb_pus)
    assert mapping.max_load() <= factor


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.integers(min_value=1, max_value=3),
    cols=st.integers(min_value=2, max_value=3),
    iterations=st.integers(min_value=1, max_value=3),
    policy=st.sampled_from(["treematch", "compact", "nobind"]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_lk23_never_deadlocks(rows, cols, iterations, policy, seed):
    """Any small LK23 decomposition completes under any placement."""
    topo = from_spec("numa:2 package:1 l3:1 core:4 pu:1")
    cfg = Lk23Config(n=128, grid_rows=rows, grid_cols=cols, iterations=iterations)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy=policy)
    machine = Machine(topo, seed=seed)
    rt = Runtime(prog, machine, mapping=plan.mapping,
                 control_mapping=plan.control_mapping)
    result = rt.run()
    assert result.time > 0
    # Clean teardown: all FIFOs drained.
    for loc in prog.locations.values():
        assert len(loc.fifo) == 0


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000))
def test_simulation_deterministic_under_seed(seed):
    """Identical configuration + seed => identical simulated time."""

    def run_once():
        topo = from_spec("numa:2 package:1 l3:1 core:4 pu:1")
        cfg = Lk23Config(n=256, grid_rows=2, grid_cols=2, iterations=2)
        prog = build_program(cfg)
        plan = bind_program(prog, topo, policy="nobind")
        machine = Machine(topo, seed=seed)
        rt = Runtime(prog, machine, mapping=plan.mapping,
                     control_mapping=plan.control_mapping)
        return rt.run().time

    assert run_once() == run_once()


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
)
def test_stencil_matrix_matches_grid_structure(rows, cols):
    """Every stencil matrix entry corresponds to a geometric adjacency."""
    m = patterns.stencil_2d(rows, cols, edge_volume=10.0)
    vals = m.values
    for i in range(m.order):
        ri, ci = divmod(i, cols)
        for j in range(m.order):
            if i == j:
                continue
            rj, cj = divmod(j, cols)
            adjacent = max(abs(ri - rj), abs(ci - cj)) == 1
            assert (vals[i, j] > 0) == adjacent


@settings(max_examples=20, deadline=None)
@given(matrix=random_matrices(), extra=st.integers(min_value=0, max_value=4))
def test_matrix_extension_preserves_volumes(matrix, extra):
    ext = matrix.extended(extra)
    assert ext.order == matrix.order + extra
    assert ext.total_volume() == pytest.approx(matrix.total_volume())


@settings(max_examples=20, deadline=None)
@given(matrix=random_matrices())
def test_aggregation_conserves_cross_volume(matrix):
    """Aggregating into pairs keeps exactly the inter-group volume."""
    n = matrix.order
    if n % 2 == 1:
        matrix = matrix.extended(1)
        n += 1
    groups = [[2 * k, 2 * k + 1] for k in range(n // 2)]
    agg = matrix.aggregated(groups)
    intra = sum(matrix.volume(g[0], g[1]) for g in groups)
    assert agg.total_volume() == pytest.approx(matrix.total_volume() - intra)
