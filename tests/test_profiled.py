"""Tests for the profile-then-bind workflow."""

import pytest

from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl import Runtime, RuntimeConfig
from repro.placement import profile_and_bind
from repro.simulate.machine import Machine
from repro.util.validate import ValidationError


def factory():
    return build_program(Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=2))


class TestProfileAndBind:
    def test_produces_runnable_plan(self, small_topo):
        result = profile_and_bind(factory, small_topo, seed=1)
        # Fresh program, bound plan, non-empty traced matrix.
        assert result.matrix.total_volume() > 0
        machine = Machine(small_topo, seed=1)
        run = Runtime(
            result.program,
            machine,
            mapping=result.plan.mapping,
            control_mapping=result.plan.control_mapping,
        ).run()
        assert run.time > 0

    def test_bound_run_not_slower_than_profile(self, paper_topo_small):
        def big_factory():
            return build_program(
                Lk23Config(n=4096, grid_rows=4, grid_cols=8, iterations=3)
            )

        result = profile_and_bind(big_factory, paper_topo_small, seed=2)
        machine = Machine(paper_topo_small, seed=2)
        bound = Runtime(
            result.program,
            machine,
            mapping=result.plan.mapping,
            control_mapping=result.plan.control_mapping,
        ).run()
        # The profiled (unbound) run is the baseline the workflow improves.
        assert bound.time < result.profile_run.time

    def test_trace_disabled_rejected(self, small_topo):
        with pytest.raises(ValidationError):
            profile_and_bind(
                factory, small_topo, runtime_config=RuntimeConfig(trace=False)
            )

    def test_nondeterministic_factory_rejected(self, small_topo):
        programs = [
            build_program(Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=2)),
            build_program(Lk23Config(n=512, grid_rows=1, grid_cols=2, iterations=2)),
        ]

        def bad_factory():
            return programs.pop(0)

        with pytest.raises(ValidationError, match="not deterministic"):
            profile_and_bind(bad_factory, small_topo)
