"""The three DAG workload families + golden pinned schedules.

The golden fingerprints pin byte-exact behaviour of the whole stack —
graph construction, dependency inference, ORWL lowering, placement,
and the simulated execution — for one small tiled-Cholesky and one BFS
instance.  Serial, parallel-engine-mode, and warm-cache runs must all
reproduce them (the differential suite broadens this to random DAGs).

If a deliberate model change moves them, regenerate with::

    PYTHONPATH=src python - <<'E'
    from repro.kernels.cholesky import CholeskyConfig, build_cholesky_graph
    from repro.kernels.bfs import BfsConfig, build_bfs_graph
    from repro.tasks import run_graph
    for g in (build_cholesky_graph(CholeskyConfig(blocks=3, tile=64)),
              build_bfs_graph(BfsConfig(n_vertices=64, extra_degree=2.0,
                                        parts=4, graph_seed=11))):
        r = run_graph(g, preset="paper-smp", preset_args=(2, 8),
                      policy="treematch", seed=0, trace=True)
        print(g.name, g.digest(), r.fingerprint())
    E
"""

import pytest

from repro.kernels.bfs import (
    BfsConfig,
    bfs_levels,
    build_bfs_graph,
    generate_graph,
    partition_of,
)
from repro.kernels.cholesky import CholeskyConfig, build_cholesky_graph
from repro.kernels.divconq import DivConqConfig, build_divconq_graph
from repro.tasks import run_graph, topological_check
from repro.util.validate import ValidationError

GOLDEN_CHOLESKY = CholeskyConfig(blocks=3, tile=64)
GOLDEN_BFS = BfsConfig(n_vertices=64, extra_degree=2.0, parts=4, graph_seed=11)

#: (graph digest, run fingerprint) on paper-smp(2, 8), treematch, seed 0.
GOLDEN = {
    "cholesky": (
        "d8e1f946a95ce3988d6c86e7bbd85b61643ccdadf1b1d9649a173007dadb7679",
        "e73f9918cf4aa5bf8093bde6626180d9d226abb5a9a23932b045b255bee5fece",
    ),
    "bfs": (
        "2edb94247dbe8bd9a04bf50b882d01894849b6a4691889dc46e158c7a67838bc",
        "7b8e7c3738ab5d34808a63bd0e68f91e2d0cec7e87f2ede5e6893a95d96cb2be",
    ),
}


def golden_graph(family: str):
    if family == "cholesky":
        return build_cholesky_graph(GOLDEN_CHOLESKY)
    return build_bfs_graph(GOLDEN_BFS)


class TestCholeskyFamily:
    def test_task_count_formula(self):
        for b in (1, 2, 3, 4, 6):
            cfg = CholeskyConfig(blocks=b, tile=8)
            assert build_cholesky_graph(cfg).n_tasks == cfg.n_tasks

    def test_single_sink_is_last_potrf(self):
        g = build_cholesky_graph(CholeskyConfig(blocks=4, tile=8))
        sinks = g.sinks()
        assert [g.tasks()[i].name for i in sinks] == ["POTRF[3]"]

    def test_critical_path_walks_the_diagonal(self):
        g = build_cholesky_graph(CholeskyConfig(blocks=3, tile=8))
        _, path = g.critical_path()
        assert path[0] == "POTRF[0]"
        assert path[-1] == "POTRF[2]"
        # the span interleaves POTRF / TRSM / SYRK down the diagonal
        assert any(name.startswith("TRSM") for name in path)

    def test_dependencies_respected_in_simulation(self, small_topo):
        g = build_cholesky_graph(CholeskyConfig(blocks=3, tile=32))
        res = run_graph(g, topo=small_topo, record_times=True)
        assert res.schedule_ok(g)
        assert topological_check(res.times.completion_order(), g) is None


class TestBfsFamily:
    def test_generated_graph_is_connected_and_deterministic(self):
        cfg = BfsConfig(n_vertices=128, graph_seed=5)
        adj = generate_graph(cfg)
        levels = bfs_levels(adj)  # raises if disconnected
        assert len(levels) == 128 and levels[0] == 0
        assert generate_graph(cfg) == adj
        assert generate_graph(BfsConfig(n_vertices=128, graph_seed=6)) != adj

    def test_partitioning_covers_all_vertices(self):
        assert partition_of(0, 100, 8) == 0
        assert partition_of(99, 100, 8) == 7
        parts = {partition_of(v, 100, 8) for v in range(100)}
        assert parts == set(range(8))

    def test_task_per_nonempty_level_partition(self):
        cfg = BfsConfig(n_vertices=64, parts=4, graph_seed=3)
        adj = generate_graph(cfg)
        level = bfs_levels(adj)
        nonempty = {
            (level[v], partition_of(v, 64, 4)) for v in range(64)
        }
        g = build_bfs_graph(cfg)
        assert g.n_tasks == len(nonempty)
        names = {t.name for t in g.tasks()}
        assert names == {f"BFS[{lv},{p}]" for lv, p in nonempty}

    def test_reads_come_from_previous_level_only(self):
        g = build_bfs_graph(BfsConfig(n_vertices=64, parts=4, graph_seed=3))
        for node in g.tasks():
            lv = int(node.name.split("[")[1].split(",")[0])
            for region in node.reads:
                assert region.name.startswith(f"F[{lv - 1}]")

    def test_more_partitions_than_vertices_rejected(self):
        with pytest.raises(ValidationError):
            BfsConfig(n_vertices=4, parts=8)

    def test_dependencies_respected_in_simulation(self, small_topo):
        g = build_bfs_graph(BfsConfig(n_vertices=64, parts=4, graph_seed=3))
        res = run_graph(g, topo=small_topo, record_times=True)
        assert res.schedule_ok(g)


class TestDivConqFamily:
    def test_task_count_formula(self):
        for depth in (1, 2, 3, 5):
            cfg = DivConqConfig(depth=depth)
            assert build_divconq_graph(cfg).n_tasks == cfg.n_tasks

    def test_skew_produces_imbalance(self):
        even = build_divconq_graph(DivConqConfig(depth=4, skew=0.0))
        skewed = build_divconq_graph(DivConqConfig(depth=4, skew=0.9))
        leaf_flops = lambda g: [
            t.flops for t in g.tasks() if t.name.startswith("LEAF")
        ]
        even_f, skew_f = leaf_flops(even), leaf_flops(skewed)
        assert max(even_f) / min(even_f) < 1.01
        assert max(skew_f) / min(skew_f) > 2.0

    def test_bytes_conserved_down_the_tree(self):
        cfg = DivConqConfig(depth=3, root_bytes=1 << 20, skew=0.4)
        g = build_divconq_graph(cfg)
        # each split's two child inputs partition its span
        for t in g.tasks():
            if not t.name.startswith("SPLIT"):
                continue
            out = sum(r.nbytes for r in t.writes)
            assert out == pytest.approx(
                t.flops / 1.0  # SPLIT_FLOPS_PER_BYTE == 1.0
            )

    def test_single_sink_is_root_merge(self):
        g = build_divconq_graph(DivConqConfig(depth=3))
        sinks = g.sinks()
        assert [g.tasks()[i].name for i in sinks] == ["MERGE[0,0]"]

    def test_dependencies_respected_in_simulation(self, small_topo):
        g = build_divconq_graph(DivConqConfig(depth=3))
        res = run_graph(g, topo=small_topo, record_times=True)
        assert res.schedule_ok(g)


class TestGoldenSchedules:
    @pytest.mark.parametrize("family", sorted(GOLDEN))
    def test_digest_pinned(self, family):
        digest, _ = GOLDEN[family]
        assert golden_graph(family).digest() == digest, (
            f"{family} DAG structure changed; if deliberate, regenerate "
            "the golden constants (see module docstring)"
        )

    @pytest.mark.parametrize("family", sorted(GOLDEN))
    @pytest.mark.parametrize("engine_mode", ["batched", "scalar"])
    def test_fingerprint_pinned_across_engines(self, family, engine_mode):
        _, fp = GOLDEN[family]
        res = run_graph(
            golden_graph(family),
            preset="paper-smp",
            preset_args=(2, 8),
            policy="treematch",
            seed=0,
            trace=True,
            engine_mode=engine_mode,
        )
        assert res.fingerprint() == fp, (
            f"{family} golden schedule moved under the {engine_mode} "
            "engine; serial == parallel == cached is the contract"
        )

    @pytest.mark.parametrize("family", sorted(GOLDEN))
    def test_fingerprint_stable_across_repeat_runs(self, family):
        _, fp = GOLDEN[family]
        for _ in range(2):
            res = run_graph(
                golden_graph(family),
                preset="paper-smp",
                preset_args=(2, 8),
                policy="treematch",
                seed=0,
                trace=True,
            )
            assert res.fingerprint() == fp
