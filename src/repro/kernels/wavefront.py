"""Wavefront (pipelined) computation over a block grid.

A different dependence structure from LK23's halo exchange: block
(r, c) at sweep *k* needs the *same-sweep* results of its West and
North neighbours — the pattern of Gauss–Seidel relaxations, dynamic
programming tables (Smith–Waterman), and triangular solves.  Execution
is an advancing diagonal: the pipeline fills over ``rows + cols - 1``
stages and then streams.

ORWL expresses this naturally with the same location machinery as the
stencil, but with *no* initial frontier publication: the wavefront's
serialization is intrinsic.  Block (0, 0) starts immediately; everyone
else's first read request waits for a producer that computes first.

Makes a good third workload because placement acts on the *latency* of
the neighbour hand-off (the pipeline's beat), not on bulk bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.orwl.fifo import AccessMode
from repro.orwl.program import Program
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class WavefrontConfig:
    """A rows × cols wavefront of *iterations* sweeps.

    ``cell_flops`` is the work per block per sweep; ``frontier_bytes``
    the payload handed to each downstream neighbour.
    """

    rows: int = 8
    cols: int = 8
    iterations: int = 4
    cell_flops: float = 2e6
    frontier_bytes: float = 64 * 1024

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValidationError("rows and cols must be > 0")
        if self.iterations <= 0:
            raise ValidationError("iterations must be > 0")
        if self.cell_flops <= 0:
            raise ValidationError("cell_flops must be > 0")
        if self.frontier_bytes < 0:
            raise ValidationError("frontier_bytes must be >= 0")

    @property
    def n_blocks(self) -> int:
        return self.rows * self.cols

    @property
    def pipeline_depth(self) -> int:
        """Diagonal count: sweeps before the last block starts its first."""
        return self.rows + self.cols - 1


def build_wavefront_program(cfg: WavefrontConfig) -> Program:
    """Construct the ORWL wavefront program.

    Per block: one ``main`` operation; locations ``b{r}.{c}/south`` and
    ``b{r}.{c}/east`` carry the downstream hand-offs (only where a
    downstream neighbour exists).
    """
    prog = Program(f"wavefront-{cfg.rows}x{cfg.cols}")

    for r in range(cfg.rows):
        for c in range(cfg.cols):
            tname = f"b{r}.{c}"
            if r + 1 < cfg.rows:
                prog.location(f"{tname}/south", cfg.frontier_bytes, owner_task=tname)
            if c + 1 < cfg.cols:
                prog.location(f"{tname}/east", cfg.frontier_bytes, owner_task=tname)

    for r in range(cfg.rows):
        for c in range(cfg.cols):
            tname = f"b{r}.{c}"
            op = prog.task(tname).operation("main", body=None)
            read_handles = []
            if r > 0:
                read_handles.append(
                    op.handle(prog.locations[f"b{r-1}.{c}/south"], AccessMode.READ)
                )
            if c > 0:
                read_handles.append(
                    op.handle(prog.locations[f"b{r}.{c-1}/east"], AccessMode.READ)
                )
            write_handles = []
            if r + 1 < cfg.rows:
                write_handles.append(
                    op.handle(prog.locations[f"{tname}/south"], AccessMode.WRITE)
                )
            if c + 1 < cfg.cols:
                write_handles.append(
                    op.handle(prog.locations[f"{tname}/east"], AccessMode.WRITE)
                )
            # Producers' write requests must precede their consumers'
            # read requests; declaration order (row-major) already
            # guarantees it, the phases make it explicit.
            for h in write_handles:
                h.init_phase = 0
            for h in read_handles:
                h.init_phase = 1

            def body(ctx, reads=tuple(read_handles), writes=tuple(write_handles)):
                for _ in range(cfg.iterations):
                    # Same-sweep upstream dependencies.
                    for h in reads:
                        yield from ctx.acquire(h)
                    yield ctx.compute(flops=cfg.cell_flops)
                    for h in reads:
                        ctx.next(h)
                    # Publish to downstream neighbours.
                    for h in writes:
                        yield from ctx.acquire(h)
                        ctx.next(h)

            op.body = body
    prog.validate()
    return prog
