"""Tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.fig1 import Fig1Point, Fig1Result
from repro.experiments.plotting import MARKERS, ascii_plot, plot_fig1


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}) == "(no data)"
        assert ascii_plot({"a": []}) == "(no data)"

    def test_markers_and_legend(self):
        out = ascii_plot({"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]})
        assert "o = up" in out
        assert "x = down" in out
        assert "o" in out.splitlines()[0] or "o" in out

    def test_axis_bounds_shown(self):
        out = ascii_plot({"s": [(2, 10), (8, 50)]})
        assert "50" in out
        assert "10" in out
        assert "2" in out and "8" in out

    def test_single_point_no_crash(self):
        out = ascii_plot({"s": [(1, 1)]})
        assert "o" in out

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 0.0)]}, logy=True)

    def test_logy_scales(self):
        out = ascii_plot({"s": [(1, 1), (2, 1000)]}, logy=True)
        assert "1000" in out

    def test_labels(self):
        out = ascii_plot({"s": [(0, 0), (1, 1)]}, xlabel="cores", ylabel="time")
        assert "x: cores" in out and "y: time" in out

    def test_width_height_respected(self):
        out = ascii_plot({"s": [(0, 0), (1, 1)]}, width=30, height=8)
        rows = [l for l in out.splitlines() if "|" in l or "+" in l]
        assert len(rows) == 8


class TestPlotFig1:
    def test_renders_series(self):
        res = Fig1Result()
        for impl in ("orwl-bind", "orwl-nobind", "openmp"):
            for cores, t in [(8, 1.0), (16, 0.6)]:
                res.points.append(Fig1Point(impl, cores, t, 1.0, 0, 0.0))
        out = plot_fig1(res)
        assert "orwl-bind" in out
        assert "cores" in out
