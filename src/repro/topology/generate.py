"""Parametric topology generation: machines the paper never had.

The paper's Figure 1 stops at a 24-socket × 8-core SMP.  The scaling
study (:mod:`repro.experiments.scaling`) asks where the placement
advantage saturates on far deeper machines, which needs topologies to
be *generated*, not hand-written: a declarative :class:`MachineSpec`
composes arbitrary hierarchies — sockets × dies × cores × PUs, with
optional GROUP levels for cluster-of-clusters designs — and builds them
through the existing :class:`~repro.topology.builder.TopologyBuilder`.

Three layers:

* **Specs** — :class:`MachineSpec` / :class:`LevelDef`, a pure-data
  description with a JSON round-trip (:func:`spec_to_dict` /
  :func:`spec_from_dict` / :func:`spec_dumps` / :func:`spec_loads`) so
  machine shapes can be versioned, diffed and shipped to workers as
  data.
* **Composers** — :func:`smp` and :func:`two_tier` build the common
  shapes from a handful of integers; :func:`build` materializes any
  spec into a finalized :class:`~repro.topology.tree.Topology`.
* **Presets** — :data:`SCALING_SPECS` registers the sizes the scaling
  sweep uses (``paper``, ``smp48x8``, ``smp96x8``, ``smp256x8`` and the
  512-socket two-tier ``smp512x8``); :data:`SCALING_PRESETS` exposes
  them as zero-argument factories merged into
  :data:`repro.topology.presets.PRESETS`, so the per-process
  construction caches (:func:`repro.exec.cache.machine_inputs`) and the
  CLI topology resolver pick them up by name.

Construction stays memory-lean at this scale because the spec itself is
a few dozen bytes (only :func:`build` materializes objects) and the
distance tables on top are the vectorized compact-dtype sweep of
:mod:`repro.topology.distance` — a 4096-PU machine finalizes, with its
full distance model, in well under a second.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Union

from repro.topology.builder import TopologyBuilder
from repro.topology.objects import CacheAttributes, MemoryAttributes, ObjType
from repro.topology.tree import Topology, TopologyError

#: Spec-file format marker, mirroring :mod:`repro.topology.serialize`.
SPEC_FORMAT = "repro-machine-spec"
SPEC_VERSION = 1

#: Spec level names accepted case-insensitively (superset of the
#: builder's synthetic-string vocabulary).
_TYPE_NAMES: dict[str, ObjType] = {
    "group": ObjType.GROUP,
    "numa": ObjType.NUMANODE,
    "numanode": ObjType.NUMANODE,
    "node": ObjType.NUMANODE,
    "package": ObjType.PACKAGE,
    "socket": ObjType.PACKAGE,
    "die": ObjType.PACKAGE,
    "l3": ObjType.L3,
    "l2": ObjType.L2,
    "l1": ObjType.L1,
    "core": ObjType.CORE,
    "pu": ObjType.PU,
}


def _coerce_type(value: Union[str, ObjType], where: str) -> ObjType:
    if isinstance(value, ObjType):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        if key in _TYPE_NAMES:
            return _TYPE_NAMES[key]
        try:
            return ObjType[value.strip().upper()]
        except KeyError:
            pass
    raise TopologyError(f"unknown object type {value!r} in {where}")


@dataclass(frozen=True)
class LevelDef:
    """One generated level: *count* children of *type* under each parent.

    Optional *cache* / *memory* attributes override the builder defaults
    (sizes in bytes, latencies in seconds), exactly like
    :meth:`TopologyBuilder.add_level`.
    """

    type: ObjType
    count: int
    cache: Optional[CacheAttributes] = None
    memory: Optional[MemoryAttributes] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "type", _coerce_type(self.type, "LevelDef"))
        if not isinstance(self.count, int) or isinstance(self.count, bool):
            raise TopologyError(f"level count must be an int, got {self.count!r}")
        if self.count <= 0:
            raise TopologyError(f"level count must be > 0, got {self.count}")


@dataclass(frozen=True)
class MachineSpec:
    """A declarative machine description: a name plus outermost-first levels.

    The spec is pure data — building it is free — and validated on
    construction: the innermost level must be ``PU``, and the nesting
    must follow the hwloc containment order (``GROUP`` may repeat to
    express cluster-of-clusters hierarchies).
    """

    name: str
    levels: tuple[LevelDef, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise TopologyError(f"spec name must be a non-empty string, got {self.name!r}")
        levels = tuple(self.levels)
        object.__setattr__(self, "levels", levels)
        if not levels:
            raise TopologyError(f"spec {self.name!r} has no levels")
        if levels[-1].type is not ObjType.PU:
            raise TopologyError(
                f"spec {self.name!r}: innermost level must be PU, "
                f"got {levels[-1].type.name}"
            )
        prev: Optional[ObjType] = None
        for lvl in levels:
            if lvl.type is ObjType.MACHINE:
                raise TopologyError("MACHINE is implicit; do not declare it as a level")
            if prev is not None:
                if prev is ObjType.PU:
                    raise TopologyError("PU must be the innermost level")
                if lvl.type <= prev and lvl.type is not ObjType.GROUP:
                    raise TopologyError(
                        f"spec {self.name!r}: level {lvl.type.name} cannot nest "
                        f"inside {prev.name}"
                    )
            prev = lvl.type

    # -- derived quantities (no tree needed) ------------------------------

    @property
    def n_pus(self) -> int:
        """Total PU count: the product of all level counts."""
        return math.prod(lvl.count for lvl in self.levels)

    @property
    def n_levels(self) -> int:
        """Number of declared levels (the implicit MACHINE root excluded)."""
        return len(self.levels)

    def count_of(self, type_: ObjType) -> int:
        """Total object count of *type_* in the built tree (0 if absent)."""
        total = 0
        running = 1
        for lvl in self.levels:
            running *= lvl.count
            if lvl.type is type_:
                total += running
        return total

    def arities(self) -> list[int]:
        """The per-level child counts, outermost first (matches
        :meth:`Topology.arities` of the built tree, MACHINE included)."""
        return [lvl.count for lvl in self.levels]

    def describe(self) -> str:
        """Compact human-readable shape, e.g. ``numa:48 package:1 ... pu:1``."""
        return " ".join(f"{lvl.type.name.lower()}:{lvl.count}" for lvl in self.levels)


def build(spec: MachineSpec) -> Topology:
    """Materialize *spec* into a finalized :class:`Topology`."""
    builder = TopologyBuilder(spec.name)
    for lvl in spec.levels:
        builder.add_level(lvl.type, lvl.count, cache=lvl.cache, memory=lvl.memory)
    return builder.build()


# -- JSON round-trip -------------------------------------------------------


def spec_to_dict(spec: MachineSpec) -> dict[str, Any]:
    """Serialize a spec to a JSON-safe dict (versioned)."""
    levels = []
    for lvl in spec.levels:
        d: dict[str, Any] = {"type": lvl.type.name, "count": lvl.count}
        if lvl.cache is not None:
            d["cache"] = {
                "size": lvl.cache.size,
                "line_size": lvl.cache.line_size,
                "associativity": lvl.cache.associativity,
                "latency": lvl.cache.latency,
            }
        if lvl.memory is not None:
            d["memory"] = {
                "local_bytes": lvl.memory.local_bytes,
                "latency": lvl.memory.latency,
                "bandwidth": lvl.memory.bandwidth,
            }
        levels.append(d)
    return {
        "format": SPEC_FORMAT,
        "version": SPEC_VERSION,
        "name": spec.name,
        "levels": levels,
    }


def spec_from_dict(d: Mapping[str, Any]) -> MachineSpec:
    """Rebuild a :class:`MachineSpec` from :func:`spec_to_dict` output.

    Error contract: any malformed document raises :class:`TopologyError`.
    """
    if not isinstance(d, Mapping):
        raise TopologyError(f"spec document must be a dict, got {type(d).__name__}")
    if d.get("format") != SPEC_FORMAT:
        raise TopologyError(f"not a {SPEC_FORMAT} document: format={d.get('format')!r}")
    version = d.get("version", 0)
    if not isinstance(version, int) or version > SPEC_VERSION:
        raise TopologyError(f"unsupported spec version {version!r}")
    raw_levels = d.get("levels")
    if not isinstance(raw_levels, (list, tuple)):
        raise TopologyError("spec document needs a list of levels")
    levels = []
    for k, raw in enumerate(raw_levels):
        if not isinstance(raw, Mapping):
            raise TopologyError(f"level {k} must be a dict, got {type(raw).__name__}")
        type_ = _coerce_type(raw.get("type"), f"level {k}")
        count = raw.get("count")
        if isinstance(count, bool) or not isinstance(count, int):
            raise TopologyError(f"level {k} count must be an int, got {count!r}")
        cache = memory = None
        try:
            if "cache" in raw:
                c = raw["cache"]
                if not isinstance(c, Mapping) or "size" not in c:
                    raise TopologyError(f"level {k} cache must be a dict with a size")
                cache = CacheAttributes(
                    size=c["size"],
                    line_size=c.get("line_size", 64),
                    associativity=c.get("associativity", 8),
                    latency=c.get("latency", 0.0),
                )
            if "memory" in raw:
                m = raw["memory"]
                if not isinstance(m, Mapping) or "local_bytes" not in m:
                    raise TopologyError(
                        f"level {k} memory must be a dict with local_bytes"
                    )
                memory = MemoryAttributes(
                    local_bytes=m["local_bytes"],
                    latency=m.get("latency", 0.0),
                    bandwidth=m.get("bandwidth", 0.0),
                )
        except TopologyError:
            raise
        except (ValueError, TypeError) as exc:
            raise TopologyError(f"invalid level {k} attributes: {exc}") from None
        levels.append(LevelDef(type_, count, cache=cache, memory=memory))
    name = d.get("name", "")
    if not isinstance(name, str):
        raise TopologyError(f"spec name must be a string, got {name!r}")
    return MachineSpec(name=name, levels=tuple(levels))


def spec_dumps(spec: MachineSpec, indent: int = 2) -> str:
    """Serialize a spec to a JSON string."""
    return json.dumps(spec_to_dict(spec), indent=indent)


def spec_loads(text: str) -> MachineSpec:
    """Deserialize a spec from JSON (:class:`TopologyError` on any
    malformed input, including invalid JSON)."""
    try:
        d = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(f"not valid JSON: {exc}") from None
    return spec_from_dict(d)


# -- composers -------------------------------------------------------------


def smp(
    sockets: int,
    cores_per_socket: int = 8,
    pus_per_core: int = 1,
    name: str = "",
) -> MachineSpec:
    """A flat SMP spec: NUMA-per-socket, shared L3, private cores.

    ``smp(24, 8)`` reproduces the paper's evaluation machine exactly
    (same shape, same default attributes) — pinned by
    ``tests/test_generate.py`` against the handwritten
    :func:`repro.topology.presets.paper_smp`.
    """
    return MachineSpec(
        name=name or f"smp-{sockets}x{cores_per_socket}"
        + (f"x{pus_per_core}" if pus_per_core != 1 else ""),
        levels=(
            LevelDef(
                ObjType.NUMANODE,
                sockets,
                memory=MemoryAttributes(
                    local_bytes=32 << 30, latency=90e-9, bandwidth=40e9
                ),
            ),
            LevelDef(ObjType.PACKAGE, 1),
            LevelDef(ObjType.L3, 1, cache=CacheAttributes(size=20 << 20, latency=12e-9)),
            LevelDef(ObjType.CORE, cores_per_socket),
            LevelDef(ObjType.PU, pus_per_core),
        ),
    )


def two_tier(
    groups: int,
    sockets_per_group: int,
    cores_per_socket: int = 8,
    pus_per_core: int = 1,
    name: str = "",
) -> MachineSpec:
    """A cluster-of-clusters spec: a GROUP tier over SMP islands.

    Models the blade/drawer structure of 500+-socket machines (SGI UV,
    Bull BCS): sockets inside a group share a fast interconnect, groups
    are coupled by a slower top-level fabric (the GROUP entry of the
    distance model's cost table).
    """
    total = groups * sockets_per_group
    return MachineSpec(
        name=name or f"smp-{total}x{cores_per_socket}-2tier",
        levels=(
            LevelDef(ObjType.GROUP, groups),
            LevelDef(
                ObjType.NUMANODE,
                sockets_per_group,
                memory=MemoryAttributes(
                    local_bytes=32 << 30, latency=90e-9, bandwidth=40e9
                ),
            ),
            LevelDef(ObjType.PACKAGE, 1),
            LevelDef(ObjType.L3, 1, cache=CacheAttributes(size=20 << 20, latency=12e-9)),
            LevelDef(ObjType.CORE, cores_per_socket),
            LevelDef(ObjType.PU, pus_per_core),
        ),
    )


def from_spec_string(spec: str, name: str = "") -> MachineSpec:
    """Parse an hwloc-style synthetic string into a :class:`MachineSpec`.

    Same grammar as :func:`repro.topology.builder.from_spec`
    (``"numa:24 package:1 l3:1 core:8 pu:1"``; a bare integer is an
    anonymous GROUP level), but producing the declarative spec instead
    of a built tree.
    """
    levels: list[LevelDef] = []
    for term in spec.split():
        if ":" in term:
            tname, _, cnt_s = term.partition(":")
            type_ = _coerce_type(tname, f"spec {spec!r}")
        else:
            cnt_s = term
            type_ = ObjType.GROUP
        try:
            count = int(cnt_s)
        except ValueError:
            raise TopologyError(f"bad count in term {term!r}") from None
        levels.append(LevelDef(type_, count))
    if not levels:
        raise TopologyError("empty synthetic spec")
    return MachineSpec(name=name or spec, levels=tuple(levels))


# -- registered scaling presets -------------------------------------------

#: The scaling study's machine sizes, smallest to largest.  ``paper``
#: is the generated twin of the handwritten 24×8 preset (192 PUs);
#: ``smp512x8`` is the 512-socket two-tier machine (4096 PUs, 8 drawers
#: of 64 sockets).
SCALING_SPECS: dict[str, MachineSpec] = {
    "paper": smp(24, 8, name="paper-smp-24x8"),
    "smp48x8": smp(48, 8, name="smp48x8"),
    "smp96x8": smp(96, 8, name="smp96x8"),
    "smp256x8": smp(256, 8, name="smp256x8"),
    "smp512x8": two_tier(8, 64, 8, name="smp512x8"),
}


def _make_factory(spec: MachineSpec):
    def factory() -> Topology:
        return build(spec)

    factory.__name__ = f"build_{spec.name.replace('-', '_')}"
    factory.__doc__ = f"Generated scaling preset: {spec.describe()} ({spec.n_pus} PUs)."
    return factory


#: Name → zero-argument factory, merged into
#: :data:`repro.topology.presets.PRESETS` so the construction caches and
#: CLI resolvers can build scaling machines by name.
SCALING_PRESETS = {name: _make_factory(spec) for name, spec in SCALING_SPECS.items()}


def scaling_spec(name: str) -> MachineSpec:
    """Look up a registered scaling spec by name."""
    try:
        return SCALING_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown scaling preset {name!r}; available: "
            f"{', '.join(sorted(SCALING_SPECS))}"
        ) from None


def scaling_sizes(names: Iterable[str]) -> list[tuple[str, int]]:
    """``(name, n_pus)`` for *names*, sorted by machine size ascending."""
    sized = [(n, scaling_spec(n).n_pus) for n in names]
    return sorted(sized, key=lambda pair: (pair[1], pair[0]))
