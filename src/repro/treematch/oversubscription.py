"""Oversubscription handling (the paper's first TreeMatch extension).

"We check if oversubscription is required by comparing the number of
leaves of the tree with the order of the communication matrix and we
optionally add a new level to this tree such that we have enough virtual
resources to compute the allocation."

We operate on the *arity vector* of a balanced tree.  When the matrix
order exceeds the leaf count, :func:`plan` appends a virtual level of
arity ``ceil(order / leaves)`` so the virtual leaf count is >= the order;
every group of virtual leaves under one real PU then time-shares that PU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validate import ValidationError


@dataclass(frozen=True)
class OversubscriptionPlan:
    """Result of the oversubscription check.

    Attributes
    ----------
    arities:
        The (possibly extended) arity vector used for grouping.
    virtual_per_leaf:
        How many virtual slots each physical PU carries (1 = no
        oversubscription).
    n_virtual_leaves:
        Total leaf slots after extension.
    padded_order:
        The matrix order after zero-padding to fill every slot.
    """

    arities: tuple[int, ...]
    virtual_per_leaf: int
    n_virtual_leaves: int
    padded_order: int

    @property
    def oversubscribed(self) -> bool:
        return self.virtual_per_leaf > 1


def leaf_count(arities: tuple[int, ...] | list[int]) -> int:
    """Number of leaves of a balanced tree with this arity vector."""
    n = 1
    for a in arities:
        if a <= 0:
            raise ValidationError(f"arity must be > 0, got {a}")
        n *= a
    return n


def plan(arities: list[int] | tuple[int, ...], order: int) -> OversubscriptionPlan:
    """The ``manage_oversubscription`` step of Algorithm 1.

    Parameters
    ----------
    arities:
        Per-level arity vector of the physical topology (root first,
        PU-parent level last).
    order:
        Order of the communication matrix (number of entities to place).
    """
    if order <= 0:
        raise ValidationError(f"matrix order must be > 0, got {order}")
    base = tuple(int(a) for a in arities)
    leaves = leaf_count(base)
    if order <= leaves:
        return OversubscriptionPlan(
            arities=base,
            virtual_per_leaf=1,
            n_virtual_leaves=leaves,
            padded_order=leaves,
        )
    factor = math.ceil(order / leaves)
    extended = base + (factor,)
    virtual_leaves = leaves * factor
    return OversubscriptionPlan(
        arities=extended,
        virtual_per_leaf=factor,
        n_virtual_leaves=virtual_leaves,
        padded_order=virtual_leaves,
    )
