"""Tests for mapping rankfile IO and the contention saturation model,
plus runtime failure injection."""

import pytest

from repro.simulate.contention import ContentionConfig, ContentionModel
from repro.topology.objects import ObjType
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError


class TestMappingIO:
    def test_roundtrip(self, tmp_path):
        m = Mapping((0, 5, -1), labels=("a", "b", "c"), policy="demo")
        path = tmp_path / "map.rank"
        m.save(path)
        loaded = Mapping.load(path)
        assert loaded.pu_of == (0, 5, -1)
        assert loaded.labels == ("a", "b", "c")
        assert loaded.policy == "demo"

    def test_unbound_rendering(self, tmp_path):
        m = Mapping((-1,), labels=("x",))
        path = tmp_path / "map.rank"
        m.save(path)
        assert "unbound" in path.read_text()

    def test_labels_with_spaces(self, tmp_path):
        m = Mapping((3,), labels=("task 0/main op",))
        path = tmp_path / "m.rank"
        m.save(path)
        assert Mapping.load(path).labels == ("task 0/main op",)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.rank"
        path.write_text("no-tab-here\n")
        with pytest.raises(ValidationError):
            Mapping.load(path)

    def test_cli_output_flag(self, tmp_path, capsys):
        from repro.tools import treematch as tm_cli

        dest = tmp_path / "out.rank"
        assert tm_cli.main(["--demo", "small-numa", "--output", str(dest)]) == 0
        loaded = Mapping.load(dest)
        assert loaded.n_threads == 64


class TestSaturationModel:
    def test_linear_below_capacity(self):
        c = ContentionModel(1, ContentionConfig(node_capacity=4,
                                                interconnect_capacity=4,
                                                saturation_exponent=2.0))
        # under capacity: no slowdown at all
        c.begin(ObjType.NUMANODE, 0)
        c.begin(ObjType.NUMANODE, 0)
        assert c.slowdown(ObjType.NUMANODE, 0) == 1.0

    def test_superlinear_above_capacity(self):
        cfg = ContentionConfig(node_capacity=2, interconnect_capacity=100,
                               saturation_exponent=2.0)
        c = ContentionModel(1, cfg)
        for _ in range(7):
            c.begin(ObjType.NUMANODE, 0)
        # overload = 8/2 = 4 -> slowdown 4**2 = 16
        assert c.slowdown(ObjType.NUMANODE, 0) == pytest.approx(16.0)

    def test_exponent_one_is_proportional(self):
        cfg = ContentionConfig(node_capacity=2, interconnect_capacity=100,
                               saturation_exponent=1.0)
        c = ContentionModel(1, cfg)
        for _ in range(3):
            c.begin(ObjType.NUMANODE, 0)
        assert c.slowdown(ObjType.NUMANODE, 0) == pytest.approx(2.0)

    def test_exponent_below_one_rejected(self):
        with pytest.raises(ValueError):
            ContentionConfig(saturation_exponent=0.5)


class TestFailureInjection:
    def test_body_exception_propagates_and_tears_down(self, small_topo):
        """An op raising mid-run surfaces the error; its requests are
        cancelled so the failure is attributable, not a deadlock."""
        from repro.orwl import AccessMode, Program, Runtime
        from repro.simulate.machine import Machine
        from repro.treematch.mapping import Mapping as Map

        prog = Program("crash")
        loc = prog.location("l", 64, owner_task="a")
        opA = prog.task("a").operation("main", body=None)
        ha = opA.handle(loc, AccessMode.WRITE)

        def crasher(ctx):
            yield from ctx.acquire(ha)
            raise RuntimeError("injected fault")

        opA.body = crasher
        machine = Machine(small_topo, seed=0)
        rt = Runtime(prog, machine, mapping=Map((0,)))
        with pytest.raises(RuntimeError, match="injected fault"):
            rt.run()
        # Teardown ran: the FIFO holds no live request.
        assert len(loc.fifo) == 0

    def test_peer_of_crashed_op_not_deadlocked_by_teardown(self, small_topo):
        """The crashing op's cancelled requests unblock its peers; the
        peer's own completion depends on engine draining, which the
        propagated exception interrupts — but the lock state is clean."""
        from repro.orwl import AccessMode, Program, Runtime
        from repro.simulate.machine import Machine
        from repro.treematch.mapping import Mapping as Map

        prog = Program("crash2")
        loc = prog.location("l", 64, owner_task="a")
        opA = prog.task("a").operation("main", body=None)
        ha = opA.handle(loc, AccessMode.WRITE)

        def crasher(ctx):
            yield from ctx.acquire(ha)
            raise RuntimeError("boom")

        opA.body = crasher
        opB = prog.task("b").operation("main", body=None)
        hb = opB.handle(loc, AccessMode.READ)

        def reader(ctx):
            yield from ctx.acquire(hb)
            ctx.release(hb)

        opB.body = reader
        machine = Machine(small_topo, seed=0)
        rt = Runtime(prog, machine, mapping=Map((0, 1)))
        with pytest.raises(RuntimeError):
            rt.run()
        # The crashed writer's request was cancelled, so the reader's
        # request was granted (it may not have resumed before the abort,
        # but it is not stuck behind a dead writer).
        assert loc.fifo.granted_count() == len(loc.fifo)
