"""Bandwidth-contention model.

Placement changes *who shares which link*; contention is what turns that
sharing into time.  The model tracks in-flight transfers per contended
resource and stretches a new transfer's duration by the load it sees:

* each NUMA node's **memory controller** is a resource — every transfer
  whose data crosses that node's DRAM (producer side) loads it;
* the global **interconnect** is a resource — every transfer whose LCA
  is above NUMANODE loads it.

A resource with capacity *c* and *k* in-flight transfers slows a new
transfer by ``max(1, (k + 1) / c)``.  The load is sampled at transfer
start — a standard DES approximation that keeps the model O(1) per
transfer while still producing the collapse-under-load behaviour that
makes topology-blind placements lose at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.objects import ObjType
from repro.util.validate import check_positive


@dataclass(frozen=True)
class ContentionConfig:
    """Capacities (simultaneous full-speed transfers) per resource.

    ``saturation_exponent`` makes overload superlinear: a resource at
    ``k`` times its capacity slows transfers by ``k**exponent``.  Real
    DRAM controllers and interconnects degrade faster than linearly once
    saturated (queueing delay, row-buffer thrashing); the exponent is
    what makes a single-node hotspot — OpenMP's master-node first-touch
    — stop scaling instead of merely plateauing.
    """

    #: concurrent streams one NUMA node's memory controller sustains.
    node_capacity: float = 28.0
    #: concurrent streams the global interconnect sustains.
    interconnect_capacity: float = 40.0
    #: overload exponent (1.0 = proportional sharing).
    saturation_exponent: float = 1.3

    def __post_init__(self) -> None:
        check_positive(self.node_capacity, "node_capacity")
        check_positive(self.interconnect_capacity, "interconnect_capacity")
        if self.saturation_exponent < 1.0:
            raise ValueError(
                f"saturation_exponent must be >= 1, got {self.saturation_exponent}"
            )


#: Levels whose transfers cross a NUMA node's DRAM controller / the
#: global interconnect.  Frozen sets resolved once at import: the
#: membership tests below run on every transfer of every simulation.
_DRAM_LEVELS = frozenset({ObjType.NUMANODE, ObjType.GROUP, ObjType.MACHINE})
_INTERCONNECT_LEVELS = frozenset({ObjType.GROUP, ObjType.MACHINE})


class ContentionModel:
    """In-flight transfer bookkeeping and slowdown computation."""

    def __init__(self, n_nodes: int, config: ContentionConfig | None = None) -> None:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        self.config = config or ContentionConfig()
        self._node_inflight = [0] * max(n_nodes, 1)
        self._interconnect_inflight = 0

    # A transfer is summarized by (level, producer_node): which resources
    # it loads.  NUMANODE-level transfers hit one memory controller;
    # wider transfers hit the producer's controller AND the interconnect.

    def _crosses_dram(self, level: ObjType) -> bool:
        return level in _DRAM_LEVELS

    def _crosses_interconnect(self, level: ObjType) -> bool:
        return level in _INTERCONNECT_LEVELS

    def slowdown(self, level: ObjType, producer_node: int) -> float:
        """Multiplicative stretch a transfer starting now experiences."""
        exp = self.config.saturation_exponent
        factor = 1.0
        if self._crosses_dram(level) and producer_node >= 0:
            k = self._node_inflight[producer_node]
            overload = (k + 1) / self.config.node_capacity
            if overload > 1.0:
                factor = max(factor, overload**exp)
        if self._crosses_interconnect(level):
            k = self._interconnect_inflight
            overload = (k + 1) / self.config.interconnect_capacity
            if overload > 1.0:
                factor = max(factor, overload**exp)
        return factor

    def begin(self, level: ObjType, producer_node: int) -> None:
        """Register a transfer as in-flight."""
        if self._crosses_dram(level) and producer_node >= 0:
            self._node_inflight[producer_node] += 1
        if self._crosses_interconnect(level):
            self._interconnect_inflight += 1

    def end(self, level: ObjType, producer_node: int) -> None:
        """Unregister a finished transfer."""
        if self._crosses_dram(level) and producer_node >= 0:
            self._node_inflight[producer_node] -= 1
            assert self._node_inflight[producer_node] >= 0
        if self._crosses_interconnect(level):
            self._interconnect_inflight -= 1
            assert self._interconnect_inflight >= 0

    @property
    def interconnect_inflight(self) -> int:
        return self._interconnect_inflight

    def node_inflight(self, node: int) -> int:
        return self._node_inflight[node]
