"""Tests for the execution-timeline recorder."""

import pytest

from repro.simulate import Compute, Machine, Receive, Segment, Timeline, Wait


class TestTimelineUnit:
    def test_empty(self):
        tl = Timeline()
        assert len(tl) == 0
        assert tl.makespan() == 0.0
        assert tl.render() == "(empty timeline)"
        assert tl.utilization(0) == 0.0

    def test_record_and_query(self):
        tl = Timeline()
        tl.record(Segment(0, "a", "compute", 0, 0.0, 1.0))
        tl.record(Segment(1, "b", "transfer", 0, 1.0, 1.5))
        tl.record(Segment(0, "a", "compute", 1, 0.0, 2.0))
        assert len(tl) == 3
        assert len(tl.for_thread(0)) == 2
        assert [s.kind for s in tl.for_pu(0)] == ["compute", "transfer"]
        assert tl.busy_time(0) == pytest.approx(1.5)
        assert tl.makespan() == 2.0
        assert tl.utilization(1) == pytest.approx(1.0)

    def test_render_shape(self):
        tl = Timeline()
        tl.record(Segment(0, "a", "compute", 0, 0.0, 1.0))
        tl.record(Segment(1, "b", "transfer", 2, 0.5, 1.0))
        text = tl.render(width=40)
        lines = text.splitlines()
        assert lines[0].startswith("PU  0")
        assert "#" in lines[0]
        assert "=" in lines[1]

    def test_svg_export(self):
        import xml.etree.ElementTree as ET

        tl = Timeline()
        tl.record(Segment(0, "a", "compute", 0, 0.0, 1.0))
        tl.record(Segment(1, "b", "transfer", 1, 0.2, 0.8))
        doc = tl.to_svg()
        root = ET.fromstring(doc)
        assert root.tag.endswith("svg")
        assert "#6fbf6f" in doc  # compute colour
        assert "#e8a050" in doc  # transfer colour
        assert "<title>a compute" in doc

    def test_svg_empty(self):
        assert "empty timeline" in Timeline().to_svg()


class TestMachineIntegration:
    def test_disabled_by_default(self, small_topo):
        m = Machine(small_topo, seed=0)
        assert m.timeline is None

    def test_compute_segments_recorded(self, small_topo):
        m = Machine(small_topo, seed=0, timeline=True)
        tid = m.add_thread("t", bound_pu_os=0)
        m.set_body(tid, iter([Compute(0.5), Compute(0.25)]))
        m.run()
        segs = m.timeline.for_thread(tid)
        assert [s.duration for s in segs] == pytest.approx([0.5, 0.25])
        assert all(s.kind == "compute" for s in segs)

    def test_transfer_segments_recorded(self, small_topo):
        m = Machine(small_topo, seed=0, timeline=True)
        ev = m.new_event()
        prod = m.add_thread("p", bound_pu_os=0)
        cons = m.add_thread("c", bound_pu_os=4)

        def producer():
            yield Compute(0.1)
            ev.fire()

        def consumer():
            yield Wait(ev)
            yield Receive(prod, 1 << 20)

        m.set_body(prod, producer())
        m.set_body(cons, consumer())
        m.run()
        kinds = {s.kind for s in m.timeline.segments}
        assert kinds == {"compute", "transfer"}
        # The transfer happened on the consumer's PU after the compute.
        tr = [s for s in m.timeline.segments if s.kind == "transfer"][0]
        assert tr.pu == 4
        assert tr.start >= 0.1

    def test_serialization_visible_in_timeline(self, small_topo):
        m = Machine(small_topo, seed=0, timeline=True)
        for k in range(2):
            tid = m.add_thread(f"t{k}", bound_pu_os=3)
            m.set_body(tid, iter([Compute(1.0)]))
        m.run()
        segs = m.timeline.for_pu(3)
        assert len(segs) == 2
        # Non-overlapping, back to back.
        assert segs[0].end <= segs[1].start + 1e-12
        assert m.timeline.utilization(3) == pytest.approx(1.0)
