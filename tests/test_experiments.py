"""Integration tests: Fig. 1 harness, paper-claim shape, and ablations.

The full paper-scale sweep lives in the benchmarks; here we run reduced
versions that still must show the qualitative results (orderings,
crossovers, strategy selection).
"""

import pytest

from repro.core import compare_policies, run_lk23, ExperimentConfig
from repro.experiments import ablations, run_fig1, run_point
from repro.experiments.fig1 import Fig1Result, Fig1Point
from repro.util.validate import ValidationError


class TestFig1Harness:
    def test_run_point_each_implementation(self):
        for impl in ("orwl-bind", "orwl-nobind", "openmp"):
            p = run_point(impl, 8, iterations=2, n=1024)
            assert p.time > 0
            assert p.n_cores == 8

    def test_run_point_validation(self):
        with pytest.raises(ValidationError):
            run_point("mpi", 8)
        with pytest.raises(ValidationError):
            run_point("openmp", 9)  # not whole sockets

    def test_sweep_structure(self):
        res = run_fig1(core_counts=(8, 16), iterations=2, n=1024)
        assert len(res.points) == 6
        assert res.core_counts() == [8, 16]
        assert len(res.series("openmp")) == 2

    def test_table_renders(self):
        res = run_fig1(core_counts=(8,), iterations=2, n=1024)
        table = res.table()
        assert "orwl-bind" in table
        assert "speedup vs OpenMP" in table

    def test_result_lookup_errors(self):
        res = Fig1Result()
        with pytest.raises(KeyError):
            res.time_of("openmp", 8)
        with pytest.raises(KeyError):
            res.best_time("openmp")

    def test_stall_detection(self):
        res = Fig1Result()
        for cores, t in [(8, 10.0), (16, 6.0), (32, 6.1)]:
            res.points.append(Fig1Point("openmp", cores, t, 1.0, 0, 0.0))
        assert res.openmp_scaling_stalls_after() == 16

    def test_no_stall_returns_none(self):
        res = Fig1Result()
        for cores, t in [(8, 10.0), (16, 5.0)]:
            res.points.append(Fig1Point("openmp", cores, t, 1.0, 0, 0.0))
        assert res.openmp_scaling_stalls_after() is None


@pytest.mark.slow
class TestPaperShape:
    """The headline qualitative result at a reduced but multi-socket scale."""

    @pytest.fixture(scope="class")
    def sweep(self):
        # The paper's matrix size: the locality effect needs block
        # working sets that dwarf the caches, so n is not scaled down.
        return run_fig1(core_counts=(8, 32, 96), iterations=3, n=16384, seed=0)

    def test_bind_wins_at_scale(self, sweep):
        t_bind = sweep.time_of("orwl-bind", 96)
        assert sweep.time_of("orwl-nobind", 96) > 1.3 * t_bind
        assert sweep.time_of("openmp", 96) > 2.0 * t_bind

    def test_openmp_competitive_on_one_socket(self, sweep):
        """Paper: only 'as soon as we scale beyond one or two sockets'
        do standard approaches fail — at 8 cores OpenMP is fine."""
        assert sweep.time_of("openmp", 8) < 1.5 * sweep.time_of("orwl-bind", 8)

    def test_bind_scales_down_with_cores(self, sweep):
        series = dict(sweep.series("orwl-bind"))
        assert series[96] < series[32] < series[8]

    def test_nobind_benefit_smaller_than_bind(self, sweep):
        bind_gain = sweep.time_of("orwl-bind", 8) / sweep.time_of("orwl-bind", 96)
        nobind_gain = sweep.time_of("orwl-nobind", 8) / sweep.time_of("orwl-nobind", 96)
        assert bind_gain > nobind_gain


class TestAblations:
    def test_mapping_quality_treematch_best_or_tied(self):
        scores = ablations.mapping_quality(pattern="clustered", seed=1)
        tm = scores["treematch"]["hop_bytes"]
        rnd = scores["random"]["hop_bytes"]
        assert tm < rnd
        assert set(scores) == set(ablations.BASELINE_POLICIES)

    def test_mapping_quality_stencil(self):
        scores = ablations.mapping_quality(pattern="stencil")
        assert scores["treematch"]["numa_cut"] <= scores["random"]["numa_cut"]

    def test_mapping_quality_unknown_pattern(self):
        with pytest.raises(ValueError):
            ablations.mapping_quality(pattern="fractal")

    def test_treematch_cost_curve_monotone_scale(self):
        curve = ablations.treematch_cost_curve(orders=(16, 64))
        assert len(curve) == 2
        assert all(t >= 0 for _, t in curve)
        # launch-time requirement: even order 64 takes well under a second
        assert curve[-1][1] < 5.0

    @pytest.mark.slow
    def test_control_strategies_fire_correctly(self):
        out = ablations.control_strategy_comparison(iterations=2)
        assert out["hyperthread"]["strategy"] == "hyperthread"
        assert out["spare-cores"]["strategy"] == "spare-cores"
        assert out["unmapped"]["strategy"] == "unmapped"

    @pytest.mark.slow
    def test_oversubscription_balances_load(self):
        rows = ablations.oversubscription_study(factors=(1, 2), iterations=2)
        for row in rows:
            assert row["max_mains_per_pu"] == row["factor"]

    def test_affinity_extraction_correlates(self):
        out = ablations.affinity_extraction_fidelity(iterations=2)
        assert out["correlation"] > 0.9
        assert out["trace_events"] > 0


class TestCoreApi:
    def test_run_lk23_defaults_overridable(self):
        r = run_lk23(topology="small-numa", iterations=2, n=1024)
        assert r.time > 0
        assert r.config.policy == "treematch"
        assert "time" in r.summary()

    def test_run_lk23_config_object(self):
        cfg = ExperimentConfig(topology="small-numa", policy="compact", iterations=2, n=512)
        r = run_lk23(cfg)
        assert r.plan.policy == "compact"

    def test_run_lk23_both_forms_rejected(self):
        cfg = ExperimentConfig(topology="small-numa")
        with pytest.raises(ValidationError):
            run_lk23(cfg, policy="compact")

    def test_run_lk23_custom_topology_object(self, small_topo):
        r = run_lk23(topology=small_topo, iterations=2, n=512, tasks=4)
        assert r.time > 0

    def test_compare_policies_shared_workload(self):
        out = compare_policies(
            policies=("treematch", "nobind"),
            topology="small-numa",
            iterations=2,
            n=1024,
        )
        assert set(out) == {"treematch", "nobind"}
        # treematch binds all mains; sub-ops are unmapped here (machine
        # is fully loaded, the paper's third control branch)
        assert out["treematch"].plan.mapping.bound_fraction() > 0.0
        assert out["nobind"].plan.mapping.bound_fraction() == 0.0
