"""Tests for the discrete-event engine and SimEvent.

Most cases run on the default (batched) engine; the scalar reference is
covered by the same suite via the ``mode`` parametrization plus the
full cross-mode harness in ``tests/test_engine_differential.py``.
"""

import math

import pytest

from repro.simulate.engine import ENGINE_MODES, Engine, SimEvent, SimulationError


class TestEngine:
    def test_time_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(2.0, lambda: log.append("b"))
        e.schedule(1.0, lambda: log.append("a"))
        e.schedule(3.0, lambda: log.append("c"))
        e.run()
        assert log == ["a", "b", "c"]
        assert e.now == 3.0

    def test_same_time_fifo_order(self):
        e = Engine()
        log = []
        for k in range(5):
            e.schedule(1.0, lambda k=k: log.append(k))
        e.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_at_absolute_time(self):
        e = Engine()
        log = []
        e.at(5.0, lambda: log.append(e.now))
        e.run()
        assert log == [5.0]

    def test_at_past_rejected(self):
        e = Engine()
        e.schedule(2.0, lambda: None)
        e.run()
        with pytest.raises(SimulationError):
            e.at(1.0, lambda: None)

    def test_nested_scheduling(self):
        e = Engine()
        log = []

        def first():
            log.append(("first", e.now))
            e.schedule(1.0, lambda: log.append(("second", e.now)))

        e.schedule(1.0, first)
        e.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_run_until(self):
        e = Engine()
        log = []
        e.schedule(1.0, lambda: log.append(1))
        e.schedule(10.0, lambda: log.append(10))
        e.run(until=5.0)
        assert log == [1]
        assert e.now == 5.0
        assert e.pending == 1

    def test_step_empty_returns_false(self):
        assert Engine().step() is False

    def test_max_events_guard(self):
        e = Engine()

        def loop():
            e.schedule(0.0, loop)

        e.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            e.run(max_events=100)

    def test_events_fired_counter(self):
        e = Engine()
        for _ in range(3):
            e.schedule(1.0, lambda: None)
        e.run()
        assert e.events_fired == 3


class TestSimEvent:
    def test_wait_then_fire(self):
        e = Engine()
        ev = SimEvent(e, "x")
        log = []
        ev.wait(lambda: log.append(e.now))
        e.schedule(2.0, ev.fire)
        e.run()
        assert log == [2.0]
        assert ev.fired

    def test_wait_after_fire_immediate(self):
        e = Engine()
        ev = SimEvent(e)
        ev.fire()
        log = []
        ev.wait(lambda: log.append(e.now))
        e.run()
        assert log == [0.0]

    def test_fire_with_delay(self):
        e = Engine()
        ev = SimEvent(e)
        log = []
        ev.wait(lambda: log.append(e.now))
        ev.fire(delay=3.0)
        e.run()
        assert log == [3.0]

    def test_late_waiter_honours_fire_delay(self):
        """A waiter registering after fire() still waits until release."""
        e = Engine()
        ev = SimEvent(e)
        log = []
        ev.fire(delay=5.0)
        ev.wait(lambda: log.append(e.now))
        e.run()
        assert log == [5.0]

    def test_waiter_after_release_time_runs_now(self):
        e = Engine()
        ev = SimEvent(e)
        ev.fire(delay=1.0)
        log = []
        e.schedule(10.0, lambda: ev.wait(lambda: log.append(e.now)))
        e.run()
        assert log == [10.0]

    def test_double_fire_rejected(self):
        e = Engine()
        ev = SimEvent(e)
        ev.fire()
        with pytest.raises(SimulationError):
            ev.fire()

    def test_multiple_waiters_all_released(self):
        e = Engine()
        ev = SimEvent(e)
        log = []
        for k in range(4):
            ev.wait(lambda k=k: log.append(k))
        ev.fire()
        e.run()
        assert sorted(log) == [0, 1, 2, 3]


class TestNonFiniteDelays:
    """Regression: NaN/inf delays used to slip into the heap.

    ``delay < 0`` is False for NaN, so the old negative-delay guard let
    NaN through — and one NaN timestamp silently corrupts heap ordering
    (every comparison against NaN is False).  All scheduling entry
    points must reject non-finite values up front, in both modes.
    """

    BAD = [float("nan"), float("inf"), -float("inf"), -1.0]

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("delay", BAD, ids=repr)
    def test_schedule_rejects(self, mode, delay):
        with pytest.raises(SimulationError, match="finite"):
            Engine(mode=mode).schedule(delay, lambda: None)

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("time", BAD, ids=repr)
    def test_at_rejects(self, mode, time):
        with pytest.raises(SimulationError):
            Engine(mode=mode).at(time, lambda: None)

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("delay", BAD, ids=repr)
    def test_fire_rejects(self, mode, delay):
        ev = SimEvent(Engine(mode=mode))
        ev.wait(lambda: None)
        with pytest.raises(SimulationError, match="finite"):
            ev.fire(delay)

    def test_fire_validates_even_without_waiters(self):
        """The delay check runs before the (possibly empty) release."""
        ev = SimEvent(Engine())
        with pytest.raises(SimulationError, match="finite"):
            ev.fire(float("nan"))

    def test_rejected_delay_leaves_engine_clean(self):
        e = Engine()
        with pytest.raises(SimulationError):
            e.schedule(math.inf, lambda: None)
        assert e.pending == 0
        assert e.run() == 0.0


class TestEngineModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine mode"):
            Engine(mode="turbo")

    def test_default_mode_is_batched(self):
        assert Engine().mode == "batched"
        assert ENGINE_MODES[0] == "batched"

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_pending_counts_every_waiter(self, mode):
        """A cohort heap entry still counts as N pending events."""
        e = Engine(mode=mode)
        ev = SimEvent(e)
        for k in range(5):
            ev.wait(lambda: None)
        ev.fire(delay=1.0)
        assert e.pending == 5
        e.run()
        assert e.pending == 0
        assert e.events_fired == 5

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_cohort_counts_toward_events_fired(self, mode):
        e = Engine(mode=mode)
        ev = SimEvent(e)
        for _ in range(7):
            ev.wait(lambda: None)
        ev.fire()
        e.schedule(2.0, lambda: None)
        e.run()
        assert e.events_fired == 8

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_schedule_after_fire_sorts_after_cohort(self, mode):
        """seq reservation: a post-fire schedule at the same timestamp
        must run after every waiter of the cohort, as it would have
        with one heap entry per waiter."""
        e = Engine(mode=mode)
        ev = SimEvent(e)
        log = []
        for k in range(3):
            ev.wait(lambda k=k: log.append(("w", k)))
        ev.fire(delay=1.0)
        e.schedule(1.0, lambda: log.append(("late", None)))
        e.run()
        assert log == [("w", 0), ("w", 1), ("w", 2), ("late", None)]

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_zero_delay_from_cohort_joins_timestamp(self, mode):
        """A waiter scheduling at zero delay runs at the same simulated
        time, after the rest of the cohort (higher seq)."""
        e = Engine(mode=mode)
        ev = SimEvent(e)
        log = []
        ev.wait(lambda: e.schedule(0.0, lambda: log.append(("z", e.now))))
        ev.wait(lambda: log.append(("w", e.now)))
        ev.fire(delay=1.0)
        e.run()
        assert log == [("w", 1.0), ("z", 1.0)]

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_step_drains_cohorts_too(self, mode):
        e = Engine(mode=mode)
        ev = SimEvent(e)
        log = []
        for k in range(4):
            ev.wait(lambda k=k: log.append(k))
        ev.fire(delay=1.0)
        steps = 0
        while e.step():
            steps += 1
        assert log == [0, 1, 2, 3]
        assert e.events_fired == 4
        # Batched mode drains the whole cohort as one heap entry.
        assert steps == (1 if mode == "batched" else 4)

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_run_until_with_pending_cohort(self, mode):
        e = Engine(mode=mode)
        ev = SimEvent(e)
        for _ in range(3):
            ev.wait(lambda: None)
        ev.fire(delay=10.0)
        e.schedule(1.0, lambda: None)
        assert e.run(until=5.0) == 5.0
        assert e.events_fired == 1
        assert e.pending == 3
        e.run()
        assert e.pending == 0

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_max_events_guard_with_cohorts(self, mode):
        e = Engine(mode=mode)

        def loop():
            ev = SimEvent(e)
            for _ in range(8):
                ev.wait(lambda: None)
            ev.wait(loop)
            ev.fire()

        loop()
        with pytest.raises(SimulationError, match="max_events"):
            e.run(max_events=500)

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_probe_called_once_per_logical_event(self, mode):
        e = Engine(mode=mode)
        seen = []
        e.probe = seen.append
        ev = SimEvent(e)
        for _ in range(5):
            ev.wait(lambda: None)
        ev.fire(delay=2.0)
        e.schedule(3.0, lambda: None)
        e.run()
        assert seen == [2.0] * 5 + [3.0]

    def test_repr_counts_waiters_in_both_modes(self):
        for mode in ENGINE_MODES:
            ev = SimEvent(Engine(mode=mode), "b")
            for _ in range(3):
                ev.wait(lambda: None)
            assert "3 waiting" in repr(ev)
            ev.fire()
            assert "fired" in repr(ev)
