"""ORWL program declaration: tasks, operations, locations, dependencies.

"To implement [LK23] with the ORWL model ... for each block we define a
main operation that performs the computation and eight sub-operations
that are used to export the frontier data to the neighbouring.  Thus ...
several ``orwl_task`` primitives are each divided to 9 operations
(functions).  Each operation is executed by an independent thread and
has its own ``orwl_location``."

A :class:`Program` is the static composition: locations, tasks, each
task's operations, and each operation's handles.  It is what the
placement add-on inspects to extract affinity *before* execution, and
what the runtime instantiates into simulator threads.

Operation bodies are generator functions ``body(ctx)`` receiving an
:class:`repro.orwl.runtime.OpContext`; they yield simulator syscalls via
the context helpers (``ctx.compute``, ``ctx.acquire`` ...).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.orwl.fifo import AccessMode
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.util.validate import ValidationError

#: An operation body: called with the OpContext, returns a generator.
OpBody = Callable[["object"], Generator]


class Operation:
    """One operation of a task — executed by its own thread."""

    def __init__(self, task: "TaskDecl", name: str, body: OpBody) -> None:
        self.task = task
        self.name = f"{task.name}/{name}"
        self.short_name = name
        self.body = body
        self.handles: list[Handle] = []
        #: True for the compute-heavy op of the task (used to pair
        #: control threads with their task's main op).
        self.is_main = name == "main"

    def handle(self, location: Location, mode: AccessMode) -> Handle:
        """Declare an access of this operation to *location*."""
        h = Handle(location, mode, op_name=self.name)
        self.handles.append(h)
        return h

    def read_handles(self) -> list[Handle]:
        return [h for h in self.handles if h.mode is AccessMode.READ]

    def write_handles(self) -> list[Handle]:
        return [h for h in self.handles if h.mode is AccessMode.WRITE]

    def __repr__(self) -> str:
        return f"<Operation {self.name!r} {len(self.handles)} handles>"


class TaskDecl:
    """An ``orwl_task``: a named group of operations."""

    def __init__(self, program: "Program", name: str) -> None:
        self.program = program
        self.name = name
        self.operations: dict[str, Operation] = {}

    def operation(self, name: str, body: OpBody) -> Operation:
        """Declare an operation; *name* must be unique within the task."""
        if name in self.operations:
            raise ValidationError(f"task {self.name!r} already has operation {name!r}")
        op = Operation(self, name, body)
        self.operations[name] = op
        self.program._op_order.append(op)
        return op

    @property
    def main_operation(self) -> Optional[Operation]:
        return self.operations.get("main")

    def __repr__(self) -> str:
        return f"<TaskDecl {self.name!r} {len(self.operations)} ops>"


class Program:
    """The static composition of an ORWL application."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.locations: dict[str, Location] = {}
        self.tasks: dict[str, TaskDecl] = {}
        self._op_order: list[Operation] = []

    # -- declaration --------------------------------------------------------

    def location(
        self,
        name: str,
        nbytes: float,
        owner_task: str = "",
        affinity_bytes: float | None = None,
    ) -> Location:
        """Declare a location; names are unique program-wide.

        *affinity_bytes* optionally overrides the weight the static
        affinity extraction assigns to writer/reader pairs of this
        location (see :class:`~repro.orwl.location.Location`).
        """
        if name in self.locations:
            raise ValidationError(f"duplicate location {name!r}")
        loc = Location(name, nbytes, owner_task=owner_task, affinity_bytes=affinity_bytes)
        self.locations[name] = loc
        return loc

    def task(self, name: str) -> TaskDecl:
        """Declare (or fetch) a task."""
        if name in self.tasks:
            return self.tasks[name]
        t = TaskDecl(self, name)
        self.tasks[name] = t
        return t

    # -- introspection --------------------------------------------------------

    def operations(self) -> list[Operation]:
        """All operations in declaration order — this order defines both
        thread ids and the ORWL init protocol's request-insertion order."""
        return list(self._op_order)

    @property
    def n_operations(self) -> int:
        return len(self._op_order)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def operation_index(self, op: Operation) -> int:
        """Stable thread index of an operation (declaration order)."""
        return self._op_order.index(op)

    def readers_of(self, location: Location) -> list[Operation]:
        """Operations holding a READ handle on *location*."""
        return [
            op
            for op in self._op_order
            if any(h.location is location and h.mode is AccessMode.READ for h in op.handles)
        ]

    def writers_of(self, location: Location) -> list[Operation]:
        """Operations holding a WRITE handle on *location*."""
        return [
            op
            for op in self._op_order
            if any(h.location is location and h.mode is AccessMode.WRITE for h in op.handles)
        ]

    def validate(self) -> None:
        """Static sanity checks before running.

        Every operation must have a body; every location that is read
        must also be written by someone (otherwise readers transfer
        undefined data — almost always a composition bug).
        """
        for op in self._op_order:
            if op.body is None:
                raise ValidationError(f"operation {op.name!r} has no body")
        # One pass over all handles (readers_of/writers_of per location
        # would be quadratic on large programs).
        read_locs: set[str] = set()
        written_locs: set[str] = set()
        for op in self._op_order:
            for h in op.handles:
                if h.mode is AccessMode.READ:
                    read_locs.add(h.location.name)
                else:
                    written_locs.add(h.location.name)
        unwritten = read_locs - written_locs
        if unwritten:
            raise ValidationError(
                f"location(s) read but never written: {sorted(unwritten)[:5]}"
            )

    def __repr__(self) -> str:
        return (
            f"<Program {self.name!r}: {self.n_tasks} tasks, "
            f"{self.n_operations} ops, {len(self.locations)} locations>"
        )
