"""Ablation A8 — how much quality does TreeMatch leave on the table?

Simulated annealing over the assignment directly (thousands of cost
evaluations) approximates the attainable hop-bytes optimum on small
instances; TreeMatch does one bottom-up pass.  This bench measures the
gap on clustered and stencil affinities — the hierarchical heuristic
must land within a modest factor of the annealed reference while being
orders of magnitude cheaper.
"""

import pytest

from repro.comm import patterns
from repro.topology import presets
from repro.treematch import cost as cost_mod
from repro.treematch.algorithm import tree_match
from repro.treematch.anneal import AnnealConfig, anneal_mapping

TOPO = presets.paper_smp(8, 8)  # 64 PUs


def _matrix(pattern: str):
    if pattern == "clustered":
        return patterns.clustered(8, 8, intra_volume=100.0, inter_volume=1.0, seed=0)
    return patterns.stencil_2d(8, 8, edge_volume=100.0)


@pytest.mark.parametrize("pattern", ["clustered", "stencil"])
def test_anneal_bound(benchmark, pattern):
    matrix = _matrix(pattern)

    def both():
        tm = tree_match(TOPO, matrix).mapping
        sa = anneal_mapping(TOPO, matrix, AnnealConfig(moves=30_000), seed=0)
        return (
            cost_mod.hop_bytes(tm, matrix, TOPO),
            cost_mod.hop_bytes(sa, matrix, TOPO),
        )

    hb_tm, hb_sa = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["treematch_hop_bytes"] = hb_tm
    benchmark.extra_info["anneal_hop_bytes"] = hb_sa
    benchmark.extra_info["gap"] = hb_tm / hb_sa if hb_sa else 1.0
    # One hierarchical pass lands within 1.4x of the annealed reference.
    assert hb_tm <= 1.4 * hb_sa
