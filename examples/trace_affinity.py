#!/usr/bin/env python3
"""Affinity extraction: from program structure and from runtime traces.

The paper's add-on "automatically extracts task/threads affinity based
on the way they are composed in the application".  This example shows
both extraction paths on an LK23 program:

1. the static matrix, read off the handle declarations at launch time
   (what the mapping actually uses), and
2. the traced matrix, accumulated by the runtime as threads pull data,
   then the correlation between the two — validating that launch-time
   placement needs no profiling run.

Run:  python examples/trace_affinity.py
"""

import numpy as np

from repro.kernels import Lk23Config, build_program
from repro.orwl import Runtime
from repro.placement import (
    bind_program,
    matrix_correlation,
    static_matrix,
    traced_matrix,
)
from repro.simulate import Machine
from repro.topology import presets


def render_heat(matrix, size=12) -> str:
    """Tiny ASCII heat map of the upper-left corner of a matrix."""
    vals = matrix.values[:size, :size]
    peak = vals.max() or 1.0
    shades = " .:-=+*#%@"
    rows = []
    for row in vals:
        rows.append("".join(shades[int(v / peak * (len(shades) - 1))] for v in row))
    return "\n".join(rows)


def main() -> None:
    topo = presets.paper_smp(2, 8)  # 16 cores
    cfg = Lk23Config(n=2048, grid_rows=4, grid_cols=4, iterations=4)
    prog = build_program(cfg)
    print(f"Program: {prog}")

    static = static_matrix(prog, use_affinity_hints=False)
    print(f"\nStatic affinity matrix: order {static.order}, "
          f"total {static.total_volume():.3g} bytes/iteration")
    print(render_heat(static))

    plan = bind_program(prog, topo, policy="treematch")
    machine = Machine(topo, seed=0)
    runtime = Runtime(prog, machine, mapping=plan.mapping,
                      control_mapping=plan.control_mapping)
    result = runtime.run()
    traced = traced_matrix(prog, result.tracer)
    print(f"\nTraced matrix after the run: {result.tracer.n_events} transfer "
          f"events, total {traced.total_volume():.3g} bytes")
    print(render_heat(traced))

    corr = matrix_correlation(static, traced)
    per_iter = traced.total_volume() / cfg.iterations
    print(f"\nPearson correlation static vs traced: {corr:.4f}")
    print(f"traced bytes per iteration: {per_iter:.3g} "
          f"(static predicts {static.total_volume():.3g})")
    print("\nConclusion: composition alone predicts the communication "
          "structure — the mapping can run at launch time, as the paper does.")


if __name__ == "__main__":
    main()
