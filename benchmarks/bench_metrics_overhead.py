"""Disabled metrics must cost <= 1.05x on the paper preset.

The ``repro.metrics`` design contract is near-zero cost when off: every
instrumentation site guards with ``is_enabled()`` (one module-flag read
and a branch), and the engine's cohort sink is a single ``is None``
check per *cohort*, not per event.  This benchmark pins that contract
on the hot path the telemetry wraps — a Figure-1 sweep point on the
paper's machine shape — by timing the identical workload with
collection disabled both before the metrics import graph is touched
and after an enabled run has warmed every registry path, then gating
the ratio at 1.05x.

The enabled run's wall is also reported (as ``extra_info``, not a
gate: collection cost is allowed to be visible, just not the disabled
baseline).  Best-of-N timing to shed scheduler noise on shared CI
boxes.
"""

import time

from repro.experiments.fig1 import run_point
from repro.metrics import core

TIMING_ROUNDS = 5
ITERATIONS = 4
N_CORES = 16
MAX_DISABLED_OVERHEAD = 1.05


def sweep_point_wall() -> float:
    """Best-of-N wall seconds for one paper-preset Figure-1 point."""
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        run_point(
            implementation="orwl-bind",
            n_cores=N_CORES,
            iterations=ITERATIONS,
            n=2048,
            seed=0,
        )
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_metrics_overhead(benchmark):
    was_enabled = core.is_enabled()
    try:
        core.set_enabled(False)
        sweep_point_wall()  # warm caches/bytecode before any timing
        baseline_wall = sweep_point_wall()

        # An enabled run creates every metric and warms the bridge paths;
        # the disabled re-run afterwards must not have gotten slower.
        core.enable()
        t0 = time.perf_counter()
        run_point(
            implementation="orwl-bind",
            n_cores=N_CORES,
            iterations=ITERATIONS,
            n=2048,
            seed=0,
        )
        enabled_wall = time.perf_counter() - t0

        core.disable()
        disabled_wall = benchmark.pedantic(
            sweep_point_wall, rounds=1, iterations=1
        )
    finally:
        core.set_enabled(was_enabled)
        core.reset_registry()

    overhead = disabled_wall / baseline_wall
    benchmark.extra_info["baseline_wall_s"] = baseline_wall
    benchmark.extra_info["disabled_wall_s"] = disabled_wall
    benchmark.extra_info["enabled_wall_s"] = enabled_wall
    benchmark.extra_info["disabled_overhead"] = overhead
    benchmark.extra_info["enabled_overhead"] = enabled_wall / baseline_wall
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled metrics cost {overhead:.3f}x the baseline "
        f"(budget {MAX_DISABLED_OVERHEAD}x)"
    )
