"""Golden metrics + determinism regression for the LK23 simulation.

Two different promises, two different test styles:

* **Determinism**: the same seed must give a *bit-identical* run — not
  merely the same final time, but the same event stream and the same
  aggregate counters, down to the last IEEE-754 bit.  Checked by running
  twice and comparing sha-256 fingerprints, so any source of hidden
  nondeterminism (dict ordering, heap tie-breaks, rng sharing) fails
  loudly.
* **Golden values**: a small Fig. 1 configuration is pinned to the
  byte.  The traffic split across sharing levels is *the* observable the
  paper's argument rests on; if a refactor silently shifts bytes between
  levels, these literals catch it.  Byte counters are exact integers by
  construction (sums of block sizes), so equality is safe; the makespan
  is float arithmetic and gets a tight relative tolerance instead.
"""

import pytest

from repro.core.api import run_lk23
from repro.observe import metrics_fingerprint, run_fingerprint, stream_hash
from repro.topology.objects import ObjType

SMALL = dict(topology="small-numa", n=2048, iterations=2, seed=42, trace=True)


def run_small(policy: str):
    return run_lk23(policy=policy, **SMALL)


class TestDeterminism:
    def test_identical_seeds_bitwise_identical_runs(self):
        a = run_small("nobind")  # nobind exercises the noisy OS scheduler
        b = run_small("nobind")
        assert stream_hash(a.trace.events) == stream_hash(b.trace.events)
        assert metrics_fingerprint(a.metrics) == metrics_fingerprint(b.metrics)
        assert a.time == b.time  # bitwise, no approx
        assert list(a.trace.events) == list(b.trace.events)

    def test_different_seed_different_stream(self):
        a = run_lk23(policy="nobind", topology="small-numa", n=2048,
                     iterations=2, seed=42, trace=True)
        b = run_lk23(policy="nobind", topology="small-numa", n=2048,
                     iterations=2, seed=43, trace=True)
        assert stream_hash(a.trace.events) != stream_hash(b.trace.events)

    def test_bound_run_seed_invariants(self):
        # Timings jitter with the seed even when bound (and with them
        # which halo copy a read pulls from, hence the exact per-level
        # split) — but the conserved quantities must not move: total
        # bytes, the bulk DRAM traffic, and zero migrations.
        a = run_lk23(policy="treematch", topology="small-numa", n=2048,
                     iterations=2, seed=1, trace=True)
        b = run_lk23(policy="treematch", topology="small-numa", n=2048,
                     iterations=2, seed=99, trace=True)
        assert a.metrics.total_bytes == b.metrics.total_bytes
        assert (a.metrics.bytes_by_level[ObjType.NUMANODE]
                == b.metrics.bytes_by_level[ObjType.NUMANODE])
        assert a.metrics.migrations == b.metrics.migrations == 0


class TestGoldenSmallFig1:
    """Pinned values for LK23 n=2048, 2 sweeps, small-numa(2, 4), seed 42."""

    GOLDEN_BYTES = {
        "treematch": {
            ObjType.MACHINE: 409_872.0,
            ObjType.NUMANODE: 67_108_864.0,
            ObjType.L3: 213_144.0,
            ObjType.CORE: 32_824.0,
        },
        "nobind": {
            ObjType.MACHINE: 422_016.0,
            ObjType.NUMANODE: 67_108_864.0,
            ObjType.L3: 180_512.0,
            ObjType.CORE: 53_312.0,
        },
    }
    GOLDEN_MAKESPAN = {
        "treematch": 0.006752746566666668,
        "nobind": 0.0072225421666666685,
    }
    GOLDEN_TRANSFERS = 176

    @pytest.fixture(scope="class")
    def runs(self):
        return {p: run_small(p) for p in ("treematch", "nobind")}

    @pytest.mark.parametrize("policy", ["treematch", "nobind"])
    def test_bytes_by_level_pinned(self, runs, policy):
        got = dict(runs[policy].metrics.bytes_by_level)
        assert got == self.GOLDEN_BYTES[policy]

    @pytest.mark.parametrize("policy", ["treematch", "nobind"])
    def test_makespan_pinned(self, runs, policy):
        assert runs[policy].time == pytest.approx(
            self.GOLDEN_MAKESPAN[policy], rel=1e-9
        )

    @pytest.mark.parametrize("policy", ["treematch", "nobind"])
    def test_transfer_count_pinned(self, runs, policy):
        # Same program, same transfer count — only the *where* differs.
        assert runs[policy].metrics.transfers == self.GOLDEN_TRANSFERS

    def test_bound_beats_unbound_on_cross_numa_traffic(self, runs):
        """The paper's claim in one assertion: binding by the
        communication pattern keeps traffic out of the cross-NUMA link.
        """
        def remote(result):
            m = result.metrics.bytes_by_level
            return sum(
                v for lvl, v in m.items()
                if lvl in (ObjType.MACHINE, ObjType.GROUP)
            )

        bound, unbound = runs["treematch"], runs["nobind"]
        assert remote(bound) <= remote(unbound)
        assert bound.time <= unbound.time

    def test_total_bytes_conserved_across_policies(self, runs):
        totals = {p: r.metrics.total_bytes for p, r in runs.items()}
        assert totals["treematch"] == totals["nobind"] == 67_764_704.0

    @pytest.mark.parametrize("policy", ["treematch", "nobind"])
    def test_fingerprint_stable_within_session(self, runs, policy):
        # The full fingerprint (time + stream + metrics) reproduces when
        # the run does — guards run_fingerprint itself against drift.
        again = run_small(policy)
        assert metrics_fingerprint(again.metrics) == metrics_fingerprint(
            runs[policy].metrics
        )
        assert stream_hash(again.trace.events) == stream_hash(
            runs[policy].trace.events
        )
