"""ORWL handles: an operation's access path to a location.

"The read/write dependencies between operations of the matrix blocks are
defined using the ``orwl_handle`` primitive which allows to ensure the
computation coherency."

A handle binds one operation to one location with one access mode and
carries the currently pending/granted :class:`~repro.orwl.fifo.Request`.
The canonical iterative lifecycle is::

    request()   # insert into the FIFO (done by the runtime at startup,
                # in global declaration order — the ORWL init protocol)
    acquire()   # block until granted        \
    ...use...                                 |  each iteration
    next_request() + release()               /   (orwl_next)
    release()   # final

The handle itself is runtime-agnostic bookkeeping; the blocking behaviour
lives in :class:`repro.orwl.runtime.OpContext`.
"""

from __future__ import annotations

from typing import Optional

from repro.orwl.fifo import AccessMode, FifoError, Request, RequestState
from repro.orwl.location import Location


class Handle:
    """Access path of one operation to one location.

    Attributes
    ----------
    location, mode:
        What is accessed and how.
    op_name:
        Owning operation (set when the operation declares the handle).
    """

    __slots__ = ("location", "mode", "op_name", "init_phase", "_request")

    def __init__(self, location: Location, mode: AccessMode, op_name: str = "") -> None:
        self.location = location
        self.mode = mode
        self.op_name = op_name
        #: ordering key of the ORWL init protocol: the runtime inserts
        #: initial requests sorted by (init_phase, declaration order), so
        #: e.g. producers' first writes can be queued ahead of consumers'
        #: first reads regardless of task declaration order.
        self.init_phase = 0
        self._request: Optional[Request] = None

    # -- protocol steps (called by the runtime/context) ---------------------

    @property
    def request(self) -> Optional[Request]:
        """The handle's live request, if any."""
        return self._request

    @property
    def is_granted(self) -> bool:
        return self._request is not None and self._request.state is RequestState.GRANTED

    @property
    def is_pending(self) -> bool:
        return self._request is not None and self._request.state is RequestState.PENDING

    def insert_request(self) -> Request:
        """Insert a fresh request into the location FIFO (``orwl_request``)."""
        if self._request is not None and self._request.state in (
            RequestState.PENDING,
            RequestState.GRANTED,
        ):
            raise FifoError(
                f"handle {self.op_name!r}->{self.location.name!r} already has a "
                f"live request ({self._request.state.value})"
            )
        self._request = self.location.fifo.insert(self.mode, tag=self.op_name)
        return self._request

    def release(self) -> None:
        """Release the granted request (``orwl_release``)."""
        if self._request is None:
            raise FifoError(f"handle {self.op_name!r} has no request to release")
        self.location.fifo.release(self._request)
        self._request = None

    def next_request(self) -> Request:
        """``orwl_next``: re-insert at the tail, then release the old grant.

        Inserting before releasing keeps the handle's position in the next
        round ahead of any competitor that might otherwise jump the queue
        — the ordering rule that makes iterative ORWL deterministic.
        Returns the *new* (pending) request.
        """
        if self._request is None or self._request.state is not RequestState.GRANTED:
            raise FifoError(
                f"orwl_next on handle {self.op_name!r} without a granted request"
            )
        old = self._request
        self._request = None  # allow insert_request
        new = self.location.fifo.insert(self.mode, tag=self.op_name)
        self._request = new
        self.location.fifo.release(old)
        return new

    def cancel(self) -> None:
        """Withdraw whatever request is live (used at op teardown)."""
        if self._request is not None:
            self.location.fifo.cancel(self._request)
            self._request = None

    def __repr__(self) -> str:
        state = self._request.state.value if self._request else "idle"
        return f"<Handle {self.op_name!r} {self.mode.value} {self.location.name!r} {state}>"
