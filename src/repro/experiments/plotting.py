"""Terminal plotting: ASCII line charts for experiment results.

No plotting library is available offline, so figures are rendered as
text — good enough to eyeball the crossovers the paper's Figure 1
shows.  :func:`ascii_plot` is generic; :func:`plot_fig1` adapts a
:class:`~repro.experiments.fig1.Fig1Result`, including shaded
confidence bands when the sweep was run with multiple seeds.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

#: Marker per series, cycled.
MARKERS = "ox+*#@"

#: Fill character of confidence bands (drawn under the series markers).
BAND_FILL = "."


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    logy: bool = False,
    xlabel: str = "",
    ylabel: str = "",
    bands: Optional[Mapping[str, Sequence[tuple[float, float, float]]]] = None,
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Points are placed on a *width* × *height* grid scaled to the data
    bounds; each series uses the next marker from :data:`MARKERS`.

    *bands* optionally maps series names to ``(x, y_lo, y_hi)`` spans
    (e.g. confidence intervals).  Each span is filled vertically with
    :data:`BAND_FILL` *under* the markers, and the band bounds take
    part in the axis scaling so the bands never clip.
    """
    import math

    bands = bands or {}
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return "(no data)"
    xs = [p[0] for p in pts] + [x for b in bands.values() for x, _, _ in b]
    ys = [p[1] for p in pts]
    band_ys = [y for b in bands.values() for _, lo, hi in b for y in (lo, hi)]
    all_ys = ys + band_ys
    if logy:
        if min(all_ys) <= 0:
            raise ValueError("logy requires positive y values")
        ys = [math.log10(y) for y in ys]
        all_ys = [math.log10(y) for y in all_ys]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(all_ys), max(all_ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0

    def col_of(x: float) -> int:
        return int((x - x0) / xspan * (width - 1))

    def row_of(y: float) -> int:
        yy = math.log10(y) if logy else y
        return int((yy - y0) / yspan * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Bands first, so series markers overwrite the fill.
    for data in bands.values():
        for x, lo, hi in data:
            col = col_of(x)
            for row in range(row_of(lo), row_of(hi) + 1):
                grid[height - 1 - row][col] = BAND_FILL
    for k, (name, data) in enumerate(series.items()):
        marker = MARKERS[k % len(MARKERS)]
        for x, y in data:
            grid[height - 1 - row_of(y)][col_of(x)] = marker

    top = 10 ** y1 if logy else y1
    bot = 10 ** y0 if logy else y0
    lines = [f"{top:10.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{bot:10.4g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x0:<10.4g}" + " " * max(width - 20, 0) + f"{x1:>10.4g}"
    )
    legend = "   ".join(
        f"{MARKERS[k % len(MARKERS)]} = {name}" for k, name in enumerate(series)
    )
    if bands:
        legend += f"   {BAND_FILL} = confidence band"
    footer = []
    if xlabel or ylabel:
        footer.append(f"x: {xlabel}   y: {ylabel}".strip())
    footer.append(legend)
    return "\n".join(lines + footer)


def plot_fig1(result, width: int = 64, height: int = 18, logy: bool = True) -> str:
    """ASCII rendering of a Figure-1 sweep (time vs cores, log y).

    A multi-seed result (``run_fig1(..., seeds=N)`` with N > 1) plots
    the per-point *mean* time and shades each curve's bootstrap
    confidence interval as a band of dots.
    """
    from repro.experiments.fig1 import IMPLEMENTATIONS

    bands = None
    if result.n_seeds > 1 and result.seed_stats:
        series = {}
        bands = {}
        for impl in IMPLEMENTATIONS:
            mean_series = result.mean_series(impl)
            if not mean_series:
                continue
            series[impl] = [(c, s.mean) for c, s in mean_series]
            bands[impl] = [(c, s.ci_lo, s.ci_hi) for c, s in mean_series]
    else:
        series = {impl: result.series(impl) for impl in IMPLEMENTATIONS}
        series = {k: v for k, v in series.items() if v}
    return ascii_plot(
        series,
        width=width,
        height=height,
        logy=logy,
        xlabel="cores",
        ylabel="processing time (simulated s)",
        bands=bands,
    )
