"""Livermore Kernel 18: 2-D explicit hydrodynamics fragment.

A second member of the Livermore suite, included to show the ORWL
decomposition machinery is not LK23-specific.  The kernel runs three
sweeps per time step over the interior of seven n×n fields::

    phase 1:  za, zb   from  zp, zq, zr, zm      (flux coefficients)
    phase 2:  zu, zv   from  za, zb, zz, zr      (velocity update)
    phase 3:  zr, zz   from  zu, zv              (field update)

Each phase is a 1-halo stencil, so a blocked implementation exchanges
frontiers *three times per time step* — a heavier synchronization
profile than LK23's single exchange, which is exactly why it makes a
good second workload for the placement study
(:func:`orwl_config` below).

Numerics: :func:`lk18_reference` is the straight loop transcription and
:func:`lk18_step` the vectorized equivalent; tests assert they match to
the last bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.lk23_orwl import Lk23Config
from repro.util.rng import SeedLike, make_rng
from repro.util.validate import ValidationError

#: Per updated point and time step: phase 1 ≈ 16 flops (2 fluxes of
#: ~8), phase 2 ≈ 24 (two 12-flop updates), phase 3 ≈ 4.
FLOPS_PER_POINT = 44

#: The kernel's stability/scaling constants (LFK values).
S_CONST = 0.0041
T_CONST = 0.0037


@dataclass
class Lk18Fields:
    """The seven fields of the kernel (all n×n)."""

    zp: np.ndarray
    zq: np.ndarray
    zr: np.ndarray
    zm: np.ndarray
    zz: np.ndarray
    zu: np.ndarray
    zv: np.ndarray

    def __post_init__(self) -> None:
        shape = self.zp.shape
        for name in ("zq", "zr", "zm", "zz", "zu", "zv"):
            if getattr(self, name).shape != shape:
                raise ValidationError(f"{name} shape differs from zp {shape}")

    def copy(self) -> "Lk18Fields":
        return Lk18Fields(*(getattr(self, f).copy() for f in
                            ("zp", "zq", "zr", "zm", "zz", "zu", "zv")))


def make_fields(n: int, seed: SeedLike = 0) -> Lk18Fields:
    """Random but well-conditioned inputs (zm bounded away from zero)."""
    if n < 4:
        raise ValidationError(f"n must be >= 4, got {n}")
    rng = make_rng(seed)
    f = lambda: rng.random((n, n)) + 0.5  # noqa: E731 - local factory
    return Lk18Fields(f(), f(), f(), f() + 1.0, f(), f() * 0.01, f() * 0.01)


def lk18_reference(fields: Lk18Fields, steps: int = 1) -> Lk18Fields:
    """Loop transcription of the three phases (ground truth, slow)."""
    if steps <= 0:
        raise ValidationError("steps must be > 0")
    w = fields.copy()
    n = w.zp.shape[0]
    for _ in range(steps):
        za = np.zeros_like(w.zp)
        zb = np.zeros_like(w.zp)
        for k in range(1, n - 1):
            for j in range(1, n - 1):
                za[j, k] = (
                    (w.zp[j - 1, k + 1] + w.zq[j - 1, k + 1] - w.zp[j - 1, k] - w.zq[j - 1, k])
                    * (w.zr[j, k] + w.zr[j - 1, k])
                    / (w.zm[j - 1, k] + w.zm[j - 1, k + 1])
                )
                zb[j, k] = (
                    (w.zp[j - 1, k] + w.zq[j - 1, k] - w.zp[j, k] - w.zq[j, k])
                    * (w.zr[j, k] + w.zr[j, k - 1])
                    / (w.zm[j, k] + w.zm[j - 1, k])
                )
        zu_new = w.zu.copy()
        zv_new = w.zv.copy()
        for k in range(1, n - 1):
            for j in range(1, n - 1):
                zu_new[j, k] = w.zu[j, k] + S_CONST * (
                    za[j, k] * (w.zz[j, k] - w.zz[j + 1, k])
                    - za[j - 1, k] * (w.zz[j, k] - w.zz[j - 1, k])
                    - zb[j, k] * (w.zz[j, k] - w.zz[j, k - 1])
                    + zb[j, k + 1] * (w.zz[j, k] - w.zz[j, k + 1])
                )
                zv_new[j, k] = w.zv[j, k] + S_CONST * (
                    za[j, k] * (w.zr[j, k] - w.zr[j + 1, k])
                    - za[j - 1, k] * (w.zr[j, k] - w.zr[j - 1, k])
                    - zb[j, k] * (w.zr[j, k] - w.zr[j, k - 1])
                    + zb[j, k + 1] * (w.zr[j, k] - w.zr[j, k + 1])
                )
        w.zu, w.zv = zu_new, zv_new
        for k in range(1, n - 1):
            for j in range(1, n - 1):
                w.zr[j, k] = w.zr[j, k] + T_CONST * w.zu[j, k]
                w.zz[j, k] = w.zz[j, k] + T_CONST * w.zv[j, k]
    return w


def _phase1(w: Lk18Fields) -> tuple[np.ndarray, np.ndarray]:
    za = np.zeros_like(w.zp)
    zb = np.zeros_like(w.zp)
    J = slice(1, -1)
    K = slice(1, -1)
    Jm = slice(0, -2)
    Kp = slice(2, None)
    Km = slice(0, -2)
    za[J, K] = (
        (w.zp[Jm, Kp] + w.zq[Jm, Kp] - w.zp[Jm, K] - w.zq[Jm, K])
        * (w.zr[J, K] + w.zr[Jm, K])
        / (w.zm[Jm, K] + w.zm[Jm, Kp])
    )
    zb[J, K] = (
        (w.zp[Jm, K] + w.zq[Jm, K] - w.zp[J, K] - w.zq[J, K])
        * (w.zr[J, K] + w.zr[J, Km])
        / (w.zm[J, K] + w.zm[Jm, K])
    )
    return za, zb


def _phase2(w: Lk18Fields, za: np.ndarray, zb: np.ndarray) -> None:
    J, K = slice(1, -1), slice(1, -1)
    Jp, Jm = slice(2, None), slice(0, -2)
    Kp, Km = slice(2, None), slice(0, -2)
    zz, zr = w.zz, w.zr
    du = S_CONST * (
        za[J, K] * (zz[J, K] - zz[Jp, K])
        - za[Jm, K] * (zz[J, K] - zz[Jm, K])
        - zb[J, K] * (zz[J, K] - zz[J, Km])
        + zb[J, Kp] * (zz[J, K] - zz[J, Kp])
    )
    dv = S_CONST * (
        za[J, K] * (zr[J, K] - zr[Jp, K])
        - za[Jm, K] * (zr[J, K] - zr[Jm, K])
        - zb[J, K] * (zr[J, K] - zr[J, Km])
        + zb[J, Kp] * (zr[J, K] - zr[J, Kp])
    )
    w.zu = w.zu.copy()
    w.zv = w.zv.copy()
    w.zu[J, K] += du
    w.zv[J, K] += dv


def _phase3(w: Lk18Fields) -> None:
    J, K = slice(1, -1), slice(1, -1)
    w.zr = w.zr.copy()
    w.zz = w.zz.copy()
    w.zr[J, K] += T_CONST * w.zu[J, K]
    w.zz[J, K] += T_CONST * w.zv[J, K]


def lk18_step(fields: Lk18Fields) -> Lk18Fields:
    """One vectorized time step (out of place)."""
    w = fields.copy()
    za, zb = _phase1(w)
    _phase2(w, za, zb)
    _phase3(w)
    return w


def lk18(fields: Lk18Fields, steps: int = 1) -> Lk18Fields:
    """*steps* vectorized time steps."""
    if steps <= 0:
        raise ValidationError("steps must be > 0")
    w = fields
    for _ in range(steps):
        w = lk18_step(w)
    return w


def orwl_config(
    n: int = 8192,
    grid_rows: int = 8,
    grid_cols: int = 8,
    iterations: int = 20,
) -> Lk23Config:
    """LK18 as an ORWL placement workload.

    Reuses the block/frontier decomposition machinery with LK18's cost
    profile: ~44 flops per point per time step and a working set of
    seven fields (so 7× the per-block stream volume of LK23's single
    iterate).  The three-phase structure triples the per-step
    synchronization, captured by running the frontier exchange 3× per
    sweep — approximated here by tripling the iteration count while
    keeping the compute per exchange at a third of a time step.
    """
    return Lk23Config(
        n=n,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        iterations=iterations * 3,  # three exchanges per time step
        flops_per_point=FLOPS_PER_POINT / 3.0,
        stream_fraction=1.0,
        element_bytes=8 * 7,  # seven fields
    )
