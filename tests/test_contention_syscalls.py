"""Edge cases of the contention model and the syscall layer.

Three families the main machine tests skirt around:

* **zero-byte transfers** — legal (an empty block handover), must cost
  zero seconds, and must still count as a transfer so the reconciliation
  invariants hold;
* **single-PU contention** — threads serialized on one PU still overlap
  at transfer *start* (load is sampled when the transfer is scheduled),
  which is exactly the DES approximation the model documents;
* **oversubscribed wakeup ordering** — more waiters than PUs released by
  one fire must resume in registration order, identically in both
  engine modes (the batched release path is a single cohort entry).
"""

from __future__ import annotations

import pytest

from repro.simulate.contention import ContentionConfig, ContentionModel
from repro.simulate.engine import ENGINE_MODES
from repro.simulate.machine import Machine
from repro.simulate.syscalls import Compute, Receive, ReceiveFromNode, Wait
from repro.topology.builder import flat_topology
from repro.topology.objects import ObjType


def _two_thread_transfer(topo, payload, consumer_pu=4, **machine_kw):
    """Producer on PU 0 fires; consumer on *consumer_pu* receives."""
    m = Machine(topo, seed=0, **machine_kw)
    t_prod = m.add_thread("p", bound_pu_os=0)
    t_cons = m.add_thread("c", bound_pu_os=consumer_pu)
    ev = m.new_event()

    def producer():
        yield Compute(1e-6)
        ev.fire()

    def consumer():
        yield Wait(ev)
        yield Receive(t_prod, payload)

    m.set_body(t_prod, producer())
    m.set_body(t_cons, consumer())
    return m, m.run()


class TestZeroByteTransfers:
    def test_zero_byte_receive_costs_nothing(self, small_topo):
        m_zero, t_zero = _two_thread_transfer(small_topo, 0)
        assert m_zero.metrics.transfers == 1
        assert m_zero.metrics.bytes_by_level[ObjType.MACHINE] == 0
        assert m_zero.metrics.transfer_time_by_level[ObjType.MACHINE] == 0.0
        # A real payload on the identical path takes strictly longer.
        _, t_payload = _two_thread_transfer(small_topo, 1 << 20)
        assert t_payload > t_zero

    def test_zero_byte_receive_from_node(self, small_topo):
        m = Machine(small_topo, seed=0)
        tid = m.add_thread("t", bound_pu_os=0)

        def body():
            yield ReceiveFromNode(1, 0.0)  # remote node, empty stream

        m.set_body(tid, body())
        m.run()
        assert m.metrics.transfers == 1
        assert m.metrics.total_bytes == 0.0
        assert m.metrics.local_fraction == 1.0  # no traffic = perfectly local

    def test_zero_byte_on_uma_machine(self):
        m = Machine(flat_topology(4), seed=0)
        tid = m.add_thread("t", bound_pu_os=0)

        def body():
            yield ReceiveFromNode(0, 0.0)

        m.set_body(tid, body())
        assert m.run() == 0.0
        assert m.metrics.transfers == 1

    @pytest.mark.parametrize("cls", [Receive, ReceiveFromNode])
    def test_negative_size_rejected(self, cls):
        with pytest.raises(ValueError, match="negative transfer size"):
            cls(0, -1.0)


class TestSinglePuContention:
    @staticmethod
    def _streams_from_node(topo, n_threads, pus, **machine_kw):
        """*n_threads* threads (cycling over *pus*) each pull 1 MiB from
        node 0's DRAM at t=0."""
        m = Machine(topo, seed=0, **machine_kw)
        for k in range(n_threads):
            tid = m.add_thread(f"t{k}", bound_pu_os=pus[k % len(pus)])
            m.set_body(tid, iter([ReceiveFromNode(0, 1 << 20)]))
        return m, m.run()

    def test_serialized_pu_still_contends_at_start(self, small_topo):
        """Transfers on one PU overlap at sampling time: the load is
        taken when each transfer is *scheduled* (all at t=0), before the
        PU serializes them — the documented start-sampling model."""
        tight = ContentionConfig(node_capacity=1.0, interconnect_capacity=1.0)
        m, _ = self._streams_from_node(
            small_topo, 4, pus=[0], contention=tight
        )
        assert m.metrics.contended_transfers == 3  # all but the first

    def test_contention_stretches_wall_time(self, small_topo):
        tight = ContentionConfig(node_capacity=1.0, interconnect_capacity=1.0)
        roomy = ContentionConfig(node_capacity=64.0, interconnect_capacity=64.0)
        _, t_tight = self._streams_from_node(small_topo, 4, [0], contention=tight)
        _, t_roomy = self._streams_from_node(small_topo, 4, [0], contention=roomy)
        assert t_tight > t_roomy

    def test_within_capacity_is_free(self, small_topo):
        roomy = ContentionConfig(node_capacity=64.0, interconnect_capacity=64.0)
        m, _ = self._streams_from_node(small_topo, 4, [0], contention=roomy)
        assert m.metrics.contended_transfers == 0

    def test_single_pu_uma_machine_never_contends(self):
        """On a one-PU UMA machine, node streams carry producer_node=-1
        (no DRAM controller to load) and NUMANODE-level transfers skip
        the interconnect — even the tightest capacities never bite."""
        tight = ContentionConfig(node_capacity=1.0, interconnect_capacity=1.0)
        m = Machine(flat_topology(1), seed=0, contention=tight)
        for k in range(4):
            tid = m.add_thread(f"t{k}", bound_pu_os=0)
            m.set_body(tid, iter([ReceiveFromNode(0, 1 << 20)]))
        t = m.run()
        assert m.metrics.contended_transfers == 0
        assert m.metrics.transfers == 4
        assert t > 0.0


class TestContentionModelUnits:
    def test_slowdown_below_capacity_is_one(self):
        cm = ContentionModel(2, ContentionConfig(node_capacity=4.0))
        cm.begin(ObjType.NUMANODE, 0)
        assert cm.slowdown(ObjType.NUMANODE, 0) == 1.0

    def test_slowdown_over_capacity_is_superlinear(self):
        cfg = ContentionConfig(
            node_capacity=1.0, interconnect_capacity=1.0, saturation_exponent=1.3
        )
        cm = ContentionModel(1, cfg)
        for _ in range(3):
            cm.begin(ObjType.NUMANODE, 0)
        assert cm.slowdown(ObjType.NUMANODE, 0) == pytest.approx(4.0**1.3)

    def test_cache_level_transfers_never_contend(self):
        cm = ContentionModel(1, ContentionConfig(node_capacity=1.0))
        for _ in range(10):
            cm.begin(ObjType.L3, 0)  # no-op: below DRAM
        assert cm.node_inflight(0) == 0
        assert cm.slowdown(ObjType.L3, 0) == 1.0

    def test_machine_level_loads_both_resources(self):
        cm = ContentionModel(1)
        cm.begin(ObjType.MACHINE, 0)
        assert cm.node_inflight(0) == 1
        assert cm.interconnect_inflight == 1
        cm.end(ObjType.MACHINE, 0)
        assert cm.node_inflight(0) == 0
        assert cm.interconnect_inflight == 0

    def test_unknown_producer_node_skips_dram(self):
        """producer_node=-1 (UMA stream) loads only the interconnect."""
        cm = ContentionModel(0, ContentionConfig(interconnect_capacity=1.0))
        cm.begin(ObjType.MACHINE, -1)
        assert cm.interconnect_inflight == 1
        assert cm.slowdown(ObjType.MACHINE, -1) > 1.0
        assert cm.slowdown(ObjType.NUMANODE, -1) == 1.0

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            ContentionModel(-1)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(node_capacity=0.0),
            dict(interconnect_capacity=-1.0),
            dict(saturation_exponent=0.5),
        ],
    )
    def test_bad_config_rejected(self, kw):
        with pytest.raises(ValueError):
            ContentionConfig(**kw)


class TestOversubscribedWakeups:
    @staticmethod
    def _barrier_run(topo, mode, n_threads):
        """*n_threads* threads on 2 PUs park on one event; a firer
        releases them all.  Returns (machine, resume order, final t)."""
        m = Machine(topo, seed=0, engine_mode=mode)
        ev = m.new_event()
        order: list[int] = []
        for k in range(n_threads):
            tid = m.add_thread(f"w{k}", bound_pu_os=k % 2)

            def body(k=k):
                yield Wait(ev)
                order.append(k)
                yield Compute(1e-3)

            m.set_body(tid, body())
        firer = m.add_thread("firer", bound_pu_os=2)

        def fire_body():
            yield Compute(1e-6)
            ev.fire()

        m.set_body(firer, fire_body())
        return m, order, m.run()

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_wakeup_in_registration_order(self, small_topo, mode):
        _, order, _ = self._barrier_run(small_topo, mode, 6)
        assert order == [0, 1, 2, 3, 4, 5]

    def test_modes_agree_on_oversubscribed_barrier(self, small_topo):
        runs = {
            mode: self._barrier_run(small_topo, mode, 8)
            for mode in ENGINE_MODES
        }
        m_s, order_s, t_s = runs["scalar"]
        m_b, order_b, t_b = runs["batched"]
        assert order_b == order_s
        assert t_b == t_s
        assert m_b.metrics.summary() == m_s.metrics.summary()
        assert m_b.engine.events_fired == m_s.engine.events_fired

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_wait_time_accounts_queueing(self, small_topo, mode):
        """Every waiter's park time lands in wait_time; with 3 waiters
        per PU the serialized computes keep the total deterministic."""
        m, _, _ = self._barrier_run(small_topo, mode, 6)
        assert m.metrics.wait_time > 0.0
