"""Recursive-bisection grouping (Scotch-style alternative strategy).

Graph partitioners like Scotch build k-way partitions by recursive
edge-cut bisection.  This module implements that approach for the
``GroupProcesses`` step, as a comparison point for TreeMatch's native
greedy grouping (ablation: which grouping heuristic fills the tree
better?).

The bisection itself is Kernighan–Lin on the weighted affinity graph
(via networkx); odd group counts are handled by peeling one
greedy-packed group before recursing.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.treematch.grouping import _validate, group_greedy
from repro.util.validate import ValidationError


def _to_graph(m: np.ndarray, nodes: list[int]) -> "nx.Graph":
    g = nx.Graph()
    g.add_nodes_from(nodes)
    for ai in range(len(nodes)):
        for bi in range(ai + 1, len(nodes)):
            w = m[nodes[ai], nodes[bi]]
            if w > 0:
                g.add_edge(nodes[ai], nodes[bi], weight=float(w))
    return g


def _bisect(m: np.ndarray, nodes: list[int], seed: int) -> tuple[list[int], list[int]]:
    """Split *nodes* into two equal halves minimizing the weighted cut."""
    if len(nodes) % 2 != 0:
        raise ValidationError("bisection needs an even node count")
    graph = _to_graph(m, nodes)
    half_a, half_b = nx.algorithms.community.kernighan_lin_bisection(
        graph, weight="weight", seed=seed
    )
    a, b = sorted(half_a), sorted(half_b)
    if len(a) != len(b):  # pragma: no cover - KL keeps halves balanced
        raise ValidationError("unbalanced bisection")
    return a, b


def _peel_group(m: np.ndarray, nodes: list[int], size: int) -> list[int]:
    """Greedily peel one affinity-dense group of *size* from *nodes*."""
    sub = m[np.ix_(nodes, nodes)]
    groups = group_greedy(np.ascontiguousarray(sub), size)
    # group_greedy seeds with the heaviest entity: take its group.
    first = groups[0]
    return sorted(nodes[i] for i in first)


def group_bisection(m: np.ndarray, group_size: int, seed: int = 0) -> list[list[int]]:
    """Partition entities into fixed-size groups by recursive bisection.

    Same contract as :func:`repro.treematch.grouping.group_processes`:
    the matrix order must be a multiple of *group_size*; returns the
    groups in a deterministic order.
    """
    m = _validate(m, group_size)
    n = m.shape[0]
    if group_size == n:
        return [list(range(n))]
    if group_size == 1:
        return [[i] for i in range(n)]

    out: list[list[int]] = []

    def recurse(nodes: list[int]) -> None:
        k = len(nodes) // group_size
        if k == 1:
            out.append(sorted(nodes))
            return
        if k % 2 == 1:
            # Odd split: peel one group, recurse on the remainder.
            group = _peel_group(m, nodes, group_size)
            out.append(group)
            rest = [x for x in nodes if x not in set(group)]
            recurse(rest)
            return
        a, b = _bisect(m, nodes, seed)
        recurse(a)
        recurse(b)

    recurse(list(range(n)))
    # Deterministic group order (by smallest member).
    out.sort(key=lambda g: g[0])
    return out
