"""Tests for the scaling study, paired statistics, and the bench gate.

Covers the acceptance contracts of the scaling PR:

* paired permutation test on identical samples reports p = 1 and
  Cliff's delta = 0;
* Holm–Bonferroni never reports a corrected p below the raw p
  (property-tested), preserves input order, and clips to 1;
* the scaling experiment sweeps ascending sizes with matched seed
  schedules, renders an aligned speedup table, and dumps valid JSON;
* ``repro.tools.bench --compare`` passes against the committed
  baseline and fails (nonzero exit) on a synthetically regressed one.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.scaling import (
    CELLS_PER_CORE,
    matrix_order,
    run_scaling,
    run_scaling_point,
)
from repro.stats.significance import (
    cliffs_delta,
    cliffs_delta_label,
    compare_paired,
    correct_verdicts,
    holm_bonferroni,
    paired_permutation_pvalue,
)
from repro.tools.bench import compare_reports
from repro.util.validate import ValidationError

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "baseline_ci.json"

#: Small-but-real sweep configuration shared by the experiment tests:
#: two machine sizes, ~5 % of the paper's per-core work (enough for
#: communication to matter), two matched seeds.
SMALL = dict(
    presets=("smp48x8", "paper"),  # deliberately unsorted
    iterations=1,
    cells_per_core=65536,
    seeds=2,
    n_workers=1,
)


@pytest.fixture(scope="module")
def sweep():
    return run_scaling(**SMALL)


class TestPairedStats:
    def test_identical_samples_are_null(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        p, method = paired_permutation_pvalue(xs, xs)
        assert p == 1.0
        assert method == "exact-sign-flip"
        assert cliffs_delta(xs, xs) == 0.0

    def test_clear_separation_is_small_p_large_delta(self):
        a = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        b = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5]
        p, method = paired_permutation_pvalue(a, b)
        assert method == "exact-sign-flip"
        assert p == pytest.approx(2 / 2**6)
        assert cliffs_delta(a, b) == 1.0
        assert cliffs_delta_label(1.0) == "large"
        assert cliffs_delta_label(0.0) == "negligible"

    def test_monte_carlo_path_is_deterministic(self):
        a = list(range(20))  # 2^20 sign flips > exact limit
        b = [x + 0.5 for x in a]
        p1, m1 = paired_permutation_pvalue([float(x) for x in a], b)
        p2, m2 = paired_permutation_pvalue([float(x) for x in a], b)
        assert m1 == m2 == "monte-carlo-sign-flip"
        assert p1 == p2

    def test_single_pair_is_insufficient(self):
        p, method = paired_permutation_pvalue([1.0], [2.0])
        assert p is None
        assert method == "none"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            paired_permutation_pvalue([1.0, 2.0], [1.0])

    @given(
        ps=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_holm_never_below_raw(self, ps):
        corrected = holm_bonferroni(ps)
        assert len(corrected) == len(ps)
        for raw, corr in zip(ps, corrected):
            assert corr >= raw
            assert corr <= 1.0
        # Step-down monotonicity: sorting by raw p sorts corrected too.
        order = sorted(range(len(ps)), key=lambda k: ps[k])
        ranked = [corrected[k] for k in order]
        assert ranked == sorted(ranked)

    def test_holm_known_values(self):
        # Classic example: m=3 raw ps.
        assert holm_bonferroni([0.01, 0.04, 0.03]) == [0.03, 0.06, 0.06]
        with pytest.raises(ValidationError):
            holm_bonferroni([1.5])

    def test_compare_paired_and_family_correction(self):
        base = [4.0, 4.1, 3.9, 4.2]
        cand = [1.0, 1.1, 0.9, 1.2]
        v = compare_paired("base", base, "cand", cand)
        assert v.n_pairs == 4
        assert v.speedup_mean > 3.0
        assert v.p_corrected == v.p_value
        family = correct_verdicts([v, v, v])
        for corrected in family:
            assert corrected.p_corrected >= corrected.p_value
        assert "cand vs base" in str(v)  # renders candidate-first


class TestScalingExperiment:
    def test_weak_scaling_matrix_order(self):
        assert matrix_order(192, CELLS_PER_CORE) == 16383  # isqrt rounding
        assert matrix_order(768) == 2 * matrix_order(192) + 1
        with pytest.raises(ValidationError):
            matrix_order(0)

    def test_point_runs_on_generated_preset(self):
        p = run_scaling_point(
            "smp48x8", "orwl-bind", iterations=1, cells_per_core=512
        )
        assert p.n_cores == 384
        assert p.n == matrix_order(384, 512)
        assert p.time > 0
        with pytest.raises(ValidationError):
            run_scaling_point("paper", "mpi")

    def test_sizes_sorted_and_seeds_matched(self, sweep):
        assert sweep.presets == ["paper", "smp48x8"]  # re-sorted ascending
        assert sweep.sizes == {"paper": 192, "smp48x8": 384}
        for preset in sweep.presets:
            for impl in sweep.implementations():
                times = sweep.times_of(preset, impl)
                assert len(times) == 2
                # replicate 0 is the base-seed run reported in `points`
                assert times[0] == sweep.point_of(preset, impl).time

    def test_bind_beats_nobind_at_every_size(self, sweep):
        # The full-workload growth curve is the nightly sweep's job; at
        # this test-sized workload we pin the qualitative claim only.
        for preset in sweep.presets:
            assert sweep.speedup(preset, "orwl-nobind") > 1.2

    def test_paired_verdicts_are_corrected_families(self, sweep):
        verdicts = sweep.paired_verdicts()
        assert set(verdicts) == {"orwl-nobind", "openmp"}
        for rows in verdicts.values():
            assert [preset for preset, _ in rows] == sweep.presets
            for _, v in rows:
                assert v.candidate == "orwl-bind"
                assert v.n_pairs == 2
                assert v.p_corrected >= v.p_value

    def test_speedup_table_is_aligned(self, sweep):
        lines = sweep.speedup_table().splitlines()
        header, rule = lines[0], lines[1]
        assert len(rule) == len(header)
        for row in lines[2 : 2 + len(sweep.presets)]:
            assert len(row) == len(header)
        assert "paired sign-flip permutation tests" in sweep.speedup_table()

    def test_json_dump_is_serializable(self, sweep):
        blob = json.dumps(sweep.to_json_dict())
        back = json.loads(blob)
        assert back["format"] == "repro-scaling"
        assert back["n_seeds"] == 2
        assert len(back["points"]) == 2 * 3
        assert len(back["paired_significance"]) == 2 * 2
        assert set(back["saturation"]) == {"orwl-nobind", "openmp"}

    def test_unknown_inputs_rejected(self):
        with pytest.raises(KeyError):
            run_scaling(presets=("smp7x7",), seeds=1)
        with pytest.raises(ValidationError):
            run_scaling(presets=("paper",), implementations=("mpi",))


class TestScalingCli:
    def test_cli_smoke(self, tmp_path, capsys):
        from repro.tools.scaling import main

        out_json = tmp_path / "scaling.json"
        out_chart = tmp_path / "chart.txt"
        rc = main(
            [
                "--preset", "paper",
                "--seeds", "2",
                "--iterations", "1",
                "--cells-per-core", "512",
                "--workers", "1",
                "--json", str(out_json),
                "--chart", str(out_chart),
                "--plot",
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "preset" in printed and "p-corr" in printed
        assert "ORWL-Bind speedup" in out_chart.read_text()
        assert json.loads(out_json.read_text())["format"] == "repro-scaling"

    def test_cli_rejects_unknown_preset(self, capsys):
        from repro.tools.scaling import main

        with pytest.raises(SystemExit):
            main(["--preset", "paper,smp7x7"])


class TestBenchCompareGate:
    def _baseline(self):
        return json.loads(BASELINE.read_text())

    def test_committed_baseline_passes_against_itself(self):
        baseline = self._baseline()
        passed, failed = compare_reports(baseline, baseline)
        assert failed == []
        expected = len(baseline["fig1"]["stats"]) + 1  # + bit-identical
        if "dag" in baseline:
            expected += len(baseline["dag"]["stats"]) + 1
        assert len(passed) == expected

    def test_regressed_current_fails(self):
        baseline = self._baseline()
        current = json.loads(BASELINE.read_text())
        for row in current["fig1"]["stats"]:
            row["mean"] *= 2.0
        passed, failed = compare_reports(current, baseline)
        assert len(failed) == len(baseline["fig1"]["stats"])
        assert all("regressed" in line for line in failed)

    def test_within_threshold_wobble_passes(self):
        baseline = self._baseline()
        current = json.loads(BASELINE.read_text())
        for row in current["fig1"]["stats"]:
            row["mean"] = row["ci_hi"] * 1.2  # inside the 25 % margin
        _, failed = compare_reports(current, baseline)
        assert failed == []

    def test_determinism_regression_fails(self):
        baseline = self._baseline()
        current = json.loads(BASELINE.read_text())
        current["fig1"]["bit_identical"] = False
        _, failed = compare_reports(current, baseline)
        assert any("bit-identical" in line for line in failed)

    def test_missing_stats_sections_fail(self):
        baseline = self._baseline()
        _, failed = compare_reports({"fig1": {}}, baseline)
        assert any("current run has no fig1 stats" in line for line in failed)
        _, failed = compare_reports(baseline, {"fig1": {}})
        assert any("baseline has no fig1 stats" in line for line in failed)

    @pytest.mark.slow
    def test_cli_gate_exit_codes(self, tmp_path):
        from repro.tools.bench import main

        out = tmp_path / "bench.json"
        rc = main(
            ["--quick", "--seeds", "3", "--output", str(out),
             "--compare", str(BASELINE)]
        )
        assert rc == 0

        regressed = json.loads(BASELINE.read_text())
        for row in regressed["fig1"]["stats"]:
            row["mean"] *= 0.1
            row["ci_hi"] *= 0.1
            row["ci_lo"] *= 0.1
        bad = tmp_path / "regressed_baseline.json"
        bad.write_text(json.dumps(regressed))
        rc = main(
            ["--quick", "--seeds", "3", "--output", str(out),
             "--compare", str(bad)]
        )
        assert rc == 1
