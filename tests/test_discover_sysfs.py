"""Tests for Linux sysfs topology discovery against a synthetic tree."""

import pytest

from repro.topology import discover as disc
from repro.topology.objects import ObjType


def make_sysfs(tmp_path, cpus):
    """Build a fake /sys/devices/system/cpu tree.

    *cpus* is a list of (cpu_id, node, package, core) tuples.
    """
    root = tmp_path / "cpu"
    root.mkdir()
    ids = sorted(c[0] for c in cpus)
    (root / "online").write_text(
        ",".join(str(i) for i in ids) + "\n"
    )
    for cpu, node, pkg, core in cpus:
        base = root / f"cpu{cpu}"
        (base / "topology").mkdir(parents=True)
        (base / "topology" / "physical_package_id").write_text(f"{pkg}\n")
        (base / "topology" / "core_id").write_text(f"{core}\n")
        (base / f"node{node}").mkdir()
    return root


class TestDiscoverSysfs:
    def test_dual_socket_ht(self, tmp_path, monkeypatch):
        # 2 nodes x 1 package x 2 cores x 2 threads = 8 cpus
        cpus = []
        cpu = 0
        for node in range(2):
            for core in range(2):
                for _t in range(2):
                    cpus.append((cpu, node, node, core))
                    cpu += 1
        monkeypatch.setattr(disc, "_SYS_CPU", make_sysfs(tmp_path, cpus))
        topo = disc.discover_linux()
        assert topo is not None
        assert topo.nb_pus == 8
        assert topo.nbobjs_by_type(ObjType.NUMANODE) == 2
        assert topo.nbobjs_by_type(ObjType.CORE) == 4
        assert topo.has_hyperthreading()
        assert topo.arities()  # balanced envelope

    def test_single_cpu(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            disc, "_SYS_CPU", make_sysfs(tmp_path, [(0, 0, 0, 0)])
        )
        topo = disc.discover_linux()
        assert topo.nb_pus == 1

    def test_missing_topology_files_fall_back(self, tmp_path, monkeypatch):
        root = tmp_path / "cpu"
        (root / "cpu0").mkdir(parents=True)
        (root / "cpu1").mkdir()
        (root / "online").write_text("0-1\n")
        monkeypatch.setattr(disc, "_SYS_CPU", root)
        topo = disc.discover_linux()
        assert topo is not None
        assert topo.nb_pus == 2

    def test_no_online_file_enumerates_dirs(self, tmp_path, monkeypatch):
        root = tmp_path / "cpu"
        for k in range(3):
            (root / f"cpu{k}" / "topology").mkdir(parents=True)
            (root / f"cpu{k}" / "topology" / "physical_package_id").write_text("0")
            (root / f"cpu{k}" / "topology" / "core_id").write_text(str(k))
        monkeypatch.setattr(disc, "_SYS_CPU", root)
        topo = disc.discover_linux()
        assert topo.nb_pus == 3

    def test_empty_sysfs_returns_none(self, tmp_path, monkeypatch):
        root = tmp_path / "cpu"
        root.mkdir()
        monkeypatch.setattr(disc, "_SYS_CPU", root)
        assert disc.discover_linux() is None

    def test_discover_wrapper_handles_missing_dir(self, tmp_path, monkeypatch):
        monkeypatch.setattr(disc, "_SYS_CPU", tmp_path / "nonexistent")
        assert disc.discover() is None

    def test_asymmetric_machine_balanced_envelope(self, tmp_path, monkeypatch):
        # Node 0 has 2 cores, node 1 has 1: envelope is 2 cores per node.
        cpus = [(0, 0, 0, 0), (1, 0, 0, 1), (2, 1, 1, 0)]
        monkeypatch.setattr(disc, "_SYS_CPU", make_sysfs(tmp_path, cpus))
        topo = disc.discover_linux()
        assert topo.nbobjs_by_type(ObjType.NUMANODE) == 2
        # Balanced envelope: 2 cores per package even on the small node.
        assert topo.nbobjs_by_type(ObjType.CORE) == 4
        assert topo.arities()
