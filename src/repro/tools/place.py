"""Placement-service CLI: online, fault-aware mapping queries.

Front end of :class:`repro.placement.service.PlacementService`.  Three
subcommands:

* ``query`` — one-shot: matrix + topology (+ optional dead PUs) in,
  mapping + provenance out.  ``--failed 4 8 18`` answers "the machine
  just lost PUs 4, 8 and 18 — where do my threads go now?" without
  disturbing survivors (``--mode full`` forces the restrict-and-rerun
  reference instead).
* ``serve`` — a line-oriented JSON service on stdin/stdout: each
  request line is answered with a decision line; ``fail``/``drain``/
  ``restore`` requests mutate the fault state between queries.
* ``bench`` — measure decision latency on the spot: cold vs warm query
  walls and the warm p50 for the chosen matrix and topology.

Usage::

    python -m repro.tools.place query --demo 8 --failed 4 8
    python -m repro.tools.place query comm.mat paper-smp --json
    echo '{"op": "query"}' | python -m repro.tools.place serve --demo 8
    python -m repro.tools.place bench --demo 24 paper-smp
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.placement.service import Decision, PlacementService
from repro.tools._common import resolve_topology
from repro.treematch import cost


def _load_matrix(args: argparse.Namespace) -> CommMatrix:
    if args.demo is not None:
        # With --demo the first positional (if any) is the topology.
        if args.matrix:
            args.topology = args.matrix
        side = args.demo
        return patterns.stencil_2d(side, side, edge_volume=1000.0)
    if args.matrix:
        return CommMatrix.load(args.matrix)
    sys.exit("error: give a matrix file or --demo N")


def _decision_dict(decision: Decision, topo, matrix) -> dict:
    return {
        "mapping": list(decision.mapping.pu_of),
        "method": decision.method,
        "epoch": decision.epoch,
        "failed": list(decision.failed),
        "drained": list(decision.drained),
        "moved": list(decision.moved),
        "cached": decision.cached,
        "latency_us": decision.latency_s * 1e6,
        "hop_bytes": cost.hop_bytes(decision.mapping, matrix, topo),
        "key": decision.key[:16],
    }


def _print_decision(decision: Decision, topo, matrix) -> None:
    info = _decision_dict(decision, topo, matrix)
    print(f"method      {info['method']}   (epoch {info['epoch']}, "
          f"{'warm' if info['cached'] else 'cold'}, "
          f"{info['latency_us']:.0f} us)")
    if info["failed"] or info["drained"]:
        print(f"dead PUs    failed={info['failed']} drained={info['drained']}")
    if info["moved"]:
        print(f"moved       {len(info['moved'])} threads: {info['moved']}")
    print(f"hop-bytes   {info['hop_bytes']:.0f}")
    for t in range(decision.mapping.n_threads):
        pu = decision.mapping.pu(t)
        print(f"{decision.mapping.labels[t]}\t{pu if pu >= 0 else 'unbound'}")


def _cmd_query(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args)
    topo = resolve_topology(args.topology)
    service = PlacementService(topo, strategy=args.strategy)
    if args.failed:
        service.fail(*args.failed)
    if args.drained:
        service.drain(*args.drained)
    decision = service.query_sync(matrix, mode=args.mode)
    if args.json:
        print(json.dumps(_decision_dict(decision, topo, matrix), sort_keys=True))
    else:
        _print_decision(decision, topo, matrix)
    return 0


def serve_request(
    service: PlacementService, topo, base_matrix: CommMatrix, line: str
) -> dict:
    """Answer one ``serve`` request line (shared by the loop and tests).

    Ops: ``query`` / ``fail`` / ``drain`` / ``restore`` / ``stats`` /
    ``health`` (liveness: uptime, queries served, last error) /
    ``metrics`` (the registry snapshot, plus derived SLO lines).
    """
    try:
        request = json.loads(line)
        op = request.get("op", "query")
        if op == "query":
            matrix = base_matrix
            if "matrix" in request:
                matrix = CommMatrix(request["matrix"], symmetrize=True)
            decision = service.query_sync(
                matrix, mode=request.get("mode", "auto")
            )
            return _decision_dict(decision, topo, matrix)
        if op in ("fail", "drain", "restore"):
            getattr(service, op)(*request.get("pus", []))
            return {"ok": True, "epoch": service.epoch}
        if op == "stats":
            return service.stats()
        if op == "health":
            return service.health()
        if op == "metrics":
            from repro.metrics import core as metrics_core

            return {
                "enabled": metrics_core.is_enabled(),
                "slo": service.slo(),
                **metrics_core.registry().snapshot(),
            }
        return {"error": f"unknown op {op!r}"}
    except Exception as exc:  # a bad request must not kill the server
        service.record_error(exc)
        return {"error": str(exc)}


def _cmd_serve(args: argparse.Namespace) -> int:
    """One JSON request per stdin line; one JSON decision per stdout line.

    Requests: ``{"op": "query", "mode": "auto"}`` (the matrix is the
    one the server was started with, unless the request carries
    ``"matrix": [[...]]`` inline), ``{"op": "fail", "pus": [4, 8]}``,
    ``"drain"``, ``"restore"``, ``{"op": "stats"}``, ``{"op":
    "health"}``, ``{"op": "metrics"}``.

    Metric collection is switched on for the lifetime of the server (a
    service with no live counters has no health story).  ``--http
    PORT`` additionally serves Prometheus ``/metrics`` and JSON
    ``/healthz`` over HTTP (port 0 = OS-assigned, printed on stderr).

    Exits cleanly (code 0) on EOF, a closed stdin, a broken stdout
    pipe, or Ctrl-C — a supervisor restarting the reader must not see a
    traceback.
    """
    from repro.metrics import core as metrics_core

    base_matrix = _load_matrix(args)
    topo = resolve_topology(args.topology)
    metrics_core.enable()
    service = PlacementService(topo, strategy=args.strategy)
    httpd = None
    if args.http is not None:
        from repro.metrics.httpd import MetricsServer

        httpd = MetricsServer(args.http, health_fn=service.health).start()
        print(f"[serve] metrics at {httpd.url}/metrics, health at "
              f"{httpd.url}/healthz", file=sys.stderr, flush=True)
    try:
        while True:
            try:
                line = sys.stdin.readline()
            except ValueError:  # stdin closed under us
                break
            if not line:  # EOF
                break
            line = line.strip()
            if not line:
                continue
            response = serve_request(service, topo, base_matrix, line)
            print(json.dumps(response, sort_keys=True), flush=True)
    except (KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        if httpd is not None:
            httpd.stop()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.exec.cache import clear_cache, reset_cache_stats

    matrix = _load_matrix(args)
    topo = resolve_topology(args.topology)
    clear_cache()
    reset_cache_stats()
    service = PlacementService(topo, strategy=args.strategy)

    t0 = time.perf_counter()
    service.query_sync(matrix)
    cold = time.perf_counter() - t0

    warm: list[float] = []
    for _ in range(args.iterations):
        t0 = time.perf_counter()
        service.query_sync(matrix)
        warm.append(time.perf_counter() - t0)
    warm.sort()
    p50 = warm[len(warm) // 2]
    p99 = warm[min(len(warm) - 1, int(len(warm) * 0.99))]
    print(f"topology        {topo.name} ({topo.nb_pus} PUs)")
    print(f"matrix order    {matrix.order}")
    print(f"cold query      {cold * 1e3:.2f} ms")
    print(f"warm p50        {p50 * 1e6:.1f} us")
    print(f"warm p99        {p99 * 1e6:.1f} us")
    print(f"warm speedup    {cold / p50:.0f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.place", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("matrix", nargs="?", help="communication matrix file")
        p.add_argument(
            "topology", nargs="?", default="paper-smp",
            help="preset name, 'host', JSON file, or synthetic spec",
        )
        p.add_argument(
            "--demo", type=int, metavar="N",
            help="use an N x N built-in stencil matrix instead of a file",
        )
        p.add_argument("--strategy", default="auto", help="grouping strategy")

    q = sub.add_parser("query", help="one-shot placement query")
    common(q)
    q.add_argument(
        "--failed", type=int, nargs="*", default=[], metavar="PU",
        help="PU os indices to treat as failed",
    )
    q.add_argument(
        "--drained", type=int, nargs="*", default=[], metavar="PU",
        help="PU os indices to treat as drained",
    )
    q.add_argument(
        "--mode", default="auto", choices=("auto", "incremental", "full"),
        help="repair path under failures (default: auto = incremental)",
    )
    q.add_argument("--json", action="store_true", help="machine-readable output")
    q.set_defaults(fn=_cmd_query)

    s = sub.add_parser("serve", help="line-oriented JSON service on stdin")
    common(s)
    s.add_argument(
        "--http", type=int, metavar="PORT", default=None,
        help="also serve HTTP /metrics + /healthz on PORT (0 = pick a "
             "free port, printed on stderr)",
    )
    s.set_defaults(fn=_cmd_serve)

    b = sub.add_parser("bench", help="measure decision latency")
    common(b)
    b.add_argument(
        "--iterations", type=int, default=200,
        help="warm queries to sample (default: 200)",
    )
    b.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
