"""lstopo-like topology viewer.

Usage::

    python -m repro.tools.lstopo                   # the paper's machine
    python -m repro.tools.lstopo host              # this machine (Linux)
    python -m repro.tools.lstopo "numa:2 core:4 pu:2"
    python -m repro.tools.lstopo topo.json --export out.json
"""

from __future__ import annotations

import argparse

from repro.tools._common import resolve_topology
from repro.topology import query, serialize


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.lstopo", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "topology",
        nargs="?",
        default="paper-smp",
        help="preset name, 'host', JSON file, or synthetic spec "
        "(default: paper-smp)",
    )
    parser.add_argument(
        "--summary", action="store_true", help="print object counts only"
    )
    parser.add_argument(
        "--export", metavar="FILE", help="also write the topology as JSON"
    )
    parser.add_argument(
        "--svg", metavar="FILE", help="also render the topology as SVG"
    )
    args = parser.parse_args(argv)

    topo = resolve_topology(args.topology)
    counts = ", ".join(f"{k}: {v}" for k, v in query.summarize(topo).items())
    print(f"{topo.name} ({counts})")
    if not args.summary:
        print(topo.render())
    if args.export:
        serialize.save(topo, args.export)
        print(f"exported to {args.export}")
    if args.svg:
        from repro.topology.svg import save_svg

        save_svg(topo, args.svg)
        print(f"rendered to {args.svg}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
