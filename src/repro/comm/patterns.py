"""Synthetic communication patterns.

These generate :class:`~repro.comm.matrix.CommMatrix` instances for the
workload shapes the paper and its ablations use.  The central one is
:func:`stencil_2d`: the LK23 decomposition exchanges block *edges* (heavy)
and *corners* (light) with the 8 neighbours, which is exactly the affinity
structure TreeMatch exploits.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.util.rng import SeedLike, make_rng
from repro.util.validate import ValidationError, check_positive


def stencil_2d(
    rows: int,
    cols: int,
    edge_volume: float = 1.0,
    corner_volume: Optional[float] = None,
    diagonal: bool = True,
    periodic: bool = False,
) -> CommMatrix:
    """Block-grid stencil affinity: *rows* × *cols* blocks, row-major ids.

    Horizontal/vertical neighbours exchange *edge_volume*; diagonal
    neighbours exchange *corner_volume* (default ``edge_volume / 64``,
    reflecting that a corner is a single element while an edge is a whole
    block side).  With *periodic*, the grid wraps (torus).
    """
    if rows <= 0 or cols <= 0:
        raise ValidationError(f"grid must be positive, got {rows}x{cols}")
    check_positive(edge_volume, "edge_volume")
    if corner_volume is None:
        corner_volume = edge_volume / 64.0
    n = rows * cols
    m = np.zeros((n, n))

    def bid(r: int, c: int) -> Optional[int]:
        if periodic:
            return (r % rows) * cols + (c % cols)
        if 0 <= r < rows and 0 <= c < cols:
            return r * cols + c
        return None

    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            edge_neighbors = [(r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)]
            for rr, cc in edge_neighbors:
                j = bid(rr, cc)
                if j is not None and j != i:
                    m[i, j] = max(m[i, j], edge_volume)
            if diagonal:
                for rr, cc in [(r - 1, c - 1), (r - 1, c + 1), (r + 1, c - 1), (r + 1, c + 1)]:
                    j = bid(rr, cc)
                    if j is not None and j != i:
                        m[i, j] = max(m[i, j], corner_volume)
    labels = [f"b{r}.{c}" for r in range(rows) for c in range(cols)]
    return CommMatrix(m, labels=labels)


def ring(n: int, volume: float = 1.0) -> CommMatrix:
    """A 1-D ring: each entity talks to its two cyclic neighbours."""
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    check_positive(volume, "volume")
    m = np.zeros((n, n))
    if n > 1:
        for i in range(n):
            j = (i + 1) % n
            if i != j:
                m[i, j] = m[j, i] = volume
    return CommMatrix(m)


def all_to_all(n: int, volume: float = 1.0) -> CommMatrix:
    """Uniform all-to-all traffic (placement-indifferent worst case)."""
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    m = np.full((n, n), float(volume))
    np.fill_diagonal(m, 0.0)
    return CommMatrix(m)


def random_sparse(
    n: int,
    density: float = 0.2,
    max_volume: float = 100.0,
    seed: SeedLike = None,
) -> CommMatrix:
    """Random symmetric sparse traffic with the given pair density."""
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    if not 0.0 <= density <= 1.0:
        raise ValidationError(f"density must be in [0, 1], got {density}")
    rng = make_rng(seed)
    upper = np.triu(rng.random((n, n)) < density, k=1)
    vols = rng.uniform(1.0, max_volume, size=(n, n))
    m = np.where(upper, vols, 0.0)
    m = m + m.T
    return CommMatrix(m)


def clustered(
    n_clusters: int,
    cluster_size: int,
    intra_volume: float = 100.0,
    inter_volume: float = 1.0,
    seed: SeedLike = None,
    shuffle: bool = True,
) -> CommMatrix:
    """Block-diagonal-heavy traffic: dense clusters, light cross-traffic.

    The canonical "there is a right answer" mapping input: a good
    placement puts each cluster under one low tree level.  With *shuffle*
    the entity numbering is permuted so the structure is not already laid
    out contiguously (otherwise a compact mapping is accidentally optimal).
    """
    if n_clusters <= 0 or cluster_size <= 0:
        raise ValidationError("n_clusters and cluster_size must be > 0")
    n = n_clusters * cluster_size
    m = np.full((n, n), float(inter_volume))
    for k in range(n_clusters):
        lo, hi = k * cluster_size, (k + 1) * cluster_size
        m[lo:hi, lo:hi] = intra_volume
    np.fill_diagonal(m, 0.0)
    cm = CommMatrix(m)
    if shuffle:
        rng = make_rng(seed)
        perm = rng.permutation(n)
        cm = cm.permuted(perm.tolist())
    return cm


def butterfly(stages: int, volume: float = 1.0) -> CommMatrix:
    """FFT-butterfly traffic over ``2**stages`` entities.

    Entity *i* talks to ``i ^ (1 << s)`` at every stage *s* — a pattern
    with no perfect tree embedding, stressing the grouping heuristic.
    """
    if stages <= 0:
        raise ValidationError(f"stages must be > 0, got {stages}")
    n = 1 << stages
    m = np.zeros((n, n))
    for s in range(stages):
        for i in range(n):
            j = i ^ (1 << s)
            m[i, j] = m[j, i] = m[i, j] + volume
    return CommMatrix(m)


def square_grid_shape(n_blocks: int) -> tuple[int, int]:
    """Most-square ``rows × cols`` factorization of *n_blocks*.

    Used to lay out P stencil blocks for a P-task run: returns the factor
    pair with the smallest aspect ratio, rows <= cols.
    """
    if n_blocks <= 0:
        raise ValidationError(f"n_blocks must be > 0, got {n_blocks}")
    best = (1, n_blocks)
    for r in range(1, int(math.isqrt(n_blocks)) + 1):
        if n_blocks % r == 0:
            best = (r, n_blocks // r)
    return best
