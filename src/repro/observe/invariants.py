"""Conservation-law checking for simulation runs.

Every number in EXPERIMENTS.md flows through ``MachineMetrics``; an
accounting bug there would silently corrupt every experiment.  The
:class:`InvariantChecker` cross-audits three independent records of the
same run — the aggregate counters, the per-thread counters, and the
event stream — and reports any disagreement as a structured
:class:`Violation`:

* **thread-time-accounting** — for every finished thread,
  ``compute + transfer + lock-wait + runq-wait == finish time``
  (migration penalties and jitter are charged *inside* compute/transfer
  durations, so the ledger closes exactly; threads are busy, blocked, or
  queued at all times between start and finish).
* **compute/wait/runq-time-conservation** — aggregate counters equal the
  sums of the corresponding traced spans *and* the per-thread counters.
* **transfer-bytes/time-conservation, transfer-count** — per-level
  ``bytes_by_level`` / ``transfer_time_by_level`` equal the traced
  transfer totals.
* **migration-accounting** — migration count and penalty totals agree
  between counters and events.
* **monotonic-timestamps** — the engine clock never went backwards and
  each thread's spans are ordered and non-overlapping.
* **non-negative-duration** — no event has a negative duration or
  timestamp.
* **critical-path-bound** — the longest weighted dependency chain
  (:func:`repro.perf.extract_critical_path`) respects
  ``critical_path <= makespan <= serial_time``.
* **numa-traffic-reconciliation** — the node×node traffic matrix
  (:func:`repro.perf.traffic_matrix`) reconciles with
  ``bytes_by_level``: diagonal = node-local levels, off-diagonal =
  GROUP/MACHINE (= ``MachineMetrics.remote_bytes``), every transfer
  attributed to a valid node pair.

Use :meth:`InvariantChecker.check` after a run; raise on violation with
:meth:`InvariantReport.raise_if_violations`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.observe.tracer import SPAN_KINDS, TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulate.machine import Machine

#: Names of all invariants the checker knows, in check order.
ALL_INVARIANTS = (
    "non-negative-duration",
    "monotonic-timestamps",
    "thread-time-accounting",
    "compute-time-conservation",
    "wait-time-conservation",
    "runq-time-conservation",
    "transfer-bytes-conservation",
    "transfer-time-conservation",
    "transfer-count",
    "migration-accounting",
    "critical-path-bound",
    "numa-traffic-reconciliation",
)


@dataclass(frozen=True)
class Violation:
    """One violated invariant, machine-readable.

    ``invariant`` is one of :data:`ALL_INVARIANTS`; ``tid`` the offending
    thread (or ``None`` for machine-level violations); ``magnitude`` the
    absolute discrepancy in the invariant's unit (seconds, bytes, count).
    """

    invariant: str
    detail: str
    tid: Optional[int] = None
    magnitude: float = 0.0

    def __str__(self) -> str:
        where = f" [tid {self.tid}]" if self.tid is not None else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of one :meth:`InvariantChecker.check` call."""

    violations: list[Violation] = field(default_factory=list)
    checked: tuple[str, ...] = ALL_INVARIANTS
    events_audited: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated(self, invariant: str) -> list[Violation]:
        return [v for v in self.violations if v.invariant == invariant]

    def raise_if_violations(self) -> None:
        if self.violations:
            raise InvariantError(self)

    def render(self) -> str:
        head = (
            f"invariant check: {len(self.checked)} invariants over "
            f"{self.events_audited} events — "
            + ("OK" if self.ok else f"{len(self.violations)} violation(s)")
        )
        lines = [head]
        lines.extend(f"  FAIL {v}" for v in self.violations)
        return "\n".join(lines)


class InvariantError(AssertionError):
    """Raised by :meth:`InvariantReport.raise_if_violations`."""

    def __init__(self, report: InvariantReport) -> None:
        super().__init__(report.render())
        self.report = report


class InvariantChecker:
    """Post-run auditor of a machine, its metrics, and its trace.

    Tolerances absorb float summation drift only: sums are compared with
    ``isclose(rel_tol, abs_tol)``, counts exactly.
    """

    def __init__(self, rel_tol: float = 1e-6, abs_tol: float = 1e-9) -> None:
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol

    # -- helpers -----------------------------------------------------------

    def _close(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=self.rel_tol, abs_tol=self.abs_tol)

    def _mismatch(
        self,
        out: list[Violation],
        invariant: str,
        what: str,
        counter: float,
        traced: float,
        tid: Optional[int] = None,
    ) -> None:
        if not self._close(counter, traced):
            out.append(
                Violation(
                    invariant,
                    f"{what}: counter={counter!r} vs traced={traced!r}",
                    tid=tid,
                    magnitude=abs(counter - traced),
                )
            )

    # -- the audit ---------------------------------------------------------

    def check(self, machine: "Machine") -> InvariantReport:
        """Audit *machine* after :meth:`Machine.run` completed.

        Requires a tracer attached before the run (``Machine(...,
        tracer=...)``); raises :class:`ValueError` otherwise.
        """
        tracer = machine.tracer
        if tracer is None:
            raise ValueError(
                "InvariantChecker needs a traced run: pass tracer= to Machine"
            )
        events = tracer.events
        report = InvariantReport(events_audited=len(events))
        out = report.violations
        m = machine.metrics

        self._check_shapes(events, tracer, out)
        self._check_thread_accounting(machine, out)
        self._check_aggregates(machine, events, out)
        self._check_perf(machine, events, out)

        # Keep m referenced for clarity even when every sum is zero.
        del m
        return report

    def _check_shapes(
        self, events: tuple[TraceEvent, ...], tracer: Tracer, out: list[Violation]
    ) -> None:
        if tracer.clock_regressions:
            out.append(
                Violation(
                    "monotonic-timestamps",
                    f"engine clock went backwards {tracer.clock_regressions} time(s)",
                    magnitude=float(tracer.clock_regressions),
                )
            )
        # Per thread, spans must be ordered and non-overlapping, and
        # instants must carry non-decreasing timestamps.  (Spans and
        # instants are compared within their own class: a span's ts is
        # its *start*, which may legitimately lie ahead of a later-kept
        # instant emitted at decision time while the span was queued.)
        last_instant: dict[int, TraceEvent] = {}
        last_span: dict[int, TraceEvent] = {}
        for ev in events:
            if ev.dur < 0 or ev.ts < 0:
                out.append(
                    Violation(
                        "non-negative-duration",
                        f"event #{ev.seq} {ev.kind} has ts={ev.ts!r} dur={ev.dur!r}",
                        tid=ev.tid if ev.tid >= 0 else None,
                        magnitude=abs(min(ev.ts, ev.dur)),
                    )
                )
            if ev.tid < 0:
                continue
            if ev.kind not in SPAN_KINDS:
                prev = last_instant.get(ev.tid)
                if prev is not None and ev.ts < prev.ts - self.abs_tol:
                    out.append(
                        Violation(
                            "monotonic-timestamps",
                            f"event #{ev.seq} {ev.kind} at {ev.ts!r} precedes "
                            f"#{prev.seq} {prev.kind} at {prev.ts!r}",
                            tid=ev.tid,
                            magnitude=prev.ts - ev.ts,
                        )
                    )
                last_instant[ev.tid] = ev
                continue
            pspan = last_span.get(ev.tid)
            if pspan is not None:
                if ev.ts < pspan.ts - self.abs_tol:
                    out.append(
                        Violation(
                            "monotonic-timestamps",
                            f"span #{ev.seq} {ev.kind} at {ev.ts!r} precedes "
                            f"#{pspan.seq} {pspan.kind} at {pspan.ts!r}",
                            tid=ev.tid,
                            magnitude=pspan.ts - ev.ts,
                        )
                    )
                elif ev.ts < pspan.end - max(
                    self.abs_tol, self.rel_tol * pspan.end
                ):
                    out.append(
                        Violation(
                            "monotonic-timestamps",
                            f"span #{ev.seq} {ev.kind} [{ev.ts!r}, {ev.end!r}] "
                            f"overlaps #{pspan.seq} {pspan.kind} ending {pspan.end!r}",
                            tid=ev.tid,
                            magnitude=pspan.end - ev.ts,
                        )
                    )
            last_span[ev.tid] = ev

    def _check_thread_accounting(
        self, machine: "Machine", out: list[Violation]
    ) -> None:
        for tid in range(machine.n_threads):
            t = machine.thread(tid)
            if t.done_at < 0:  # never finished (run aborted) — skip
                continue
            ledger = t.compute_time + t.transfer_time + t.wait_time + t.runq_time
            self._mismatch(
                out,
                "thread-time-accounting",
                f"thread {t.name!r}: compute+transfer+wait+runq={ledger!r} "
                f"vs finish time",
                t.done_at,
                ledger,
                tid=tid,
            )

    def _check_aggregates(
        self, machine: "Machine", events: tuple[TraceEvent, ...], out: list[Violation]
    ) -> None:
        m = machine.metrics
        traced_dur: dict[str, float] = defaultdict(float)
        traced_bytes: dict[str, float] = defaultdict(float)
        traced_tdur: dict[str, float] = defaultdict(float)
        n_transfers = 0
        n_migrations = 0
        migration_penalty = 0.0
        for ev in events:
            traced_dur[ev.kind] += ev.dur
            if ev.kind == "transfer":
                n_transfers += 1
                traced_bytes[ev.level] += ev.nbytes
                traced_tdur[ev.level] += ev.dur
            elif ev.kind == "migration":
                n_migrations += 1
                migration_penalty += ev.dur

        per_thread = [machine.thread(t) for t in range(machine.n_threads)]
        checks = (
            ("compute-time-conservation", "compute seconds", m.compute_time,
             traced_dur["compute"], sum(t.compute_time for t in per_thread)),
            ("wait-time-conservation", "lock-wait seconds", m.wait_time,
             traced_dur["wait"], sum(t.wait_time for t in per_thread)),
            ("runq-time-conservation", "runq seconds", m.runq_time,
             traced_dur["runq"], sum(t.runq_time for t in per_thread)),
        )
        for name, what, counter, traced, threads in checks:
            self._mismatch(out, name, f"{what} (counter vs events)", counter, traced)
            self._mismatch(out, name, f"{what} (counter vs threads)", counter, threads)

        for level, nbytes in m.bytes_by_level.items():
            self._mismatch(
                out,
                "transfer-bytes-conservation",
                f"bytes at level {level.name}",
                float(nbytes),
                traced_bytes.get(level.name, 0.0),
            )
        for level_name, nbytes in traced_bytes.items():
            if not any(lv.name == level_name for lv in m.bytes_by_level):
                out.append(
                    Violation(
                        "transfer-bytes-conservation",
                        f"traced {nbytes!r} bytes at level {level_name} "
                        "missing from bytes_by_level",
                        magnitude=nbytes,
                    )
                )
        for level, dur in m.transfer_time_by_level.items():
            self._mismatch(
                out,
                "transfer-time-conservation",
                f"transfer seconds at level {level.name}",
                float(dur),
                traced_tdur.get(level.name, 0.0),
            )
        self._mismatch(
            out,
            "transfer-time-conservation",
            "transfer seconds (threads vs events)",
            sum(t.transfer_time for t in per_thread),
            traced_dur["transfer"],
        )
        if m.transfers != n_transfers:
            out.append(
                Violation(
                    "transfer-count",
                    f"counter says {m.transfers} transfers, trace has {n_transfers}",
                    magnitude=abs(m.transfers - n_transfers),
                )
            )
        if m.migrations != n_migrations:
            out.append(
                Violation(
                    "migration-accounting",
                    f"counter says {m.migrations} migrations, trace has {n_migrations}",
                    magnitude=abs(m.migrations - n_migrations),
                )
            )
        self._mismatch(
            out,
            "migration-accounting",
            "migration penalty seconds",
            m.migration_penalty_time,
            migration_penalty,
        )


    def _check_perf(
        self, machine: "Machine", events: tuple[TraceEvent, ...], out: list[Violation]
    ) -> None:
        # Imported lazily: repro.perf consumes this package, so a
        # module-level import would be a cycle.
        from repro.perf import LOCAL_LEVELS, extract_critical_path, traffic_matrix

        cp = extract_critical_path(events)
        if not cp.bound_ok():
            out.append(
                Violation(
                    "critical-path-bound",
                    f"critical_path={cp.length!r} <= makespan={cp.makespan!r} "
                    f"<= serial_time={cp.serial_time!r} does not hold",
                    magnitude=max(
                        cp.length - cp.makespan, cp.makespan - cp.serial_time
                    ),
                )
            )

        m = machine.metrics
        tm = traffic_matrix(events)
        local = sum(
            float(v)
            for lv, v in m.bytes_by_level.items()
            if lv.name in LOCAL_LEVELS
        )
        self._mismatch(
            out,
            "numa-traffic-reconciliation",
            "node-local bytes (bytes_by_level vs matrix diagonal)",
            local,
            tm.local_bytes,
        )
        self._mismatch(
            out,
            "numa-traffic-reconciliation",
            "remote bytes (bytes_by_level vs matrix off-diagonal)",
            float(m.remote_bytes),
            tm.remote_bytes,
        )
        total = float(sum(m.bytes_by_level.values()))
        self._mismatch(
            out,
            "numa-traffic-reconciliation",
            "total bytes (bytes_by_level vs matrix row sums)",
            total,
            float(sum(tm.row_sums())),
        )
        self._mismatch(
            out,
            "numa-traffic-reconciliation",
            "total bytes (bytes_by_level vs matrix column sums)",
            total,
            float(sum(tm.col_sums())),
        )
        if tm.unattributed_bytes > 0.0:
            out.append(
                Violation(
                    "numa-traffic-reconciliation",
                    f"{tm.unattributed_bytes!r} transfer bytes carry no "
                    "valid producer/consumer node pair",
                    magnitude=tm.unattributed_bytes,
                )
            )


def check_run(machine: "Machine", raise_on_violation: bool = True) -> InvariantReport:
    """One-call audit: check *machine* and optionally raise on violation."""
    report = InvariantChecker().check(machine)
    if raise_on_violation:
        report.raise_if_violations()
    return report
