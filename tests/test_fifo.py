"""Tests for the ordered read-write lock FIFO — the core ORWL semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.orwl.fifo import AccessMode, FifoError, OrwlFifo, RequestState

R, W = AccessMode.READ, AccessMode.WRITE


def make(log=None):
    log = log if log is not None else []
    fifo = OrwlFifo(on_grant=lambda req: log.append(req.tag), name="loc")
    return fifo, log


class TestBasicGrants:
    def test_first_write_granted_immediately(self):
        fifo, log = make()
        req = fifo.insert(W, "w1")
        assert req.state is RequestState.GRANTED
        assert log == ["w1"]

    def test_second_write_waits(self):
        fifo, log = make()
        fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        assert r2.state is RequestState.PENDING
        assert log == ["w1"]

    def test_write_granted_after_release(self):
        fifo, log = make()
        r1 = fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        fifo.release(r1)
        assert r2.state is RequestState.GRANTED
        assert log == ["w1", "w2"]

    def test_consecutive_readers_share(self):
        fifo, log = make()
        a = fifo.insert(R, "r1")
        b = fifo.insert(R, "r2")
        c = fifo.insert(R, "r3")
        assert all(x.state is RequestState.GRANTED for x in (a, b, c))

    def test_reader_behind_writer_waits(self):
        fifo, log = make()
        fifo.insert(W, "w")
        r = fifo.insert(R, "r")
        assert r.state is RequestState.PENDING

    def test_writer_behind_readers_waits_for_all(self):
        fifo, log = make()
        r1 = fifo.insert(R, "r1")
        r2 = fifo.insert(R, "r2")
        w = fifo.insert(W, "w")
        fifo.release(r1)
        assert w.state is RequestState.PENDING
        fifo.release(r2)
        assert w.state is RequestState.GRANTED

    def test_strict_fifo_reader_does_not_jump_writer(self):
        """A reader arriving behind a pending writer must not share with
        the currently granted readers (ordered semantics, no reordering)."""
        fifo, log = make()
        r1 = fifo.insert(R, "r1")
        w = fifo.insert(W, "w")
        r2 = fifo.insert(R, "r2")
        assert r1.state is RequestState.GRANTED
        assert w.state is RequestState.PENDING
        assert r2.state is RequestState.PENDING
        fifo.release(r1)
        assert w.state is RequestState.GRANTED
        assert r2.state is RequestState.PENDING
        fifo.release(w)
        assert r2.state is RequestState.GRANTED

    def test_grant_order_matches_insertion(self):
        fifo, log = make()
        reqs = [fifo.insert(W, f"w{k}") for k in range(4)]
        for req in reqs[:-1]:
            fifo.release(req)
        assert log == ["w0", "w1", "w2", "w3"]


class TestRelease:
    def test_release_pending_rejected(self):
        fifo, _ = make()
        fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        with pytest.raises(FifoError):
            fifo.release(r2)

    def test_double_release_rejected(self):
        fifo, _ = make()
        r = fifo.insert(W, "w")
        fifo.release(r)
        with pytest.raises(FifoError):
            fifo.release(r)

    def test_foreign_request_rejected(self):
        fifo, _ = make()
        other, _ = make()
        r = other.insert(W, "w")
        with pytest.raises(FifoError):
            fifo.release(r)

    def test_release_middle_reader(self):
        fifo, _ = make()
        r1 = fifo.insert(R, "r1")
        r2 = fifo.insert(R, "r2")
        w = fifo.insert(W, "w")
        fifo.release(r1)
        assert r2.state is RequestState.GRANTED
        assert w.state is RequestState.PENDING


class TestCancel:
    def test_cancel_pending_removes(self):
        fifo, log = make()
        fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        fifo.cancel(r2)
        assert r2.state is RequestState.CANCELLED
        assert len(fifo) == 1

    def test_cancel_unblocks_successor(self):
        fifo, log = make()
        r1 = fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        r3 = fifo.insert(W, "w3")
        fifo.release(r1)
        fifo.cancel(r3)  # cancel a pending one behind the new head
        fifo.release(r2)
        assert log == ["w1", "w2"]
        assert len(fifo) == 0

    def test_cancel_granted_acts_as_release(self):
        fifo, log = make()
        r1 = fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        fifo.cancel(r1)
        assert r2.state is RequestState.GRANTED

    def test_cancel_twice_noop(self):
        fifo, _ = make()
        fifo.insert(W, "w1")
        r2 = fifo.insert(W, "w2")
        fifo.cancel(r2)
        fifo.cancel(r2)  # no error
        assert r2.state is RequestState.CANCELLED


class TestInvariants:
    def test_granted_is_prefix(self):
        fifo, _ = make()
        reqs = [fifo.insert(R if k % 2 else W, f"x{k}") for k in range(6)]
        for _ in range(4):
            states = [r.state for r in fifo.queue]
            granted = [s is RequestState.GRANTED for s in states]
            # all granted entries precede all pending entries
            assert granted == sorted(granted, reverse=True)
            # release the head
            fifo.release(fifo.queue[0])

    def test_holder_modes_never_mixed(self):
        fifo, _ = make()
        import random

        rng = random.Random(42)
        live = []
        for k in range(50):
            if live and rng.random() < 0.4:
                req = live.pop(rng.randrange(len(live)))
                if req.state is RequestState.GRANTED:
                    fifo.release(req)
                else:
                    fifo.cancel(req)
            else:
                live.append(fifo.insert(rng.choice([R, W]), f"q{k}"))
            modes = fifo.holder_modes()
            if AccessMode.WRITE in modes:
                assert len(modes) == 1

    def test_inserted_counter(self):
        fifo, _ = make()
        for k in range(5):
            fifo.insert(R, f"r{k}")
        assert fifo.inserted == 5


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["R", "W", "release"]), min_size=1, max_size=40))
def test_random_protocol_liveness(script):
    """Property: after any sequence of inserts/releases, if the queue is
    non-empty its head is granted (no lost wakeups)."""
    fifo = OrwlFifo(name="prop")
    for action in script:
        if action == "release":
            granted = [r for r in fifo.queue if r.state is RequestState.GRANTED]
            if granted:
                fifo.release(granted[0])
        else:
            fifo.insert(R if action == "R" else W, action)
        if len(fifo):
            assert fifo.queue[0].state is RequestState.GRANTED
