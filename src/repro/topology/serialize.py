"""Topology serialization: JSON round-trip (hwloc-XML-like).

hwloc exports topologies to XML so tools can analyze machines offline;
we provide the equivalent with JSON.  The format is a direct nested dump
of the object tree with attributes, versioned for forward compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.topology.objects import (
    CacheAttributes,
    MemoryAttributes,
    ObjType,
    TopologyObject,
)
from repro.topology.tree import Topology, TopologyError

FORMAT_VERSION = 1

#: Same plausibility bound as the XML importer: an absurd os_index
#: would make the cpuset bit vector astronomically wide.
MAX_OS_INDEX = 1 << 20


def _checked_int(value: Any, what: str, minimum: int = 0,
                 maximum: Optional[int] = None) -> int:
    """Validate an integer field of an untrusted document."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TopologyError(f"{what} must be an integer, got {value!r}")
    if value < minimum:
        raise TopologyError(f"{what} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise TopologyError(f"{what}={value} is implausible (max {maximum})")
    return value


def _obj_to_dict(obj: TopologyObject) -> dict[str, Any]:
    d: dict[str, Any] = {"type": obj.type.name}
    if obj.os_index is not None:
        d["os_index"] = obj.os_index
    if obj.name:
        d["name"] = obj.name
    if obj.cache is not None:
        d["cache"] = {
            "size": obj.cache.size,
            "line_size": obj.cache.line_size,
            "associativity": obj.cache.associativity,
            "latency": obj.cache.latency,
        }
    if obj.memory is not None:
        d["memory"] = {
            "local_bytes": obj.memory.local_bytes,
            "latency": obj.memory.latency,
            "bandwidth": obj.memory.bandwidth,
        }
    if obj.children:
        d["children"] = [_obj_to_dict(c) for c in obj.children]
    return d


def _obj_from_dict(d: dict[str, Any]) -> TopologyObject:
    if not isinstance(d, dict):
        raise TopologyError(f"topology object must be a dict, got {type(d).__name__}")
    try:
        type_ = ObjType[d["type"]]
    except (KeyError, TypeError):
        raise TopologyError(f"unknown object type {d.get('type')!r}") from None
    os_index = d.get("os_index")
    if os_index is not None:
        os_index = _checked_int(os_index, f"{type_.name} os_index",
                                maximum=MAX_OS_INDEX)
    obj = TopologyObject(
        type_,
        os_index=os_index,
        name=d.get("name", ""),
    )
    try:
        if "cache" in d:
            c = d["cache"]
            if not isinstance(c, dict) or "size" not in c:
                raise TopologyError(f"{type_.name} cache must be a dict with a size")
            obj.cache = CacheAttributes(
                size=_checked_int(c["size"], "cache size", minimum=1),
                line_size=c.get("line_size", 64),
                associativity=c.get("associativity", 8),
                latency=c.get("latency", 0.0),
            )
        if "memory" in d:
            m = d["memory"]
            if not isinstance(m, dict) or "local_bytes" not in m:
                raise TopologyError(
                    f"{type_.name} memory must be a dict with local_bytes"
                )
            obj.memory = MemoryAttributes(
                local_bytes=_checked_int(m["local_bytes"], "local_bytes"),
                latency=m.get("latency", 0.0),
                bandwidth=m.get("bandwidth", 0.0),
            )
    except TopologyError:
        raise
    except (ValueError, TypeError) as exc:
        raise TopologyError(f"invalid {type_.name} attributes: {exc}") from None
    children = d.get("children", ())
    if not isinstance(children, (list, tuple)):
        raise TopologyError(f"{type_.name} children must be a list")
    for child_d in children:
        try:
            obj.add_child(_obj_from_dict(child_d))
        except TopologyError:
            raise
        except ValueError as exc:
            raise TopologyError(f"invalid child of {type_.name}: {exc}") from None
    return obj


def to_dict(topo: Topology) -> dict[str, Any]:
    """Serialize a topology to a JSON-safe dict."""
    return {
        "format": "repro-topology",
        "version": FORMAT_VERSION,
        "name": topo.name,
        "root": _obj_to_dict(topo.root),
    }


def from_dict(d: dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`to_dict` output.

    Error contract (mirroring :func:`repro.topology.hwloc_xml.parse_hwloc_xml`):
    any malformed document raises :class:`TopologyError`; no other
    exception type escapes.
    """
    if not isinstance(d, dict):
        raise TopologyError(f"topology document must be a dict, got {type(d).__name__}")
    if d.get("format") != "repro-topology":
        raise TopologyError(f"not a repro-topology document: format={d.get('format')!r}")
    version = d.get("version", 0)
    if not isinstance(version, int) or version > FORMAT_VERSION:
        raise TopologyError(f"unsupported format version {version!r}")
    if "root" not in d:
        raise TopologyError("topology document has no root object")
    root = _obj_from_dict(d["root"])
    name = d.get("name", "")
    if not isinstance(name, str):
        raise TopologyError(f"topology name must be a string, got {name!r}")
    return Topology(root, name=name)


def dumps(topo: Topology, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(topo), indent=indent)


def loads(text: str) -> Topology:
    """Deserialize from a JSON string (:class:`TopologyError` on any
    malformed input, including invalid JSON)."""
    try:
        d = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(f"not valid JSON: {exc}") from None
    return from_dict(d)


def save(topo: Topology, path: Union[str, Path]) -> None:
    """Write the topology to *path* as JSON."""
    Path(path).write_text(dumps(topo), encoding="utf-8")


def load(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
