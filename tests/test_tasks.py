"""The repro.tasks frontend: API, inference, compilation, matrices."""

import numpy as np
import pytest

from repro.placement.affinity import static_matrix
from repro.placement.binder import bind_program, task_matrix
from repro.tasks import (
    Region,
    TaskGraph,
    TaskTimes,
    compile_graph,
    dag_matrix,
    edge_location_name,
    run_graph,
    topological_check,
)
from repro.util.validate import ValidationError


def diamond() -> TaskGraph:
    """A -> (B, C) -> D over two regions."""
    g = TaskGraph("diamond")
    a = g.region("a", nbytes=1000.0)
    b = g.region("b", nbytes=500.0)
    t = g.space("T")
    g.spawn(t[0], flops=1e6, writes=[a])
    g.spawn(t[1], flops=1e6, reads=[a], writes=[b])
    g.spawn(t[2], flops=1e6, reads=[a])
    g.spawn(t[3], flops=1e6, reads=[b], deps=[t[2]])
    return g


class TestFrontendApi:
    def test_taskspace_naming(self):
        g = TaskGraph("g")
        t = g.space("T")
        assert t[3].name == "T[3]"
        assert t[1, 2].name == "T[1,2]"
        assert t().name == "T"
        assert str(t[0]) == "T[0]"

    def test_space_index_must_be_int(self):
        g = TaskGraph("g")
        t = g.space("T")
        with pytest.raises(ValidationError, match="must be ints"):
            t["x"]

    def test_region_validation(self):
        with pytest.raises(ValidationError):
            Region("", 10.0)
        with pytest.raises(ValidationError):
            Region("r", -1.0)
        g = TaskGraph("g")
        g.region("r", 10.0)
        with pytest.raises(ValidationError, match="duplicate region"):
            g.region("r", 10.0)

    def test_double_spawn_rejected(self):
        g = TaskGraph("g")
        t = g.space("T")
        g.spawn(t[0], flops=1.0)
        with pytest.raises(ValidationError, match="already spawned"):
            g.spawn(t[0], flops=1.0)

    def test_foreign_region_rejected(self):
        g = TaskGraph("g")
        other = TaskGraph("other")
        r = other.region("r", 10.0)
        with pytest.raises(ValidationError, match="not declared"):
            g.spawn("t", reads=[r])

    def test_forward_dependency_rejected(self):
        g = TaskGraph("g")
        t = g.space("T")
        with pytest.raises(ValidationError, match="not been spawned"):
            g.spawn(t[0], deps=[t[1]])

    def test_negative_costs_rejected(self):
        g = TaskGraph("g")
        with pytest.raises(ValidationError):
            g.spawn("t", flops=-1.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError, match="no tasks"):
            TaskGraph("g").validate()


class TestDependencyInference:
    def test_raw_edge_carries_payload(self):
        g = TaskGraph("g")
        a = g.region("a", nbytes=1000.0)
        g.spawn("w", writes=[a])
        r = g.spawn("r", reads=[a])
        assert r.deps == (0,)
        assert g.edges() == [(0, 1, 1000.0)]

    def test_waw_edge_is_zero_byte(self):
        g = TaskGraph("g")
        a = g.region("a", nbytes=1000.0)
        g.spawn("w1", writes=[a])
        w2 = g.spawn("w2", writes=[a])
        assert w2.deps == (0,)
        assert g.edges() == [(0, 1, 0.0)]

    def test_renaming_reader_binds_to_its_version(self):
        # A reader depends on the most recent writer at spawn time and
        # is independent of later writers (no WAR edges).
        g = TaskGraph("g")
        a = g.region("a", nbytes=100.0)
        g.spawn("w1", writes=[a])
        g.spawn("r1", reads=[a])
        g.spawn("w2", writes=[a])
        r2 = g.spawn("r2", reads=[a])
        assert g.task("r1").deps == (0,)
        assert r2.deps == (2,)
        # w2 serializes against w1 (WAW), not against the reader.
        assert g.task("w2").deps == (0,)

    def test_explicit_deps_are_zero_byte(self):
        g = TaskGraph("g")
        t = g.space("T")
        g.spawn(t[0])
        g.spawn(t[1], deps=[t[0]])
        assert g.edges() == [(0, 1, 0.0)]

    def test_read_of_unwritten_region_is_initial_data(self):
        g = TaskGraph("g")
        a = g.region("a", nbytes=100.0)
        t = g.spawn("t", reads=[a])
        assert t.deps == ()
        assert g.n_edges == 0

    def test_duplicate_inferred_and_explicit_dep_single_edge(self):
        g = TaskGraph("g")
        a = g.region("a", nbytes=100.0)
        t = g.space("T")
        g.spawn(t[0], writes=[a])
        g.spawn(t[1], reads=[a], deps=[t[0]])
        assert g.edges() == [(0, 1, 100.0)]


class TestAnalysis:
    def test_diamond_shape(self):
        g = diamond()
        assert g.n_tasks == 4
        assert g.sources() == [0]
        assert g.sinks() == [3]
        assert g.levels() == [[0], [1, 2], [3]]
        span, path = g.critical_path()
        assert span == 3e6
        assert len(path) == 3
        assert path[0] == "T[0]" and path[-1] == "T[3]"
        assert g.parallelism() == pytest.approx(4e6 / 3e6)

    def test_total_payload(self):
        assert diamond().total_payload_bytes() == 1000.0 + 1000.0 + 500.0

    def test_topological_check_helper(self):
        g = diamond()
        assert topological_check(["T[0]", "T[1]", "T[2]", "T[3]"], g) is None
        assert "before its dependency" in topological_check(
            ["T[3]", "T[0]", "T[1]", "T[2]"], g
        )
        assert "missing" in topological_check(["T[0]"], g)
        assert "twice" in topological_check(
            ["T[0]", "T[0]", "T[1]", "T[2]", "T[3]"], g
        )


class TestDigest:
    def test_digest_stable(self):
        assert diamond().digest() == diamond().digest()

    def test_digest_covers_structure_and_costs(self):
        base = diamond().digest()
        g = diamond()
        g.spawn("extra", flops=1.0)
        assert g.digest() != base

        g2 = TaskGraph("diamond")
        a = g2.region("a", nbytes=1000.0)
        b = g2.region("b", nbytes=500.0)
        t = g2.space("T")
        g2.spawn(t[0], flops=2e6, writes=[a])  # different cost
        g2.spawn(t[1], flops=1e6, reads=[a], writes=[b])
        g2.spawn(t[2], flops=1e6, reads=[a])
        g2.spawn(t[3], flops=1e6, reads=[b], deps=[t[2]])
        assert g2.digest() != base


class TestCompile:
    def test_one_location_per_edge(self):
        g = diamond()
        prog = compile_graph(g)
        tasks = g.tasks()
        names = {
            edge_location_name(tasks[u].name, tasks[v].name)
            for u, v, _ in g.edges()
        }
        assert set(prog.locations) == names
        # one ORWL task with a single op per DAG task
        assert len(prog.tasks) == g.n_tasks
        for decl in prog.tasks.values():
            assert len(decl.operations) == 1

    def test_edge_location_sizes_and_owners(self):
        g = diamond()
        prog = compile_graph(g)
        loc = prog.locations[edge_location_name("T[0]", "T[1]")]
        assert loc.nbytes == 1000.0
        assert loc.owner_task == "T[0]"
        sync = prog.locations[edge_location_name("T[2]", "T[3]")]
        assert sync.nbytes == 0.0

    def test_dag_matrix_matches_static_extraction(self):
        # The DAG edge extraction must agree bit-for-bit with the
        # generic ORWL static extraction over the compiled program.
        g = diamond()
        prog = compile_graph(g)
        from_static = task_matrix(prog, static_matrix(prog))
        from_dag = dag_matrix(g)
        assert np.array_equal(from_static.values, from_dag.values)
        assert list(from_static.labels) == list(from_dag.labels)

    def test_dag_matrix_labels_key_the_structure(self):
        g = diamond()
        m = dag_matrix(g)
        assert list(m.labels) == [t.name for t in g.tasks()]
        from repro.exec.cache import matrix_digest

        g2 = TaskGraph("diamond")
        a = g2.region("a", nbytes=1000.0)
        b = g2.region("b", nbytes=500.0)
        t = g2.space("U")  # same volumes, different task names
        g2.spawn(t[0], flops=1e6, writes=[a])
        g2.spawn(t[1], flops=1e6, reads=[a], writes=[b])
        g2.spawn(t[2], flops=1e6, reads=[a])
        g2.spawn(t[3], flops=1e6, reads=[b], deps=[t[2]])
        assert matrix_digest(m) != matrix_digest(dag_matrix(g2))


class TestRun:
    def test_schedule_respects_dependencies(self, small_topo):
        g = diamond()
        res = run_graph(g, topo=small_topo, record_times=True)
        assert res.schedule_ok(g)
        times = res.times
        assert topological_check(times.completion_order(), g) is None
        # concrete happens-before on the heavy edge
        assert times.ready["T[3]"] >= times.published["T[1]"]

    def test_makespan_positive_and_metrics(self, small_topo):
        res = run_graph(diamond(), topo=small_topo)
        assert res.time > 0
        assert res.metrics is res.run.metrics

    def test_all_policies_complete(self, small_topo):
        for policy in ("treematch", "nobind", "service", "compact", "scatter"):
            res = run_graph(
                diamond(), topo=small_topo, policy=policy, record_times=True
            )
            assert res.schedule_ok(diamond()), policy

    def test_schedule_ok_requires_times(self, small_topo):
        res = run_graph(diamond(), topo=small_topo)
        with pytest.raises(ValidationError, match="record_times"):
            res.schedule_ok(diamond())

    def test_times_via_compile_graph(self, small_topo):
        # TaskTimes also works through the low-level compile path.
        from repro.orwl.runtime import Runtime
        from repro.simulate.machine import Machine

        g = diamond()
        times = TaskTimes()
        prog = compile_graph(g, times=times)
        plan = bind_program(prog, small_topo, matrix=dag_matrix(g))
        Runtime(
            prog,
            Machine(small_topo, seed=0),
            mapping=plan.mapping,
            control_mapping=plan.control_mapping,
        ).run()
        assert len(times.done) == g.n_tasks

    def test_stream_bytes_add_traffic(self, small_topo):
        def build(stream: float) -> TaskGraph:
            g = TaskGraph("s")
            g.spawn("t", flops=1e6, stream_bytes=stream)
            return g

        lean = run_graph(build(0.0), topo=small_topo)
        heavy = run_graph(build(1 << 24), topo=small_topo)
        assert heavy.time > lean.time
