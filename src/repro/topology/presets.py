"""Preset topologies used across examples, tests and benchmarks.

The headline machine is :func:`paper_smp`, the 24-socket × 8-core,
192-core SMP the paper's Fig. 1 ran on (an SGI UV-class machine at the
time).  The other presets exercise hyperthreading, shallow NUMA, and
flat trees for the control-thread and oversubscription extensions.
"""

from __future__ import annotations

from repro.topology.builder import TopologyBuilder
from repro.topology.objects import CacheAttributes, MemoryAttributes, ObjType
from repro.topology.tree import Topology


def paper_smp(sockets: int = 24, cores_per_socket: int = 8) -> Topology:
    """The paper's evaluation machine: 24 sockets × 8 cores = 192 PUs.

    Modeled as one NUMA node per socket (standard for that class of SMP)
    with a shared L3 per socket and private L2/L1 per core, no
    hyperthreading.
    """
    return (
        TopologyBuilder(f"paper-smp-{sockets}x{cores_per_socket}")
        .add_level(
            ObjType.NUMANODE,
            sockets,
            memory=MemoryAttributes(local_bytes=32 << 30, latency=90e-9, bandwidth=40e9),
        )
        .add_level(ObjType.PACKAGE, 1)
        .add_level(
            ObjType.L3, 1, cache=CacheAttributes(size=20 << 20, latency=12e-9)
        )
        .add_level(ObjType.CORE, cores_per_socket)
        .add_level(ObjType.PU, 1)
        .build()
    )


def dual_xeon(cores_per_socket: int = 12, hyperthreads: int = 2) -> Topology:
    """A common dual-socket Xeon workstation: 2 × 12 cores × 2 HT = 48 PUs."""
    return (
        TopologyBuilder(f"dual-xeon-2x{cores_per_socket}x{hyperthreads}")
        .add_level(ObjType.NUMANODE, 2)
        .add_level(ObjType.PACKAGE, 1)
        .add_level(ObjType.L3, 1, cache=CacheAttributes(size=30 << 20, latency=14e-9))
        .add_level(ObjType.CORE, cores_per_socket)
        .add_level(ObjType.PU, hyperthreads)
        .build()
    )


def hyperthreaded_smp(sockets: int = 4, cores_per_socket: int = 8) -> Topology:
    """A hyperthreaded SMP: each core carries 2 PUs.

    Exercises the paper's control-thread rule "if hyperthreading is
    available, on each physical core we reserve one hyperthread for
    control and one for computation."
    """
    return (
        TopologyBuilder(f"ht-smp-{sockets}x{cores_per_socket}x2")
        .add_level(ObjType.NUMANODE, sockets)
        .add_level(ObjType.PACKAGE, 1)
        .add_level(ObjType.L3, 1)
        .add_level(ObjType.CORE, cores_per_socket)
        .add_level(ObjType.PU, 2)
        .build()
    )


def small_numa(nodes: int = 2, cores: int = 4) -> Topology:
    """A small NUMA box (default 2 nodes × 4 cores) for fast unit tests."""
    return (
        TopologyBuilder(f"small-numa-{nodes}x{cores}")
        .add_level(ObjType.NUMANODE, nodes)
        .add_level(ObjType.PACKAGE, 1)
        .add_level(ObjType.L3, 1)
        .add_level(ObjType.CORE, cores)
        .add_level(ObjType.PU, 1)
        .build()
    )


def deep_hierarchy() -> Topology:
    """A deliberately deep tree (NUMA > package > L3 > L2 > core > 2 PU).

    Exercises grouping across many levels of Algorithm 1.
    """
    return (
        TopologyBuilder("deep-hierarchy")
        .add_level(ObjType.NUMANODE, 2)
        .add_level(ObjType.PACKAGE, 2)
        .add_level(ObjType.L3, 1)
        .add_level(ObjType.L2, 2)
        .add_level(ObjType.CORE, 2)
        .add_level(ObjType.PU, 2)
        .build()
    )


def cluster(
    nodes: int = 4,
    sockets_per_node: int = 2,
    cores_per_socket: int = 8,
) -> Topology:
    """A small cluster: *nodes* machines joined by a network.

    The ORWL model is distributed by design; this preset represents a
    cluster as one tree with a GROUP level per compute node, so the
    same mapping algorithm places tasks across machines (network-level
    costs come from the GROUP entry of the distance model — microsecond
    latency, NIC-class bandwidth).  Used by the cluster extension
    experiments.
    """
    return (
        TopologyBuilder(f"cluster-{nodes}x{sockets_per_node}x{cores_per_socket}")
        .add_level(ObjType.GROUP, nodes)
        .add_level(ObjType.NUMANODE, sockets_per_node)
        .add_level(ObjType.PACKAGE, 1)
        .add_level(ObjType.L3, 1)
        .add_level(ObjType.CORE, cores_per_socket)
        .add_level(ObjType.PU, 1)
        .build()
    )


#: Name → factory, used by the CLI-ish example scripts.  The generated
#: scaling presets (``paper``, ``smp48x8``, ..., ``smp512x8``) are merged
#: in below so the construction caches and CLI resolvers see one registry.
PRESETS = {
    "paper-smp": paper_smp,
    "dual-xeon": dual_xeon,
    "ht-smp": hyperthreaded_smp,
    "small-numa": small_numa,
    "deep": deep_hierarchy,
    "cluster": cluster,
}

# Imported at the bottom to keep the dependency one-way: generate.py
# only needs the builder, never this module.
from repro.topology.generate import SCALING_PRESETS as _SCALING_PRESETS  # noqa: E402

PRESETS.update(_SCALING_PRESETS)


def by_name(name: str) -> Topology:
    """Look up and build a preset topology by registry name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
    return factory()
