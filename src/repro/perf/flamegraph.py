"""Folded-stack export for flamegraph tooling.

The span stream flattens into Brendan Gregg's folded-stack format —
one ``frame;frame;frame value`` line per unique stack — which
``flamegraph.pl`` and speedscope (https://speedscope.app, "Import",
choose the ``.folded`` file) render directly.

The simulator has no call stacks, so the synthetic stack is the
dimension hierarchy that matters for placement work::

    <thread>;<kind>              e.g.  T3/lk23(1,2);compute
    <thread>;transfer;<level>    e.g.  T3/lk23(1,2);transfer;MACHINE

Values are microseconds (integers please the tooling; the simulated
runs are far above microsecond granularity).  Lines are sorted, so the
export is deterministic and diff-able across same-seed runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Union

from repro.observe.tracer import TraceEvent

PathOrFile = Union[str, Path, IO[str]]


def folded_stacks(
    events: Iterable[TraceEvent], root: str = ""
) -> dict[str, float]:
    """Aggregate span durations into ``{stack: microseconds}``.

    *root* prepends a frame to every stack — pass the implementation
    name when exporting several runs into one flamegraph.
    """
    out: dict[str, float] = {}
    for ev in events:
        if not ev.is_span():
            continue
        frames = []
        if root:
            frames.append(root)
        frames.append(ev.thread or f"tid{ev.tid}")
        frames.append(ev.kind)
        if ev.level:
            frames.append(ev.level)
        stack = ";".join(f.replace(";", ",") for f in frames)
        out[stack] = out.get(stack, 0.0) + ev.dur * 1e6
    return out


def write_folded(
    events: Iterable[TraceEvent], dst: PathOrFile, root: str = ""
) -> int:
    """Write the folded-stack file; returns the number of stack lines."""
    stacks = folded_stacks(events, root=root)
    lines = [
        f"{stack} {int(round(us))}"
        for stack, us in sorted(stacks.items())
        if round(us) >= 1
    ]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(dst, (str, Path)):
        Path(dst).write_text(text, encoding="utf-8")
    else:
        dst.write(text)
    return len(lines)
