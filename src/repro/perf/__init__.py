"""Trace-derived performance analysis (post-mortem, zero new probes).

``repro.perf`` consumes the :mod:`repro.observe` event stream of one
traced run and answers the questions a performance engineer would put
to ``perf`` / LIKWID / a flamegraph on real hardware:

* :mod:`~repro.perf.critpath` — the longest weighted dependency chain
  (the makespan's lower bound) and an exact backward-walk partition of
  the makespan into compute / transfer-by-level / wait / runq /
  migration / idle buckets;
* :mod:`~repro.perf.counters` — LIKWID-style derived counter groups
  (CPU, STALL, MEM, NUMA, SCHED);
* :mod:`~repro.perf.numa` — directed node x node traffic matrices with
  ASCII heatmap rendering;
* :mod:`~repro.perf.topdown` — gap attribution between two runs whose
  buckets sum to the measured time difference;
* :mod:`~repro.perf.flamegraph` — folded-stack export for
  ``flamegraph.pl`` / speedscope;
* :mod:`~repro.perf.report` — :func:`analyze`, the one-call facade.

Everything here is a pure function of the event stream: same seed,
same report, byte for byte.
"""

from repro.perf.counters import (
    LOCAL_LEVELS,
    CounterGroup,
    Metric,
    compute_counter_groups,
    render_counter_groups,
)
from repro.perf.critpath import (
    Attribution,
    CriticalPath,
    attribute_makespan,
    extract_critical_path,
)
from repro.perf.flamegraph import folded_stacks, write_folded
from repro.perf.numa import (
    TrafficMatrix,
    producer_node_of,
    render_heatmap,
    traffic_matrix,
)
from repro.perf.report import PerfReport, analyze
from repro.perf.spans import WORK_KINDS, TraceIndex, bucket_of, ensure_index
from repro.perf.topdown import GapAttribution, attribute_gap

__all__ = [
    "LOCAL_LEVELS",
    "WORK_KINDS",
    "Attribution",
    "CounterGroup",
    "CriticalPath",
    "GapAttribution",
    "Metric",
    "PerfReport",
    "TraceIndex",
    "TrafficMatrix",
    "analyze",
    "attribute_gap",
    "attribute_makespan",
    "bucket_of",
    "compute_counter_groups",
    "ensure_index",
    "extract_critical_path",
    "folded_stacks",
    "producer_node_of",
    "render_counter_groups",
    "render_heatmap",
    "traffic_matrix",
    "write_folded",
]
