"""Tests for the SVG topology renderer."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.tools import lstopo as lstopo_cli
from repro.topology import presets
from repro.topology.svg import save_svg, to_svg


class TestSvg:
    def test_well_formed_xml(self, small_topo):
        doc = to_svg(small_topo)
        root = ET.fromstring(doc)
        assert root.tag.endswith("svg")

    def test_one_rect_per_object(self, small_topo):
        doc = to_svg(small_topo)
        # background rect + one per topology object
        n_objects = sum(1 for _ in small_topo)
        assert doc.count("<rect") == n_objects + 1

    def test_pu_labels_present(self, small_topo):
        doc = to_svg(small_topo)
        for pu in small_topo.pus():
            assert f"PU#{pu.os_index}<" in doc

    def test_cache_sizes_rendered(self, small_topo):
        doc = to_svg(small_topo)
        assert "MiB)" in doc  # L3 size label

    def test_title(self, small_topo):
        doc = to_svg(small_topo, title="hello-machine")
        assert "hello-machine" in doc

    def test_dimensions_positive(self, small_topo):
        doc = to_svg(small_topo)
        m = re.search(r'width="(\d+)" height="(\d+)"', doc)
        assert m and int(m.group(1)) > 0 and int(m.group(2)) > 0

    def test_save(self, tmp_path, small_topo):
        dest = tmp_path / "t.svg"
        save_svg(small_topo, str(dest))
        assert dest.read_text().startswith("<svg")

    def test_scales_to_paper_machine(self):
        doc = to_svg(presets.paper_smp())
        assert doc.count("PU#") == 192

    def test_cli_svg_flag(self, tmp_path, capsys):
        dest = tmp_path / "cli.svg"
        assert lstopo_cli.main(["small-numa", "--summary", "--svg", str(dest)]) == 0
        assert dest.exists()
        assert "rendered to" in capsys.readouterr().out


class TestMappingOverlay:
    def test_loaded_pus_highlighted(self, small_topo):
        from repro.treematch.mapping import Mapping

        mp = Mapping((0, 0, 5))
        doc = to_svg(small_topo, mapping=mp)
        # PU 0 has two threads: count annotation present.
        assert "PU#0 x2<" in doc
        # Load colours used.
        assert "#e8c860" in doc  # load-2 colour on PU 0
        assert "#7bc87b" in doc  # load-1 colour on PU 5

    def test_unbound_mapping_no_highlight(self, small_topo):
        from repro.treematch.mapping import Mapping

        doc = to_svg(small_topo, mapping=Mapping((-1, -1)))
        assert "#7bc87b" not in doc

    def test_heavy_load_capped_colour(self, small_topo):
        from repro.treematch.mapping import Mapping

        mp = Mapping(tuple([3] * 9))
        doc = to_svg(small_topo, mapping=mp)
        assert "PU#3 x9<" in doc
        assert "#d95f5f" in doc  # 4+ colour
