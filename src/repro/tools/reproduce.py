"""Reproduce the paper with one command.

Runs the Figure-1 sweep on the modeled 24×8 SMP, prints the curve and
the table, and grades each of the paper's claims (C1–C4) against the
measured values — the whole reproduction as a single artifact.

Usage::

    python -m repro.tools.reproduce              # ~30 s
    python -m repro.tools.reproduce --iterations 100   # the paper's full sweep count
"""

from __future__ import annotations

import argparse

from repro.experiments.fig1 import run_fig1
from repro.experiments.plotting import plot_fig1
from repro.tools._cache_args import add_cache_arguments, apply_cache_arguments


#: (claim id, description, paper value, extractor, band check)
def _grade(result) -> list[tuple[str, str, str, str, bool]]:
    rows = []
    t_bind = result.best_time("orwl-bind")[1]
    c1_ok = (
        t_bind < result.best_time("orwl-nobind")[1]
        and t_bind < result.best_time("openmp")[1]
    )
    rows.append(
        ("C1", "ORWL-Bind reaches the minimum processing time",
         "fastest of the three", f"{t_bind:.4f} s (fastest)" if c1_ok else "not fastest",
         c1_ok)
    )
    sp_omp = result.speedup_vs_openmp()
    rows.append(
        ("C2", "speedup vs OpenMP", "~5x", f"{sp_omp:.2f}x", 3.0 <= sp_omp <= 9.0)
    )
    sp_nb = result.speedup_vs_nobind()
    rows.append(
        ("C3", "speedup vs ORWL-NoBind", "~2.8x", f"{sp_nb:.2f}x", 1.7 <= sp_nb <= 4.5)
    )
    stall = result.openmp_scaling_stalls_after()
    rows.append(
        ("C4", "OpenMP fails to improve beyond a few sockets",
         "stalls early", f"stalls after {stall} cores" if stall else "never stalls",
         stall is not None)
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--iterations", type=int, default=5,
                        help="sweeps per run (paper: 100; shape is invariant)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cores", type=int, nargs="+",
                        default=[8, 16, 32, 64, 96, 192],
                        help="core counts to sweep (whole sockets of 8)")
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep worker processes (0 = all host cores, "
                             "1 = serial; results are identical either way)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="replicates per point; > 1 reports mean/CI bands "
                             "and significance verdicts on top of the "
                             "replicate-0 trajectory the claims are graded on")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    apply_cache_arguments(args)

    print("Reproducing: Gustedt, Jeannot, Mansouri — 'Optimizing Locality by")
    print("Topology-aware Placement for a Task Based Programming Model',")
    print("IEEE CLUSTER 2016.  Figure 1 + claims C1-C4.")
    print()
    print(f"Machine model: 24 sockets x 8 cores (192 PUs); LK23 16384^2, "
          f"{args.iterations} sweeps.")
    print("Running the sweep (3 implementations x 6 core counts)...")
    print()

    result = run_fig1(
        core_counts=tuple(args.cores),
        iterations=args.iterations,
        n=16384,
        seed=args.seed,
        n_workers=args.workers,
        seeds=args.seeds,
    )
    print(result.table())
    print()
    print(plot_fig1(result))
    print()
    if args.seeds > 1:
        print(f"Statistics over {args.seeds} seeds per point (the paper "
              "reports single runs — its trajectory corresponds to one "
              "sample from these bands):")
        print(result.stats_table())
        print()

    rows = _grade(result)
    width = max(len(r[1]) for r in rows)
    print("Claim grading:")
    all_ok = True
    for cid, desc, paper, measured, ok in rows:
        mark = "PASS" if ok else "FAIL"
        all_ok = all_ok and ok
        print(f"  [{mark}] {cid}: {desc:<{width}}  paper: {paper:<12} measured: {measured}")
    print()
    if all_ok:
        print("All claims reproduced.")
        return 0
    print("Some claims NOT reproduced — see above.")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
