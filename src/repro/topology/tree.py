"""The :class:`Topology` container: a finalized, queryable topology tree.

A :class:`Topology` wraps a root :class:`~repro.topology.objects.TopologyObject`
(type ``MACHINE``) once building is complete.  Finalization assigns depths,
logical indices, cpusets, and per-depth level lists, after which the tree
is treated as immutable.  This mirrors how an ``hwloc_topology_t`` is
loaded once and then only queried.

The TreeMatch algorithm consumes topologies through :meth:`Topology.arities`
and :meth:`Topology.leaves`; the simulator consumes them through the
distance and cache queries in :mod:`repro.topology.distance` and
:mod:`repro.topology.query`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.topology.cpuset import CpuSet
from repro.topology.objects import ObjType, TopologyObject


class TopologyError(ValueError):
    """Raised for structurally invalid topologies or bad queries."""


class Topology:
    """A finalized topology tree.

    Parameters
    ----------
    root:
        The ``MACHINE`` object at the top of the tree.  The constructor
        finalizes the tree in place: depths, logical indices per type,
        PU os_index assignment (left-to-right if missing) and cpusets.
    name:
        Optional human-readable machine name.
    """

    def __init__(self, root: TopologyObject, name: str = "") -> None:
        if root.type is not ObjType.MACHINE:
            raise TopologyError(f"root must be MACHINE, got {root.type.name}")
        if root.parent is not None:
            raise TopologyError("root must not have a parent")
        self._root = root
        self.name = name or root.name or "machine"
        self._levels: list[list[TopologyObject]] = []
        self._pus: list[TopologyObject] = []
        self._by_type: dict[ObjType, list[TopologyObject]] = {}
        self._finalize()

    # -- finalization ----------------------------------------------------------

    def _finalize(self) -> None:
        # Depth-first walk assigning depths and collecting levels.
        levels: list[list[TopologyObject]] = []

        def visit(node: TopologyObject, depth: int) -> None:
            node.depth = depth
            while len(levels) <= depth:
                levels.append([])
            levels[depth].append(node)
            for child in node.children:
                visit(child, depth + 1)

        visit(self._root, 0)
        self._levels = levels

        # Validate uniformity: all leaves must be PUs at the same depth.
        leaf_depths = {n.depth for lvl in levels for n in lvl if n.is_leaf}
        if len(leaf_depths) != 1:
            raise TopologyError(
                f"topology must be leaf-uniform: leaves found at depths {sorted(leaf_depths)}"
            )
        for lvl in levels:
            for n in lvl:
                if n.is_leaf and n.type is not ObjType.PU:
                    raise TopologyError(f"leaf object of type {n.type.name}; leaves must be PU")
                if n.type is ObjType.PU and not n.is_leaf:
                    raise TopologyError("PU objects must be leaves")

        # Per-type logical indices in tree order and PU os_index fallback.
        self._by_type = {}
        for lvl in levels:
            for n in lvl:
                bucket = self._by_type.setdefault(n.type, [])
                n.logical_index = len(bucket)
                bucket.append(n)
        self._pus = self._by_type.get(ObjType.PU, [])
        seen_os: set[int] = set()
        for pu in self._pus:
            if pu.os_index is None:
                pu.os_index = pu.logical_index
            if pu.os_index in seen_os:
                raise TopologyError(f"duplicate PU os_index {pu.os_index}")
            seen_os.add(pu.os_index)

        # Bottom-up cpuset computation.
        def fill_cpuset(node: TopologyObject) -> CpuSet:
            if node.type is ObjType.PU:
                assert node.os_index is not None
                node.cpuset = CpuSet.singleton(node.os_index)
            else:
                cs = CpuSet()
                for child in node.children:
                    cs = cs | fill_cpuset(child)
                node.cpuset = cs
            return node.cpuset

        fill_cpuset(self._root)
        if self._root.cpuset.weight() != len(self._pus):
            raise TopologyError("overlapping PU os indices")

    # -- basic accessors --------------------------------------------------------

    @property
    def root(self) -> TopologyObject:
        return self._root

    @property
    def depth(self) -> int:
        """Number of levels (the PU level is ``depth - 1``)."""
        return len(self._levels)

    @property
    def nb_pus(self) -> int:
        return len(self._pus)

    @property
    def cpuset(self) -> CpuSet:
        """The complete cpuset of the machine."""
        return self._root.cpuset

    def objects_at_depth(self, depth: int) -> Sequence[TopologyObject]:
        """All objects at *depth*, left-to-right."""
        if not 0 <= depth < len(self._levels):
            raise TopologyError(f"depth {depth} out of range [0, {len(self._levels)})")
        return tuple(self._levels[depth])

    def nbobjs_at_depth(self, depth: int) -> int:
        return len(self.objects_at_depth(depth))

    def objects_by_type(self, type_: ObjType) -> Sequence[TopologyObject]:
        """All objects of *type_* in logical order (may be empty)."""
        return tuple(self._by_type.get(type_, ()))

    def nbobjs_by_type(self, type_: ObjType) -> int:
        return len(self._by_type.get(type_, ()))

    def type_depth(self, type_: ObjType) -> Optional[int]:
        """The depth at which *type_* lives, or ``None`` if absent.

        Raises :class:`TopologyError` if the type appears at multiple
        depths (possible with asymmetric GROUP usage).
        """
        objs = self._by_type.get(type_)
        if not objs:
            return None
        depths = {o.depth for o in objs}
        if len(depths) > 1:
            raise TopologyError(f"type {type_.name} appears at multiple depths {sorted(depths)}")
        return depths.pop()

    # -- PU-level queries ----------------------------------------------------------

    def pus(self) -> Sequence[TopologyObject]:
        """All PU objects in logical (left-to-right) order."""
        return tuple(self._pus)

    def pu_by_os_index(self, os_index: int) -> TopologyObject:
        for pu in self._pus:
            if pu.os_index == os_index:
                return pu
        raise TopologyError(f"no PU with os_index {os_index}")

    def pu_by_logical_index(self, logical_index: int) -> TopologyObject:
        if not 0 <= logical_index < len(self._pus):
            raise TopologyError(f"PU logical index {logical_index} out of range")
        return self._pus[logical_index]

    # -- structural queries ------------------------------------------------------

    def arities(self) -> list[int]:
        """Per-level arity vector, validated to be uniform per level.

        ``arities()[d]`` is the number of children each object at depth
        *d* has; the PU level is excluded (its arity is 0).  TreeMatch
        requires a balanced tree; this raises :class:`TopologyError` on
        non-uniform levels (use
        :func:`repro.treematch.oversubscription.balance` first).
        """
        out: list[int] = []
        for depth in range(len(self._levels) - 1):
            arities = {n.arity for n in self._levels[depth]}
            if len(arities) != 1:
                raise TopologyError(
                    f"non-uniform arity at depth {depth}: {sorted(arities)}"
                )
            out.append(arities.pop())
        return out

    def leaves(self) -> Sequence[TopologyObject]:
        """The PU objects (synonym used by the mapping code)."""
        return self.pus()

    def common_ancestor(self, a: TopologyObject, b: TopologyObject) -> TopologyObject:
        """Lowest common ancestor of two objects of this topology."""
        if a is b:
            return a
        chain = {id(a)}
        node: Optional[TopologyObject] = a
        while node is not None:
            chain.add(id(node))
            node = node.parent
        node = b
        while node is not None:
            if id(node) in chain:
                return node
            node = node.parent
        raise TopologyError("objects do not share a root (different topologies?)")

    def common_ancestor_depth(self, pu_a: int, pu_b: int) -> int:
        """Depth of the lowest common ancestor of two PUs (by os_index)."""
        a = self.pu_by_os_index(pu_a)
        b = self.pu_by_os_index(pu_b)
        return self.common_ancestor(a, b).depth

    def numa_node_of(self, pu_os_index: int) -> Optional[TopologyObject]:
        """The NUMANode containing a PU, or ``None`` if the tree has none."""
        pu = self.pu_by_os_index(pu_os_index)
        for anc in pu.ancestors():
            if anc.type is ObjType.NUMANODE:
                return anc
        return None

    def package_of(self, pu_os_index: int) -> Optional[TopologyObject]:
        """The Package (socket) containing a PU, or ``None``."""
        pu = self.pu_by_os_index(pu_os_index)
        for anc in pu.ancestors():
            if anc.type is ObjType.PACKAGE:
                return anc
        return None

    def core_of(self, pu_os_index: int) -> Optional[TopologyObject]:
        """The Core containing a PU, or ``None`` (PU-only trees)."""
        pu = self.pu_by_os_index(pu_os_index)
        for anc in pu.ancestors():
            if anc.type is ObjType.CORE:
                return anc
        return None

    def has_hyperthreading(self) -> bool:
        """True if any Core holds more than one PU."""
        return any(c.arity > 1 for c in self.objects_by_type(ObjType.CORE))

    def objects_inside(self, cpuset: CpuSet, type_: ObjType) -> list[TopologyObject]:
        """Objects of *type_* whose cpuset is fully inside *cpuset*."""
        return [o for o in self.objects_by_type(type_) if o.cpuset.issubset(cpuset)]

    # -- rendering -----------------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering similar to ``lstopo --of console``."""
        lines: list[str] = []

        def visit(node: TopologyObject, indent: int) -> None:
            attrs = ""
            if node.cache is not None:
                attrs = f" ({node.cache.size // 1024} KiB)"
            elif node.memory is not None:
                attrs = f" ({node.memory.local_bytes // (1024 * 1024)} MiB)"
            lines.append("  " * indent + node.type_label() + attrs)
            for child in node.children:
                visit(child, indent + 1)

        visit(self._root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Topology {self.name!r}: {self.nb_pus} PUs, depth {self.depth}>"

    def __iter__(self) -> Iterator[TopologyObject]:
        return self._root.subtree()
