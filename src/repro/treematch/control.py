"""Control-thread handling (the paper's second TreeMatch extension).

ORWL's runtime is event-based: besides the computation threads, each
task owns control/communication threads (FIFO managers, event handlers).
The paper's rule, quoted from Section II:

  "If hyperthreading is available, on each physical core we reserve one
  hyperthread for control and one for computation.  Otherwise, if there
  are more cores than tasks, we extend the communication matrix such
  that control threads will be mapped onto spare cores.  If none of
  this suffices, control threads will not be mapped and we let the
  system schedule them."

:func:`decide_strategy` picks the branch from the topology and thread
counts; :func:`extend_matrix` implements the matrix extension
(``extend_to_manage_control_threads`` in Algorithm 1 line 1), attaching
each control thread to its compute thread with a synthetic affinity so
the grouping step naturally co-locates the pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.topology.tree import Topology
from repro.util.validate import ValidationError


class ControlStrategy(enum.Enum):
    """Which control-thread branch applies.

    The first three are the paper's; COLOCATED is this library's
    extension for environments where threads must stay with their task
    (distributed/cluster ORWL: a thread cannot leave its process).
    """

    HYPERTHREAD_RESERVED = "hyperthread"  #: control on the sibling hyperthread
    SPARE_CORES = "spare-cores"  #: control threads added to the matrix
    UNMAPPED = "unmapped"  #: left to the OS scheduler
    COLOCATED = "colocated"  #: pinned to the task's compute PU (extension)


@dataclass(frozen=True)
class ControlPlan:
    """Placement decision for control threads.

    Attributes
    ----------
    strategy:
        The branch chosen.
    n_compute, n_control:
        Thread counts the plan was made for.
    pairing:
        ``pairing[k]`` is the compute-thread index control thread *k*
        serves (used to co-locate or to pick sibling hyperthreads).
    """

    strategy: ControlStrategy
    n_compute: int
    n_control: int
    pairing: tuple[int, ...]


def default_pairing(n_compute: int, n_control: int) -> tuple[int, ...]:
    """Round-robin pairing of control threads onto compute threads."""
    if n_compute <= 0:
        raise ValidationError("need at least one compute thread")
    return tuple(k % n_compute for k in range(n_control))


def decide_strategy(
    topo: Topology,
    n_compute: int,
    n_control: int,
    pairing: Optional[Sequence[int]] = None,
) -> ControlPlan:
    """Pick the control-thread branch for this topology and thread count.

    The decision follows the paper exactly:

    1. hyperthreading present and one hyperthread per core can be spared
       (i.e. compute threads fit on one PU per core) → reserve siblings;
    2. enough leaves to hold compute + control threads → spare cores;
    3. otherwise → unmapped.
    """
    if n_compute <= 0:
        raise ValidationError(f"n_compute must be > 0, got {n_compute}")
    if n_control < 0:
        raise ValidationError(f"n_control must be >= 0, got {n_control}")
    pair = tuple(pairing) if pairing is not None else default_pairing(n_compute, n_control)
    if len(pair) != n_control:
        raise ValidationError(f"pairing has {len(pair)} entries for {n_control} control threads")
    for k, c in enumerate(pair):
        if not 0 <= c < n_compute:
            raise ValidationError(f"pairing[{k}] = {c} out of range")

    if n_control == 0:
        return ControlPlan(ControlStrategy.UNMAPPED, n_compute, 0, pair)

    from repro.topology.objects import ObjType  # local import to avoid cycle

    n_cores = topo.nbobjs_by_type(ObjType.CORE) or topo.nb_pus
    if topo.has_hyperthreading() and n_compute <= n_cores:
        return ControlPlan(ControlStrategy.HYPERTHREAD_RESERVED, n_compute, n_control, pair)
    if n_compute + n_control <= topo.nb_pus:
        return ControlPlan(ControlStrategy.SPARE_CORES, n_compute, n_control, pair)
    return ControlPlan(ControlStrategy.UNMAPPED, n_compute, n_control, pair)


def extend_matrix(
    matrix: CommMatrix,
    plan: ControlPlan,
    control_volume: Optional[float] = None,
) -> CommMatrix:
    """``extend_to_manage_control_threads``: add control-thread rows.

    Only meaningful for :data:`ControlStrategy.SPARE_CORES`; the other
    strategies return the matrix unchanged (hyperthread reservation
    places control threads *after* mapping, unmapped leaves them out).

    Each control thread is connected to its paired compute thread with
    *control_volume* (default: the mean positive volume of the matrix, a
    scale-free choice keeping the pair attractive but not dominant).
    """
    if plan.strategy is not ControlStrategy.SPARE_CORES:
        return matrix
    if matrix.order != plan.n_compute:
        raise ValidationError(
            f"matrix order {matrix.order} != plan.n_compute {plan.n_compute}"
        )
    if control_volume is None:
        vals = matrix.values
        positive = vals[vals > 0]
        control_volume = float(positive.mean()) if positive.size else 1.0
    n, k = plan.n_compute, plan.n_control
    m = np.zeros((n + k, n + k))
    m[:n, :n] = matrix.values
    for ctl, comp in enumerate(plan.pairing):
        m[n + ctl, comp] = m[comp, n + ctl] = control_volume
    labels = list(matrix.labels) + [f"ctl{k_}" for k_ in range(k)]
    return CommMatrix(m, labels=labels)


def sibling_pu_of(topo: Topology, pu_os_index: int) -> Optional[int]:
    """The os_index of another PU on the same core, or ``None``.

    Used by the binder to realize HYPERTHREAD_RESERVED: the control
    thread of a compute thread bound to PU *p* goes to *p*'s sibling.
    """
    core = topo.core_of(pu_os_index)
    if core is None:
        return None
    for pu in core.pus():
        if pu.os_index != pu_os_index:
            return pu.os_index
    return None
