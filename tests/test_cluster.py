"""Tests for the cluster preset, cost model, and cluster experiment."""

import pytest

from repro.experiments.cluster import ClusterPoint, run_cluster_lk23, table
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.placement import bind_program
from repro.topology import presets, cluster_distance_model
from repro.topology.distance import CLUSTER_LEVEL_COSTS, DistanceModel
from repro.topology.objects import ObjType
from repro.treematch.control import ControlStrategy
from repro.util.validate import ValidationError


class TestClusterPreset:
    def test_shape(self):
        t = presets.cluster(4, 2, 8)
        assert t.nb_pus == 64
        assert t.nbobjs_by_type(ObjType.GROUP) == 4
        assert t.nbobjs_by_type(ObjType.NUMANODE) == 8
        assert t.arities() == [4, 2, 1, 1, 8, 1]

    def test_in_registry(self):
        assert presets.by_name("cluster").nb_pus == 64

    def test_cluster_distance_model_network_costs(self):
        t = presets.cluster(2, 1, 2)
        dm = cluster_distance_model(t)
        # same node, cross socket... here 1 socket per node: same L3
        assert dm.lca_type(0, 1) is ObjType.L3
        # cross cluster-node: MACHINE = the network
        assert dm.lca_type(0, 2) is ObjType.MACHINE
        assert dm.latency(0, 2) == CLUSTER_LEVEL_COSTS[ObjType.MACHINE].latency
        # network transfers are far slower than intra-node ones
        assert dm.transfer_time(0, 2, 1 << 20) > 5 * dm.transfer_time(0, 1, 1 << 20)

    def test_group_level_is_intra_node(self):
        t = presets.cluster(2, 2, 2)
        dm = cluster_distance_model(t)
        # PUs 0 and 2: same GROUP (node), different NUMA sockets
        assert dm.lca_type(0, 2) is ObjType.GROUP


class TestBlockOrder:
    def test_shuffled_program_equivalent_structure(self):
        cfg = Lk23Config(n=256, grid_rows=2, grid_cols=2, iterations=1)
        rowmajor = build_program(cfg)
        shuffled = build_program(cfg, block_order=[(1, 1), (0, 0), (1, 0), (0, 1)])
        assert rowmajor.n_operations == shuffled.n_operations
        assert set(rowmajor.locations) == set(shuffled.locations)

    def test_bad_block_order_rejected(self):
        cfg = Lk23Config(n=256, grid_rows=2, grid_cols=2, iterations=1)
        with pytest.raises(ValidationError):
            build_program(cfg, block_order=[(0, 0), (0, 1)])


class TestColocateFallback:
    def test_colocate_pins_comm_threads(self, small_topo):
        # 8 tasks on 8 PUs: the paper branch would be UNMAPPED.
        cfg = Lk23Config(n=512, grid_rows=2, grid_cols=4, iterations=1)
        prog = build_program(cfg)
        plan = bind_program(
            prog, small_topo, policy="treematch", control_fallback="colocate"
        )
        assert plan.control_strategy is ControlStrategy.COLOCATED
        ops = prog.operations()
        main_pu = {
            op.task.name: plan.mapping.pu(k) for k, op in enumerate(ops) if op.is_main
        }
        for k, op in enumerate(ops):
            if not op.is_main:
                assert plan.mapping.pu(k) == main_pu[op.task.name]
        assert plan.control_mapping.bound_fraction() == 1.0

    def test_default_stays_unmapped(self, small_topo):
        cfg = Lk23Config(n=512, grid_rows=2, grid_cols=4, iterations=1)
        prog = build_program(cfg)
        plan = bind_program(prog, small_topo, policy="treematch")
        assert plan.control_strategy is ControlStrategy.UNMAPPED

    def test_bad_fallback_rejected(self, small_topo):
        cfg = Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=1)
        prog = build_program(cfg)
        with pytest.raises(ValidationError):
            bind_program(prog, small_topo, control_fallback="teleport")


class TestClusterExperiment:
    @pytest.fixture(scope="class")
    def points(self):
        return run_cluster_lk23(
            nodes=2, sockets_per_node=1, cores_per_socket=4,
            n=1024, iterations=2,
            policies=("treematch", "round-robin"),
        )

    def test_structure(self, points):
        assert set(points) == {"treematch", "round-robin"}
        for p in points.values():
            assert isinstance(p, ClusterPoint)
            assert p.time > 0

    def test_table_renders(self, points):
        text = table(points)
        assert "network MB" in text
        assert "treematch" in text

    def test_treematch_never_more_network_heavy(self):
        pts = run_cluster_lk23(
            nodes=4, sockets_per_node=1, cores_per_socket=4,
            n=2048, iterations=2,
            policies=("treematch", "round-robin"),
            shuffle_declaration=True,
        )
        assert pts["treematch"].network_bytes <= pts["round-robin"].network_bytes
