"""``repro.tools.top`` — a live dashboard for an in-flight sweep.

Tails the metrics-bus snapshot file a sweep writes (wire a
:class:`repro.metrics.bus.SnapshotWriter` into the runner, e.g.
``repro.tools.fig1 --metrics live.json``) and renders progress, cache
hit rate, query/throughput rates, and latency sparklines in place.

Usage::

    # terminal 1: a sweep publishing telemetry
    python -m repro.tools.fig1 --quick --metrics live.json
    # terminal 2: watch it run
    python -m repro.tools.top live.json

    python -m repro.tools.top live.json --once   # single frame (CI logs)
    python -m repro.tools.top --demo             # synthetic frame, no sweep

The renderer is a pure function of two snapshots (current + previous,
for rates), so the test suite drives it without terminals or timing.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Mapping, Optional

from repro.metrics.bus import read_snapshot
from repro.metrics.history import sparkline

_BAR_FILL = "#"
_BAR_EMPTY = "-"


def _metric(snapshot: Mapping[str, Any], name: str) -> Optional[dict]:
    return snapshot.get("metrics", {}).get(name)


def _value(snapshot: Mapping[str, Any], name: str, default: float = 0.0) -> float:
    sample = _metric(snapshot, name)
    if sample is None or "value" not in sample:
        return default
    return float(sample["value"])


def _hist_quantile(sample: Mapping[str, Any], q: float) -> float:
    """Bucket-resolution quantile from a snapshot histogram sample."""
    count = sample.get("count", 0)
    if not count:
        return 0.0
    rank = q * count
    seen = 0
    bounds = sample["bounds"]
    for i, n in enumerate(sample["counts"]):
        seen += n
        if seen >= rank and n:
            return bounds[i] if i < len(bounds) else float("inf")
    return float("inf")


def _fmt_seconds(s: float) -> str:
    if s == float("inf"):
        return "inf"
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.1f}ms"
    return f"{s * 1e6:.0f}us"


def _rate(
    cur: Mapping[str, Any], prev: Optional[Mapping[str, Any]], name: str
) -> Optional[float]:
    """Per-second rate of a counter between two snapshots."""
    if prev is None:
        return None
    dt = float(cur.get("written_at", 0)) - float(prev.get("written_at", 0))
    if dt <= 0:
        return None
    return (_value(cur, name) - _value(prev, name)) / dt


def render_dashboard(
    snapshot: Mapping[str, Any],
    prev: Optional[Mapping[str, Any]] = None,
    width: int = 72,
) -> str:
    """One dashboard frame from a snapshot (pure; no I/O)."""
    lines: list[str] = ["repro.top — live sweep telemetry"]

    # -- sweep progress ------------------------------------------------
    total = _value(snapshot, "sweep_progress_total")
    done = _value(snapshot, "sweep_progress_done")
    cached = _value(snapshot, "sweep_progress_cached")
    if total > 0:
        frac = min(1.0, done / total)
        bar_w = max(10, width - 34)
        filled = int(frac * bar_w)
        bar = _BAR_FILL * filled + _BAR_EMPTY * (bar_w - filled)
        lines.append(
            f"sweep    [{bar}] {int(done)}/{int(total)} done"
            + (f" ({int(cached)} cached)" if cached else "")
        )
    else:
        lines.append("sweep    (no sweep in flight)")
    pps = _value(snapshot, "sweep_points_per_sec")
    run_rate = _rate(snapshot, prev, "sim_runs_total")
    rate_bits = []
    if run_rate is not None and run_rate > 0:
        rate_bits.append(f"{run_rate:.1f} runs/s")
    if pps > 0:
        rate_bits.append(f"last sweep {pps:.1f} points/s")
    if rate_bits:
        lines.append(f"rate     {'   '.join(rate_bits)}")

    # -- cache ---------------------------------------------------------
    hits = _value(snapshot, "sweep_cache_point_hit_total") + _value(
        snapshot, "exec_cache_point_hit_total"
    )
    misses = _value(snapshot, "sweep_cache_point_miss_total") + _value(
        snapshot, "exec_cache_point_miss_total"
    )
    lookups = hits + misses
    if lookups:
        lines.append(
            f"cache    {hits:.0f}/{lookups:.0f} point hits "
            f"({hits / lookups:.0%})"
        )

    # -- placement service ---------------------------------------------
    queries = _value(snapshot, "placement_queries_total")
    if queries:
        warm = _value(snapshot, "placement_memo_hits_total")
        qps = _rate(snapshot, prev, "placement_queries_total")
        line = (
            f"place    {queries:.0f} queries, {warm / queries:.0%} warm"
        )
        if qps is not None and qps > 0:
            line += f", {qps:,.0f} q/s"
        lines.append(line)
        for tier, name in (
            ("warm", "placement_warm_seconds"),
            ("cold", "placement_cold_seconds"),
        ):
            sample = _metric(snapshot, name)
            if sample and sample.get("count"):
                p50 = _hist_quantile(sample, 0.5)
                p95 = _hist_quantile(sample, 0.95)
                p99 = _hist_quantile(sample, 0.99)
                spark = sparkline(sample["counts"], width=20)
                lines.append(
                    f"  {tier}   {spark}  p50 {_fmt_seconds(p50)}  "
                    f"p95 {_fmt_seconds(p95)}  p99 {_fmt_seconds(p99)}"
                )

    # -- engine --------------------------------------------------------
    events = _value(snapshot, "sim_events_total")
    if events:
        eps = _value(snapshot, "engine_events_per_sec")
        line = f"engine   {events:,.0f} events"
        if eps > 0:
            line += f"   {eps:,.0f} ev/s (last run)"
        lines.append(line)
        cohorts = _metric(snapshot, "engine_cohort_size")
        if cohorts and cohorts.get("count"):
            lines.append(
                f"  cohorts {sparkline(cohorts['counts'], width=20)}  "
                f"({cohorts['count']:,} dispatched)"
            )
    waits = _value(snapshot, "orwl_waits_total")
    if waits:
        wakeups = _value(snapshot, "orwl_wakeups_total")
        lines.append(
            f"orwl     {waits:,.0f} waits   {wakeups:,.0f} wakeups"
        )
        wait_hist = _metric(snapshot, "orwl_wait_sim_seconds")
        if wait_hist and wait_hist.get("count"):
            lines.append(
                f"  waits   {sparkline(wait_hist['counts'], width=20)}  "
                f"p95 {_fmt_seconds(_hist_quantile(wait_hist, 0.95))} (sim)"
            )
    return "\n".join(lines)


def demo_snapshot() -> dict[str, Any]:
    """A plausible synthetic snapshot (offline rendering, tests)."""
    from repro.metrics.core import (
        LATENCY_BUCKETS,
        MetricRegistry,
        SIZE_BUCKETS,
    )

    reg = MetricRegistry()
    reg.gauge("sweep_progress_total").set(40)
    reg.gauge("sweep_progress_done").set(28)
    reg.gauge("sweep_progress_cached").set(9)
    reg.gauge("sweep_points_per_sec").set(3.7)
    reg.counter("sweep_cache_point_hit_total", stable=False).inc(9)
    reg.counter("sweep_cache_point_miss_total", stable=False).inc(19)
    reg.counter("placement_queries_total").inc(1200)
    reg.counter("placement_memo_hits_total").inc(1180)
    warm = reg.histogram(
        "placement_warm_seconds", buckets=LATENCY_BUCKETS, stable=False
    )
    for k, n in ((4, 200), (5, 640), (6, 280), (7, 60)):
        for _ in range(n):
            warm.observe(LATENCY_BUCKETS[k])
    reg.counter("sim_events_total").inc(2_400_000)
    reg.gauge("engine_events_per_sec").set(1_900_000)
    cohort = reg.histogram(
        "engine_cohort_size", buckets=SIZE_BUCKETS[:16], stable=False
    )
    for k, n in ((0, 500), (5, 120), (7, 90)):
        for _ in range(n):
            cohort.observe(SIZE_BUCKETS[k])
    reg.counter("orwl_waits_total").inc(88_000)
    reg.counter("orwl_wakeups_total").inc(88_000)
    snap = reg.snapshot()
    snap["written_at"] = time.time()
    return snap


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.top", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "snapshot", nargs="?", default="live.json",
        help="metrics-bus snapshot file to follow (default: live.json)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (no screen clearing)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh interval in seconds (default: 1.0)",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="render a synthetic frame (no sweep needed)",
    )
    args = parser.parse_args(argv)

    if args.demo:
        print(render_dashboard(demo_snapshot()))
        return 0

    prev: Optional[dict] = None
    try:
        while True:
            snap = read_snapshot(args.snapshot)
            if snap is None:
                frame = (
                    f"repro.top — waiting for {args.snapshot} "
                    "(start a sweep with --metrics)"
                )
            else:
                frame = render_dashboard(snap, prev)
                prev = snap
            if args.once:
                print(frame)
                return 0 if snap is not None else 1
            # Clear + home, then the frame (plain ANSI; no curses dep).
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
