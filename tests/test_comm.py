"""Tests for repro.comm: CommMatrix, synthetic patterns, and tracing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.comm.matrix import CommMatrix
from repro.comm.trace import CommTracer
from repro.comm import patterns
from repro.util.validate import ValidationError


class TestCommMatrixConstruction:
    def test_basic(self):
        m = CommMatrix([[0, 1], [1, 0]])
        assert m.order == 2
        assert m.volume(0, 1) == 1.0

    def test_diagonal_zeroed(self):
        m = CommMatrix([[5, 1], [1, 7]])
        assert m.volume(0, 0) == 0.0
        assert m.volume(1, 1) == 0.0

    def test_asymmetric_rejected(self):
        with pytest.raises(ValidationError):
            CommMatrix([[0, 1], [2, 0]])

    def test_symmetrize_option(self):
        m = CommMatrix([[0, 1], [2, 0]], symmetrize=True)
        assert m.volume(0, 1) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            CommMatrix([[0, -1], [-1, 0]])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValidationError):
            CommMatrix([[0, 1, 2], [1, 0, 3]])

    def test_default_labels(self):
        m = CommMatrix.zeros(3)
        assert m.labels == ("t0", "t1", "t2")

    def test_custom_labels(self):
        m = CommMatrix.zeros(2, labels=["a", "b"])
        assert m.labels == ("a", "b")

    def test_label_count_mismatch(self):
        with pytest.raises(ValidationError):
            CommMatrix.zeros(2, labels=["only-one"])

    def test_from_edges(self):
        m = CommMatrix.from_edges(3, [(0, 1, 5), (1, 2, 3), (0, 1, 2)])
        assert m.volume(0, 1) == 7.0
        assert m.volume(1, 2) == 3.0

    def test_from_edges_self_loop_ignored(self):
        m = CommMatrix.from_edges(2, [(0, 0, 99)])
        assert m.total_volume() == 0.0

    def test_from_edges_out_of_range(self):
        with pytest.raises(ValidationError):
            CommMatrix.from_edges(2, [(0, 5, 1)])

    def test_values_readonly(self):
        m = CommMatrix.zeros(2)
        with pytest.raises(ValueError):
            m.values[0, 1] = 3


class TestCommMatrixOps:
    def test_total_volume_counts_pairs_once(self):
        m = CommMatrix([[0, 4], [4, 0]])
        assert m.total_volume() == 4.0

    def test_row_volume(self, stencil_matrix):
        # a corner block talks to 3 neighbours
        assert stencil_matrix.row_volume(0) > 0

    def test_density(self):
        m = CommMatrix([[0, 1, 0], [1, 0, 0], [0, 0, 0]])
        assert m.density() == pytest.approx(1 / 3)

    def test_neighbors_sorted_by_volume(self):
        m = CommMatrix.from_edges(3, [(0, 1, 1), (0, 2, 9)])
        assert m.neighbors(0) == [2, 1]

    def test_normalized(self):
        m = CommMatrix([[0, 4], [4, 0]]).normalized()
        assert m.volume(0, 1) == 1.0

    def test_normalized_zero_matrix(self):
        m = CommMatrix.zeros(3).normalized()
        assert m.total_volume() == 0.0

    def test_permuted_roundtrip(self, stencil_matrix):
        perm = list(reversed(range(stencil_matrix.order)))
        p = stencil_matrix.permuted(perm)
        pp = p.permuted(perm)
        assert pp == stencil_matrix

    def test_permuted_invalid(self):
        with pytest.raises(ValidationError):
            CommMatrix.zeros(3).permuted([0, 0, 1])

    def test_extended_adds_zero_rows(self):
        m = CommMatrix([[0, 2], [2, 0]]).extended(2)
        assert m.order == 4
        assert m.row_volume(2) == 0.0
        assert m.labels[2] == "ctl0"

    def test_extended_negative_rejected(self):
        with pytest.raises(ValidationError):
            CommMatrix.zeros(2).extended(-1)

    def test_aggregated_sums_cross_volumes(self):
        m = CommMatrix.from_edges(4, [(0, 1, 5), (0, 2, 1), (1, 3, 2), (2, 3, 7)])
        agg = m.aggregated([[0, 1], [2, 3]])
        assert agg.order == 2
        # cross-group volume: (0,2)=1 + (1,3)=2 = 3
        assert agg.volume(0, 1) == 3.0

    def test_aggregated_total_preserved_minus_intra(self):
        m = CommMatrix.from_edges(4, [(0, 1, 5), (2, 3, 7), (0, 3, 2)])
        agg = m.aggregated([[0, 1], [2, 3]])
        assert agg.total_volume() == 2.0

    def test_aggregated_requires_partition(self):
        m = CommMatrix.zeros(4)
        with pytest.raises(ValidationError):
            m.aggregated([[0, 1], [1, 2, 3]])  # 1 twice
        with pytest.raises(ValidationError):
            m.aggregated([[0, 1], [2]])  # 3 missing

    def test_save_load_roundtrip(self, tmp_path, stencil_matrix):
        path = tmp_path / "m.txt"
        stencil_matrix.save(path)
        loaded = CommMatrix.load(path)
        assert loaded == stencil_matrix
        assert loaded.labels == stencil_matrix.labels

    def test_load_bad_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3\n1 2\n")
        with pytest.raises(Exception):
            CommMatrix.load(path)


class TestPatterns:
    def test_stencil_neighbor_counts(self):
        m = patterns.stencil_2d(3, 3, edge_volume=10)
        # center block has 8 neighbours
        assert len(m.neighbors(4)) == 8
        # corner block has 3
        assert len(m.neighbors(0)) == 3

    def test_stencil_edge_heavier_than_corner(self):
        m = patterns.stencil_2d(3, 3, edge_volume=64.0)
        assert m.volume(0, 1) == 64.0  # horizontal edge
        assert m.volume(0, 4) == 1.0  # diagonal corner

    def test_stencil_no_diagonal(self):
        m = patterns.stencil_2d(3, 3, diagonal=False)
        assert m.volume(0, 4) == 0.0

    def test_stencil_periodic_wraps(self):
        m = patterns.stencil_2d(1, 4, periodic=True, diagonal=False)
        assert m.volume(0, 3) > 0

    def test_stencil_invalid(self):
        with pytest.raises(ValidationError):
            patterns.stencil_2d(0, 3)

    def test_ring(self):
        m = patterns.ring(5, volume=2.0)
        assert m.volume(0, 1) == 2.0
        assert m.volume(0, 4) == 2.0  # wrap
        assert m.volume(0, 2) == 0.0

    def test_ring_single(self):
        assert patterns.ring(1).total_volume() == 0.0

    def test_all_to_all(self):
        m = patterns.all_to_all(4, volume=3.0)
        assert m.total_volume() == 6 * 3.0

    def test_random_sparse_density(self):
        m = patterns.random_sparse(50, density=0.2, seed=42)
        assert 0.1 < m.density() < 0.3

    def test_random_sparse_reproducible(self):
        a = patterns.random_sparse(20, seed=7)
        b = patterns.random_sparse(20, seed=7)
        assert a == b

    def test_random_sparse_bad_density(self):
        with pytest.raises(ValidationError):
            patterns.random_sparse(10, density=1.5)

    def test_clustered_heavy_intra(self):
        m = patterns.clustered(2, 3, intra_volume=50, inter_volume=1, shuffle=False)
        assert m.volume(0, 1) == 50.0
        assert m.volume(0, 3) == 1.0

    def test_clustered_shuffle_reproducible(self):
        a = patterns.clustered(2, 4, seed=3)
        b = patterns.clustered(2, 4, seed=3)
        assert a == b

    def test_butterfly_degree(self):
        m = patterns.butterfly(3)
        # every entity talks to exactly `stages` partners
        assert all(len(m.neighbors(i)) == 3 for i in range(8))

    def test_square_grid_shape(self):
        assert patterns.square_grid_shape(12) == (3, 4)
        assert patterns.square_grid_shape(16) == (4, 4)
        assert patterns.square_grid_shape(7) == (1, 7)
        assert patterns.square_grid_shape(192) == (12, 16)

    def test_square_grid_shape_invalid(self):
        with pytest.raises(ValidationError):
            patterns.square_grid_shape(0)

    @given(st.integers(min_value=1, max_value=200))
    def test_square_grid_shape_property(self, n):
        r, c = patterns.square_grid_shape(n)
        assert r * c == n
        assert r <= c


class TestTracer:
    def test_register_idempotent(self):
        t = CommTracer()
        assert t.register("a") == t.register("a") == 0
        assert t.n_entities == 1

    def test_record_accumulates(self):
        t = CommTracer()
        t.record("a", "b", 10)
        t.record("b", "a", 5)
        assert t.volume_between("a", "b") == 15.0
        assert t.n_events == 2

    def test_record_self_ignored(self):
        t = CommTracer()
        t.record("a", "a", 10)
        assert t.n_events == 0

    def test_record_negative_rejected(self):
        t = CommTracer()
        with pytest.raises(ValidationError):
            t.record("a", "b", -1)

    def test_to_matrix(self):
        t = CommTracer()
        t.register_all(["a", "b", "c"])
        t.record("a", "c", 7)
        m = t.to_matrix()
        assert m.order == 3
        assert m.volume(0, 2) == 7.0
        assert m.labels == ("a", "b", "c")

    def test_to_matrix_forced_order(self):
        t = CommTracer()
        t.record("a", "b", 1)
        m = t.to_matrix(order=4)
        assert m.order == 4
        assert m.labels[3].startswith("silent")

    def test_to_matrix_order_too_small(self):
        t = CommTracer()
        t.register_all(["a", "b", "c"])
        with pytest.raises(ValidationError):
            t.to_matrix(order=2)

    def test_merge(self):
        t1 = CommTracer()
        t1.record("a", "b", 5)
        t2 = CommTracer()
        t2.record("b", "c", 3)
        t1.merge(t2)
        assert t1.volume_between("b", "c") == 3.0
        assert t1.n_events == 2

    def test_reset_volumes_keeps_registration(self):
        t = CommTracer()
        t.record("a", "b", 5)
        t.reset_volumes()
        assert t.n_entities == 2
        assert t.volume_between("a", "b") == 0.0

    def test_unregistered_lookup(self):
        t = CommTracer()
        with pytest.raises(ValidationError):
            t.id_of("ghost")
