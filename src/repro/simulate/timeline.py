"""Execution timelines: per-thread activity traces from the simulator.

When enabled (``Machine(..., timeline=True)``) the machine records one
:class:`Segment` per compute burst and transfer, giving a Gantt-style
view of a run — which PU did what when, where the lock-wait gaps are.
Used by the debugging example and by tests that assert scheduling
behaviour (serialization, preemption, overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class Segment:
    """One contiguous activity of a thread on a PU."""

    tid: int
    thread_name: str
    kind: str  # "compute" | "transfer"
    pu: int  # logical PU index
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Accumulates segments; provides filtering and ASCII rendering."""

    def __init__(self) -> None:
        self._segments: list[Segment] = []

    def record(self, segment: Segment) -> None:
        self._segments.append(segment)

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def for_thread(self, tid: int) -> list[Segment]:
        return [s for s in self._segments if s.tid == tid]

    def for_pu(self, pu: int) -> list[Segment]:
        return sorted(
            (s for s in self._segments if s.pu == pu), key=lambda s: s.start
        )

    def busy_time(self, pu: int) -> float:
        """Total occupied seconds on a PU (segments never overlap for
        non-priority threads; priority overlaps are counted twice, which
        is exactly the cycles they steal)."""
        return sum(s.duration for s in self.for_pu(pu))

    def utilization(self, pu: int, makespan: Optional[float] = None) -> float:
        """Busy fraction of a PU over the run (or over *makespan*)."""
        if makespan is None:
            makespan = self.makespan()
        if makespan <= 0:
            return 0.0
        return min(self.busy_time(pu) / makespan, 1.0)

    def makespan(self) -> float:
        return max((s.end for s in self._segments), default=0.0)

    def render(
        self,
        pus: Optional[Iterable[int]] = None,
        width: int = 72,
    ) -> str:
        """ASCII Gantt chart: one row per PU, '#' compute, '=' transfer."""
        if not self._segments:
            return "(empty timeline)"
        span = self.makespan()
        if pus is None:
            pus = sorted({s.pu for s in self._segments})
        lines = []
        for pu in pus:
            row = [" "] * width
            for s in self.for_pu(pu):
                a = int(s.start / span * (width - 1))
                b = max(int(s.end / span * (width - 1)), a)
                ch = "#" if s.kind == "compute" else "="
                for x in range(a, b + 1):
                    row[x] = ch
            lines.append(f"PU{pu:>3} |{''.join(row)}|")
        lines.append(f"      0{' ' * (width - 10)}{span:.3g}s")
        return "\n".join(lines)

    def to_svg(self, width: int = 900, row_h: int = 16) -> str:
        """Render as a standalone SVG Gantt chart.

        One row per PU; compute segments green, transfers orange; time
        axis along the bottom.
        """
        if not self._segments:
            return (
                '<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40">'
                '<text x="10" y="25" font-size="12">empty timeline</text></svg>'
            )
        span = self.makespan()
        pus = sorted({s.pu for s in self._segments})
        label_w = 46
        chart_w = width - label_w
        height = len(pus) * (row_h + 4) + 28
        out = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            '<rect width="100%" height="100%" fill="white"/>',
        ]
        colors = {"compute": "#6fbf6f", "transfer": "#e8a050"}
        for row, pu in enumerate(pus):
            y = 4 + row * (row_h + 4)
            out.append(
                f'<text x="4" y="{y + row_h - 4}" font-size="10" '
                f'font-family="sans-serif">PU{pu}</text>'
            )
            out.append(
                f'<rect x="{label_w}" y="{y}" width="{chart_w}" height="{row_h}" '
                'fill="#f4f4f4" stroke="#ccc" stroke-width="0.5"/>'
            )
            for s in self.for_pu(pu):
                x0 = label_w + s.start / span * chart_w
                w = max((s.end - s.start) / span * chart_w, 0.5)
                out.append(
                    f'<rect x="{x0:.2f}" y="{y}" width="{w:.2f}" height="{row_h}" '
                    f'fill="{colors.get(s.kind, "#999")}">'
                    f"<title>{s.thread_name} {s.kind} "
                    f"[{s.start:.6g}, {s.end:.6g}]s</title></rect>"
                )
        axis_y = height - 16
        out.append(
            f'<text x="{label_w}" y="{axis_y + 12}" font-size="10" '
            f'font-family="sans-serif">0</text>'
        )
        out.append(
            f'<text x="{width - 4}" y="{axis_y + 12}" text-anchor="end" '
            f'font-size="10" font-family="sans-serif">{span:.4g}s</text>'
        )
        out.append("</svg>")
        return "\n".join(out)
