"""The multi-seed statistics layer: aggregation, significance, sweeps.

The contract under test (see ``repro.stats``):

* ``summarize`` is deterministic, order-invariant, and its CI always
  contains the sample mean; N=1 degenerates to the single-run number.
* ``compare`` renders a verdict that is ``insufficient-data`` for
  single runs, detects clearly separated samples, and stays calm on
  identical ones.
* ``run_replicated`` expands points × seeds with replicate 0 on the
  base seed, groups results per point in submission order, and is
  bit-identical between serial and parallel execution.
* The Figure-1 wiring: ``run_fig1(..., seeds=N)`` carries per-point
  ``SeedStats``, its replicate 0 equals the ``seeds=1`` sweep
  bit-for-bit, and the CLIs render stats without perturbing the
  single-seed output.
"""

from __future__ import annotations

import pytest

from repro.exec.runner import SweepRunner, derive_seed
from repro.stats import (
    ReplicateSpec,
    SeedStats,
    compare,
    permutation_pvalue,
    replicate_seeds,
    run_replicated,
    speedup_distribution,
    summarize,
)
from repro.util.validate import ValidationError

# ---------------------------------------------------------------------------
# Module-level payloads (picklable by reference for the process pool).
# ---------------------------------------------------------------------------


def _noisy_value(base: float, seed: int) -> float:
    """A deterministic pseudo-measurement: base plus seeded jitter."""
    return base + (derive_seed(seed, "jitter") % 1000) / 10_000.0


class TestSummarize:
    def test_n1_is_the_single_run_number(self):
        s = summarize([3.25])
        assert s.n == 1
        assert s.mean == s.median == 3.25
        assert s.stddev == 0.0
        assert s.ci == (3.25, 3.25)
        assert s.values == (3.25,)

    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.stddev == pytest.approx(1.29099, rel=1e-4)
        assert s.ci_lo <= 2.5 <= s.ci_hi
        assert s.values == (1.0, 2.0, 3.0, 4.0)

    def test_order_invariant_bit_identical(self):
        a = summarize([5.0, 1.0, 3.0, 2.0, 4.0])
        b = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert a == b  # dataclass equality: every field, bit-for-bit

    def test_deterministic_across_calls(self):
        vals = [0.1, 0.5, 0.9, 0.2]
        assert summarize(vals) == summarize(vals)

    def test_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            summarize([])
        with pytest.raises(ValidationError):
            summarize([1.0], confidence=1.5)
        with pytest.raises(ValidationError):
            summarize([1.0], n_boot=0)

    def test_ci_overlap_helper(self):
        lo = summarize([1.0, 1.1, 0.9, 1.05])
        hi = summarize([100.0, 101.0, 99.0, 100.5])
        assert not lo.overlaps(hi)
        assert lo.overlaps(lo)


class TestSignificance:
    def test_single_runs_are_insufficient(self):
        v = compare("a", [2.0], "b", [1.0])
        assert v.verdict == "insufficient-data"
        assert v.p_value is None
        assert not v.significant
        assert v.speedup_mean == 2.0
        assert v.speedup_ci_lo == v.speedup_ci_hi == 2.0

    def test_separated_samples_significant(self):
        slow = [10.0, 10.1, 9.9, 10.05, 9.95]
        fast = [2.0, 2.1, 1.9, 2.05, 1.95]
        v = compare("slow", slow, "fast", fast)
        assert v.verdict == "significant"
        assert v.p_value is not None and v.p_value < 0.05
        assert v.method == "exact-permutation"
        assert v.speedup_mean == pytest.approx(5.0, rel=0.05)
        assert v.speedup_ci_lo <= v.speedup_mean <= v.speedup_ci_hi

    def test_identical_samples_not_significant(self):
        same = [1.0, 1.2, 0.8, 1.1, 0.9]
        v = compare("a", same, "b", list(same))
        assert v.verdict == "not-significant"
        assert v.p_value is not None and v.p_value > 0.5
        assert v.speedup_mean == 1.0

    def test_monte_carlo_path_for_large_groups(self):
        a = [10.0 + 0.01 * k for k in range(10)]
        b = [2.0 + 0.01 * k for k in range(10)]
        p, method = permutation_pvalue(a, b, n_perm=500)
        assert method == "monte-carlo-permutation"
        assert p is not None and p < 0.05

    def test_permutation_is_order_invariant(self):
        a = [3.0, 1.0, 2.0]
        b = [4.0, 6.0, 5.0]
        assert permutation_pvalue(a, b) == permutation_pvalue(a[::-1], b[::-1])

    def test_speedup_distribution_rejects_empty(self):
        with pytest.raises(ValidationError):
            speedup_distribution([], [1.0])
        with pytest.raises(ValidationError):
            speedup_distribution([1.0], [0.0])


class TestReplicateSeeds:
    def test_replicate_zero_is_base(self):
        sched = replicate_seeds(42, "fig1", ("openmp", 8), 4)
        assert sched[0] == 42
        assert len(set(sched)) == 4

    def test_points_get_distinct_schedules(self):
        a = replicate_seeds(0, "fig1", ("openmp", 8), 3)
        b = replicate_seeds(0, "fig1", ("openmp", 16), 3)
        assert a[0] == b[0] == 0  # shared base by design
        assert set(a[1:]).isdisjoint(b[1:])

    def test_rejects_zero_replicates(self):
        with pytest.raises(ValidationError):
            replicate_seeds(0, "s", (), 0)


class TestRunReplicated:
    def _specs(self):
        return [
            ReplicateSpec(_noisy_value, {"base": float(k)}, key=(k,), label=f"p{k}")
            for k in range(3)
        ]

    def test_groups_in_submission_order(self):
        sweep = run_replicated(self._specs(), seeds=4, base_seed=7, scope="t")
        assert [p.key for p in sweep.points] == [(0,), (1,), (2,)]
        assert all(len(p.results) == 4 for p in sweep.points)
        assert sweep.n_seeds == 4

    def test_replicate_zero_runs_base_seed(self):
        sweep = run_replicated(self._specs(), seeds=3, base_seed=7, scope="t")
        for p in sweep.points:
            assert p.seeds[0] == 7
            assert p.first == _noisy_value(float(p.key[0]), 7)

    def test_serial_equals_parallel_bitwise(self):
        kwargs = dict(seeds=3, base_seed=1, scope="t",
                      value_of=lambda v: v)
        serial = run_replicated(self._specs(), n_workers=1, **kwargs)
        parallel = run_replicated(
            self._specs(), runner=SweepRunner(n_workers=2, chunk_size=2), **kwargs
        )
        for a, b in zip(serial.points, parallel.points):
            assert a.key == b.key
            assert a.results == b.results
            assert a.stats == b.stats  # SeedStats equality is bitwise

    def test_stats_and_events(self):
        events = []
        sweep = run_replicated(
            self._specs(), seeds=2, base_seed=0, scope="t",
            value_of=lambda v: v, on_event=events.append,
        )
        for p in sweep.points:
            assert isinstance(p.stats, SeedStats)
            assert p.stats.n == 2
            assert p.stats.ci_lo <= p.stats.mean <= p.stats.ci_hi
        kinds = [e.kind for e in events]
        assert kinds.count("point_done") == 6  # one per replicate
        assert kinds.count("point_stats") == 3  # one per point
        done_labels = [e.label for e in events if e.kind == "point_done"]
        assert "p0#s0" in done_labels and "p0#s1" in done_labels

    def test_seeds_one_keeps_plain_labels(self):
        events = []
        run_replicated(self._specs(), seeds=1, base_seed=0, scope="t",
                       on_event=events.append)
        labels = {e.label for e in events if e.kind == "point_done"}
        assert labels == {"p0", "p1", "p2"}

    def test_rejects_bad_specs(self):
        with pytest.raises(ValidationError):
            run_replicated(self._specs(), seeds=0, base_seed=0)
        dup = self._specs() + [
            ReplicateSpec(_noisy_value, {"base": 9.0}, key=(0,), label="dup")
        ]
        with pytest.raises(ValidationError):
            run_replicated(dup, seeds=1, base_seed=0)


class TestFig1Replication:
    """The experiment wiring: seeds=N on the real Figure-1 sweep."""

    COMMON = dict(core_counts=(8,), iterations=1, n=512)

    @pytest.fixture(scope="class")
    def multi(self):
        from repro.experiments.fig1 import run_fig1

        return run_fig1(seeds=3, seed=5, **self.COMMON)

    def test_replicate_zero_equals_single_seed_sweep(self, multi):
        from repro.experiments.fig1 import run_fig1

        single = run_fig1(seeds=1, seed=5, **self.COMMON)
        assert len(single.points) == len(multi.points)
        for a, b in zip(single.points, multi.points):
            assert a == b  # dataclass equality: all metrics bit-identical

    def test_seed_stats_populated(self, multi):
        for (impl, cores), stats in multi.seed_stats.items():
            assert stats.n == 3
            assert stats.ci_lo <= stats.mean <= stats.ci_hi
            assert multi.replicates[impl, cores][0].time == multi.time_of(impl, cores)
        assert multi.n_seeds == 3

    def test_stats_table_and_verdicts_render(self, multi):
        table = multi.stats_table()
        assert "95% CI" in table
        verdicts = multi.speedup_verdicts()
        assert {v.baseline for v in verdicts} == {"openmp", "orwl-nobind"}
        for v in verdicts:
            assert v.candidate == "orwl-bind"
            assert v.verdict in ("significant", "not-significant")

    def test_single_seed_verdicts_are_insufficient(self):
        from repro.experiments.fig1 import run_fig1

        single = run_fig1(seeds=1, seed=5, **self.COMMON)
        for v in single.speedup_verdicts():
            assert v.verdict == "insufficient-data"

    def test_serial_parallel_replicated_fingerprints_match(self):
        from repro.experiments.fig1 import run_fig1

        common = dict(core_counts=(8,), iterations=1, n=512, seed=3,
                      seeds=2, fingerprint=True)
        serial = run_fig1(n_workers=1, **common)
        parallel = run_fig1(n_workers=2, **common)
        assert serial.seed_stats == parallel.seed_stats
        for key, reps in serial.replicates.items():
            other = parallel.replicates[key]
            for a, b in zip(reps, other):
                assert a.fingerprint and a.fingerprint == b.fingerprint
                assert a.time == b.time

    def test_missing_point_error_names_the_pair(self, multi):
        with pytest.raises(KeyError, match=r"implementation='openmp'.*n_cores=999"):
            multi.time_of("openmp", 999)
        with pytest.raises(KeyError, match=r"implementation='nope'"):
            multi.stats_of("nope", 8)

    def test_plot_with_bands(self, multi):
        from repro.experiments.plotting import plot_fig1

        chart = plot_fig1(multi)
        assert "confidence band" in chart


class TestAblationAndClusterSeeds:
    def test_oversubscription_gains_stats_keys(self):
        from repro.experiments.ablations import oversubscription_study

        single = oversubscription_study(factors=(1,), iterations=1, seeds=1)
        multi = oversubscription_study(factors=(1,), iterations=1, seeds=3)
        assert "time_mean" not in single[0]
        assert multi[0]["n_seeds"] == 3.0
        assert multi[0]["time_ci_lo"] <= multi[0]["time_mean"] <= multi[0]["time_ci_hi"]
        # replicate 0 is the single-seed run, bit-identical
        assert multi[0]["time"] == single[0]["time"]

    def test_cluster_points_gain_time_stats(self):
        from repro.experiments.cluster import run_cluster_lk23, table

        common = dict(nodes=2, sockets_per_node=1, cores_per_socket=4,
                      n=1024, iterations=1)
        single = run_cluster_lk23(seeds=1, **common)
        multi = run_cluster_lk23(seeds=2, **common)
        for policy, point in multi.items():
            assert point.time_stats is not None
            assert point.time_stats.n == 2
            assert point.time == single[policy].time  # replicate 0
        assert single["treematch"].time_stats is None
        rendered = table(multi)
        assert "mean±sd" in rendered
        assert "mean±sd" not in table(single)


class TestStatsCli:
    def test_fig1_cli_seeds(self, capsys, tmp_path):
        from repro.tools.fig1 import main

        csv_path = tmp_path / "out.csv"
        assert main(["--cores", "8", "--iterations", "1", "--n", "512",
                     "--seeds", "3", "--workers", "1",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-point statistics over 3 seeds" in out
        assert "orwl-bind vs openmp" in out
        header = csv_path.read_text().splitlines()[0]
        assert "time_mean" in header and "ci_hi" in header

    def test_fig1_cli_single_seed_output_unchanged(self, capsys, tmp_path):
        from repro.tools.fig1 import main

        csv_path = tmp_path / "out.csv"
        assert main(["--cores", "8", "--iterations", "1", "--n", "512",
                     "--workers", "1", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-point statistics" not in out
        header = csv_path.read_text().splitlines()[0]
        assert header == "implementation,cores,sim_time_s,local_fraction,migrations"

    def test_reproduce_cli_seeds(self, capsys):
        from repro.tools.reproduce import main

        main(["--cores", "8", "16", "--iterations", "1", "--seeds", "2",
              "--workers", "1"])
        out = capsys.readouterr().out
        assert "Statistics over 2 seeds per point" in out

    def test_bench_quick_seeds_emits_variance_rows(self):
        import json

        from repro.tools.bench import bench_fig1

        report = bench_fig1((8,), 1, 512, 0, seeds=3)
        assert report["seeds"] == 3
        assert report["n_runs"] == 9
        assert report["bit_identical"] is True
        assert len(report["stats"]) == 3
        for row in report["stats"]:
            assert row["ci_lo"] <= row["mean"] <= row["ci_hi"]
        assert {v["candidate"] for v in report["significance"]} == {"orwl-bind"}
        json.dumps(report)  # must be JSON-serializable as emitted
