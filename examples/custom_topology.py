#!/usr/bin/env python3
"""Model your own machine and inspect the placement the add-on computes.

Demonstrates the hwloc-like substrate directly: build a topology from a
synthetic spec string (as ``hwloc --input`` would), render it, extract
the affinity matrix of an LK23 decomposition, run TreeMatch, and print
the placement report plus the OS-level binding script.

Run:  python examples/custom_topology.py
"""

from repro.kernels import Lk23Config, build_program, describe
from repro.placement import bind_program, report, static_matrix
from repro.placement.binder import task_matrix
from repro.topology import from_spec, query, serialize

SPEC = "numa:4 package:1 l3:1 core:6 pu:2"  # 4 nodes x 6 cores x 2 HT = 48 PUs


def main() -> None:
    topo = from_spec(SPEC, name="my-box")
    print(f"Topology from spec {SPEC!r}:")
    print(f"  {query.summarize(topo)}")
    print(f"  hyperthreading: {topo.has_hyperthreading()}")
    print()
    print("lstopo-style rendering (first lines):")
    print("\n".join(topo.render().splitlines()[:8]) + "\n  ...\n")

    # An LK23 run with one task per core.
    cfg = Lk23Config(n=4096, grid_rows=4, grid_cols=6, iterations=3)
    prog = build_program(cfg)
    print(describe(cfg))
    print()

    plan = bind_program(prog, topo, policy="treematch")
    tmat = task_matrix(prog)
    print(f"control strategy chosen: {plan.control_strategy}")
    print()
    print(report.render_report(plan.placed_mapping, tmat, topo, title="TreeMatch task placement"))
    print()

    print("OS binding script (first 8 threads):")
    print("\n".join(plan.os_binding_script().splitlines()[:8]))
    print()

    # The topology can be exported for offline analysis, like hwloc XML.
    doc = serialize.dumps(topo)
    print(f"serialized topology: {len(doc)} bytes of JSON "
          f"(round-trips via repro.topology.serialize.loads)")


if __name__ == "__main__":
    main()
