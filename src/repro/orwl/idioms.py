"""Reusable ORWL body idioms.

The canonical iterative structure appears in every ORWL application
(LK23's main ops, the wavefront, the ring pipeline): publish initial
data, then per sweep import → work → re-queue → export.  These
generator helpers capture it so application bodies shrink to their
work function.

All helpers are generators over the :class:`~repro.orwl.runtime
.OpContext` protocol — compose them with ``yield from``.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from repro.orwl.handle import Handle
from repro.util.validate import ValidationError

#: A per-sweep work function: receives (ctx, sweep_index) and may yield
#: syscalls (e.g. ``yield ctx.compute(...)``).
SweepFn = Callable[["object", int], Generator]


def publish_initial(ctx, handles: Sequence[Handle]) -> Generator:
    """Acquire-and-requeue each write handle once: the init-round
    publication that hands initial data to waiting readers."""
    for h in handles:
        yield from ctx.acquire(h)
        ctx.next(h)


def acquire_all(ctx, handles: Sequence[Handle]) -> Generator:
    """Acquire several handles in declaration order."""
    for h in handles:
        yield from ctx.acquire(h)


def requeue_all(ctx, handles: Sequence[Handle]) -> None:
    """``orwl_next`` on several handles."""
    for h in handles:
        ctx.next(h)


def iterative(
    ctx,
    iterations: int,
    work: SweepFn,
    reads: Sequence[Handle] = (),
    writes: Sequence[Handle] = (),
    publish_first: bool = True,
) -> Generator:
    """The canonical ORWL sweep loop.

    Per sweep: acquire all *reads* (pulling payloads), run *work*,
    re-queue the reads, then acquire + re-queue each *write* (the
    export).  With *publish_first*, the writes are acquired and
    re-queued once before the loop — the init publication that lets
    neighbours' first imports complete without waiting on computation.

    Example::

        def body(ctx):
            yield from idioms.iterative(
                ctx, cfg.iterations,
                work=lambda c, k: iter([c.compute(flops=block_flops)]),
                reads=halo_handles, writes=src_handles,
            )
    """
    if iterations <= 0:
        raise ValidationError(f"iterations must be > 0, got {iterations}")
    if publish_first and writes:
        yield from publish_initial(ctx, writes)
    for k in range(iterations):
        yield from acquire_all(ctx, reads)
        yield from work(ctx, k)
        requeue_all(ctx, reads)
        for h in writes:
            yield from ctx.acquire(h)
            ctx.next(h)


def compute_sweep(seconds: Optional[float] = None, flops: Optional[float] = None) -> SweepFn:
    """A :data:`SweepFn` that just burns a fixed amount of work."""

    def work(ctx, _k: int) -> Generator:
        yield ctx.compute(seconds=seconds, flops=flops)

    return work
