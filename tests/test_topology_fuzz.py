"""Round-trip and fuzz tests for the topology import/export layer.

Two guarantees are pinned here:

* **Fixed point** — for every preset machine, serialize→parse→serialize
  reproduces the serialized form exactly, in both formats (hwloc XML
  and JSON).  The second pass works from the re-parsed topology, so a
  byte-equal result means nothing was lost or invented.
* **Clean error contract** — arbitrary corruption of a valid document
  (truncated tags, scrambled attributes, bogus cpusets/indices,
  invalid JSON) either still parses or raises
  :class:`~repro.topology.tree.TopologyError`; no other exception
  ever escapes the importers.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import presets
from repro.topology.hwloc_xml import parse_hwloc_xml, to_hwloc_xml
from repro.topology.serialize import dumps, from_dict, loads, to_dict
from repro.topology.tree import TopologyError

PRESETS = {
    "paper_smp": lambda: presets.paper_smp(sockets=4, cores_per_socket=4),
    "dual_xeon": lambda: presets.dual_xeon(cores_per_socket=4),
    "hyperthreaded_smp": lambda: presets.hyperthreaded_smp(sockets=2,
                                                           cores_per_socket=4),
    "small_numa": presets.small_numa,
    "deep_hierarchy": presets.deep_hierarchy,
}


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_hwloc_xml_roundtrip_fixed_point(name):
    topo = PRESETS[name]()
    xml1 = to_hwloc_xml(topo)
    reparsed = parse_hwloc_xml(xml1, name=topo.name)
    xml2 = to_hwloc_xml(reparsed)
    assert xml2 == xml1
    assert reparsed.nb_pus == topo.nb_pus
    assert reparsed.depth == topo.depth


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_json_roundtrip_fixed_point(name):
    topo = PRESETS[name]()
    text1 = dumps(topo)
    reparsed = loads(text1)
    assert dumps(reparsed) == text1
    assert reparsed.name == topo.name
    assert reparsed.nb_pus == topo.nb_pus


def test_cross_format_roundtrip_preserves_structure():
    topo = presets.small_numa()
    via_xml = parse_hwloc_xml(to_hwloc_xml(topo))
    assert loads(dumps(via_xml)).nb_pus == topo.nb_pus


# ---------------------------------------------------------------------------
# Malformed XML: specific regressions
# ---------------------------------------------------------------------------

VALID_XML = to_hwloc_xml(presets.small_numa())

MALFORMED_XML = {
    "empty": "",
    "not-xml": "this is not xml at all",
    "truncated-tag": VALID_XML[: len(VALID_XML) // 2],
    "unclosed-root": "<topology><object type='Machine'>",
    "wrong-root": "<machines><object type='Machine'/></machines>",
    "no-machine": '<topology><object type="Package"/></topology>',
    "non-integer-os-index": (
        '<topology><object type="Machine"><object type="PU" '
        'os_index="twelve"/></object></topology>'
    ),
    "negative-os-index": (
        '<topology><object type="Machine"><object type="PU" '
        'os_index="-3"/></object></topology>'
    ),
    "huge-os-index": (
        '<topology><object type="Machine"><object type="PU" '
        'os_index="1000000000000000000"/></object></topology>'
    ),
    "bogus-cpuset-ish-index": (
        '<topology><object type="Machine"><object type="PU" '
        'os_index="0xzz"/></object></topology>'
    ),
    "negative-cache-size": (
        '<topology><object type="Machine"><object type="Cache" depth="3" '
        'cache_size="-64"/><object type="PU" os_index="0"/></object>'
        "</topology>"
    ),
    "non-integer-memory": (
        '<topology><object type="Machine"><object type="NUMANode" '
        'os_index="0" local_memory="lots"><object type="PU" os_index="0"/>'
        "</object></object></topology>"
    ),
}


@pytest.mark.parametrize("case", sorted(MALFORMED_XML))
def test_malformed_xml_raises_topology_error(case):
    with pytest.raises(TopologyError):
        parse_hwloc_xml(MALFORMED_XML[case])


def test_malformed_xml_error_is_a_value_error():
    # Callers that only know ValueError still catch the contract error.
    with pytest.raises(ValueError):
        parse_hwloc_xml(MALFORMED_XML["truncated-tag"])


# ---------------------------------------------------------------------------
# Malformed XML: hypothesis mutation fuzz
# ---------------------------------------------------------------------------


def _parse_or_contract_error(text: str) -> None:
    try:
        parse_hwloc_xml(text)
    except TopologyError:
        pass  # the one allowed failure mode


@settings(max_examples=150, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(VALID_XML)))
def test_fuzz_truncation(cut):
    _parse_or_contract_error(VALID_XML[:cut])


@settings(max_examples=150, deadline=None)
@given(
    pos=st.integers(min_value=0, max_value=len(VALID_XML)),
    junk=st.text(
        alphabet='<>/"= abcdefgh0123456789-', min_size=1, max_size=8
    ),
)
def test_fuzz_insertion(pos, junk):
    _parse_or_contract_error(VALID_XML[:pos] + junk + VALID_XML[pos:])


@settings(max_examples=150, deadline=None)
@given(
    attr=st.sampled_from(
        ["os_index", "local_memory", "cache_size", "cache_linesize", "type"]
    ),
    value=st.text(max_size=12).filter(lambda s: '"' not in s),
)
def test_fuzz_attribute_scramble(attr, value):
    _parse_or_contract_error(
        '<topology><object type="Machine">'
        f'<object type="NUMANode" os_index="0" {attr}="{value}">'
        '<object type="Cache" depth="3" cache_size="1024">'
        '<object type="PU" os_index="0"/>'
        "</object></object></object></topology>"
    )


# ---------------------------------------------------------------------------
# Malformed JSON documents
# ---------------------------------------------------------------------------

MALFORMED_JSON_TEXT = {
    "empty": "",
    "not-json": "{nope",
    "wrong-type": "[1, 2, 3]",
    "truncated": dumps(presets.small_numa())[:40],
}


@pytest.mark.parametrize("case", sorted(MALFORMED_JSON_TEXT))
def test_malformed_json_text_raises_topology_error(case):
    with pytest.raises(TopologyError):
        loads(MALFORMED_JSON_TEXT[case])


def _corrupt(doc, path, value):
    """Return a deep copy of *doc* with the node at *path* replaced."""
    out = json.loads(json.dumps(doc))
    node = out
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = value
    return out


BASE_DOC = to_dict(presets.small_numa())

BAD_DOCS = {
    "format": _corrupt(BASE_DOC, ["format"], "something-else"),
    "version-str": _corrupt(BASE_DOC, ["version"], "one"),
    "version-future": _corrupt(BASE_DOC, ["version"], 99),
    "root-not-dict": _corrupt(BASE_DOC, ["root"], "machine"),
    "bad-type": _corrupt(BASE_DOC, ["root", "type"], "FLUX_CAPACITOR"),
    "os-index-str": _corrupt(
        BASE_DOC, ["root", "children", 0, "os_index"], "zero"
    ),
    "os-index-negative": _corrupt(
        BASE_DOC, ["root", "children", 0, "os_index"], -1
    ),
    "os-index-bool": _corrupt(
        BASE_DOC, ["root", "children", 0, "os_index"], True
    ),
    "os-index-huge": _corrupt(
        BASE_DOC, ["root", "children", 0, "os_index"], 10**18
    ),
    "children-not-list": _corrupt(BASE_DOC, ["root", "children"], "oops"),
    "name-not-str": _corrupt(BASE_DOC, ["name"], 7),
}


@pytest.mark.parametrize("case", sorted(BAD_DOCS))
def test_malformed_json_document_raises_topology_error(case):
    with pytest.raises(TopologyError):
        from_dict(BAD_DOCS[case])


@settings(max_examples=100, deadline=None)
@given(
    pos=st.integers(min_value=0, max_value=len(dumps(presets.small_numa()))),
    junk=st.text(alphabet='{}[]",:0123456789abc', min_size=1, max_size=6),
)
def test_fuzz_json_insertion(pos, junk):
    text = dumps(presets.small_numa())
    try:
        loads(text[:pos] + junk + text[pos:])
    except TopologyError:
        pass
