"""Communication-matrix handling: the affinity side of placement.

* :mod:`~repro.comm.matrix` — the :class:`CommMatrix` container with the
  aggregation/permutation/extension operations Algorithm 1 needs.
* :mod:`~repro.comm.patterns` — synthetic affinity generators (2-D
  stencil, ring, all-to-all, random, clustered, butterfly).
* :mod:`~repro.comm.trace` — the runtime-side collector that turns ORWL
  handle traffic into a matrix.
"""

from repro.comm.matrix import CommMatrix
from repro.comm.trace import CommTracer
from repro.comm import patterns

__all__ = ["CommMatrix", "CommTracer", "patterns"]
