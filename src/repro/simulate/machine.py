"""The simulated NUMA machine.

:class:`Machine` executes :class:`SimThread` generator bodies on the PUs
of a :class:`~repro.topology.tree.Topology`, charging:

* **compute** — serialized per PU (threads sharing a PU queue up);
* **transfers** — priced by the topological distance between producer
  and consumer PUs via :class:`~repro.topology.distance.DistanceModel`,
  stretched by :class:`~repro.simulate.contention.ContentionModel`;
* **unbound threads** — placed and periodically migrated by the
  :class:`~repro.simulate.scheduler.OsScheduler` model, paying a
  cache-refill penalty per migration.

This is the substitution for the paper's real 192-core SMP: wall-clock
"processing time" in the experiments is :attr:`Machine.engine`'s final
simulated time (see DESIGN.md §1).
"""

from __future__ import annotations

import enum
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Generator, Optional

import numpy as np

from repro.metrics import core as _metrics_core

from repro.simulate.contention import ContentionConfig, ContentionModel
from repro.simulate.engine import ENGINE_MODES, Engine, SimEvent, SimulationError
from repro.simulate.metrics import MachineMetrics
from repro.simulate.scheduler import OsScheduler, SchedulerConfig
from repro.simulate.syscalls import (
    Compute,
    ComputeFlops,
    Receive,
    ReceiveFromNode,
    Syscall,
    Wait,
    Yield,
)
from repro.topology.distance import DEFAULT_LEVEL_COSTS, DistanceModel, LinkCosts
from repro.topology.objects import ObjType
from repro.topology.tree import Topology
from repro.util.rng import SeedLike, make_rng
from repro.util.validate import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

#: Type of a thread body: a generator yielding Syscalls.
ThreadBody = Generator[Syscall, None, None]

#: Observability hook: when set, called with every newly constructed
#: machine (before threads are added).  ``repro.observe.capture()`` uses
#: it to attach tracers to machines built deep inside examples and
#: tools without plumbing a tracer through their APIs.
new_machine_hook: Optional[Callable[["Machine"], None]] = None

#: Engine mode a machine uses when none is given explicitly.  The
#: batched cohort engine is the production default; the scalar engine
#: is the bit-identical reference (see ``repro.simulate.engine``).
DEFAULT_ENGINE_MODE = "batched"


def set_default_engine_mode(mode: str) -> str:
    """Set the process-wide default engine mode; returns the previous one.

    Entry points (``--engine-mode`` CLI flags, the differential test
    harness) use this to flip every machine built downstream without
    threading a parameter through each constructor.  Sweep workers
    receive the mode inside their task payload instead — a process-pool
    worker does not inherit this module global.
    """
    global DEFAULT_ENGINE_MODE
    if mode not in ENGINE_MODES:
        raise SimulationError(
            f"unknown engine mode {mode!r}; one of {ENGINE_MODES}"
        )
    previous = DEFAULT_ENGINE_MODE
    DEFAULT_ENGINE_MODE = mode
    return previous


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class SimThread:
    """A simulated thread: identity, placement, and its generator body."""

    __slots__ = (
        "tid",
        "name",
        "bound_pu",
        "current_pu",
        "state",
        "body",
        "pending_penalty",
        "consumed_since_balance",
        "blocked_since",
        "priority",
        "resume_cb",
        "compute_time",
        "transfer_time",
        "wait_time",
        "runq_time",
        "migrations",
        "done_at",
    )

    def __init__(
        self, tid: int, name: str, bound_pu: Optional[int], priority: bool = False
    ) -> None:
        self.tid = tid
        self.name = name
        #: logical PU index if bound, None if under the OS scheduler.
        self.bound_pu = bound_pu
        #: high-priority (preempting) thread — see Machine.add_thread.
        self.priority = priority
        #: logical PU the thread currently occupies.
        self.current_pu: int = -1
        self.state = ThreadState.NEW
        self.body: Optional[ThreadBody] = None
        #: the thread's reusable resume callback (one closure per thread
        #: instead of one per event; set by Machine.run).
        self.resume_cb: Optional[Callable[[], None]] = None
        #: cache-refill seconds to add to the next work item.
        self.pending_penalty = 0.0
        #: CPU seconds consumed since the last balancing decision.
        self.consumed_since_balance = 0.0
        self.blocked_since = 0.0
        #: per-thread accounting (see Machine.thread_stats).
        self.compute_time = 0.0
        self.transfer_time = 0.0
        self.wait_time = 0.0
        self.runq_time = 0.0
        self.migrations = 0
        #: simulated time the body finished (-1 while running).
        self.done_at = -1.0

    @property
    def is_bound(self) -> bool:
        return self.bound_pu is not None

    def __repr__(self) -> str:
        return f"<SimThread {self.tid} {self.name!r} {self.state.value} pu={self.current_pu}>"


class Machine:
    """Discrete-event machine executing thread bodies on a topology.

    Parameters
    ----------
    topo:
        The machine's topology; transfer costs derive from it.
    distance_model:
        Optional pre-built :class:`DistanceModel` (rebuilt otherwise).
    core_rate:
        Sustained compute throughput per PU in flop/s (used by workloads
        that express work in flops; bodies may also yield plain seconds).
    core_rate_of:
        Optional per-PU rate overrides ``{pu_os_index: flop/s}`` for
        heterogeneous machines (slow nodes, big.LITTLE cores).  Only
        :class:`~repro.simulate.syscalls.ComputeFlops` work is affected;
        fixed-seconds :class:`Compute` bursts are rate-independent by
        definition.
    contention, scheduler:
        Model configurations (defaults are calibrated, see the modules).
    compute_jitter:
        Multiplicative noise half-width on compute durations (e.g. 0.01
        = ±1 %), de-synchronizing lock-step threads the way real cores
        do.  0 disables.
    seed:
        Seed for scheduler and jitter randomness.
    timeline:
        Record a per-thread activity trace
        (:class:`repro.simulate.timeline.Timeline`) — off by default as
        large runs produce many segments.
    tracer:
        Optional :class:`repro.observe.Tracer`; when attached the
        machine emits one structured event per activity (compute,
        transfer, wait, runq, migration), tagged with PU / NUMA node /
        sharing level, and wires the engine and scheduler probes.  See
        :mod:`repro.observe`.
    engine_mode:
        ``"batched"`` (event-cohort engine, the default via
        :data:`DEFAULT_ENGINE_MODE`) or ``"scalar"`` (the reference
        engine).  Results are bit-identical either way — the
        differential harness and the golden fingerprints enforce it —
        only the wall-clock throughput differs.
    """

    def __init__(
        self,
        topo: Topology,
        distance_model: Optional[DistanceModel] = None,
        core_rate: float = 2e9,
        contention: Optional[ContentionConfig] = None,
        scheduler: Optional[SchedulerConfig] = None,
        compute_jitter: float = 0.0,
        seed: SeedLike = 0,
        timeline: bool = False,
        core_rate_of: Optional[dict[int, float]] = None,
        tracer: Optional["Tracer"] = None,
        engine_mode: Optional[str] = None,
    ) -> None:
        self.topo = topo
        self.distances = distance_model or DistanceModel(topo)
        self.core_rate = check_positive(core_rate, "core_rate")
        # Per-logical-PU rates (heterogeneity), defaulting to core_rate.
        self._rate_of_pu = [self.core_rate] * topo.nb_pus
        if core_rate_of:
            os_to_logical = {pu.os_index: pu.logical_index for pu in topo.pus()}
            for os_idx, rate in core_rate_of.items():
                if os_idx not in os_to_logical:
                    raise SimulationError(f"no PU with os_index {os_idx}")
                self._rate_of_pu[os_to_logical[os_idx]] = check_positive(
                    rate, f"core_rate_of[{os_idx}]"
                )
        if not 0.0 <= compute_jitter < 1.0:
            raise ValueError(f"compute_jitter must be in [0, 1), got {compute_jitter}")
        self.compute_jitter = compute_jitter
        self.engine_mode = engine_mode or DEFAULT_ENGINE_MODE
        self.engine = Engine(mode=self.engine_mode)
        self._batched = self.engine_mode == "batched"
        self.metrics = MachineMetrics()
        n_pus = topo.nb_pus
        n_nodes = max(topo.nbobjs_by_type(ObjType.NUMANODE), 1)
        self.contention = ContentionModel(n_nodes, contention)
        rng = make_rng(seed)
        self._jitter_rng = make_rng(int(rng.integers(2**63 - 1)))
        self.scheduler = OsScheduler(
            n_pus, scheduler, seed=int(rng.integers(2**63 - 1))
        )
        self._threads: list[SimThread] = []
        #: time each PU becomes free (run-queue serialization).
        self._pu_free_at = np.zeros(n_pus, dtype=np.float64)
        #: NUMA node logical index per PU logical index (for contention).
        self._node_of_pu = []
        for pu in topo.pus():
            node = topo.numa_node_of(pu.os_index)
            self._node_of_pu.append(node.logical_index if node else 0)
        self._os_to_logical = {pu.os_index: pu.logical_index for pu in topo.pus()}
        # Hot-path caches: every node-receive used to re-query the
        # topology for the NUMA node list and walk to a representative
        # PU; with millions of transfers per run these are resolved once
        # here.  `_numa_nodes` is the node list in logical order,
        # `_node_rep_pu[k]` a representative PU (logical index) under
        # node k, and `_costs_of_level` the resolved LinkCosts per LCA
        # type (falling back to the model's MACHINE entry, like
        # DistanceModel does).
        self._numa_nodes = topo.objects_by_type(ObjType.NUMANODE)
        self._node_rep_pu = [
            next(node.pus()).logical_index for node in self._numa_nodes
        ]
        self._costs_of_level: dict[ObjType, LinkCosts] = {
            t: self.distances.level_costs.get(t, DEFAULT_LEVEL_COSTS[ObjType.MACHINE])
            for t in ObjType
        }
        # Vectorized per-level charging tables: latency / bandwidth
        # per ObjType value, so a node-stream price is two array reads
        # and one fused `lat + nbytes / bw` instead of a dict lookup
        # plus a dataclass method call.  Same doubles, same result —
        # only the dispatch is cheaper.
        n_types = max(int(t) for t in ObjType) + 1
        self._level_lat = np.zeros(n_types, dtype=np.float64)
        self._level_bw = np.ones(n_types, dtype=np.float64)
        for t, costs in self._costs_of_level.items():
            self._level_lat[int(t)] = costs.latency
            self._level_bw[int(t)] = costs.bandwidth
        # UMA machines charge NUMANODE-class cost for node streams.
        self._uma_node_costs = self.distances.level_costs.get(
            ObjType.NUMANODE, DEFAULT_LEVEL_COSTS[ObjType.NUMANODE]
        )
        #: scratch buffer for per-PU backlog vectors (one allocation per
        #: machine instead of two per balancing decision).
        self._backlog_buf = np.empty(n_pus, dtype=np.float64)
        self._started = False
        if timeline:
            from repro.simulate.timeline import Timeline

            self.timeline: Optional["Timeline"] = Timeline()
        else:
            self.timeline = None
        self.tracer: Optional["Tracer"] = None
        if _metrics_core.is_enabled():
            from repro.metrics.bridge import cohort_sink

            self.engine.metrics_sink = cohort_sink()
        if tracer is not None:
            self.attach_tracer(tracer)
        if new_machine_hook is not None:
            new_machine_hook(self)

    def attach_tracer(self, tracer: "Tracer") -> None:
        """Wire *tracer* into the machine, engine, and scheduler probes.

        Must happen before :meth:`run`; one tracer per machine.
        """
        if self.tracer is not None:
            raise SimulationError("machine already has a tracer attached")
        if self._started:
            raise SimulationError("cannot attach a tracer after run() started")
        self.tracer = tracer
        self.engine.probe = tracer.on_engine_step
        if _metrics_core.is_enabled():
            # Bridge ORWL waits/grants/transfers into metrics off the
            # trace stream — never double-instrument the runtime.
            from repro.metrics.bridge import attach_probe

            attach_probe(tracer)

        def sched_probe(kind: str, src: int, dst: int) -> None:
            tracer.emit(
                "sched",
                ts=self.engine.now,
                pu=dst,
                node=self._node_of_pu[dst] if 0 <= dst < len(self._node_of_pu) else -1,
                detail=f"{kind}:{src}->{dst}",
            )

        self.scheduler.observer = sched_probe

    # -- thread setup ------------------------------------------------------

    def add_thread(
        self,
        name: str = "",
        bound_pu_os: Optional[int] = None,
        priority: bool = False,
    ) -> int:
        """Register a thread; returns its id.

        *bound_pu_os* is a PU os_index (``None`` = OS-scheduled,
        unbound).  *priority* marks an event-handler-style thread whose
        short bursts preempt whatever occupies its PU instead of queueing
        behind it — the behaviour a mostly-sleeping high-priority thread
        gets from a real kernel.  Its cycles are still charged to the PU.
        """
        if self._started:
            raise SimulationError("cannot add threads after run() started")
        bound: Optional[int] = None
        if bound_pu_os is not None and bound_pu_os >= 0:
            try:
                bound = self._os_to_logical[bound_pu_os]
            except KeyError:
                raise SimulationError(f"no PU with os_index {bound_pu_os}") from None
        tid = len(self._threads)
        self._threads.append(SimThread(tid, name or f"thread{tid}", bound, priority))
        return tid

    def set_body(self, tid: int, body: ThreadBody) -> None:
        """Attach the generator body to a registered thread."""
        t = self._threads[tid]
        if t.body is not None:
            raise SimulationError(f"thread {tid} already has a body")
        t.body = body

    def thread(self, tid: int) -> SimThread:
        return self._threads[tid]

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    def new_event(self, name: str = "") -> SimEvent:
        return SimEvent(self.engine, name)

    def current_pu_os(self, tid: int) -> int:
        """The os_index of the PU a thread currently occupies."""
        t = self._threads[tid]
        if t.current_pu < 0:
            return -1
        return self.topo.pus()[t.current_pu].os_index

    def thread_stats(self, tid: int) -> dict[str, float]:
        """Per-thread accounting: compute/transfer/wait seconds and
        migration count.  Valid during and after a run."""
        t = self._threads[tid]
        return {
            "compute_time": t.compute_time,
            "transfer_time": t.transfer_time,
            "wait_time": t.wait_time,
            "runq_time": t.runq_time,
            "migrations": float(t.migrations),
            "done_at": t.done_at,
        }

    def node_of_thread(self, tid: int) -> int:
        """NUMA node logical index a thread currently sits on (-1 if
        not yet placed).  Workloads use this for first-touch homing."""
        t = self._threads[tid]
        if t.current_pu < 0:
            return -1
        return self._node_of_pu[t.current_pu]

    # -- execution -----------------------------------------------------------

    def run(self, max_events: int = 500_000_000) -> float:
        """Start all threads, drain the event queue, return final time.

        Raises :class:`SimulationError` with the list of stuck threads if
        the queue drains while threads are still blocked (deadlock).
        """
        if self._started:
            raise SimulationError("machine already ran")
        self._started = True
        for t in self._threads:
            if t.body is None:
                raise SimulationError(f"thread {t.tid} ({t.name}) has no body")
            t.current_pu = t.bound_pu if t.is_bound else self.scheduler.initial_pu()
            self.scheduler.occupy(t.current_pu)
            t.state = ThreadState.READY
            t.resume_cb = self._resume_fn(t)
            if self.tracer is not None:
                self._trace("thread_start", t, 0.0,
                            detail="bound" if t.is_bound else "unbound")
            self.engine.schedule(0.0, t.resume_cb)
        flush_metrics = _metrics_core.is_enabled()
        wall_t0 = perf_counter() if flush_metrics else 0.0
        self.engine.run(max_events=max_events)
        if flush_metrics:
            from repro.metrics.bridge import record_run

            record_run(self, perf_counter() - wall_t0)
        stuck = [t for t in self._threads if t.state is not ThreadState.DONE]
        if stuck:
            names = ", ".join(f"{t.tid}:{t.name}({t.state.value})" for t in stuck[:10])
            raise SimulationError(
                f"deadlock: {len(stuck)} thread(s) never finished: {names}"
            )
        return self.engine.now

    # -- syscall dispatch ---------------------------------------------------

    def _trace(
        self,
        kind: str,
        t: SimThread,
        ts: float,
        dur: float = 0.0,
        level: str = "",
        nbytes: float = 0.0,
        detail: str = "",
    ) -> None:
        """Emit one event for thread *t* (caller checked tracer is set)."""
        pu = t.current_pu
        assert self.tracer is not None
        self.tracer.emit(
            kind,
            ts=ts,
            dur=dur,
            tid=t.tid,
            thread=t.name,
            pu=pu,
            node=self._node_of_pu[pu] if pu >= 0 else -1,
            level=level,
            nbytes=nbytes,
            detail=detail,
        )

    def _resume_fn(self, t: SimThread) -> Callable[[], None]:
        return lambda: self._advance(t)

    def _advance(self, t: SimThread) -> None:
        """Drive the thread's generator until it blocks or finishes."""
        assert t.body is not None
        t.state = ThreadState.RUNNING
        try:
            sc = next(t.body)
        except StopIteration:
            t.state = ThreadState.DONE
            t.done_at = self.engine.now
            if self.tracer is not None:
                self._trace("thread_end", t, self.engine.now)
            self.scheduler.vacate(t.current_pu)
            return
        self._perform(t, sc)

    def _perform(self, t: SimThread, sc: Syscall) -> None:
        if isinstance(sc, Compute):
            self._do_work(t, sc.duration, is_compute=True)
        elif isinstance(sc, ComputeFlops):
            self._maybe_pull(t)  # pick the PU before pricing the work
            self._do_work(t, sc.flops / self._rate_of_pu[t.current_pu], is_compute=True)
        elif isinstance(sc, Receive):
            self._do_receive(t, sc.producer, sc.nbytes)
        elif isinstance(sc, ReceiveFromNode):
            self._do_receive_from_node(t, sc.node_index, sc.nbytes)
        elif isinstance(sc, Wait):
            t.state = ThreadState.BLOCKED
            t.blocked_since = self.engine.now
            sc.event.wait_thread(self, t, sc.event.name)
        elif isinstance(sc, Yield):
            t.state = ThreadState.READY
            self.engine.schedule(0.0, t.resume_cb or self._resume_fn(t))
        else:
            raise SimulationError(f"thread {t.tid} yielded non-syscall {sc!r}")

    def _release_batch(self, threads: list[SimThread], names: list[str]) -> None:
        """Wake a run of threads parked on one event (engine callback).

        The wakeup accounting is vectorized over the run: one numpy
        subtraction prices every thread's wait and one
        :meth:`MachineMetrics.record_wait_batch` call accumulates them
        in thread order — bit-identical to the scalar engine's
        per-waiter unblock closures (same doubles, same addition
        order).  The per-thread trace emission and generator resumption
        stay interleaved exactly as in the scalar path, so trace
        streams match byte for byte.
        """
        if len(threads) == 1:
            # Hot single-thread path (post-fire waits, lock grants):
            # plain scalar arithmetic, no array round-trip.
            t = threads[0]
            waited = self.engine.now - t.blocked_since
            self.metrics.record_wait(waited)
            t.wait_time += waited
            if self.tracer is not None:
                self._trace("wait", t, t.blocked_since, waited, detail=names[0])
            self._advance(t)
            return
        now = self.engine.now
        blocked = np.fromiter(
            (t.blocked_since for t in threads), dtype=np.float64, count=len(threads)
        )
        waited = now - blocked
        self.metrics.record_wait_batch(waited)
        waited_list = waited.tolist()
        blocked_list = blocked.tolist()
        traced = self.tracer is not None
        for i, t in enumerate(threads):
            w = waited_list[i]
            t.wait_time += w
            if traced:
                self._trace("wait", t, blocked_list[i], w, detail=names[i])
            self._advance(t)

    def _occupy_pu(self, t: SimThread, duration: float) -> tuple[float, float]:
        """Serialize *duration* of PU occupancy; returns (start, end).

        Priority threads preempt: they start immediately and push the
        PU's next-free time back by their (short) burst, approximating a
        kernel scheduling a woken high-priority thread within the
        running thread's timeslice.
        """
        pu = t.current_pu
        now = self.engine.now
        if t.priority:
            end = now + duration
            self._pu_free_at[pu] = max(self._pu_free_at[pu] + duration, end)
            return now, end
        start = max(now, self._pu_free_at[pu])
        if start > now:
            self.metrics.record_runq(start - now)
            t.runq_time += start - now
            if self.tracer is not None:
                self._trace("runq", t, now, start - now)
        end = start + duration
        self._pu_free_at[pu] = end
        return start, end

    def _backlog(self) -> np.ndarray:
        """Per-PU pending-CPU-seconds vector, written into the reusable
        scratch buffer (callers use it immediately, never retain it)."""
        buf = self._backlog_buf
        np.subtract(self._pu_free_at, self.engine.now, out=buf)
        np.maximum(buf, 0.0, out=buf)
        return buf

    def _maybe_pull(self, t: SimThread) -> None:
        """Idle-balance an unbound thread before it occupies its PU.

        A ready thread does not queue behind a busy PU while another
        sits idle — the kernel pulls it over (paying the cache-refill
        penalty).  Bound threads never move; that immunity is precisely
        what the paper's binding buys.
        """
        if t.is_bound:
            return
        target = self.scheduler.pull_target(t.current_pu, self._backlog())
        if target is not None:
            source = t.current_pu
            self.scheduler.vacate(t.current_pu)
            self.scheduler.occupy(target)
            t.current_pu = target
            penalty = self.scheduler.config.migration_penalty
            t.pending_penalty += penalty
            t.migrations += 1
            self.metrics.record_migration(penalty)
            if self.tracer is not None:
                self._trace("migration", t, self.engine.now, penalty,
                            detail=f"pull:{source}->{target}")

    def _do_work(self, t: SimThread, duration: float, is_compute: bool) -> None:
        self._maybe_pull(t)
        if self.compute_jitter > 0.0 and is_compute:
            duration *= 1.0 + self.compute_jitter * (2.0 * self._jitter_rng.random() - 1.0)
        if t.pending_penalty > 0.0:
            duration += t.pending_penalty
            t.pending_penalty = 0.0
        start, end = self._occupy_pu(t, duration)
        if is_compute:
            self.metrics.record_compute(duration)
            t.compute_time += duration
            if self.tracer is not None:
                self._trace("compute", t, start, duration)
            self._account_balancing(t, duration)
        if self.timeline is not None:
            from repro.simulate.timeline import Segment

            self.timeline.record(
                Segment(t.tid, t.name, "compute", t.current_pu, start, end)
            )
        t.state = ThreadState.READY
        self.engine.at(end, t.resume_cb or self._resume_fn(t))

    def _account_balancing(self, t: SimThread, consumed: float) -> None:
        """Run the OS balancer for unbound threads per consumed quantum."""
        if t.is_bound:
            return
        t.consumed_since_balance += consumed
        quantum = self.scheduler.config.migration_quantum
        while t.consumed_since_balance >= quantum:
            t.consumed_since_balance -= quantum
            target = self.scheduler.maybe_migrate(t.current_pu, self._backlog())
            if target is not None:
                source = t.current_pu
                self.scheduler.vacate(t.current_pu)
                self.scheduler.occupy(target)
                t.current_pu = target
                penalty = self.scheduler.config.migration_penalty
                t.pending_penalty += penalty
                t.migrations += 1
                self.metrics.record_migration(penalty)
                if self.tracer is not None:
                    self._trace("migration", t, self.engine.now, penalty,
                                detail=f"balance:{source}->{target}")

    def _transfer_duration(
        self, consumer: SimThread, level: ObjType, base: float, producer_node: int
    ) -> float:
        slow = self.contention.slowdown(level, producer_node)
        if slow > 1.0:
            self.metrics.record_contention()
        return base * slow

    def _finish_transfer(
        self,
        t: SimThread,
        level: ObjType,
        nbytes: float,
        duration: float,
        producer_node: int,
    ) -> None:
        self.metrics.record_transfer(level, nbytes, duration)
        t.transfer_time += duration
        start, end = self._occupy_pu(t, duration)
        if self.tracer is not None:
            self._trace("transfer", t, start, duration, level=level.name,
                        nbytes=nbytes, detail=f"from-node:{producer_node}")
        if self.timeline is not None:
            from repro.simulate.timeline import Segment

            self.timeline.record(
                Segment(t.tid, t.name, "transfer", t.current_pu, start, end)
            )
        self.contention.begin(level, producer_node)

        def complete() -> None:
            self.contention.end(level, producer_node)
            self._advance(t)

        t.state = ThreadState.READY
        self.engine.at(end, complete)

    def _do_receive(self, t: SimThread, producer_tid: int, nbytes: float) -> None:
        self._maybe_pull(t)
        if not 0 <= producer_tid < len(self._threads):
            raise SimulationError(f"Receive from unknown thread {producer_tid}")
        producer = self._threads[producer_tid]
        src_pu = producer.current_pu
        dst_pu = t.current_pu
        if src_pu < 0 or dst_pu < 0:  # pragma: no cover - placed at start
            raise SimulationError("transfer before placement")
        level = self.distances.lca_type(src_pu, dst_pu)
        base = self.distances.transfer_time(src_pu, dst_pu, nbytes)
        if t.pending_penalty > 0.0:
            base += t.pending_penalty
            t.pending_penalty = 0.0
        node = self._node_of_pu[src_pu]
        duration = self._transfer_duration(t, level, base, node)
        self._finish_transfer(t, level, nbytes, duration, node)

    def _do_receive_from_node(self, t: SimThread, node_index: int, nbytes: float) -> None:
        self._maybe_pull(t)
        dst_pu = t.current_pu
        if not self._numa_nodes:
            # UMA machine: charge NUMANODE-class cost, no node contention.
            level = ObjType.NUMANODE
            base = self._uma_node_costs.transfer_time(nbytes)
            duration = self._transfer_duration(t, level, base, -1)
            self._finish_transfer(t, level, nbytes, duration, -1)
            return
        if not 0 <= node_index < len(self._numa_nodes):
            raise SimulationError(f"no NUMA node {node_index}")
        consumer_node = self._node_of_pu[dst_pu]
        if consumer_node == node_index:
            level = ObjType.NUMANODE  # local DRAM
        else:
            rep = self._node_rep_pu[node_index]
            level = self.distances.lca_type(rep, dst_pu)
        ti = int(level)
        base = (
            0.0 if nbytes <= 0
            else float(self._level_lat[ti] + nbytes / self._level_bw[ti])
        )
        if t.pending_penalty > 0.0:
            base += t.pending_penalty
            t.pending_penalty = 0.0
        duration = self._transfer_duration(t, level, base, node_index)
        self._finish_transfer(t, level, nbytes, duration, node_index)

    # -- convenience -----------------------------------------------------------

    def seconds_for_flops(self, flops: float) -> float:
        """Convert a flop count to seconds at the machine's core rate."""
        return flops / self.core_rate
