"""Differential harness: the batched engine vs the scalar reference.

The engine refactor's contract (DESIGN.md, "Determinism contract") is
absolute: for any workload, ``Engine(mode="batched")`` and
``Engine(mode="scalar")`` must produce identical firing order, clocks,
counters, traces, metrics, and determinism fingerprints.  Two layers
pin it:

* **property layer** — hypothesis generates random engine programs
  (mixed delays with deliberate same-time ties, wait/fire chains,
  mid-run ``at()`` scheduling, late waiters on fired events) and an
  interpreter replays each program on both modes; the full ``(label,
  time)`` firing log must match element for element.
* **system layer** — real simulations (all three Figure-1
  implementations, traced LK23 runs) under both modes must agree on
  the sha-256 run fingerprint, the metrics fingerprint and summary
  dict, ``events_fired``, and the byte-exact JSONL trace export.

Example counts are deliberately bounded (CI runs this module on every
push); crank ``max_examples`` locally when touching the engine core.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import run_lk23
from repro.experiments.fig1 import run_point
from repro.observe.determinism import metrics_fingerprint, stream_hash
from repro.observe.export import dumps_jsonl
from repro.simulate.engine import ENGINE_MODES, Engine, SimEvent

# A small discrete delay pool forces same-timestamp collisions — the
# case the cohort machinery reorders if the seq bookkeeping is wrong.
DELAYS = st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.0, 2.0, 3.5])

OPS = st.one_of(
    st.tuples(st.just("schedule"), DELAYS),
    st.tuples(st.just("at"), DELAYS),
    st.tuples(st.just("event")),
    st.tuples(st.just("wait"), st.integers(0, 7)),
    st.tuples(st.just("fire"), st.integers(0, 7), DELAYS),
    st.tuples(st.just("chain"), st.integers(0, 7), st.integers(0, 7), DELAYS),
)

#: A program is a sequence of driver steps; each step executes a chunk
#: of ops from *inside* a scheduled callback after a generated delay,
#: so waits/fires/at() happen mid-run, interleaved with event dispatch.
PROGRAMS = st.lists(
    st.tuples(DELAYS, st.lists(OPS, max_size=8)), min_size=1, max_size=6
)


def run_program(mode: str, program) -> dict:
    """Interpret *program* on one engine mode; return every observable."""
    eng = Engine(mode=mode)
    log: list[tuple] = []
    events: list[SimEvent] = []

    def logged(label):
        def cb() -> None:
            log.append((label, eng.now))

        return cb

    def exec_op(step: int, k: int, op) -> None:
        kind = op[0]
        if kind == "schedule":
            eng.schedule(op[1], logged(("s", step, k)))
        elif kind == "at":
            eng.at(eng.now + op[1], logged(("a", step, k)))
        elif kind == "event":
            events.append(SimEvent(eng, f"ev{len(events)}"))
        elif kind == "wait":
            if events:
                events[op[1] % len(events)].wait(logged(("w", step, k)))
        elif kind == "fire":
            if events:
                ev = events[op[1] % len(events)]
                if not ev.fired:
                    ev.fire(op[2])
        elif kind == "chain":
            if events:
                src = events[op[1] % len(events)]
                dst = events[op[2] % len(events)]
                delay = op[3]

                def chain(dst=dst, delay=delay, label=("c", step, k)) -> None:
                    log.append((label, eng.now))
                    if not dst.fired:
                        dst.fire(delay)

                src.wait(chain)

    at = 0.0
    for step, (delay, ops) in enumerate(program):
        at += delay

        def run_chunk(step=step, ops=ops) -> None:
            log.append((("drv", step), eng.now))
            for k, op in enumerate(ops):
                exec_op(step, k, op)

        eng.at(at, run_chunk)
    eng.run()
    return {
        "log": log,
        "events_fired": eng.events_fired,
        "now": eng.now,
        "pending": eng.pending,
    }


class TestPropertyDifferential:
    @given(program=PROGRAMS)
    @settings(max_examples=60, deadline=None)
    def test_random_programs_identical(self, program):
        scalar = run_program("scalar", program)
        batched = run_program("batched", program)
        assert batched == scalar

    @given(width=st.integers(2, 40), delay=DELAYS)
    @settings(max_examples=20, deadline=None)
    def test_barrier_release_order(self, width, delay):
        """A wide wakeup must release in registration order in both modes."""
        logs = {}
        for mode in ENGINE_MODES:
            eng = Engine(mode=mode)
            ev = SimEvent(eng, "barrier")
            log: list[int] = []
            for k in range(width):
                ev.wait(lambda k=k: log.append(k))
            eng.schedule(1.0, lambda: ev.fire(delay))
            eng.run()
            logs[mode] = (log, eng.events_fired, eng.now, eng.pending)
        assert logs["batched"] == logs["scalar"]


SYSTEM_CONFIG = dict(topology="small-numa", n=2048, iterations=2, seed=3)


class TestSystemDifferential:
    @pytest.mark.parametrize("policy", ["treematch", "nobind", "scatter"])
    def test_lk23_trace_and_metrics_identical(self, policy):
        results = {
            mode: run_lk23(policy=policy, trace=True, engine_mode=mode,
                           **SYSTEM_CONFIG)
            for mode in ENGINE_MODES
        }
        scalar, batched = results["scalar"], results["batched"]
        assert batched.time == scalar.time
        assert batched.metrics.summary() == scalar.metrics.summary()
        assert metrics_fingerprint(batched.metrics) == metrics_fingerprint(
            scalar.metrics
        )
        assert stream_hash(batched.trace.events) == stream_hash(
            scalar.trace.events
        )
        assert batched.trace.engine_steps == scalar.trace.engine_steps
        # The exported JSONL trace must match byte for byte.
        assert dumps_jsonl(batched.trace.events) == dumps_jsonl(
            scalar.trace.events
        )

    @pytest.mark.parametrize(
        "implementation", ["orwl-bind", "orwl-nobind", "openmp"]
    )
    def test_fig1_fingerprints_identical(self, implementation):
        points = {
            mode: run_point(
                implementation, n_cores=8, iterations=2, n=1024,
                fingerprint=True, engine_mode=mode,
            )
            for mode in ENGINE_MODES
        }
        scalar, batched = points["scalar"], points["batched"]
        assert batched.fingerprint == scalar.fingerprint
        assert batched.time == scalar.time
        assert batched.local_fraction == scalar.local_fraction
        assert batched.migrations == scalar.migrations
        assert batched.remote_bytes == scalar.remote_bytes
