"""Command-line tools.

Mirrors the utilities the paper's software stack ships:

* ``python -m repro.tools.lstopo`` — render a topology (preset, spec
  string, JSON file, or the discovered host), like hwloc's lstopo.
* ``python -m repro.tools.treematch`` — compute a mapping from a
  communication-matrix file and a topology, like the TreeMatch CLI.
* ``python -m repro.tools.fig1`` — regenerate the paper's Figure 1 data.
* ``python -m repro.tools.trace`` — run a workload with structured
  tracing: export Perfetto/JSON-lines timelines, audit conservation
  invariants, print determinism fingerprints (see ``repro.observe``).
* ``python -m repro.tools.place`` — query the online placement service:
  one-shot mappings, ``--failed``-style drains, a line-JSON serve mode,
  and a decision-latency bench (see ``repro.placement.service``).
"""
