"""Figure 1 data generator.

Usage::

    python -m repro.tools.fig1                       # default sweep
    python -m repro.tools.fig1 --cores 8 64 192 --iterations 10
    python -m repro.tools.fig1 --csv fig1.csv
    python -m repro.tools.fig1 --seeds 5 --workers 4 # multi-seed, with CI bands
"""

from __future__ import annotations

import argparse
import csv

from repro.experiments.fig1 import run_fig1
from repro.tools._cache_args import add_cache_arguments, apply_cache_arguments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.fig1", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--cores", type=int, nargs="+",
                        default=[8, 16, 32, 64, 96, 192])
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--n", type=int, default=16384, help="matrix size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", metavar="FILE", help="also write points as CSV")
    parser.add_argument("--plot", action="store_true", help="ASCII chart of the curves")
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep worker processes (0 = all host cores, "
                             "1 = serial; results are identical either way)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="replicates per point (1 = the historical "
                             "single-run sweep; > 1 adds mean/CI statistics "
                             "and a speedup-significance verdict)")
    parser.add_argument("--engine-mode", choices=("batched", "scalar"),
                        default=None,
                        help="discrete-event engine variant (default: the "
                             "process default, batched; scalar is the "
                             "bit-identical reference)")
    parser.add_argument("--perf-report", metavar="DIR",
                        help="trace every point and write per-point perf "
                             "reports (JSON + text) and per-core-count "
                             "top-down gap attributions into DIR")
    parser.add_argument("--metrics", metavar="FILE",
                        help="enable telemetry and publish live registry "
                             "snapshots to FILE (watch with "
                             "python -m repro.tools.top FILE)")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    apply_cache_arguments(args)

    runner = None
    writer = None
    if args.metrics:
        from repro.exec.runner import SweepRunner
        from repro.metrics import core as metrics_core
        from repro.metrics.bus import SnapshotWriter

        metrics_core.enable()
        writer = SnapshotWriter(args.metrics)
        runner = SweepRunner(n_workers=args.workers, on_event=writer)

    result = run_fig1(
        core_counts=tuple(args.cores),
        iterations=args.iterations,
        n=args.n,
        seed=args.seed,
        n_workers=args.workers,
        runner=runner,
        seeds=args.seeds,
        perf_report=args.perf_report is not None,
        engine_mode=args.engine_mode,
    )
    if writer is not None:
        writer.flush()
        print(f"\nmetrics snapshot written to {args.metrics}")
    print(result.table())
    if args.seeds > 1:
        print()
        print(f"Per-point statistics over {args.seeds} seeds "
              f"(base seed {args.seed}, replicate 0 = the table above):")
        print(result.stats_table())
    if args.plot:
        from repro.experiments.plotting import plot_fig1

        print()
        print(plot_fig1(result))

    if args.perf_report:
        from repro.tools._perf_artifacts import write_point_reports

        n_files = write_point_reports(
            args.perf_report,
            [
                (f"fig1-{p.implementation}-{p.n_cores}",
                 (p.n_cores,), p.perf)
                for p in result.points
            ],
        )
        print(f"\nwrote {n_files} perf artifacts to {args.perf_report}")

    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            header = ["implementation", "cores", "sim_time_s",
                      "local_fraction", "migrations"]
            if args.seeds > 1:
                header += ["time_mean", "time_stddev", "ci_lo", "ci_hi", "n_seeds"]
            writer.writerow(header)
            for p in result.points:
                row = [p.implementation, p.n_cores, f"{p.time:.6f}",
                       f"{p.local_fraction:.4f}", p.migrations]
                if args.seeds > 1:
                    s = result.stats_of(p.implementation, p.n_cores)
                    row += [f"{s.mean:.6f}", f"{s.stddev:.6f}",
                            f"{s.ci_lo:.6f}", f"{s.ci_hi:.6f}", s.n]
                writer.writerow(row)
        print(f"\nwrote {len(result.points)} points to {args.csv}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
