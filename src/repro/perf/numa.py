"""NUMA traffic matrices: node x node bytes and transfer-seconds.

Wittmann & Hager's ccNUMA task study makes the case that *per-node
traffic attribution* — not aggregate bandwidth — is the quantity that
diagnoses placement.  The tracer gives us exactly that: every transfer
span records the consumer's NUMA node (``node``) and the producer's
(``detail="from-node:N"``), so the stream folds into a directed
``producer x consumer`` matrix of bytes and of transfer-seconds.

The matrix reconciles with the aggregate counters (audited by the
``numa-traffic-reconciliation`` invariant): its total equals
``bytes_by_level``'s total, its diagonal the node-local levels
(NUMANODE and below), its off-diagonal the GROUP/MACHINE traffic.

Rendering: a numeric grid for small machines, a shaded character
heatmap for big ones (a 512-node matrix still fits a terminal), both
with row/column totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.observe.tracer import TraceEvent
from repro.perf.spans import TraceIndex, ensure_index

#: Shade ramp for the character heatmap, lightest to darkest.
SHADES = " .:-=+*#%@"

_FROM_NODE = "from-node:"


@dataclass
class TrafficMatrix:
    """Directed node-to-node traffic of one run.

    ``bytes[src, dst]`` / ``seconds[src, dst]`` hold the payload bytes
    and transfer durations of transfers whose producer lived on NUMA
    node ``src`` and consumer on ``dst``.  Transfers with an unknown
    endpoint (a node index of -1, which a healthy run never produces)
    are kept out of the matrix and reported in ``unattributed_bytes``.
    """

    n_nodes: int
    bytes: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    seconds: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    n_transfers: int = 0
    unattributed_bytes: float = 0.0

    # -- totals -------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        return float(self.bytes.sum())

    @property
    def local_bytes(self) -> float:
        """Diagonal: traffic that stayed inside one node."""
        return float(np.trace(self.bytes))

    @property
    def remote_bytes(self) -> float:
        return self.total_bytes - self.local_bytes

    @property
    def local_fraction(self) -> float:
        total = self.total_bytes
        return self.local_bytes / total if total > 0 else 1.0

    def row_sums(self) -> np.ndarray:
        """Bytes produced per node (outbound, diagonal included)."""
        return self.bytes.sum(axis=1)

    def col_sums(self) -> np.ndarray:
        """Bytes consumed per node (inbound, diagonal included)."""
        return self.bytes.sum(axis=0)

    def hottest_link(self) -> tuple[int, int, float]:
        """``(src, dst, bytes)`` of the heaviest off-diagonal link
        (``(-1, -1, 0.0)`` when there is no remote traffic)."""
        if self.n_nodes == 0:
            return (-1, -1, 0.0)
        off = self.bytes.copy()
        np.fill_diagonal(off, 0.0)
        flat = int(off.argmax())
        src, dst = divmod(flat, self.n_nodes)
        top = float(off[src, dst])
        if top <= 0.0:
            return (-1, -1, 0.0)
        return (src, dst, top)

    def to_json_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "bytes": [[float(v) for v in row] for row in self.bytes],
            "seconds": [[float(v) for v in row] for row in self.seconds],
            "n_transfers": self.n_transfers,
            "unattributed_bytes": self.unattributed_bytes,
            "total_bytes": self.total_bytes,
            "local_bytes": self.local_bytes,
            "remote_bytes": self.remote_bytes,
            "local_fraction": self.local_fraction,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "TrafficMatrix":
        n = int(d["n_nodes"])
        return cls(
            n_nodes=n,
            bytes=np.asarray(d["bytes"], dtype=float).reshape(n, n),
            seconds=np.asarray(d["seconds"], dtype=float).reshape(n, n),
            n_transfers=int(d.get("n_transfers", 0)),
            unattributed_bytes=float(d.get("unattributed_bytes", 0.0)),
        )


def producer_node_of(ev: TraceEvent) -> int:
    """The producer node a transfer's bytes came from (-1 if untagged)."""
    if ev.detail.startswith(_FROM_NODE):
        try:
            return int(ev.detail[len(_FROM_NODE):])
        except ValueError:
            return -1
    return -1


def traffic_matrix(
    events: "Sequence[TraceEvent] | TraceIndex",
    n_nodes: Optional[int] = None,
) -> TrafficMatrix:
    """Fold a run's transfer spans into a :class:`TrafficMatrix`.

    The matrix is a *multiset* aggregate: any permutation of the event
    stream produces the identical matrix.  *n_nodes* (the topology's
    node count) sizes the matrix; omitted, the largest node index seen
    in the stream sizes it.
    """
    idx = ensure_index(events)
    transfers = [e for e in idx.spans if e.kind == "transfer"]
    max_node = -1
    for ev in transfers:
        src = producer_node_of(ev)
        if src > max_node:
            max_node = src
        if ev.node > max_node:
            max_node = ev.node
    n = max(n_nodes or 0, max_node + 1)
    tm = TrafficMatrix(
        n_nodes=n,
        bytes=np.zeros((n, n)),
        seconds=np.zeros((n, n)),
        n_transfers=len(transfers),
    )
    for ev in transfers:
        src = producer_node_of(ev)
        dst = ev.node
        if 0 <= src < n and 0 <= dst < n:
            tm.bytes[src, dst] += ev.nbytes
            tm.seconds[src, dst] += ev.dur
        else:
            tm.unattributed_bytes += ev.nbytes
    return tm


def _human_bytes(v: float) -> str:
    for unit in ("B", "K", "M", "G", "T"):
        if abs(v) < 1024.0 or unit == "T":
            return f"{v:.0f}{unit}" if unit == "B" else f"{v:.1f}{unit}"
        v /= 1024.0
    return f"{v:.1f}T"  # pragma: no cover - unreachable


def _shade(v: float, vmax: float) -> str:
    if v <= 0.0 or vmax <= 0.0:
        return SHADES[0]
    # Log scale: traffic spans orders of magnitude between cache-local
    # and cross-machine links.
    frac = 1.0 + np.log10(max(v / vmax, 1e-9)) / 9.0
    i = int(round(frac * (len(SHADES) - 1)))
    return SHADES[max(1, min(i, len(SHADES) - 1))]


def render_heatmap(
    tm: TrafficMatrix,
    value: str = "bytes",
    title: str = "",
    numeric_limit: int = 12,
) -> str:
    """ASCII heatmap of a traffic matrix.

    Machines with at most *numeric_limit* nodes get a numeric grid
    (human-readable byte counts); larger ones a one-character-per-cell
    shade map with a log-scale legend.  Rows are producer nodes,
    columns consumer nodes; both renderings append row totals.
    """
    if value not in ("bytes", "seconds"):
        raise ValueError(f"value must be 'bytes' or 'seconds', got {value!r}")
    m = tm.bytes if value == "bytes" else tm.seconds
    n = tm.n_nodes
    head = title or (
        f"NUMA traffic ({value}) — {n} nodes, rows=producer, cols=consumer"
    )
    lines = [head, "=" * len(head)]
    if n == 0:
        lines.append("(no transfers)")
        return "\n".join(lines)
    fmt = _human_bytes if value == "bytes" else lambda v: f"{v:.3g}"
    if n <= numeric_limit:
        cell_w = max(8, *(len(fmt(float(v))) + 1 for v in m.flat))
        header = " " * 5 + "".join(f"{j:>{cell_w}}" for j in range(n))
        lines.append(header + f" {'total':>{cell_w}}")
        for i in range(n):
            row = "".join(f"{fmt(float(m[i, j])):>{cell_w}}" for j in range(n))
            lines.append(f"{i:>4} {row} {fmt(float(m[i].sum())):>{cell_w}}")
        lines.append(
            " " * 4
            + " "
            + "".join(f"{fmt(float(m[:, j].sum())):>{cell_w}}" for j in range(n))
            + f" {fmt(float(m.sum())):>{cell_w}}"
        )
    else:
        vmax = float(m.max())
        lines.append("     " + "".join(str(j % 10) for j in range(n)))
        for i in range(n):
            cells = "".join(_shade(float(m[i, j]), vmax) for j in range(n))
            lines.append(f"{i:>4} {cells} {fmt(float(m[i].sum()))}")
        lines.append(
            f"scale: '{SHADES[1]}' ~ {fmt(vmax * 1e-9)} … '{SHADES[-1]}' = "
            f"{fmt(vmax)} (log)"
        )
    if value == "bytes":
        lines.append(
            f"local {tm.local_fraction:.1%} of {_human_bytes(tm.total_bytes)} "
            f"({tm.n_transfers} transfers)"
        )
        src, dst, top = tm.hottest_link()
        if top > 0.0:
            lines.append(f"hottest remote link: {src} -> {dst} "
                         f"({_human_bytes(top)})")
    return "\n".join(lines)
