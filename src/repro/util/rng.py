"""Deterministic random-number handling.

All stochastic components (random placement baselines, the OS-scheduler
model, synthetic communication matrices, workload jitter) accept a
``seed`` argument.  :func:`make_rng` normalizes ``None`` / ``int`` /
``numpy.random.Generator`` into a :class:`numpy.random.Generator` so the
same seed reproduces the same experiment bit-for-bit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted where a seed is expected.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Passing an existing generator returns it unchanged (so sub-components
    can share one stream); an ``int`` or ``SeedSequence`` creates a fresh
    PCG64 stream; ``None`` creates an OS-entropy-seeded stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *seed*.

    Used when several simulated components (e.g. per-core scheduler noise
    sources) must be statistically independent yet jointly reproducible.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children through the generator itself to stay deterministic.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
