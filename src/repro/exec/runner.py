"""The process-pool sweep runner.

See :mod:`repro.exec` for the design contract.  The implementation
notes that matter:

* **Tasks are (function, kwargs) pairs.**  The function must be an
  importable module-level callable (the pool pickles it by reference);
  every experiment entry point in this repo qualifies.
* **Results are stored by submission index**, so the returned list is
  in input order no matter which worker finished first, and a retried
  chunk lands in the same slots.
* **Worker crashes break the whole pool** (that is how
  :class:`~concurrent.futures.ProcessPoolExecutor` reports a worker
  dying mid-task): completed chunks keep their results, the pool is
  rebuilt, and only the unfinished chunks are resubmitted.  After
  *max_retries* rebuilds the runner falls back to running the remainder
  serially in-process (unless told not to), so a sweep always either
  completes or raises the task's own deterministic exception.
* **Ordinary task exceptions are not retried** — a seeded simulation
  that raises once will raise every time; the first failure (in
  submission order on the serial path, completion order on the pool
  path) propagates unchanged.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.exec import cache as cache_mod
from repro.exec.progress import ProgressCallback, SweepEvent
from repro.metrics import core as metrics_core
from repro.util.validate import ValidationError


class ExecError(RuntimeError):
    """Raised when a sweep cannot be completed (retries exhausted and
    serial fallback disabled)."""


def derive_seed(base: int, *key: Any) -> int:
    """Derive a stable 63-bit child seed from *base* and a point key.

    Uses sha-256 over the canonical ``repr`` of the parts, so the result
    is identical across processes, platforms, and ``PYTHONHASHSEED``
    values — unlike ``hash()``.  Use it to give every point of a
    multi-seed sweep an independent but reproducible stream::

        seed = derive_seed(base_seed, "fig1", implementation, n_cores)
    """
    h = hashlib.sha256()
    h.update(repr(int(base)).encode("utf-8"))
    for part in key:
        h.update(b"\x1f")
        h.update(repr(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def resolve_workers(n_workers: Optional[int]) -> int:
    """Normalize a worker-count argument.

    ``None`` (or ``0``) means "use the host's available cores" —
    the scheduling affinity mask where supported, so a cgroup-limited
    container does not oversubscribe itself.  Any other value is used
    as given (``1`` = serial, in-process).
    """
    if n_workers is None or n_workers == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    if n_workers < 0:
        raise ValidationError(f"n_workers must be >= 0, got {n_workers}")
    return n_workers


@dataclass(frozen=True)
class Task:
    """One sweep point: an importable callable plus its kwargs.

    *weight* is the task's expected relative cost (any positive unit —
    the scaling sweep uses the machine's PU count).  The default
    chunker packs tasks into chunks of bounded total weight, so one
    4096-core point is dispatched alone instead of serialized behind
    three others in the same chunk.  Weights affect only chunk
    boundaries, never results or their order.

    *cache_key* is the task's content address (see
    :func:`repro.exec.cache.point_key`); when the runner carries a
    :class:`~repro.exec.cache.PointCache`, keyed tasks are served from
    it instead of being dispatched, and computed results are stored
    back.  ``None`` opts the task out.
    """

    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""
    weight: float = 1.0
    cache_key: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise ValidationError(f"task weight must be > 0, got {self.weight}")

    def run(self) -> Any:
        return self.fn(**self.kwargs)


#: Sentinel marking a result slot not yet produced.
_MISSING = object()


def _run_chunk(
    items: list[tuple[int, Callable, dict]],
) -> tuple[list[tuple[int, Any]], dict[str, int], dict[str, Any]]:
    """Worker body: run one chunk, return ``(index, result)`` pairs plus
    the chunk's cache-counter delta and (when enabled) its metric delta.

    Cache hits (placement memo, shared-memory attaches) happen inside
    worker processes, invisible to the parent; snapshotting the
    counters around the chunk and shipping the delta home is what lets
    the parent aggregate sweep-wide hit rates.  The metric registry
    ships the same way (``dump``/``diff_dumps``/``merge`` — works under
    fork *and* spawn, since ``REPRO_METRICS`` rides the environment).
    Runs in the worker process; anything it raises is pickled back and
    re-raised from the future (worker stays alive).  A worker *dying*
    instead (os._exit, segfault, OOM kill) surfaces in the parent as
    :class:`BrokenProcessPool`.
    """
    before = cache_mod.cache_stats()
    metrics_on = metrics_core.is_enabled()
    metrics_before = metrics_core.registry().dump() if metrics_on else None
    chunk_t0 = time.perf_counter()
    pairs = [(index, fn(**kwargs)) for index, fn, kwargs in items]
    metrics_delta: dict[str, Any] = {}
    if metrics_before is not None:
        reg = metrics_core.registry()
        reg.histogram(
            "sweep_chunk_wall_seconds",
            "Wall-clock time per dispatched chunk",
            stable=False,
        ).observe(time.perf_counter() - chunk_t0)
        metrics_delta = metrics_core.diff_dumps(metrics_before, reg.dump())
    return pairs, cache_mod.stats_delta(before), metrics_delta


class SweepRunner:
    """Fan independent tasks across host CPUs, deterministically.

    Parameters
    ----------
    n_workers:
        Process count; ``None``/``0`` = host cores, ``1`` = serial
        in-process (no pool, no pickling — the reference path the
        parallel results are bit-compared against).
    chunk_size:
        Tasks per dispatch unit.  Default: tasks spread over
        ``4 × n_workers`` chunks (amortizes IPC while keeping the pool
        load-balanced).
    max_retries:
        Pool rebuilds tolerated after worker crashes before giving up
        on the parallel path.
    serial_fallback:
        When retries are exhausted, finish the remaining tasks serially
        in-process instead of raising.
    on_event:
        Optional :class:`~repro.exec.progress.SweepEvent` callback (see
        also :func:`~repro.exec.progress.log_progress` and
        :func:`~repro.exec.progress.tracer_progress`).
    mp_context:
        ``multiprocessing`` start-method name (default ``"fork"`` where
        available — workers inherit imported modules, so dispatch cost
        stays in the milliseconds; ``"spawn"`` elsewhere).
    point_cache:
        Optional :class:`~repro.exec.cache.PointCache`.  Tasks carrying
        a ``cache_key`` are looked up before dispatch (hits fill their
        result slot without running anything) and stored after.
    shared_topologies:
        Machine specs (see
        :func:`repro.exec.cache.normalize_machine_spec`) whose
        :class:`~repro.topology.distance.DistanceModel` tables the
        parent exports into shared memory before opening the pool, so
        workers attach read-only views instead of rebuilding them.
        Ignored on the serial path and under ``REPRO_CACHE=off``.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 1,
        serial_fallback: bool = True,
        on_event: Optional[ProgressCallback] = None,
        mp_context: Optional[str] = None,
        point_cache: Optional[cache_mod.PointCache] = None,
        shared_topologies: Sequence[Any] = (),
    ) -> None:
        self.n_workers = resolve_workers(n_workers)
        if chunk_size is not None and chunk_size <= 0:
            raise ValidationError(f"chunk_size must be > 0, got {chunk_size}")
        self.chunk_size = chunk_size
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self.serial_fallback = serial_fallback
        self._callbacks: list[ProgressCallback] = [on_event] if on_event else []
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.point_cache = point_cache
        self.shared_topologies = list(shared_topologies)
        #: diagnostics from the last :meth:`map` call.
        self.last_stats: dict[str, Any] = {}

    def add_callback(self, callback: ProgressCallback) -> None:
        """Subscribe an additional progress sink."""
        self._callbacks.append(callback)

    # -- internals ---------------------------------------------------------

    def _emit(
        self,
        kind: str,
        t0: float,
        *,
        index: int = -1,
        done: int = 0,
        total: int = 0,
        label: str = "",
        detail: str = "",
    ) -> None:
        if not self._callbacks:
            return
        ev = SweepEvent(
            kind,
            time.perf_counter() - t0,
            index=index,
            done=done,
            total=total,
            label=label,
            detail=detail,
        )
        for cb in self._callbacks:
            cb(ev)

    def _chunk_indices(
        self, n: int, weights: Optional[Sequence[float]] = None
    ) -> list[list[int]]:
        """Contiguous dispatch chunks over *n* tasks.

        With uniform (or no) *weights* this is the historical fixed-size
        split: ``ceil(n / (4 * n_workers))`` tasks per chunk.  With
        weights, chunks are packed greedily up to the equivalent weight
        cap, so heavyweight tasks land in chunks of their own and never
        make lighter tasks queue behind them.
        """
        if self.chunk_size is not None:
            size = self.chunk_size
            return [list(range(lo, min(lo + size, n))) for lo in range(0, n, size)]
        if weights is None or len(set(weights)) <= 1:
            size = max(1, -(-n // (4 * self.n_workers)))
            return [list(range(lo, min(lo + size, n))) for lo in range(0, n, size)]
        total = float(sum(weights))
        cap = total / (4 * self.n_workers)
        chunks: list[list[int]] = []
        current: list[int] = []
        current_weight = 0.0
        for i in range(n):
            w = float(weights[i])
            if current and current_weight + w > cap:
                chunks.append(current)
                current = []
                current_weight = 0.0
            current.append(i)
            current_weight += w
        if current:
            chunks.append(current)
        return chunks

    def _run_serial(
        self, tasks: Sequence[Task], results: list, t0: float, total: int
    ) -> None:
        """Run every task whose slot is still empty, in order, in-process."""
        for i, task in enumerate(tasks):
            if results[i] is not _MISSING:
                continue
            results[i] = task.run()
            done = sum(1 for r in results if r is not _MISSING)
            self._emit(
                "point_done", t0, index=i, done=done, total=total, label=task.label
            )

    # -- the public entry point --------------------------------------------

    def map(self, tasks: Sequence[Task]) -> list[Any]:
        """Run all *tasks*; return their results in input order.

        With a :attr:`point_cache`, keyed tasks whose results are
        already stored fill their slots up front (one ``point_done``
        with ``detail="cached"`` each) and only the misses are
        dispatched; fresh results are stored back afterwards.  Cache
        counters from the parent *and* the workers land in
        ``last_stats["cache"]`` and one ``cache_stats`` event.
        """
        tasks = list(tasks)
        total = len(tasks)
        t0 = time.perf_counter()
        results: list[Any] = [_MISSING] * total
        stats_before = cache_mod.cache_stats()
        hits = self._prefill_from_cache(tasks, results)
        todo = [i for i in range(total) if results[i] is _MISSING]
        mode = "serial" if self.n_workers <= 1 or len(todo) <= 1 else "parallel"
        self.last_stats = {
            "n_tasks": total,
            "n_workers": self.n_workers,
            "crashes": 0,
            "serial_fallback": False,
            "mode": mode,
            "cached_points": len(hits),
        }
        metrics_on = metrics_core.is_enabled()
        if metrics_on:
            reg = metrics_core.registry()
            reg.counter("sweep_runs_total", "SweepRunner.map calls").inc()
            reg.counter("sweep_points_total", "Sweep points requested").inc(
                total
            )
            reg.counter(
                "sweep_points_cached_total",
                "Points served by the content-addressed cache",
            ).inc(len(hits))
            reg.counter(
                "sweep_points_dispatched_total",
                "Points actually simulated",
            ).inc(len(todo))
        self._emit(
            "sweep_start", t0, total=total,
            detail=f"workers={self.n_workers} mode={mode}"
            + (f" cached={len(hits)}" if hits else ""),
        )
        for done, i in enumerate(hits, 1):
            self._emit(
                "point_done", t0, index=i, done=done, total=total,
                label=tasks[i].label, detail="cached",
            )

        worker_stats: dict[str, int] = {}
        if todo:
            if mode == "serial":
                self._run_serial(tasks, results, t0, total)
            else:
                worker_stats = self._map_parallel(tasks, results, t0, total, todo)
        self._store_to_cache(tasks, results, todo)

        cache_totals = cache_mod.stats_delta(stats_before)
        cache_mod.merge_stats(cache_totals, worker_stats)
        if cache_totals:
            self.last_stats["cache"] = dict(cache_totals)
            self._emit(
                "cache_stats", t0, done=total, total=total,
                detail=" ".join(
                    f"{k}={v}" for k, v in sorted(cache_totals.items())
                ),
            )
        if metrics_on:
            reg = metrics_core.registry()
            wall = time.perf_counter() - t0
            # Separate namespace from the per-process ``exec_cache_*``
            # mirror: these are the parent's sweep-wide aggregates
            # (worker deltas folded in), and they depend on worker
            # layout, hence unstable.
            for key, value in sorted(cache_totals.items()):
                reg.counter(
                    f"sweep_cache_{key}_total",
                    f"Sweep-aggregated exec.cache counter {key!r}",
                    stable=False,
                ).inc(value)
            reg.counter(
                "sweep_worker_crashes_total",
                "BrokenProcessPool pool rebuilds across sweeps",
                stable=False,
            ).inc(self.last_stats["crashes"])
            reg.gauge(
                "sweep_last_wall_seconds", "Wall time of the last sweep"
            ).set(wall)
            if wall > 0.0:
                reg.gauge(
                    "sweep_points_per_sec",
                    "Completed points/second of the last sweep",
                ).set(total / wall)
        self.last_stats["wall_s"] = time.perf_counter() - t0
        self._emit("sweep_end", t0, done=total, total=total)
        assert not any(r is _MISSING for r in results)
        return results

    def _prefill_from_cache(
        self, tasks: Sequence[Task], results: list
    ) -> list[int]:
        """Fill slots served by the point cache; returns the hit indices."""
        if self.point_cache is None:
            return []
        hits: list[int] = []
        for i, task in enumerate(tasks):
            if not task.cache_key:
                continue
            value = self.point_cache.get(task.cache_key)
            if value is None:
                continue
            results[i] = value
            hits.append(i)
        return hits

    def _store_to_cache(
        self, tasks: Sequence[Task], results: list, todo: Sequence[int]
    ) -> None:
        """Store this run's freshly computed keyed results."""
        if self.point_cache is None:
            return
        for i in todo:
            if tasks[i].cache_key and results[i] is not _MISSING:
                self.point_cache.put(tasks[i].cache_key, results[i])

    def _export_shared_topologies(self):
        """Publish DistanceModel tables for the pool (or ``None``).

        Builds each requested model in the parent (warming its own
        cache as a side effect) and exports the tables; any shared-
        memory-level failure (``/dev/shm`` full, no implementation)
        degrades to workers building their own models.
        """
        if not self.shared_topologies or not cache_mod.cache_enabled():
            return None
        from repro.exec import shm

        specs = [
            cache_mod.normalize_machine_spec(s) for s in self.shared_topologies
        ]
        store = shm.SharedTopologyStore()
        try:
            for preset, args, costs in specs:
                model = cache_mod.cached_distance_model(
                    preset, *args, costs=costs
                )
                store.export_model(shm.shm_key(preset, args, costs), model)
            store.publish()
        except (OSError, ValueError, MemoryError):
            store.close()
            cache_mod.bump_stat("shm_degrade")
            return None
        return store

    def _map_parallel(
        self,
        tasks: Sequence[Task],
        results: list,
        t0: float,
        total: int,
        todo: Sequence[int],
    ) -> dict[str, int]:
        worker_stats: dict[str, int] = {}
        store = self._export_shared_topologies()
        try:
            self._pool_loop(tasks, results, t0, total, todo, worker_stats)
        finally:
            if store is not None:
                store.close()
        return worker_stats

    def _pool_loop(
        self,
        tasks: Sequence[Task],
        results: list,
        t0: float,
        total: int,
        todo: Sequence[int],
        worker_stats: dict[str, int],
    ) -> None:
        ctx = multiprocessing.get_context(self.mp_context)
        positions = self._chunk_indices(
            len(todo), [tasks[i].weight for i in todo]
        )
        pending = [[todo[p] for p in chunk] for chunk in positions]
        crashes = 0
        while pending:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.n_workers, len(pending)), mp_context=ctx
                ) as pool:
                    futures = {
                        pool.submit(
                            _run_chunk,
                            [(i, tasks[i].fn, tasks[i].kwargs) for i in chunk],
                        ): chunk
                        for chunk in pending
                    }
                    not_done = set(futures)
                    while not_done:
                        done_set, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                        for fut in done_set:
                            pairs, delta, metrics_delta = fut.result()
                            cache_mod.merge_stats(worker_stats, delta)
                            if metrics_delta:
                                metrics_core.registry().merge(metrics_delta)
                            for i, value in pairs:
                                results[i] = value
                                ndone = sum(1 for r in results if r is not _MISSING)
                                self._emit(
                                    "point_done", t0, index=i, done=ndone,
                                    total=total, label=tasks[i].label,
                                )
                            self._emit(
                                "chunk_done", t0,
                                done=sum(1 for r in results if r is not _MISSING),
                                total=total,
                                detail=f"chunk of {len(futures[fut])}",
                            )
            except BrokenProcessPool:
                crashes += 1
                self.last_stats["crashes"] = crashes
                pending = [
                    c for c in pending if any(results[i] is _MISSING for i in c)
                ]
                remaining = sum(1 for r in results if r is _MISSING)
                if metrics_core.is_enabled():
                    metrics_core.registry().counter(
                        "sweep_chunk_retries_total",
                        "Chunk resubmissions after pool crashes",
                        stable=False,
                    ).inc(len(pending))
                self._emit(
                    "worker_crash", t0,
                    done=total - remaining, total=total,
                    detail=f"attempt {crashes}/{self.max_retries}, "
                           f"{remaining} task(s) unfinished",
                )
                if crashes > self.max_retries:
                    if self.serial_fallback:
                        self.last_stats["serial_fallback"] = True
                        self._emit(
                            "serial_fallback", t0,
                            done=total - remaining, total=total,
                            detail=f"{remaining} task(s) rerun in-process",
                        )
                        self._run_serial(tasks, results, t0, total)
                        return
                    raise ExecError(
                        f"worker pool crashed {crashes} time(s); "
                        f"{remaining} of {total} task(s) unfinished "
                        "(serial_fallback disabled)"
                    ) from None
                self._emit(
                    "retry", t0, done=total - remaining, total=total,
                    detail=f"resubmitting {len(pending)} chunk(s)",
                )
            else:
                pending = []


def run_sweep(
    fn: Callable[..., Any],
    kwargs_list: Sequence[dict[str, Any]],
    n_workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    **runner_kwargs: Any,
) -> list[Any]:
    """One-call sweep: ``[fn(**kw) for kw in kwargs_list]``, in parallel.

    Results are in input order and bit-identical to the serial list
    comprehension.  Extra keyword arguments configure the
    :class:`SweepRunner`.
    """
    if labels is not None and len(labels) != len(kwargs_list):
        raise ValidationError(
            f"labels length {len(labels)} != kwargs_list length {len(kwargs_list)}"
        )
    tasks = [
        Task(fn, dict(kw), label=labels[k] if labels else "")
        for k, kw in enumerate(kwargs_list)
    ]
    return SweepRunner(n_workers=n_workers, **runner_kwargs).map(tasks)
