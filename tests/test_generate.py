"""Tests for the parametric topology generator (`repro.topology.generate`).

Pinned guarantees:

* **Spec round-trip** — for arbitrary valid specs (hypothesis-built),
  ``spec_loads(spec_dumps(spec)) == spec``, and the tree built from the
  re-parsed spec serializes byte-equal to the tree built from the
  original.
* **Build invariants** — PU count, depth, and arity vector of the built
  tree follow from the spec alone.
* **Generated == handwritten** — the generated ``paper`` preset is
  tree-equal to :func:`repro.topology.presets.paper_smp`.
* **Mega-topology budget** — the 512-socket two-tier preset (4096 PUs)
  builds, with its full distance model, in seconds.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import presets
from repro.topology.distance import DistanceModel
from repro.topology.generate import (
    SCALING_SPECS,
    LevelDef,
    MachineSpec,
    build,
    from_spec_string,
    scaling_sizes,
    scaling_spec,
    smp,
    spec_dumps,
    spec_from_dict,
    spec_loads,
    spec_to_dict,
    two_tier,
)
from repro.topology.objects import CacheAttributes, MemoryAttributes, ObjType
from repro.topology.serialize import to_dict
from repro.topology.tree import TopologyError

#: Non-GROUP levels in containment order; a strictly increasing
#: subsequence of these (plus leading GROUPs and the PU leaf) is a
#: valid hierarchy.
_CHAIN = (
    ObjType.NUMANODE,
    ObjType.PACKAGE,
    ObjType.L3,
    ObjType.L2,
    ObjType.L1,
    ObjType.CORE,
)


@st.composite
def machine_specs(draw, max_count: int = 3, max_pus: int = 256):
    n_groups = draw(st.integers(min_value=0, max_value=2))
    chain = draw(
        st.lists(st.sampled_from(_CHAIN), unique=True, max_size=4).map(
            lambda ts: sorted(ts, key=int)
        )
    )
    types = [ObjType.GROUP] * n_groups + chain + [ObjType.PU]
    levels = []
    n_pus = 1
    for t in types:
        count = draw(st.integers(min_value=1, max_value=max_count))
        if n_pus * count > max_pus:
            count = 1
        n_pus *= count
        cache = memory = None
        if t in (ObjType.L1, ObjType.L2, ObjType.L3) and draw(st.booleans()):
            cache = CacheAttributes(
                size=draw(st.integers(min_value=1 << 10, max_value=1 << 24)),
                latency=draw(
                    st.floats(min_value=0.0, max_value=1e-7, allow_nan=False)
                ),
            )
        if t is ObjType.NUMANODE and draw(st.booleans()):
            memory = MemoryAttributes(
                local_bytes=draw(st.integers(min_value=1 << 20, max_value=1 << 34)),
                latency=draw(
                    st.floats(min_value=0.0, max_value=1e-6, allow_nan=False)
                ),
                bandwidth=draw(
                    st.floats(min_value=0.0, max_value=1e12, allow_nan=False)
                ),
            )
        levels.append(LevelDef(t, count, cache=cache, memory=memory))
    name = draw(
        st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12)
    )
    return MachineSpec(name=name, levels=tuple(levels))


class TestSpecRoundTrip:
    @given(spec=machine_specs())
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip_is_identity(self, spec):
        assert spec_loads(spec_dumps(spec)) == spec
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @given(spec=machine_specs(max_pus=128))
    @settings(max_examples=20, deadline=None)
    def test_build_after_roundtrip_is_tree_equal(self, spec):
        direct = build(spec)
        reparsed = build(spec_loads(spec_dumps(spec)))
        assert to_dict(reparsed) == to_dict(direct)

    def test_attributes_survive_roundtrip(self):
        spec = smp(4, 2)
        back = spec_loads(spec_dumps(spec))
        numa = back.levels[0]
        assert numa.memory == MemoryAttributes(
            local_bytes=32 << 30, latency=90e-9, bandwidth=40e9
        )
        l3 = back.levels[2]
        assert l3.cache is not None and l3.cache.size == 20 << 20


class TestBuildInvariants:
    @given(spec=machine_specs(max_pus=128))
    @settings(max_examples=20, deadline=None)
    def test_counts_and_depth_follow_the_spec(self, spec):
        topo = build(spec)
        assert topo.nb_pus == spec.n_pus
        assert topo.depth == spec.n_levels + 1  # + the implicit MACHINE root
        assert topo.arities() == spec.arities()
        for type_ in set(lvl.type for lvl in spec.levels):
            assert topo.nbobjs_by_type(type_) == spec.count_of(type_)

    def test_count_of_paper_shape(self):
        spec = smp(24, 8)
        assert spec.n_pus == 192
        assert spec.count_of(ObjType.NUMANODE) == 24
        assert spec.count_of(ObjType.CORE) == 192
        assert spec.count_of(ObjType.PU) == 192
        assert spec.count_of(ObjType.GROUP) == 0
        assert spec.describe() == "numanode:24 package:1 l3:1 core:8 pu:1"

    def test_two_tier_shape(self):
        spec = two_tier(8, 64, 8)
        assert spec.n_pus == 4096
        assert spec.levels[0].type is ObjType.GROUP
        assert spec.count_of(ObjType.GROUP) == 8
        assert spec.count_of(ObjType.NUMANODE) == 512


class TestValidation:
    def test_innermost_must_be_pu(self):
        with pytest.raises(TopologyError):
            MachineSpec("x", (LevelDef(ObjType.NUMANODE, 2),))

    def test_containment_order_enforced(self):
        with pytest.raises(TopologyError):
            MachineSpec(
                "x",
                (
                    LevelDef(ObjType.CORE, 2),
                    LevelDef(ObjType.NUMANODE, 2),
                    LevelDef(ObjType.PU, 1),
                ),
            )

    def test_group_may_repeat(self):
        spec = MachineSpec(
            "g",
            (
                LevelDef(ObjType.GROUP, 2),
                LevelDef(ObjType.GROUP, 2),
                LevelDef(ObjType.CORE, 2),
                LevelDef(ObjType.PU, 1),
            ),
        )
        assert build(spec).nb_pus == 8

    def test_machine_level_rejected(self):
        with pytest.raises(TopologyError):
            MachineSpec("x", (LevelDef(ObjType.MACHINE, 1), LevelDef(ObjType.PU, 1)))

    def test_bad_counts_rejected(self):
        with pytest.raises(TopologyError):
            LevelDef(ObjType.PU, 0)
        with pytest.raises(TopologyError):
            LevelDef(ObjType.PU, -3)
        with pytest.raises(TopologyError):
            LevelDef(ObjType.PU, True)

    def test_unknown_type_rejected(self):
        with pytest.raises(TopologyError):
            LevelDef("quark", 2)

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            MachineSpec("", (LevelDef(ObjType.PU, 1),))

    @pytest.mark.parametrize(
        "text",
        [
            "not json at all {",
            '{"format": "something-else", "version": 1, "levels": []}',
            '{"format": "repro-machine-spec", "version": 99, "levels": []}',
            '{"format": "repro-machine-spec", "version": 1, "levels": "pu"}',
            '{"format": "repro-machine-spec", "version": 1, "name": "x", '
            '"levels": [{"type": "pu", "count": "two"}]}',
            '{"format": "repro-machine-spec", "version": 1, "name": "x", '
            '"levels": [{"type": "pu", "count": 1, "cache": {"latency": 1}}]}',
        ],
    )
    def test_malformed_documents_raise_topology_error(self, text):
        with pytest.raises(TopologyError):
            spec_loads(text)


class TestGeneratedVsHandwritten:
    def test_paper_preset_matches_handwritten_24x8(self):
        generated = build(SCALING_SPECS["paper"])
        handwritten = presets.paper_smp()
        assert to_dict(generated) == to_dict(handwritten)

    def test_scaling_presets_registered_in_presets_registry(self):
        for name in SCALING_SPECS:
            topo = presets.by_name(name)
            assert topo.nb_pus == SCALING_SPECS[name].n_pus


class TestScalingRegistry:
    def test_scaling_sizes_sorted_ascending(self):
        sized = scaling_sizes(["smp96x8", "paper", "smp48x8"])
        assert sized == [("paper", 192), ("smp48x8", 384), ("smp96x8", 768)]

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            scaling_spec("smp7x7")

    def test_from_spec_string(self):
        spec = from_spec_string("numa:2 core:4 pu:1")
        assert spec.n_pus == 8
        anon = from_spec_string("2 core:2 pu:1")
        assert anon.levels[0].type is ObjType.GROUP


class TestMegaTopologyBudget:
    def test_512_socket_preset_builds_fast(self):
        t0 = time.perf_counter()
        topo = build(SCALING_SPECS["smp512x8"])
        DistanceModel(topo)
        elapsed = time.perf_counter() - t0
        assert topo.nb_pus == 4096
        assert elapsed < 10.0, f"512-socket build took {elapsed:.1f}s"
