"""Bridges between existing instrumentation and ``repro.metrics``.

``repro.observe`` tracers already see every ORWL wait, lock grant,
transfer and run-queue span; rather than double-instrumenting the
runtime, :class:`MetricsProbe` attaches to a tracer as a probe and
folds those events into counters/histograms.  Because the trace stream
is bit-identical across engine modes and replay orders (the engine
determinism contract), every *integer* quantity derived here — event
counts and histogram bucket counts over simulated durations — lands in
the stable snapshot.

Also here: the engine cohort-size sink, the end-of-run flush
(:func:`record_run`), and the ``repro.exec.cache`` stats mirror.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.metrics import core
from repro.metrics.core import (
    MetricRegistry,
    SIM_TIME_BUCKETS,
    SIZE_BUCKETS,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.observe.tracer import EventFilter, TraceEvent, Tracer
    from repro.simulate.machine import Machine

__all__ = [
    "MetricsProbe",
    "attach_probe",
    "cohort_sink",
    "record_run",
    "sync_cache_stats",
]


class MetricsProbe:
    """A ``Tracer`` probe translating trace events into metrics.

    Bridged metrics (all stable unless noted):

    * ``orwl_waits_total`` / ``orwl_wait_sim_seconds`` — one per
      ``wait`` span, histogram over the *simulated* wait duration.
    * ``orwl_wakeups_total`` — one per lock ``grant`` event.
    * ``orwl_transfers_total`` / ``orwl_transfer_bytes_total`` /
      ``orwl_transfer_bytes`` — per ``transfer`` span (byte counts are
      integral, so the totals stay exact).
    * ``orwl_runq_total`` — run-queue spans.
    * ``orwl_migrations_total`` — thread migrations.
    * ``observe_events_bridged_total`` — everything the probe saw
      (after filtering).

    An optional :class:`~repro.observe.tracer.EventFilter` restricts
    which events are bridged; ``filter_spec`` round-trips through
    ``EventFilter.parse`` so CLI filter strings work unchanged.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        *,
        filter: "EventFilter | None" = None,
        filter_spec: str | None = None,
    ) -> None:
        reg = registry if registry is not None else core.registry()
        if filter is None and filter_spec is not None:
            from repro.observe.tracer import EventFilter

            filter = EventFilter.parse(filter_spec)
        self.filter = filter
        self.registry = reg
        self._bridged = reg.counter(
            "observe_events_bridged_total",
            "Trace events folded into metrics by the bridge",
        )
        self._waits = reg.counter(
            "orwl_waits_total", "ORWL wait spans observed"
        )
        self._wait_hist = reg.histogram(
            "orwl_wait_sim_seconds",
            "Simulated ORWL wait durations",
            buckets=SIM_TIME_BUCKETS,
        )
        self._wakeups = reg.counter(
            "orwl_wakeups_total", "ORWL lock grants (wakeups)"
        )
        self._transfers = reg.counter(
            "orwl_transfers_total", "Memory-level transfer spans"
        )
        self._transfer_bytes = reg.counter(
            "orwl_transfer_bytes_total", "Bytes moved across memory levels"
        )
        self._transfer_hist = reg.histogram(
            "orwl_transfer_bytes",
            "Per-transfer payload sizes",
            buckets=SIZE_BUCKETS,
        )
        self._runq = reg.counter(
            "orwl_runq_total", "Run-queue delay spans"
        )
        self._migrations = reg.counter(
            "orwl_migrations_total", "Thread migrations between PUs"
        )

    def __call__(self, event: "TraceEvent") -> None:
        if self.filter is not None and not self.filter(event):
            return
        self._bridged.inc()
        kind = event.kind
        if kind == "wait":
            self._waits.inc()
            self._wait_hist.observe(event.dur)
        elif kind == "grant":
            self._wakeups.inc()
        elif kind == "transfer":
            self._transfers.inc()
            self._transfer_bytes.inc(int(event.nbytes))
            self._transfer_hist.observe(float(event.nbytes))
        elif kind == "runq":
            self._runq.inc()
        elif kind == "migration":
            self._migrations.inc()


def attach_probe(
    tracer: "Tracer",
    registry: MetricRegistry | None = None,
    *,
    filter_spec: str | None = None,
) -> MetricsProbe:
    """Attach a :class:`MetricsProbe` to ``tracer`` and return it."""
    probe = MetricsProbe(registry, filter_spec=filter_spec)
    tracer.add_probe(probe)
    return probe


def cohort_sink(
    registry: MetricRegistry | None = None,
) -> Callable[[int], None]:
    """Engine ``metrics_sink``: histogram over dispatched cohort sizes.

    Unstable by construction — the scalar engine never forms cohorts,
    so this histogram legitimately differs across engine modes and is
    excluded from the stable snapshot.
    """
    reg = registry if registry is not None else core.registry()
    hist = reg.histogram(
        "engine_cohort_size",
        "Same-timestamp event cohort sizes dispatched by the engine",
        buckets=SIZE_BUCKETS[:16],
        stable=False,
    )
    return hist.observe


def record_run(machine: "Machine", wall_s: float) -> None:
    """Flush one simulation run's engine totals into the registry.

    Called from ``Machine.run()`` when metrics are enabled.  Event
    totals are integers guaranteed identical across engine modes by the
    determinism contract, so they are stable; wall-clock rates are not.
    """
    reg = core.registry()
    engine = machine.engine
    reg.counter("sim_runs_total", "Completed simulation runs").inc()
    reg.counter(
        "sim_events_total", "Engine events fired across all runs"
    ).inc(engine.events_fired)
    reg.gauge(
        "sim_last_makespan_seconds", "Simulated makespan of the last run"
    ).set(engine.now)
    reg.histogram(
        "engine_run_wall_seconds",
        "Wall-clock time per Machine.run()",
        stable=False,
    ).observe(wall_s)
    if wall_s > 0.0:
        reg.gauge(
            "engine_events_per_sec",
            "Engine dispatch throughput of the last run",
        ).set(engine.events_fired / wall_s)


def sync_cache_stats(registry: MetricRegistry | None = None) -> None:
    """Mirror ``repro.exec.cache`` per-tier stats into counters.

    Uses monotonic absolute sync (``set_to_max``) because the cache
    module keeps its own absolute totals.  Per-process cache activity
    depends on worker layout, so these are unstable.
    """
    from repro.exec.cache import cache_stats

    reg = registry if registry is not None else core.registry()
    for key, value in sorted(cache_stats().items()):
        reg.counter(
            f"exec_cache_{key}_total",
            f"exec.cache counter {key!r} (absolute mirror)",
            stable=False,
        ).set_to_max(value)
