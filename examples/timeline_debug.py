#!/usr/bin/env python3
"""Visualize what the runtime actually did: an ASCII execution timeline.

Runs a small LK23 decomposition with the machine's timeline recorder
enabled and renders a Gantt-style chart per PU — compute bursts as
``#``, data transfers as ``=``.  Comparing the bound and unbound charts
makes the placement effect *visible*: bound runs show dense, even rows;
unbound runs show ragged rows and idle gaps where the balancer moved
threads around.

Run:  python examples/timeline_debug.py
"""

from repro.kernels import Lk23Config, build_program
from repro.orwl import Runtime
from repro.placement import bind_program
from repro.simulate import Machine
from repro.topology import presets


def run_with_timeline(policy: str):
    topo = presets.small_numa(2, 4)
    cfg = Lk23Config(n=1024, grid_rows=2, grid_cols=4, iterations=3)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy=policy)
    machine = Machine(topo, seed=3, timeline=True)
    result = Runtime(
        prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    ).run()
    return machine.timeline, result


def main() -> None:
    for policy in ("treematch", "nobind"):
        timeline, result = run_with_timeline(policy)
        print(f"=== {policy}  (total {result.time * 1000:.2f} ms, "
              f"{len(timeline)} segments) ===")
        print(timeline.render(width=68))
        utils = [timeline.utilization(pu, result.time) for pu in range(8)]
        print(f"per-PU utilization: {' '.join(f'{u:.0%}' for u in utils)}")
        print()


if __name__ == "__main__":
    main()
