"""Import of hwloc XML exports (``lstopo --of xml``).

Lets the library consume topologies of *real* machines: run
``lstopo --of xml > machine.xml`` anywhere hwloc is installed and feed
the file to :func:`load_hwloc_xml` (or any CLI tool's topology
argument — the resolver tries this format for ``.xml`` paths).

The supported subset covers what the placement stack consumes: the
object hierarchy (Machine / Group / NUMANode / Package / L3–L1 caches /
Core / PU), ``os_index``, cache sizes/line sizes, and NUMA local
memory.  Both the v1 layout (NUMANode as a tree level) and the v2
layout (memory children attached to a parent) are handled; v2 memory
children are folded back into a tree level so the result is a regular
:class:`~repro.topology.tree.Topology`.

Irregular real machines may violate this library's balanced-tree
requirement for *mapping* (arities must be uniform per level); loading
still succeeds — only `Topology.arities()` (and thus TreeMatch) will
refuse, with a clear error.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Optional, Union

from repro.topology.objects import (
    CacheAttributes,
    MemoryAttributes,
    ObjType,
    TopologyObject,
)
from repro.topology.tree import Topology, TopologyError

#: hwloc object-type strings → our types.  Cache depth is disambiguated
#: via the ``depth`` attribute for v1 ("Cache") and the explicit
#: L1/L2/L3 types of v2.
_TYPE_MAP = {
    "Machine": ObjType.MACHINE,
    "Group": ObjType.GROUP,
    "NUMANode": ObjType.NUMANODE,
    "Package": ObjType.PACKAGE,
    "Socket": ObjType.PACKAGE,  # hwloc < 1.11 naming
    "L3Cache": ObjType.L3,
    "L2Cache": ObjType.L2,
    "L1Cache": ObjType.L1,
    "Core": ObjType.CORE,
    "PU": ObjType.PU,
}

#: hwloc types we silently flatten (children promoted to the parent).
_SKIP_TYPES = {
    "Bridge", "PCIDev", "OSDev", "Misc", "L1iCache", "L2iCache",
    "L3iCache", "Die", "MemCache",
}

#: Upper bound on OS indices we accept.  A corrupted (or adversarial)
#: file with ``os_index="10**18"`` would otherwise make the cpuset
#: computation allocate a 10**18-bit integer; no real machine is
#: within orders of magnitude of this.
MAX_OS_INDEX = 1 << 20


def _int_attr(
    elem: ET.Element,
    name: str,
    default: Optional[int] = None,
    minimum: int = 0,
    maximum: Optional[int] = None,
) -> Optional[int]:
    """Read an integer attribute defensively.

    Malformed exports (truncated writes, hand edits) must surface as a
    clean :class:`TopologyError` naming the attribute — not as a
    ``ValueError`` from ``int()`` deep in the recursion, and never as a
    resource blow-up from an absurd value.
    """
    raw = elem.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise TopologyError(
            f"<{elem.get('type', elem.tag)}> has non-integer {name}={raw!r}"
        ) from None
    if value < minimum:
        raise TopologyError(
            f"<{elem.get('type', elem.tag)}> has {name}={value} < {minimum}"
        )
    if maximum is not None and value > maximum:
        raise TopologyError(
            f"<{elem.get('type', elem.tag)}> has implausible {name}={value} "
            f"(max {maximum})"
        )
    return value


def _cache_type(elem: ET.Element) -> Optional[ObjType]:
    t = elem.get("type", "")
    if t in ("L3Cache", "L2Cache", "L1Cache"):
        return _TYPE_MAP[t]
    if t == "Cache":  # v1: depth attribute tells the level
        depth = elem.get("depth", "")
        return {"3": ObjType.L3, "2": ObjType.L2, "1": ObjType.L1}.get(depth)
    return None


def _attrs_of(elem: ET.Element, type_: ObjType) -> tuple[Optional[CacheAttributes], Optional[MemoryAttributes]]:
    cache = None
    memory = None
    if type_.is_cache:
        size = _int_attr(elem, "cache_size", default=0)
        line = _int_attr(elem, "cache_linesize", default=64)
        if size > 0:
            cache = CacheAttributes(size=size, line_size=line or 64)
    if type_ is ObjType.NUMANODE:
        local = _int_attr(elem, "local_memory", default=0)
        memory = MemoryAttributes(local_bytes=local)
    return cache, memory


def _convert(elem: ET.Element) -> Optional[TopologyObject]:
    """Convert one hwloc <object> element (recursively)."""
    hw_type = elem.get("type", "")
    if hw_type in _SKIP_TYPES or (
        hw_type == "Cache" and _cache_type(elem) is None
    ):
        # Flatten: splice the children into the parent.  Represented by
        # returning a transparent marker handled by the caller; easier:
        # recurse and return a pseudo-list via exception-free protocol.
        children = _convert_children(elem)
        if len(children) == 1:
            return children[0]
        if not children:
            return None
        # Multiple children under a skipped node: wrap in a GROUP so the
        # tree stays well-formed.
        group = TopologyObject(ObjType.GROUP)
        for c in children:
            group.add_child(c)
        return group

    type_ = _cache_type(elem) if hw_type == "Cache" else _TYPE_MAP.get(hw_type)
    if type_ is None:
        return None
    os_index = _int_attr(elem, "os_index", maximum=MAX_OS_INDEX)
    cache, memory = _attrs_of(elem, type_)
    obj = TopologyObject(type_, os_index=os_index, cache=cache, memory=memory)
    for child in _convert_children(elem):
        # Raw attach: hwloc v2 legitimately nests NUMANode *inside*
        # Package (as a memory child), which add_child would refuse
        # under our containment order.  _fold_v2_memory re-normalizes
        # before Topology() validates the final tree.
        child.parent = obj
        obj.children.append(child)
    return obj


def _convert_children(elem: ET.Element) -> list[TopologyObject]:
    out = []
    for child in elem:
        if child.tag != "object":
            continue
        converted = _convert(child)
        if converted is not None:
            out.append(converted)
    return out


def _fold_v2_memory(obj: TopologyObject) -> None:
    """hwloc v2 attaches NUMANodes as leaf memory children of e.g. a
    Package; hoist such a NUMANode *above* its parent so it becomes a
    proper tree level (our containment order is NUMANode ⊃ Package).

    Pattern per child: ``X(..., NUMANode-leaf, ...)`` becomes
    ``NUMANode(X(...))`` in X's place.
    """
    for k, child in enumerate(list(obj.children)):
        _fold_v2_memory(child)
        numa_leaves = [
            c for c in child.children if c.type is ObjType.NUMANODE and not c.children
        ]
        if len(numa_leaves) == 1 and len(child.children) > 1:
            numa = numa_leaves[0]
            child.children.remove(numa)
            # Splice: parent -> numa -> child (field surgery; add_child
            # would refuse nodes that already have parents).
            numa.parent = obj
            child.parent = numa
            numa.children = [child]
            obj.children[k] = numa


def parse_hwloc_xml(text: str, name: str = "") -> Topology:
    """Parse an hwloc XML document string.

    Error contract: any malformed input — invalid XML, a non-hwloc
    document, bogus attribute values (non-integer or negative indices,
    absurd os indices), or a structurally invalid tree — raises
    :class:`TopologyError` (a ``ValueError``).  It never crashes with
    an arbitrary exception from deep inside the conversion; the fuzz
    tests in ``tests/test_topology_fuzz.py`` pin this.
    """
    try:
        root_elem = ET.fromstring(text)
    except ET.ParseError as exc:
        raise TopologyError(f"not valid XML: {exc}") from None
    if root_elem.tag != "topology":
        raise TopologyError(f"not an hwloc XML export (root <{root_elem.tag}>)")
    machine_elem = root_elem.find("object")
    if machine_elem is None or machine_elem.get("type") != "Machine":
        raise TopologyError("hwloc XML has no Machine object")
    try:
        machine = _convert(machine_elem)
        if machine is None or machine.type is not ObjType.MACHINE:
            raise TopologyError("could not convert the Machine object")
        _fold_v2_memory(machine)
        return Topology(machine, name=name or "hwloc-import")
    except TopologyError:
        raise
    except ValueError as exc:
        # Attribute combinations the object model itself refuses
        # (e.g. a zero-size cache) — normalize to the contract error.
        raise TopologyError(f"invalid hwloc XML content: {exc}") from None


def load_hwloc_xml(path: Union[str, Path]) -> Topology:
    """Load a ``lstopo --of xml`` file."""
    p = Path(path)
    return parse_hwloc_xml(p.read_text(encoding="utf-8"), name=p.stem)


# ---------------------------------------------------------------------------
# Export (v1 layout: every level is a tree level, caches carry depth)
# ---------------------------------------------------------------------------

_EXPORT_TYPE = {
    ObjType.MACHINE: "Machine",
    ObjType.GROUP: "Group",
    ObjType.NUMANODE: "NUMANode",
    ObjType.PACKAGE: "Package",
    ObjType.CORE: "Core",
    ObjType.PU: "PU",
}

_CACHE_DEPTH = {ObjType.L3: "3", ObjType.L2: "2", ObjType.L1: "1"}


def _export_obj(obj: TopologyObject, parent: ET.Element) -> None:
    if obj.type.is_cache:
        elem = ET.SubElement(parent, "object", type="Cache",
                             depth=_CACHE_DEPTH[obj.type])
        if obj.cache is not None:
            elem.set("cache_size", str(obj.cache.size))
            elem.set("cache_linesize", str(obj.cache.line_size))
    else:
        elem = ET.SubElement(parent, "object", type=_EXPORT_TYPE[obj.type])
        if obj.os_index is not None:
            elem.set("os_index", str(obj.os_index))
        if obj.memory is not None:
            elem.set("local_memory", str(obj.memory.local_bytes))
    for child in obj.children:
        _export_obj(child, elem)


def to_hwloc_xml(topo: Topology) -> str:
    """Export a topology as hwloc v1-style XML.

    Round-trips through :func:`parse_hwloc_xml`, and the output is
    readable by hwloc's own tools, so synthetic machines built here can
    be inspected with a real ``lstopo -i machine.xml``.
    """
    root = ET.Element("topology")
    _export_obj(topo.root, root)
    ET.indent(root)
    return '<?xml version="1.0"?>\n' + ET.tostring(root, encoding="unicode") + "\n"


def save_hwloc_xml(topo: Topology, path: Union[str, Path]) -> None:
    """Write :func:`to_hwloc_xml` output to *path*."""
    Path(path).write_text(to_hwloc_xml(topo), encoding="utf-8")
