"""Figure 1 — LK23 processing time: ORWL-Bind vs ORWL-NoBind vs OpenMP.

Regenerates the paper's figure data: the three implementations swept
over core counts on the 24-socket × 8-core SMP model.  Each benchmark
row is one point; ``sim_time_s`` in extra_info is the figure's y-value.
``test_fig1_claims`` asserts the paper's three scalar claims as bands:

* C1 — ORWL-Bind is the fastest implementation at full scale (the
  paper's ~11 s absolute value is testbed-specific and not asserted);
* C2 — speedup vs OpenMP ≈ 5× (asserted within [3, 9]);
* C3 — speedup vs ORWL-NoBind ≈ 2.8× (asserted within [1.7, 4.5]).
"""

import pytest

from repro.experiments.fig1 import IMPLEMENTATIONS, run_fig1, run_point

#: Swept core counts (whole sockets).  Paper: up to 192.
CORE_COUNTS = (8, 32, 96, 192)
ITERATIONS = 3
N = 16384


@pytest.mark.parametrize("n_cores", CORE_COUNTS)
@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_fig1_point(benchmark, impl, n_cores):
    point = benchmark.pedantic(
        run_point,
        args=(impl, n_cores),
        kwargs=dict(iterations=ITERATIONS, n=N, seed=0),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["implementation"] = impl
    benchmark.extra_info["n_cores"] = n_cores
    benchmark.extra_info["sim_time_s"] = point.time
    benchmark.extra_info["local_fraction"] = point.local_fraction
    assert point.time > 0


def test_fig1_claims(benchmark):
    """The figure's headline numbers, asserted as bands (C1-C3)."""
    result = benchmark.pedantic(
        run_fig1,
        kwargs=dict(core_counts=(8, 192), iterations=ITERATIONS, n=N, seed=0),
        rounds=1,
        iterations=1,
    )
    sp_omp = result.speedup_vs_openmp()
    sp_nobind = result.speedup_vs_nobind()
    benchmark.extra_info["speedup_vs_openmp"] = sp_omp
    benchmark.extra_info["speedup_vs_nobind"] = sp_nobind
    benchmark.extra_info["table"] = result.table()
    # C1: bind is the best implementation at full scale.
    t_bind = result.time_of("orwl-bind", 192)
    assert t_bind < result.time_of("orwl-nobind", 192)
    assert t_bind < result.time_of("openmp", 192)
    # C2/C3: factors in the paper's neighbourhood.
    assert 3.0 <= sp_omp <= 9.0, f"bind-vs-openmp speedup {sp_omp:.2f} outside band"
    assert 1.7 <= sp_nobind <= 4.5, f"bind-vs-nobind speedup {sp_nobind:.2f} outside band"
