"""Benchmark-suite configuration.

Every benchmark measures the wall time of running one *simulated*
experiment and stores the quantity the paper actually reports — the
simulated processing time — in ``benchmark.extra_info["sim_time_s"]``.
Summary benches additionally assert the paper's qualitative claims so a
regression in the reproduction shape fails the suite loudly.
"""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks are ordered: figure first, ablations after.
    items.sort(key=lambda it: it.fspath.basename)


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (simulations are
    deterministic; repeated rounds only waste the time budget)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
