"""Trace exporters: JSON-lines (lossless) and Chrome ``trace_event``.

JSON-lines is the archival format: one event per line, every field,
floats round-tripped exactly (Python's ``json`` emits shortest-repr
floats), so ``read_jsonl(write_jsonl(events)) == events`` bit for bit —
the determinism tests rely on this.

The Chrome format targets timeline viewers (Perfetto / ``ui.perfetto.dev``,
``chrome://tracing``): spans become complete (``"ph": "X"``) events and
instants become ``"ph": "i"`` marks, grouped one track per simulated
thread, with thread-name metadata.  Timestamps are microseconds, per the
spec.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import IO, Iterable, Union

from repro.observe.tracer import TraceEvent

PathOrFile = Union[str, Path, IO[str]]

#: JSONL field order (stable across releases; importer tolerates extras).
_FIELDS = (
    "seq", "kind", "ts", "dur", "tid", "thread", "pu", "node",
    "level", "nbytes", "detail",
)

#: Chrome track used for machine-level events (scheduler decisions,
#: direct grants) that belong to no simulated thread.
MACHINE_TRACK_TID = 1_000_000


def _open(dst: PathOrFile, mode: str):
    if isinstance(dst, (str, Path)):
        return open(dst, mode, encoding="utf-8"), True
    return dst, False


# -- JSON-lines -------------------------------------------------------------

def event_to_dict(ev: TraceEvent) -> dict:
    return {name: getattr(ev, name) for name in _FIELDS}


def event_from_dict(d: dict) -> TraceEvent:
    return TraceEvent(
        seq=int(d["seq"]),
        kind=str(d["kind"]),
        ts=float(d["ts"]),
        dur=float(d.get("dur", 0.0)),
        tid=int(d.get("tid", -1)),
        thread=str(d.get("thread", "")),
        pu=int(d.get("pu", -1)),
        node=int(d.get("node", -1)),
        level=str(d.get("level", "")),
        nbytes=float(d.get("nbytes", 0.0)),
        detail=str(d.get("detail", "")),
    )


def write_jsonl(events: Iterable[TraceEvent], dst: PathOrFile) -> int:
    """Write one JSON object per line; returns the number of events."""
    fp, close = _open(dst, "w")
    n = 0
    try:
        for ev in events:
            fp.write(json.dumps(event_to_dict(ev), separators=(",", ":")))
            fp.write("\n")
            n += 1
    finally:
        if close:
            fp.close()
    return n


def read_jsonl(src: PathOrFile) -> list[TraceEvent]:
    """Read a stream written by :func:`write_jsonl` (blank lines skipped)."""
    fp, close = _open(src, "r")
    try:
        return [
            event_from_dict(json.loads(line))
            for line in fp
            if line.strip()
        ]
    finally:
        if close:
            fp.close()


def dumps_jsonl(events: Iterable[TraceEvent]) -> str:
    buf = io.StringIO()
    write_jsonl(events, buf)
    return buf.getvalue()


def loads_jsonl(text: str) -> list[TraceEvent]:
    return read_jsonl(io.StringIO(text))


# -- Chrome trace_event ------------------------------------------------------

def chrome_payload(events: Iterable[TraceEvent], process_name: str = "repro-sim") -> dict:
    """Build the ``{"traceEvents": [...]}`` payload for a viewer.

    Spans map to complete events; instants to thread-scoped instant
    events.  The simulated clock (seconds) becomes microseconds.  Extra
    per-event data (pu, node, level, nbytes, detail) lands in ``args``
    so the viewer shows it on selection.
    """
    out: list[dict] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    seen_threads: dict[int, str] = {}
    for ev in events:
        tid = ev.tid if ev.tid >= 0 else MACHINE_TRACK_TID
        if tid not in seen_threads:
            seen_threads[tid] = ev.thread or (
                "machine" if tid == MACHINE_TRACK_TID else f"tid{tid}"
            )
        args = {"seq": ev.seq, "pu": ev.pu, "node": ev.node}
        if ev.level:
            args["level"] = ev.level
        if ev.nbytes:
            args["nbytes"] = ev.nbytes
        if ev.detail:
            args["detail"] = ev.detail
        name = ev.kind if not ev.level else f"{ev.kind}[{ev.level}]"
        rec: dict = {
            "name": name,
            "cat": ev.kind,
            "pid": 0,
            "tid": tid,
            "ts": ev.ts * 1e6,
            "args": args,
        }
        if ev.is_span():
            rec["ph"] = "X"
            rec["dur"] = ev.dur * 1e6
        else:
            rec["ph"] = "i"
            rec["s"] = "t"
        out.append(rec)
    for tid, name in sorted(seen_threads.items()):
        out.append(
            {
                "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                "args": {"name": name},
            }
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome(
    events: Iterable[TraceEvent], dst: PathOrFile, process_name: str = "repro-sim"
) -> int:
    """Write a Chrome/Perfetto-loadable JSON file; returns event count."""
    payload = chrome_payload(events, process_name=process_name)
    fp, close = _open(dst, "w")
    try:
        json.dump(payload, fp)
    finally:
        if close:
            fp.close()
    # Metadata records are not trace events proper.
    return sum(1 for r in payload["traceEvents"] if r["ph"] != "M")
