"""Unit tests for ``repro.metrics``: core, exposition, bridge, surfaces."""

from __future__ import annotations

import io
import json
import urllib.request

import pytest

from repro.metrics import core
from repro.metrics.bridge import MetricsProbe, cohort_sink
from repro.metrics.bus import SnapshotWriter, read_snapshot
from repro.metrics.core import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricRegistry,
    SIM_TIME_BUCKETS,
    diff_dumps,
    exp_buckets,
    metric_id,
)
from repro.metrics.expose import ExpositionError, parse_exposition, render_text
from repro.metrics.history import (
    MIN_SERIES,
    history_report,
    load_reports,
    render_history,
    sparkline,
)
from repro.util.validate import ValidationError


@pytest.fixture(autouse=True)
def _clean_metrics(monkeypatch):
    """Each test gets a fresh global registry and a disabled flag."""
    monkeypatch.delenv(core.ENV_METRICS, raising=False)
    core.reset_registry()
    was = core.is_enabled()
    core.set_enabled(False)
    yield
    core.set_enabled(was)
    core.reset_registry()


# -- buckets & identity ---------------------------------------------------


def test_exp_buckets_deterministic_and_increasing():
    b = exp_buckets(1e-6, 2.0, 26)
    assert b == LATENCY_BUCKETS
    assert all(b2 > b1 for b1, b2 in zip(b, b[1:]))
    # repeated multiplication, not powers: byte-compare a recomputation
    cur, expect = 1e-9, []
    for _ in range(41):
        expect.append(cur)
        cur *= 2.0
    assert list(SIM_TIME_BUCKETS) == expect


@pytest.mark.parametrize(
    "kwargs", [dict(start=0.0), dict(factor=1.0), dict(count=0)]
)
def test_exp_buckets_rejects_bad_arguments(kwargs):
    args = {"start": 1.0, "factor": 2.0, "count": 4, **kwargs}
    with pytest.raises(ValidationError):
        exp_buckets(**args)


def test_metric_id_sorts_labels():
    assert metric_id("x") == "x"
    assert metric_id("x", {"b": "2", "a": "1"}) == 'x{a="1",b="2"}'


def test_invalid_names_rejected():
    reg = MetricRegistry()
    with pytest.raises(ValidationError):
        reg.counter("0bad")
    with pytest.raises(ValidationError):
        reg.counter("ok", labels={"0bad": "v"})


# -- counter / gauge / histogram ------------------------------------------


def test_counter_monotonic():
    c = Counter("c_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValidationError):
        c.inc(-1)
    c.set_to_max(3)  # never moves backward
    assert c.value == 5
    c.set_to_max(9)
    assert c.value == 9


def test_gauge_never_stable():
    g = Gauge("g")
    g.set(2.5)
    g.inc()
    g.dec(0.5)
    assert g.value == 3.0
    with pytest.raises(ValidationError):
        Gauge("g2", stable=True)


def test_histogram_buckets_and_quantiles():
    h = Histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 100.0):
        h.observe(v)
    # bisect_left: v <= bound lands in that bucket
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(106.0)
    assert h.quantile(0.0) == 1.0
    assert h.quantile(0.4) == 1.0  # rank 2.0 lands in the first bucket
    assert h.quantile(0.5) == 2.0  # rank 2.5 spills into the second
    assert h.quantile(0.9) == float("inf")
    assert Histogram("e", buckets=(1.0,)).quantile(0.5) == 0.0
    with pytest.raises(ValidationError):
        h.quantile(1.5)
    with pytest.raises(ValidationError):
        Histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValidationError):
        Histogram("bad", buckets=())


# -- registry --------------------------------------------------------------


def test_registry_get_or_create_and_type_mismatch():
    reg = MetricRegistry()
    c1 = reg.counter("a_total", "help", labels={"k": "v"})
    assert reg.counter("a_total", labels={"k": "v"}) is c1
    assert reg.counter("a_total") is not c1  # different label set
    with pytest.raises(ValidationError):
        reg.gauge("a_total")  # same id, different type
    assert reg.get("a_total", {"k": "v"}) is c1
    assert reg.get("missing") is None
    assert len(reg) == 2


def test_registry_iteration_sorted():
    reg = MetricRegistry()
    reg.counter("z_total")
    reg.counter("a_total")
    assert [m.id for m in reg] == ["a_total", "z_total"]


def test_snapshot_stable_filtering():
    reg = MetricRegistry()
    reg.counter("live_total").inc(3)
    reg.counter("zero_total")  # zero activity: dropped
    reg.counter("wall_total", stable=False).inc(2)  # unstable: dropped
    reg.gauge("g").set(1.0)  # gauge: dropped
    h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
    h.observe(0.5)
    reg.histogram("h_empty", buckets=(1.0,))  # no observations: dropped
    snap = reg.snapshot(stable_only=True)
    assert set(snap["metrics"]) == {"live_total", "h_seconds"}
    assert "sum" not in snap["metrics"]["h_seconds"]  # float accumulator
    full = reg.snapshot()
    assert set(full["metrics"]) == {
        "live_total", "zero_total", "wall_total", "g", "h_seconds", "h_empty",
    }
    assert full["metrics"]["h_seconds"]["sum"] == 0.5


def test_to_json_canonical():
    reg = MetricRegistry()
    reg.counter("b_total").inc()
    reg.counter("a_total").inc()
    text = reg.to_json(stable_only=True)
    assert text == json.dumps(
        json.loads(text), sort_keys=True, separators=(",", ":")
    )
    assert text.index('"a_total"') < text.index('"b_total"')


# -- dump / diff / merge (worker delta shipping) ---------------------------


def test_diff_dumps_and_merge_roundtrip():
    reg = MetricRegistry()
    reg.counter("c_total").inc(2)
    h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
    h.observe(0.5)
    before = reg.dump()
    reg.counter("c_total").inc(3)
    h.observe(5.0)
    reg.gauge("g").set(7.0)
    delta = diff_dumps(before, reg.dump())
    # untouched-at-delta metrics are omitted; changed ones carry deltas
    assert delta["c_total"]["value"] == 3
    assert delta["h_seconds"]["counts"] == [0, 0, 1]
    assert delta["g"]["value"] == 7.0

    other = MetricRegistry()
    other.counter("c_total").inc(10)
    other.merge(delta)
    assert other.counter("c_total").value == 13
    merged_h = other.get("h_seconds")
    assert merged_h.counts == [0, 0, 1]
    assert other.get("g").value == 7.0


def test_merge_full_dump_reproduces_registry():
    reg = MetricRegistry()
    reg.counter("c_total").inc(4)
    reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
    clone = MetricRegistry()
    clone.merge(diff_dumps({}, reg.dump()))
    assert clone.to_json() == reg.to_json()


def test_merge_rejects_bounds_mismatch_and_unknown_type():
    reg = MetricRegistry()
    reg.histogram("h_seconds", buckets=(1.0, 2.0))
    bad = {
        "h_seconds": {
            "type": "histogram", "name": "h_seconds", "labels": [],
            "bounds": [1.0, 3.0], "counts": [0, 0, 1], "count": 1, "sum": 5.0,
        }
    }
    with pytest.raises(ValidationError):
        reg.merge(bad)
    with pytest.raises(ValidationError):
        reg.merge({"x": {"type": "mystery", "name": "x", "labels": []}})


def test_stable_snapshot_identical_across_merge_order():
    def worker_delta(n):
        reg = MetricRegistry()
        reg.counter("sim_runs_total").inc(n)
        reg.histogram("h_seconds", buckets=(1.0, 2.0)).observe(float(n))
        return diff_dumps({}, reg.dump())

    deltas = [worker_delta(n) for n in (1, 2, 3)]
    a, b = MetricRegistry(), MetricRegistry()
    for d in deltas:
        a.merge(d)
    for d in reversed(deltas):
        b.merge(d)
    assert a.to_json(stable_only=True) == b.to_json(stable_only=True)


# -- enablement ------------------------------------------------------------


def test_enable_exports_environment(monkeypatch):
    import os

    core.enable()
    assert core.is_enabled()
    assert os.environ[core.ENV_METRICS] == "on"
    core.disable()
    assert not core.is_enabled()
    assert core.ENV_METRICS not in os.environ


# -- exposition ------------------------------------------------------------


def _demo_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("req_total", "Requests served").inc(7)
    reg.counter("err_total", labels={"op": 'we"ird\\'}).inc(1)
    reg.gauge("temp", "Degrees").set(2.5)
    h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(10.0)
    return reg


def test_render_text_strict_roundtrip():
    text = render_text(_demo_registry())
    parsed = parse_exposition(text)
    assert parsed["req_total"]["type"] == "counter"
    assert parsed["req_total"]["help"] == "Requests served"
    assert ("", {}, 7.0) in parsed["req_total"]["samples"]
    assert ("", {"op": 'we"ird\\'}, 1.0) in parsed["err_total"]["samples"]
    assert parsed["temp"]["type"] == "gauge"
    hist = parsed["lat_seconds"]
    assert hist["type"] == "histogram"
    buckets = {
        lab["le"]: v for s, lab, v in hist["samples"] if s == "_bucket"
    }
    assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
    assert ("_count", {}, 3.0) in hist["samples"]


def test_render_text_empty_help_has_no_trailing_space():
    reg = MetricRegistry()
    reg.counter("bare_total").inc()
    text = render_text(reg)
    assert "# HELP bare_total\n" in text
    parse_exposition(text)  # strict parse must accept it


@pytest.mark.parametrize(
    "bad",
    [
        " # HELP x y\n# TYPE x counter\nx 1\n",  # stray leading whitespace
        "# TYPE x counter\nx 1 2 3\n",  # extra tokens (timestamps rejected)
        "x 1\n",  # sample without TYPE
        "# TYPE 0bad counter\n0bad 1\n",  # bad name
        "# TYPE x counter\nx{le=1} 1\n",  # unquoted label value
        '# TYPE x counter\nx{le="1} 1\n',  # unterminated label
        "# TYPE x histogram\nx_bucket 1\n",  # _bucket without le
        '# TYPE x histogram\nx_bucket{le="1"} 5\n'
        'x_bucket{le="2"} 3\n',  # non-monotonic cumulative buckets
        "# TYPE x counter\nx 1\n# TYPE x gauge\n",  # TYPE after samples
        "# TYPE x counter\nx notanumber\n",
    ],
)
def test_parse_exposition_rejects(bad):
    with pytest.raises(ExpositionError):
        parse_exposition(bad)


# -- observe bridge --------------------------------------------------------


def _trace_event(kind, dur=0.0, nbytes=0.0, thread=""):
    from repro.observe.tracer import TraceEvent

    return TraceEvent(0, kind, 0.0, dur, 0, thread, -1, -1, "", nbytes, "")


def test_metrics_probe_counts_by_kind():
    reg = MetricRegistry()
    probe = MetricsProbe(reg)
    probe(_trace_event("wait", dur=2e-9))
    probe(_trace_event("grant"))
    probe(_trace_event("transfer", nbytes=64.0))
    probe(_trace_event("runq"))
    probe(_trace_event("migration"))
    probe(_trace_event("compute"))  # counted as bridged, no dedicated metric
    assert reg.counter("observe_events_bridged_total").value == 6
    assert reg.counter("orwl_waits_total").value == 1
    assert reg.counter("orwl_wakeups_total").value == 1
    assert reg.counter("orwl_transfer_bytes_total").value == 64
    assert reg.counter("orwl_runq_total").value == 1
    assert reg.counter("orwl_migrations_total").value == 1
    assert reg.get("orwl_wait_sim_seconds").count == 1


def test_metrics_probe_filter_spec_roundtrip():
    """A CLI filter spec restricts the bridge exactly like EventFilter."""
    from repro.observe.tracer import EventFilter

    spec = "kind=wait|grant,thread=w*"
    reg = MetricRegistry()
    probe = MetricsProbe(reg, filter_spec=spec)
    assert probe.filter == EventFilter.parse(spec)
    events = [
        _trace_event("wait", thread="w0"),
        _trace_event("wait", thread="ctl"),  # thread glob mismatch
        _trace_event("transfer", thread="w0"),  # kind mismatch
        _trace_event("grant", thread="w1"),
    ]
    for ev in events:
        probe(ev)
    expected = sum(1 for ev in events if EventFilter.parse(spec)(ev))
    assert reg.counter("observe_events_bridged_total").value == expected == 2
    assert reg.counter("orwl_transfers_total").value == 0


def test_cohort_sink_observes_sizes():
    reg = MetricRegistry()
    sink = cohort_sink(reg)
    sink(1)
    sink(192)
    hist = reg.get("engine_cohort_size")
    assert hist.count == 2
    assert hist.stable is False


# -- snapshot bus ----------------------------------------------------------


def test_snapshot_writer_atomic_and_progress(tmp_path):
    from repro.exec.progress import SweepEvent

    path = tmp_path / "live.json"
    reg = MetricRegistry()
    reg.counter("sim_runs_total").inc(3)
    writer = SnapshotWriter(str(path), registry=reg, min_interval=0.0)
    writer(SweepEvent("sweep_start", 0.0, total=10))
    writer(SweepEvent("point_done", 0.1, index=0, done=1, total=10,
                      detail="cached"))
    writer(SweepEvent("point_done", 0.2, index=1, done=2, total=10))
    snap = read_snapshot(str(path))
    m = snap["metrics"]
    assert m["sweep_progress_total"]["value"] == 10.0
    assert m["sweep_progress_done"]["value"] == 2.0
    assert m["sweep_progress_cached"]["value"] == 1.0
    assert m["sim_runs_total"]["value"] == 3
    assert snap["written_at"] > 0


def test_snapshot_writer_rate_limit_and_forced_end(tmp_path):
    from repro.exec.progress import SweepEvent

    path = tmp_path / "live.json"
    writer = SnapshotWriter(
        str(path), registry=MetricRegistry(), min_interval=3600.0
    )
    writer(SweepEvent("sweep_start", 0.0, total=4))
    writer(SweepEvent("point_done", 0.1, done=1, total=4))
    assert writer.writes == 1  # second call rate-limited
    writer(SweepEvent("sweep_end", 0.2, done=4, total=4))
    assert writer.writes == 2  # sweep_end always flushes
    writer()
    assert writer.writes == 3  # explicit flush always writes


def test_read_snapshot_tolerates_torn_and_missing(tmp_path):
    assert read_snapshot(str(tmp_path / "nope.json")) is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"metrics": {"a"')
    assert read_snapshot(str(torn)) is None
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"something": "else"}')
    assert read_snapshot(str(wrong)) is None


# -- top dashboard ---------------------------------------------------------


def test_top_render_dashboard_demo():
    from repro.tools.top import demo_snapshot, render_dashboard

    frame = render_dashboard(demo_snapshot())
    assert "28/40 done (9 cached)" in frame
    assert "p50" in frame and "p95" in frame and "p99" in frame
    assert "events" in frame


def test_top_rates_from_prev_snapshot():
    from repro.tools.top import render_dashboard

    def snap(queries, at):
        reg = MetricRegistry()
        reg.counter("placement_queries_total").inc(queries)
        reg.counter("placement_memo_hits_total").inc(queries)
        s = reg.snapshot()
        s["written_at"] = at
        return s

    frame = render_dashboard(snap(300, 10.0), prev=snap(100, 8.0))
    assert "100 q/s" in frame


# -- progress bar ----------------------------------------------------------


def test_progress_bar_cached_aware_eta():
    from repro.exec.progress import ProgressBar, SweepEvent

    buf = io.StringIO()
    bar = ProgressBar(stream=buf, width=10)
    bar(SweepEvent("sweep_start", 0.0, total=40))
    for i in range(1, 6):  # five cache hits, effectively instant
        bar(SweepEvent("point_done", 0.0, done=i, total=40, detail="cached"))
    for i in range(6, 13):  # seven simulated points, 6 s elapsed
        bar(SweepEvent("point_done", (i - 5) * 6.0 / 7, done=i, total=40))
    line = bar.render(SweepEvent("point_done", 6.0, done=12, total=40))
    assert "12/40 done (5 cached)" in line
    # ETA from simulated cost only: 6s / 7 simulated × 28 left = 24s,
    # NOT 6s / 12 done × 28 = 14s (cache hits must not shrink the ETA).
    assert "eta 24s" in line
    bar(SweepEvent("sweep_end", 30.0, done=40, total=40))
    out = buf.getvalue()
    assert out.endswith("\n")
    assert "40/40 done" in out


def test_progress_bar_resets_between_sweeps():
    from repro.exec.progress import ProgressBar, SweepEvent

    bar = ProgressBar(stream=io.StringIO())
    bar(SweepEvent("point_done", 1.0, done=1, total=2, detail="cached"))
    assert bar.cached == 1
    bar(SweepEvent("sweep_start", 0.0, total=2))
    assert bar.cached == 0


# -- history ---------------------------------------------------------------


def _bench_report(stamp, warm_p50, mean=1.0, ci_hi=1.2):
    return {
        "meta": {"timestamp": stamp},
        "placement_service": {"warm_p50_s": warm_p50},
        "fig1": {
            "speedup": 2.0,
            "stats": [
                {"implementation": "openmp", "cores": 8,
                 "mean": mean, "ci_lo": 0.9, "ci_hi": ci_hi},
            ],
        },
    }


def test_history_single_report_is_green(tmp_path):
    p = tmp_path / "BENCH_a.json"
    p.write_text(json.dumps(_bench_report("2026-01-01T00:00:00", 1e-4)))
    reports = load_reports(directory=str(tmp_path), baseline=None)
    assert len(reports) == 1
    result = history_report(reports)
    assert result["ok"]
    assert all(h["verdict"] == "ok" for h in result["headlines"])
    assert "trajectory green" in render_history(result)


def test_history_flags_latency_drift(tmp_path):
    """A 30% warm-p50 inflation in the newer half must be flagged."""
    for i in range(8):
        warm = 1e-4 if i < 4 else 1.3e-4  # +30% > 25% threshold
        p = tmp_path / f"BENCH_{i}.json"
        p.write_text(
            json.dumps(_bench_report(f"2026-01-0{i + 1}T00:00:00", warm))
        )
    reports = load_reports(directory=str(tmp_path), baseline=None)
    result = history_report(reports, threshold=0.25)
    assert not result["ok"]
    drifted = {
        f"{h['section']}.{h['metric']}"
        for h in result["headlines"]
        if h["verdict"] == "drift"
    }
    assert drifted == {"placement_service.warm_p50_s"}
    assert any("warm_p50_s" in d for d in result["drifts"])


def test_history_noise_without_effect_is_green(tmp_path):
    # alternating values: big relative medians stay flat, delta ~ 0
    for i, warm in enumerate([1e-4, 1.3e-4] * 4):
        p = tmp_path / f"BENCH_{i}.json"
        p.write_text(
            json.dumps(_bench_report(f"2026-01-0{i + 1}T00:00:00", warm))
        )
    reports = load_reports(directory=str(tmp_path), baseline=None)
    assert history_report(reports, threshold=0.25)["ok"]


def test_history_stats_rows_ci_band_gate(tmp_path):
    rows = [
        _bench_report("2026-01-01T00:00:00", 1e-4, mean=1.0, ci_hi=1.1),
        _bench_report("2026-01-02T00:00:00", 1e-4, mean=1.5, ci_hi=1.6),
    ]
    for i, r in enumerate(rows):
        (tmp_path / f"BENCH_{i}.json").write_text(json.dumps(r))
    reports = load_reports(directory=str(tmp_path), baseline=None)
    result = history_report(reports, threshold=0.25)
    row = next(r for r in result["stats_rows"] if r["key"] == "fig1 openmp@8")
    # 1.5 > 1.1 × 1.25 = 1.375 → drift against the oldest CI band
    assert row["verdict"] == "drift"
    assert not result["ok"]


def test_load_reports_skips_garbage(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{truncated")
    (tmp_path / "BENCH_nometa.json").write_text('{"fig1": {}}')
    good = tmp_path / "BENCH_ok.json"
    good.write_text(json.dumps(_bench_report("2026-01-01T00:00:00", 1e-4)))
    reports = load_reports(directory=str(tmp_path), baseline=None)
    assert [r["meta"]["_source"] for r in reports] == [str(good)]
    assert MIN_SERIES >= 2


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"
    line = sparkline([0.0, 0.5, 1.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)), width=24)) == 24


# -- place serve verbs -----------------------------------------------------


@pytest.fixture
def _serve_parts(paper_topo_small):
    from repro.comm import patterns
    from repro.placement.service import PlacementService

    matrix = patterns.stencil_2d(4, 4, edge_volume=100.0)
    service = PlacementService(paper_topo_small)
    return service, paper_topo_small, matrix


def test_serve_health_verb(_serve_parts):
    from repro.tools.place import serve_request

    service, topo, matrix = _serve_parts
    service.query_sync(matrix)
    health = serve_request(service, topo, matrix, '{"op": "health"}')
    assert health["status"] == "ok"
    assert health["queries_served"] == 1
    assert health["uptime_s"] >= 0.0
    assert health["last_error"] is None

    bad = serve_request(service, topo, matrix, '{"op": "query", "mode": "bogus"}')
    assert "error" in bad
    degraded = serve_request(service, topo, matrix, '{"op": "health"}')
    assert degraded["status"] == "degraded"
    assert degraded["last_error"] and degraded["last_error_age_s"] >= 0.0


def test_serve_metrics_verb(_serve_parts):
    from repro.tools.place import serve_request

    core.enable()
    service, topo, matrix = _serve_parts
    service.query_sync(matrix)
    service.query_sync(matrix)
    out = serve_request(service, topo, matrix, '{"op": "metrics"}')
    assert out["enabled"] is True
    assert out["metrics"]["placement_queries_total"]["value"] == 2
    assert out["slo"]["warm"]["count"] == 1
    assert out["slo"]["warm"]["p50_s"] > 0.0
    # line-JSON contract: the response must be one json.dumps-able dict
    json.dumps(out)


def test_serve_malformed_request_keeps_server_alive(_serve_parts):
    from repro.tools.place import serve_request

    service, topo, matrix = _serve_parts
    out = serve_request(service, topo, matrix, "not json at all")
    assert "error" in out
    out = serve_request(service, topo, matrix, '{"op": "mystery"}')
    assert out == {"error": "unknown op 'mystery'"}
    assert serve_request(service, topo, matrix, '{"op": "query"}')["mapping"]


# -- HTTP endpoint ---------------------------------------------------------


def test_metrics_http_server():
    from repro.metrics.httpd import MetricsServer

    reg = MetricRegistry()
    reg.counter("req_total", "Requests").inc(5)
    health = {"status": "ok", "queries_served": 5}
    with MetricsServer(0, registry=reg, health_fn=lambda: health) as srv:
        with urllib.request.urlopen(f"{srv.url}/metrics") as resp:
            assert resp.status == 200
            assert "version=0.0.4" in resp.headers["Content-Type"]
            body = resp.read().decode()
        parsed = parse_exposition(body)
        assert ("", {}, 5.0) in parsed["req_total"]["samples"]
        with urllib.request.urlopen(f"{srv.url}/healthz") as resp:
            assert json.loads(resp.read()) == health
        health["status"] = "degraded"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{srv.url}/healthz")
        assert err.value.code == 503
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{srv.url}/other")
        assert err.value.code == 404
