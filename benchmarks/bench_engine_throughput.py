"""Batched engine dispatch must be >= 10x scalar on the paper preset.

The batched engine (``Engine(mode="batched")``, the default) pops
same-timestamp event cohorts from the heap in one step and releases
barrier-style waiter sets as one array operation instead of N heap
pushes.  This benchmark pins the payoff on the workload the refactor
targets: barrier rounds on the paper's 192-PU SMP, where every round
wakes one waiter per PU at the same timestamp.

The schedule is pre-loaded (waiters registered and events fired during
setup) so the timed region is ``engine.run()`` alone — pure event
dispatch throughput, the quantity the engine refactor optimizes.  The
scalar reference then drains ROUNDS x WIDTH individual heap entries
while the batched engine drains ROUNDS cohorts; both must agree on
``events_fired`` and the final clock, so the speedup cannot come from
doing less work.

Best-of-N timing (not mean) to shed scheduler noise on shared CI boxes.
"""

import time

from repro.simulate.engine import Engine, SimEvent
from repro.topology import presets

PRESET = "paper-smp"
ROUNDS = 500
TIMING_ROUNDS = 3
MIN_SPEEDUP = 10.0


def build_barrier_schedule(mode: str, width: int) -> Engine:
    """Pre-load ROUNDS barrier wakeups of *width* waiters each."""
    eng = Engine(mode=mode)
    waiters = [lambda: None for _ in range(width)]
    for r in range(ROUNDS):
        ev = SimEvent(eng, "barrier")
        for cb in waiters:
            ev.wait(cb)
        ev.fire(delay=float(r))
    return eng


def drain_throughput(mode: str, width: int) -> tuple[float, Engine]:
    """Best-of-N events/second for draining the pre-loaded schedule."""
    best = 0.0
    eng = Engine(mode=mode)
    for _ in range(TIMING_ROUNDS):
        eng = build_barrier_schedule(mode, width)
        t0 = time.perf_counter()
        eng.run()
        wall = time.perf_counter() - t0
        best = max(best, eng.events_fired / wall)
    return best, eng


def test_batched_dispatch_speedup(benchmark):
    width = presets.by_name(PRESET).nb_pus
    # Warm both paths (imports, bytecode) before timing anything.
    build_barrier_schedule("scalar", 4).run()
    build_barrier_schedule("batched", 4).run()

    scalar_eps, scalar_eng = drain_throughput("scalar", width)

    def timed() -> float:
        eps, eng = drain_throughput("batched", width)
        # Identity contract: same events, same final clock.
        assert eng.events_fired == scalar_eng.events_fired
        assert eng.now == scalar_eng.now
        assert eng.pending == 0
        return eps

    batched_eps = benchmark.pedantic(timed, rounds=1, iterations=1)
    speedup = batched_eps / scalar_eps
    benchmark.extra_info["width_pus"] = width
    benchmark.extra_info["scalar_events_per_s"] = scalar_eps
    benchmark.extra_info["batched_events_per_s"] = batched_eps
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_SPEEDUP, (
        f"batched dispatch only {speedup:.1f}x scalar "
        f"(scalar {scalar_eps:,.0f} ev/s, batched {batched_eps:,.0f} ev/s); "
        f"contract requires >= {MIN_SPEEDUP}x on {PRESET}"
    )
