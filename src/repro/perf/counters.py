"""Simulated PMU counters: LIKWID-style derived metric groups.

Real locality work leans on hardware counter groups — LIKWID's
``likwid-perfctr -g MEM`` / ``-g NUMA`` turn raw PMU events into a
handful of derived metrics (bandwidth, stall fraction, remote-traffic
ratio) that make placement effects legible.  The simulator has no PMU,
but it has something better: the complete span stream.  This module
computes the same *shape* of report — named groups of derived metrics —
purely from trace spans, no new instrumentation.

Groups
------
``CPU``
    PU occupation: busy seconds, per-PU utilization (avg/min/max),
    average parallelism, load imbalance (peak vs mean busy PU).
``STALL``
    Where threads were not making progress: lock-wait and run-queue
    seconds, the stall fraction of total thread-seconds.
``MEM``
    Traffic by sharing level: bytes, achieved bandwidth (bytes over
    transfer-seconds, contention included), stream rate (bytes over
    makespan).
``NUMA``
    Locality: node-local vs remote bytes, local fraction, remote
    stream rate.
``SCHED``
    OS-scheduler model: migrations, migration rate, cache-refill
    penalty seconds and their share of compute.

All metrics are pure functions of the event stream (plus optionally the
PU/node counts of the topology, for "PUs used / PUs total" style
ratios), so they are deterministic and comparable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.observe.tracer import TraceEvent
from repro.perf.spans import WORK_KINDS, TraceIndex, ensure_index

#: Sharing levels (``TraceEvent.level``) that keep traffic inside one
#: NUMA node.  Mirrors ``MachineMetrics.remote_bytes``: only GROUP and
#: MACHINE transfers cross a node boundary.
LOCAL_LEVELS = frozenset(
    {"NUMANODE", "PACKAGE", "L3", "L2", "L1", "CORE", "PU"}
)


@dataclass(frozen=True)
class Metric:
    """One derived metric: a name, a value, and the unit it is in."""

    name: str
    value: float
    unit: str = ""

    def to_json_pair(self) -> tuple[str, dict]:
        return self.name, {"value": self.value, "unit": self.unit}


@dataclass(frozen=True)
class CounterGroup:
    """A named group of derived metrics (one LIKWID-style table)."""

    name: str
    title: str
    metrics: tuple[Metric, ...]

    def get(self, name: str) -> float:
        for m in self.metrics:
            if m.name == name:
                return m.value
        raise KeyError(f"no metric {name!r} in group {self.name}")

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "title": self.title,
            # A list, not a name-keyed dict: metric order is part of the
            # rendering contract and must survive sort_keys round trips.
            "metrics": [
                {"name": m.name, "value": m.value, "unit": m.unit}
                for m in self.metrics
            ],
        }

    def render(self) -> str:
        head = f"Group {self.name} — {self.title}"
        width = max([len(m.name) for m in self.metrics] + [24])
        lines = [head, "-" * len(head)]
        for m in self.metrics:
            if m.unit == "%":
                val = f"{m.value:.2%}".replace("%", " %")
            else:
                val = f"{m.value:.6g}" + (f" {m.unit}" if m.unit else "")
            lines.append(f"  {m.name:<{width}} {val}")
        return "\n".join(lines)


def _pct(num: float, den: float) -> float:
    return num / den if den > 0 else 0.0


def compute_counter_groups(
    events: "Sequence[TraceEvent] | TraceIndex",
    n_pus: Optional[int] = None,
    n_nodes: Optional[int] = None,
) -> list[CounterGroup]:
    """Derive all counter groups from one run's event stream."""
    idx = ensure_index(events)
    makespan = idx.makespan
    busy_by_pu: dict[int, float] = {}
    wait = runq = 0.0
    bytes_by_level: dict[str, float] = {}
    secs_by_level: dict[str, float] = {}
    n_migrations = 0
    migration_penalty = 0.0
    compute_secs = transfer_secs = 0.0

    for ev in idx.spans:
        if ev.kind in WORK_KINDS:
            if ev.pu >= 0:
                busy_by_pu[ev.pu] = busy_by_pu.get(ev.pu, 0.0) + ev.dur
            if ev.kind == "compute":
                compute_secs += ev.dur
            else:
                transfer_secs += ev.dur
                level = ev.level or "?"
                bytes_by_level[level] = bytes_by_level.get(level, 0.0) + ev.nbytes
                secs_by_level[level] = secs_by_level.get(level, 0.0) + ev.dur
        elif ev.kind == "wait":
            wait += ev.dur
        elif ev.kind == "runq":
            runq += ev.dur

    # Migration instants are not spans, so scan the raw stream if we
    # have it (an index built elsewhere has already dropped them).
    if not isinstance(events, TraceIndex):
        for ev in events:
            if ev.kind == "migration":
                n_migrations += 1
                migration_penalty += ev.dur

    pus_used = len(busy_by_pu)
    pus_total = n_pus if n_pus is not None else pus_used
    busy_total = idx.work_time
    utils = sorted(_pct(b, makespan) for b in busy_by_pu.values())
    avg_util = _pct(busy_total, makespan * pus_total) if pus_total else 0.0
    thread_seconds = idx.serial_time

    groups = [
        CounterGroup(
            "CPU",
            "PU occupation",
            (
                Metric("busy seconds (all PUs)", busy_total, "s"),
                Metric("makespan", makespan, "s"),
                Metric("PUs used", float(pus_used)),
                Metric("PUs total", float(pus_total)),
                Metric("utilization avg (of total PUs)", avg_util, "%"),
                Metric("utilization min (used PUs)",
                       utils[0] if utils else 0.0, "%"),
                Metric("utilization max (used PUs)",
                       utils[-1] if utils else 0.0, "%"),
                Metric("avg parallelism", _pct(busy_total, makespan)),
                Metric(
                    "load imbalance (peak/mean - 1)",
                    _pct(utils[-1], sum(utils) / len(utils)) - 1.0
                    if utils else 0.0,
                    "%",
                ),
            ),
        ),
        CounterGroup(
            "STALL",
            "lock waits and run-queue time",
            (
                Metric("lock-wait seconds", wait, "s"),
                Metric("runq seconds", runq, "s"),
                Metric("thread-seconds total", thread_seconds, "s"),
                Metric("stall fraction", _pct(wait + runq, thread_seconds), "%"),
                Metric("runq share of stalls", _pct(runq, wait + runq), "%"),
            ),
        ),
    ]

    mem_metrics: list[Metric] = []
    total_bytes = sum(bytes_by_level.values())
    for level in sorted(bytes_by_level):
        nbytes = bytes_by_level[level]
        secs = secs_by_level.get(level, 0.0)
        mem_metrics.append(Metric(f"bytes [{level}]", nbytes, "B"))
        mem_metrics.append(
            Metric(f"bandwidth [{level}]", _pct(nbytes, secs) / 1e9, "GB/s")
        )
        mem_metrics.append(
            Metric(f"stream rate [{level}]", _pct(nbytes, makespan) / 1e9, "GB/s")
        )
    mem_metrics.append(Metric("bytes total", total_bytes, "B"))
    mem_metrics.append(
        Metric("bandwidth total", _pct(total_bytes, transfer_secs) / 1e9, "GB/s")
    )
    groups.append(CounterGroup("MEM", "traffic by sharing level",
                               tuple(mem_metrics)))

    local_bytes = sum(
        v for lv, v in bytes_by_level.items() if lv in LOCAL_LEVELS
    )
    remote_bytes = total_bytes - local_bytes
    groups.append(
        CounterGroup(
            "NUMA",
            "locality of traffic",
            (
                Metric("node-local bytes", local_bytes, "B"),
                Metric("remote bytes", remote_bytes, "B"),
                Metric("local fraction",
                       _pct(local_bytes, total_bytes) if total_bytes else 1.0,
                       "%"),
                Metric("remote stream rate",
                       _pct(remote_bytes, makespan) / 1e9, "GB/s"),
                Metric("nodes", float(n_nodes) if n_nodes is not None else 0.0),
            ),
        )
    )

    groups.append(
        CounterGroup(
            "SCHED",
            "OS-scheduler model",
            (
                Metric("migrations", float(n_migrations)),
                Metric("migration rate", _pct(n_migrations, makespan), "1/s"),
                Metric("migration penalty seconds", migration_penalty, "s"),
                Metric("penalty share of work",
                       _pct(migration_penalty, busy_total), "%"),
            ),
        )
    )
    return groups


def render_counter_groups(groups: Sequence[CounterGroup]) -> str:
    return "\n\n".join(g.render() for g in groups)
