"""Placement reports: human-readable summaries of a bind plan.

Produces the diagnostics a user of the add-on would want before trusting
a mapping: per-NUMA-node and per-package occupancy, the locality scores
from :mod:`repro.treematch.cost`, a side-by-side comparison table of
several policies on the same program/topology, and — after a simulated
run — the measured per-sharing-level traffic breakdown
(:func:`render_traffic_report`), the paper's Fig. 1 argument as a table.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Sequence

from repro.comm.matrix import CommMatrix
from repro.topology.objects import ObjType
from repro.topology.tree import Topology
from repro.treematch import cost as cost_mod
from repro.treematch.mapping import Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulate.metrics import MachineMetrics


def occupancy_by_type(
    mapping: Mapping, topo: Topology, type_: ObjType
) -> dict[int, int]:
    """Thread count per object of *type_* (keyed by logical index).

    Unbound threads are not counted.  Objects with zero threads are
    included so gaps are visible.
    """
    counts: Counter = Counter()
    for t in range(mapping.n_threads):
        pu = mapping.pu(t)
        if pu < 0:
            continue
        obj = topo.pu_by_os_index(pu)
        for anc in (obj, *obj.ancestors()):
            if anc.type is type_:
                counts[anc.logical_index] += 1
                break
    return {
        o.logical_index: counts.get(o.logical_index, 0)
        for o in topo.objects_by_type(type_)
    }


def balance_score(mapping: Mapping, topo: Topology, type_: ObjType) -> float:
    """Load balance across objects of *type_*: mean/max occupancy.

    1.0 = perfectly even; approaches 0 when one object holds everything.
    Returns 1.0 when nothing is bound or the level is absent.
    """
    occ = occupancy_by_type(mapping, topo, type_)
    if not occ:
        return 1.0
    values = list(occ.values())
    peak = max(values)
    if peak == 0:
        return 1.0
    return (sum(values) / len(values)) / peak


def render_report(
    mapping: Mapping,
    matrix: CommMatrix,
    topo: Topology,
    title: str = "",
) -> str:
    """Multi-line placement report for one mapping."""
    lines: list[str] = []
    head = title or f"Placement report — policy {mapping.policy or 'unknown'}"
    lines.append(head)
    lines.append("=" * len(head))
    lines.append(
        f"threads: {mapping.n_threads}  bound: {mapping.bound_fraction():.0%}  "
        f"max PU load: {mapping.max_load()}"
    )
    scores = cost_mod.score_report(mapping, matrix, topo)
    lines.append(
        "locality: hop-bytes={hop_bytes:.4g}  numa-cut={numa_cut:.4g}  "
        "cache-share={cache_share_fraction:.1%}  est-comm-time={comm_time_estimate:.4g}s".format(
            **scores
        )
    )
    for type_ in (ObjType.NUMANODE, ObjType.PACKAGE):
        occ = occupancy_by_type(mapping, topo, type_)
        if not occ:
            continue
        bal = balance_score(mapping, topo, type_)
        dist = " ".join(str(occ[k]) for k in sorted(occ))
        lines.append(f"{type_.name.lower()} occupancy (balance {bal:.2f}): {dist}")
    return "\n".join(lines)


def traffic_by_level(metrics: "MachineMetrics") -> list[dict]:
    """Measured traffic rows, one per sharing level, nearest first.

    Each row: ``{"level", "bytes", "seconds", "share", "bandwidth"}``
    where *share* is the level's fraction of total bytes and *bandwidth*
    the effective bytes/second the transfers at that level achieved
    (contention included).  Levels are ordered from the closest sharing
    (CORE/L1) outward to MACHINE, mirroring the hierarchy of Fig. 1.
    """
    order = {t: i for i, t in enumerate(ObjType)}
    total = metrics.total_bytes
    rows = []
    levels = set(metrics.bytes_by_level) | set(metrics.transfer_time_by_level)
    for level in sorted(levels, key=lambda lv: order[lv], reverse=True):
        nbytes = float(metrics.bytes_by_level.get(level, 0))
        seconds = float(metrics.transfer_time_by_level.get(level, 0.0))
        rows.append(
            {
                "level": level.name,
                "bytes": nbytes,
                "seconds": seconds,
                "share": nbytes / total if total else 0.0,
                "bandwidth": nbytes / seconds if seconds else 0.0,
            }
        )
    return rows


def render_traffic_report(metrics: "MachineMetrics", title: str = "") -> str:
    """Per-sharing-level traffic table for one simulated run.

    This is the observable the paper's whole argument rests on: *where*
    in the memory hierarchy the bytes moved.  Bound placements push
    traffic toward the top rows (shared caches, local DRAM); unbound
    ones leak it to GROUP/MACHINE.
    """
    head = title or "Traffic by sharing level"
    lines = [head, "=" * len(head)]
    lines.append(
        f"{'level':<10} {'bytes':>14} {'share':>7} {'seconds':>12} {'GB/s':>8}"
    )
    for row in traffic_by_level(metrics):
        lines.append(
            f"{row['level']:<10} {row['bytes']:>14.6g} {row['share']:>7.1%} "
            f"{row['seconds']:>12.6g} {row['bandwidth'] / 1e9:>8.2f}"
        )
    lines.append(
        f"total: {metrics.total_bytes:.6g} bytes, "
        f"{metrics.local_fraction:.1%} NUMA-local, "
        f"{metrics.transfers} transfers "
        f"({metrics.contended_transfers} contended)"
    )
    return "\n".join(lines)


def compare_policies(
    mappings: Sequence[Mapping],
    matrix: CommMatrix,
    topo: Topology,
) -> str:
    """Tabular comparison of several mappings on the same input."""
    header = (
        f"{'policy':<14} {'hop-bytes':>12} {'numa-cut':>12} "
        f"{'cache-share':>12} {'est-time(s)':>12} {'max-load':>9}"
    )
    rows = [header, "-" * len(header)]
    for mp in mappings:
        s = cost_mod.score_report(mp, matrix, topo)
        rows.append(
            f"{mp.policy or '?':<14} {s['hop_bytes']:>12.4g} {s['numa_cut']:>12.4g} "
            f"{s['cache_share_fraction']:>12.1%} {s['comm_time_estimate']:>12.4g} "
            f"{int(s['max_load']):>9}"
        )
    return "\n".join(rows)
