"""ORWL locations: the model's abstraction of a shared resource.

"These resources are abstracted in the ORWL model by the notion of
*location*."  A location owns:

* an :class:`~repro.orwl.fifo.OrwlFifo` ordering all accesses,
* a payload size in bytes (what a reader physically pulls),
* provenance: which operation/thread last wrote it (so the simulator can
  price the read transfer by producer→consumer distance, and the tracer
  can accumulate the communication matrix).
"""

from __future__ import annotations

from typing import Callable

from repro.orwl.fifo import OrwlFifo, Request
from repro.util.validate import ValidationError


class Location:
    """A named shared resource with FIFO-ordered read/write access.

    Parameters
    ----------
    name:
        Unique name within the program (e.g. ``"block3.4/north"``).
    nbytes:
        Payload size: how many bytes a reader transfers from the last
        writer.  May be 0 for pure-synchronization locations.
    owner_task:
        Name of the task whose control thread manages this location's
        FIFO (ORWL locations are hosted by the task that declares them).
    """

    def __init__(
        self,
        name: str,
        nbytes: float,
        owner_task: str = "",
        affinity_bytes: float | None = None,
    ) -> None:
        if not name:
            raise ValidationError("location needs a non-empty name")
        if nbytes < 0:
            raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
        if affinity_bytes is not None and affinity_bytes < 0:
            raise ValidationError(f"affinity_bytes must be >= 0, got {affinity_bytes}")
        self.name = name
        self.nbytes = float(nbytes)
        #: weight used by the *static* affinity extraction (defaults to
        #: nbytes).  Lets a program express that the threads around a
        #: location share more memory than the exported payload itself —
        #: e.g. a frontier-export sub-operation reads its slice out of
        #: the task's full block buffer, so its affinity to the writer is
        #: the block footprint, not the few-KB frontier.
        self.affinity_bytes = float(affinity_bytes) if affinity_bytes is not None else None
        self.owner_task = owner_task
        self.fifo = OrwlFifo(name=name)
        #: thread id (simulator tid) of the last writer, -1 if never written.
        self.last_writer_tid: int = -1
        #: op name of the last writer ("" if never written).
        self.last_writer_op: str = ""
        #: number of completed writes (payload version).
        self.version: int = 0

    def set_grant_callback(self, cb: Callable[[Request], None]) -> None:
        """Install the runtime's grant-routing callback (pre-run)."""
        self.fifo._on_grant = cb

    def note_write(self, tid: int, op_name: str) -> None:
        """Record provenance after a write release."""
        self.last_writer_tid = tid
        self.last_writer_op = op_name
        self.version += 1

    def __repr__(self) -> str:
        return (
            f"<Location {self.name!r} {self.nbytes:g}B v{self.version} "
            f"fifo={len(self.fifo)}>"
        )
