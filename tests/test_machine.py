"""Tests for the simulated machine: compute, transfers, scheduling."""

import pytest

from repro.simulate.contention import ContentionConfig, ContentionModel
from repro.simulate.engine import SimulationError
from repro.simulate.machine import Machine, ThreadState
from repro.simulate.metrics import MachineMetrics
from repro.simulate.scheduler import OsScheduler, SchedulerConfig
from repro.simulate.syscalls import Compute, Receive, ReceiveFromNode, Wait, Yield
from repro.topology.builder import flat_topology
from repro.topology.objects import ObjType


def run_single(topo, body, bound=0, **kw):
    m = Machine(topo, seed=0, **kw)
    tid = m.add_thread("t", bound_pu_os=bound)
    m.set_body(tid, body(m, tid))
    return m, m.run()


class TestCompute:
    def test_single_compute_advances_clock(self, small_topo):
        def body(m, tid):
            yield Compute(1.5)

        _, t = run_single(small_topo, body)
        assert t == pytest.approx(1.5)

    def test_computes_serialize_on_same_pu(self, small_topo):
        m = Machine(small_topo, seed=0)
        for k in range(2):
            tid = m.add_thread(f"t{k}", bound_pu_os=0)
            m.set_body(tid, iter([Compute(1.0)]))
        assert m.run() == pytest.approx(2.0)

    def test_computes_parallel_on_distinct_pus(self, small_topo):
        m = Machine(small_topo, seed=0)
        for k in range(2):
            tid = m.add_thread(f"t{k}", bound_pu_os=k)
            m.set_body(tid, iter([Compute(1.0)]))
        assert m.run() == pytest.approx(1.0)

    def test_compute_jitter_changes_duration(self, small_topo):
        def body(m, tid):
            yield Compute(1.0)

        _, t = run_single(small_topo, body, compute_jitter=0.1)
        assert t != pytest.approx(1.0)
        assert 0.9 <= t <= 1.1

    def test_invalid_jitter_rejected(self, small_topo):
        with pytest.raises(ValueError):
            Machine(small_topo, compute_jitter=1.5)

    def test_compute_metric_recorded(self, small_topo):
        def body(m, tid):
            yield Compute(2.0)

        m, _ = run_single(small_topo, body)
        assert m.metrics.compute_time == pytest.approx(2.0)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_seconds_for_flops(self, small_topo):
        m = Machine(small_topo, core_rate=1e9)
        assert m.seconds_for_flops(2e9) == pytest.approx(2.0)


class TestTransfers:
    def test_receive_cost_scales_with_distance(self, small_topo):
        times = {}
        for dst, key in [(1, "near"), (4, "far")]:
            m = Machine(small_topo, seed=0)
            t_prod = m.add_thread("p", bound_pu_os=0)
            t_cons = m.add_thread("c", bound_pu_os=dst)
            ev = m.new_event()

            def producer():
                yield Compute(1e-6)
                ev.fire()

            def consumer():
                yield Wait(ev)
                yield Receive(t_prod, 1 << 20)

            m.set_body(t_prod, producer())
            m.set_body(t_cons, consumer())
            times[key] = m.run()
        assert times["far"] > times["near"]

    def test_receive_records_level_bytes(self, small_topo):
        m = Machine(small_topo, seed=0)
        t_prod = m.add_thread("p", bound_pu_os=0)
        t_cons = m.add_thread("c", bound_pu_os=4)
        ev = m.new_event()

        def producer():
            yield Compute(1e-6)
            ev.fire()

        def consumer():
            yield Wait(ev)
            yield Receive(t_prod, 4096)

        m.set_body(t_prod, producer())
        m.set_body(t_cons, consumer())
        m.run()
        assert m.metrics.bytes_by_level[ObjType.MACHINE] == 4096
        assert m.metrics.remote_bytes == 4096

    def test_receive_unknown_producer_rejected(self, small_topo):
        def body(m, tid):
            yield Receive(99, 10)

        with pytest.raises(SimulationError):
            run_single(small_topo, body)

    def test_receive_from_node_local_vs_remote(self, small_topo):
        times = {}
        for node, key in [(0, "local"), (1, "remote")]:
            def body(m, tid, node=node):
                yield ReceiveFromNode(node, 1 << 20)

            _, t = run_single(small_topo, body, bound=0)
            times[key] = t
        assert times["remote"] > times["local"]

    def test_receive_from_node_local_counts_numanode(self, small_topo):
        def body(m, tid):
            yield ReceiveFromNode(0, 4096)

        m, _ = run_single(small_topo, body, bound=0)
        assert m.metrics.bytes_by_level[ObjType.NUMANODE] == 4096
        assert m.metrics.remote_bytes == 0.0

    def test_receive_from_invalid_node(self, small_topo):
        def body(m, tid):
            yield ReceiveFromNode(7, 10)

        with pytest.raises(SimulationError):
            run_single(small_topo, body)

    def test_receive_from_node_uma_machine(self):
        t = flat_topology(4)

        def body(m, tid):
            yield ReceiveFromNode(0, 4096)

        m, time = run_single(t, body)
        assert time > 0
        assert m.metrics.total_bytes == 4096

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            Receive(0, -5)
        with pytest.raises(ValueError):
            ReceiveFromNode(0, -5)


class TestWaitYield:
    def test_wait_blocks_until_fire(self, small_topo):
        m = Machine(small_topo, seed=0)
        ev = m.new_event()
        t0 = m.add_thread("w", bound_pu_os=0)
        t1 = m.add_thread("f", bound_pu_os=1)

        def waiter():
            yield Wait(ev)
            yield Compute(1.0)

        def firer():
            yield Compute(2.0)
            ev.fire()

        m.set_body(t0, waiter())
        m.set_body(t1, firer())
        assert m.run() == pytest.approx(3.0)
        assert m.metrics.wait_time == pytest.approx(2.0)

    def test_yield_lets_queued_thread_run(self, small_topo):
        m = Machine(small_topo, seed=0)
        t0 = m.add_thread("a", bound_pu_os=0)
        t1 = m.add_thread("b", bound_pu_os=0)
        log = []

        def a():
            log.append("a1")
            yield Yield()
            log.append("a2")
            yield Compute(0.1)

        def b():
            log.append("b1")
            yield Compute(0.1)

        m.set_body(t0, a())
        m.set_body(t1, b())
        m.run()
        assert log == ["a1", "b1", "a2"]

    def test_deadlock_detected(self, small_topo):
        m = Machine(small_topo, seed=0)
        ev = m.new_event()
        tid = m.add_thread("stuck", bound_pu_os=0)

        def body():
            yield Wait(ev)

        m.set_body(tid, body())
        with pytest.raises(SimulationError, match="deadlock"):
            m.run()

    def test_non_syscall_yield_rejected(self, small_topo):
        def body(m, tid):
            yield "not a syscall"

        with pytest.raises(SimulationError):
            run_single(small_topo, body)


class TestLifecycle:
    def test_body_required(self, small_topo):
        m = Machine(small_topo, seed=0)
        m.add_thread("t", bound_pu_os=0)
        with pytest.raises(SimulationError, match="no body"):
            m.run()

    def test_double_run_rejected(self, small_topo):
        m = Machine(small_topo, seed=0)
        tid = m.add_thread("t", bound_pu_os=0)
        m.set_body(tid, iter([]))
        m.run()
        with pytest.raises(SimulationError):
            m.run()

    def test_add_thread_after_run_rejected(self, small_topo):
        m = Machine(small_topo, seed=0)
        tid = m.add_thread("t", bound_pu_os=0)
        m.set_body(tid, iter([]))
        m.run()
        with pytest.raises(SimulationError):
            m.add_thread("late")

    def test_double_body_rejected(self, small_topo):
        m = Machine(small_topo, seed=0)
        tid = m.add_thread("t", bound_pu_os=0)
        m.set_body(tid, iter([]))
        with pytest.raises(SimulationError):
            m.set_body(tid, iter([]))

    def test_unknown_bound_pu_rejected(self, small_topo):
        m = Machine(small_topo, seed=0)
        with pytest.raises(SimulationError):
            m.add_thread("t", bound_pu_os=99)

    def test_thread_state_done_after_run(self, small_topo):
        m = Machine(small_topo, seed=0)
        tid = m.add_thread("t", bound_pu_os=0)
        m.set_body(tid, iter([Compute(0.1)]))
        m.run()
        assert m.thread(tid).state is ThreadState.DONE

    def test_node_of_thread(self, small_topo):
        m = Machine(small_topo, seed=0)
        t0 = m.add_thread("a", bound_pu_os=0)
        t1 = m.add_thread("b", bound_pu_os=5)
        m.set_body(t0, iter([]))
        m.set_body(t1, iter([]))
        assert m.node_of_thread(t0) == -1  # not placed yet
        m.run()
        assert m.node_of_thread(t0) == 0
        assert m.node_of_thread(t1) == 1


class TestUnboundThreads:
    def test_unbound_threads_spread(self, small_topo):
        m = Machine(small_topo, seed=0)
        tids = [m.add_thread(f"t{k}") for k in range(8)]
        for tid in tids:
            m.set_body(tid, iter([Compute(1.0)]))
        total = m.run()
        # Least-loaded initial placement: 8 threads on 8 PUs in parallel.
        assert total == pytest.approx(1.0)

    def test_unbound_migration_possible(self, small_topo):
        m = Machine(
            small_topo,
            seed=1,
            scheduler=SchedulerConfig(
                migration_quantum=0.01, migration_prob=1.0, imbalance_threshold=1e9
            ),
        )
        tid = m.add_thread("t")
        m.set_body(tid, iter([Compute(0.05) for _ in range(10)]))
        m.run()
        assert m.metrics.migrations > 0
        assert m.metrics.migration_penalty_time > 0

    def test_bound_thread_never_migrates(self, small_topo):
        m = Machine(
            small_topo,
            seed=1,
            scheduler=SchedulerConfig(migration_quantum=0.01, migration_prob=1.0),
        )
        tid = m.add_thread("t", bound_pu_os=3)
        m.set_body(tid, iter([Compute(0.05) for _ in range(10)]))
        m.run()
        assert m.metrics.migrations == 0

    def test_pull_balancing_resolves_pileup(self, small_topo):
        """Two unbound compute threads must not share a PU for long."""
        m = Machine(small_topo, seed=2)
        # Force both to start on the same PU via a degenerate scheduler
        # state: bind one, leave one unbound starting anywhere; the
        # unbound one should be pulled away from busy PUs at work start.
        tids = [m.add_thread(f"t{k}") for k in range(16)]
        for tid in tids:
            m.set_body(tid, iter([Compute(0.1) for _ in range(4)]))
        total = m.run()
        # 16 threads x 4 bursts of 0.1s on 8 PUs = 6.4s of work, perfect
        # packing = 0.8s; allow some slack but far below serialization.
        assert total < 1.2

    def test_priority_thread_preempts(self, small_topo):
        m = Machine(small_topo, seed=0)
        t0 = m.add_thread("heavy", bound_pu_os=0)
        t1 = m.add_thread("ctl", bound_pu_os=0, priority=True)
        ev = m.new_event()
        done_time = []

        def heavy():
            ev.fire()
            yield Compute(10.0)

        def ctl():
            yield Wait(ev)
            yield Compute(0.001)
            done_time.append(m.engine.now)

        m.set_body(t0, heavy())
        m.set_body(t1, ctl())
        m.run()
        # The priority thread finished long before the 10 s burst ended.
        assert done_time[0] < 0.1


class TestContentionModel:
    def test_slowdown_grows_with_inflight(self):
        c = ContentionModel(2, ContentionConfig(node_capacity=2, interconnect_capacity=4))
        base = c.slowdown(ObjType.MACHINE, 0)
        for _ in range(8):
            c.begin(ObjType.MACHINE, 0)
        loaded = c.slowdown(ObjType.MACHINE, 0)
        assert base == 1.0
        assert loaded > 1.0

    def test_end_releases(self):
        c = ContentionModel(1, ContentionConfig(node_capacity=1, interconnect_capacity=1))
        c.begin(ObjType.MACHINE, 0)
        assert c.node_inflight(0) == 1
        assert c.interconnect_inflight == 1
        c.end(ObjType.MACHINE, 0)
        assert c.node_inflight(0) == 0
        assert c.interconnect_inflight == 0

    def test_local_levels_uncontended(self):
        c = ContentionModel(1)
        c.begin(ObjType.L3, 0)
        assert c.node_inflight(0) == 0  # cache sharing hits no controller

    def test_numanode_level_hits_dram_not_interconnect(self):
        c = ContentionModel(2)
        c.begin(ObjType.NUMANODE, 1)
        assert c.node_inflight(1) == 1
        assert c.interconnect_inflight == 0

    def test_contention_slows_transfers_in_machine(self, small_topo):
        cfg = ContentionConfig(node_capacity=1.0, interconnect_capacity=1.0)
        m = Machine(small_topo, seed=0, contention=cfg)
        # 4 remote consumers streaming from node 0 concurrently.
        tids = [m.add_thread(f"c{k}", bound_pu_os=4 + k) for k in range(4)]
        for tid in tids:
            m.set_body(tid, iter([ReceiveFromNode(0, 1 << 20)]))
        t_contended = m.run()

        m2 = Machine(small_topo, seed=0, contention=cfg)
        tid = m2.add_thread("c", bound_pu_os=4)
        m2.set_body(tid, iter([ReceiveFromNode(0, 1 << 20)]))
        t_single = m2.run()
        assert t_contended > t_single
        assert m.metrics.contended_transfers > 0


class TestSchedulerUnit:
    def test_initial_pu_least_loaded(self):
        s = OsScheduler(4, seed=0)
        s.occupy(0)
        s.occupy(1)
        s.occupy(2)
        assert s.initial_pu() == 3

    def test_vacate_underflow_asserts(self):
        s = OsScheduler(2, seed=0)
        s.occupy(0)
        s.vacate(0)
        with pytest.raises(AssertionError):
            s.vacate(0)

    def test_pull_target_on_imbalance(self):
        import numpy as np

        s = OsScheduler(4, SchedulerConfig(imbalance_threshold=0.001), seed=0)
        backlog = np.array([1.0, 0.0, 0.5, 0.7])
        assert s.pull_target(0, backlog) == 1

    def test_pull_target_balanced_none(self):
        import numpy as np

        s = OsScheduler(4, SchedulerConfig(imbalance_threshold=0.5), seed=0)
        backlog = np.array([0.1, 0.0, 0.1, 0.0])
        assert s.pull_target(0, backlog) is None

    def test_invalid_config(self):
        with pytest.raises(Exception):
            SchedulerConfig(migration_quantum=0)
        with pytest.raises(Exception):
            SchedulerConfig(migration_prob=2.0)


class TestMetricsUnit:
    def test_summary_keys(self):
        m = MachineMetrics()
        keys = set(m.summary())
        assert "compute_time" in keys and "local_fraction" in keys

    def test_local_fraction_no_traffic(self):
        assert MachineMetrics().local_fraction == 1.0

    def test_local_fraction_mixed(self):
        m = MachineMetrics()
        m.record_transfer(ObjType.L3, 100, 0.1)
        m.record_transfer(ObjType.MACHINE, 300, 0.1)
        assert m.local_fraction == pytest.approx(0.25)
