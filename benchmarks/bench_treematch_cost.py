"""Ablation A2 — Algorithm 1 launch-time cost vs matrix order.

The paper runs the mapping "at launch time", so it must stay cheap
relative to the application.  This bench measures tree_match wall time
directly (here pytest-benchmark's own timing is the result) at growing
communication-matrix orders, including the paper-scale order 192.
"""

import pytest

from repro.comm import patterns
from repro.topology import presets
from repro.treematch.algorithm import tree_match

ORDERS = (16, 64, 192, 512)


@pytest.mark.parametrize("order", ORDERS)
def test_treematch_cost(benchmark, order):
    rows, cols = patterns.square_grid_shape(order)
    matrix = patterns.stencil_2d(rows, cols, edge_volume=100.0)
    topo = presets.paper_smp(max(order // 8, 1), min(order, 8))
    result = benchmark(tree_match, topo, matrix)
    benchmark.extra_info["order"] = order
    assert result.mapping.n_threads == order
    # Launch-time requirement: even the largest order maps in seconds.
    assert benchmark.stats["mean"] < 30.0
