"""Tests for GroupProcesses: exact, greedy, and refinement strategies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import patterns
from repro.treematch.grouping import (
    cut_volume,
    group_exact,
    group_greedy,
    group_processes,
    intra_group_volume,
    refine_swap,
)
from repro.util.validate import ValidationError


def _sym(n, rng):
    m = rng.random((n, n)) * 10
    m = m + m.T
    np.fill_diagonal(m, 0)
    return m


def _is_partition(groups, n, size):
    flat = sorted(i for g in groups for i in g)
    return flat == list(range(n)) and all(len(g) == size for g in groups)


class TestValidation:
    def test_non_divisible_rejected(self):
        with pytest.raises(ValidationError):
            group_processes(np.zeros((5, 5)), 2)

    def test_bad_group_size_rejected(self):
        with pytest.raises(ValidationError):
            group_processes(np.zeros((4, 4)), 0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            group_processes(np.zeros((4, 4)), 2, strategy="magic")


class TestTrivialCases:
    def test_group_size_one_is_identity(self, rng):
        m = _sym(6, rng)
        groups = group_processes(m, 1)
        assert groups == [[i] for i in range(6)]

    def test_group_size_n_is_single_group(self, rng):
        m = _sym(6, rng)
        assert group_processes(m, 6) == [[0, 1, 2, 3, 4, 5]]


class TestExact:
    def test_clustered_recovered(self):
        # 2 clusters of 3 with heavy intra-traffic: exact must find them.
        cm = patterns.clustered(2, 3, intra_volume=100, inter_volume=1, shuffle=False)
        groups = group_exact(np.array(cm.values), 3)
        assert sorted(map(tuple, groups)) == [(0, 1, 2), (3, 4, 5)]

    def test_exact_beats_or_ties_greedy(self, rng):
        for _ in range(5):
            m = _sym(8, rng)
            exact = group_exact(m, 2)
            greedy = group_greedy(m, 2)
            assert intra_group_volume(m, exact) >= intra_group_volume(m, greedy) - 1e-9

    def test_exact_partition_valid(self, rng):
        m = _sym(9, rng)
        groups = group_exact(m, 3)
        assert _is_partition(groups, 9, 3)


class TestGreedy:
    def test_partition_valid_large(self, rng):
        m = _sym(60, rng)
        groups = group_greedy(m, 5)
        assert _is_partition(groups, 60, 5)

    def test_clustered_recovered(self):
        cm = patterns.clustered(4, 4, intra_volume=100, inter_volume=1, seed=11)
        m = np.array(cm.values)
        groups = group_greedy(m, 4)
        # each greedy group should be one cluster: intra-volume == optimum
        per_group = 6 * 100.0  # C(4,2) pairs at 100
        assert intra_group_volume(m, groups) == pytest.approx(4 * per_group)

    def test_deterministic(self, rng):
        m = _sym(20, rng)
        assert group_greedy(m, 4) == group_greedy(m, 4)

    def test_zero_matrix_ok(self):
        groups = group_greedy(np.zeros((8, 8)), 2)
        assert _is_partition(groups, 8, 2)


class TestRefine:
    def test_never_decreases_intra_volume(self, rng):
        for _ in range(5):
            m = _sym(12, rng)
            base = group_greedy(m, 3)
            refined = refine_swap(m, base)
            assert intra_group_volume(m, refined) >= intra_group_volume(m, base) - 1e-9
            assert _is_partition(refined, 12, 3)

    def test_fixes_planted_swap(self):
        cm = patterns.clustered(2, 4, intra_volume=100, inter_volume=0.1, shuffle=False)
        m = np.array(cm.values)
        # Start from a deliberately wrong partition (one pair swapped).
        bad = [[0, 1, 2, 7], [3, 4, 5, 6]]
        refined = refine_swap(m, bad)
        assert sorted(map(tuple, refined)) == [(0, 1, 2, 3), (4, 5, 6, 7)]


class TestDispatch:
    def test_auto_uses_exact_for_small(self, rng):
        m = _sym(6, rng)
        auto = group_processes(m, 2, strategy="auto")
        exact = group_exact(m, 2)
        assert intra_group_volume(m, auto) == pytest.approx(intra_group_volume(m, exact))

    def test_auto_uses_greedy_for_large(self, rng):
        m = _sym(40, rng)
        groups = group_processes(m, 4, strategy="auto")
        assert _is_partition(groups, 40, 4)


class TestMetrics:
    def test_intra_plus_cut_equals_total(self, rng):
        m = _sym(12, rng)
        groups = group_greedy(m, 4)
        total = float(m.sum()) / 2
        assert intra_group_volume(m, groups) + cut_volume(m, groups) == pytest.approx(total)


@settings(max_examples=25, deadline=None)
@given(
    n_groups=st.integers(min_value=2, max_value=4),
    size=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_greedy_always_partitions(n_groups, size, seed):
    rng = np.random.default_rng(seed)
    n = n_groups * size
    m = _sym(n, rng)
    groups = group_processes(m, size, strategy="greedy")
    assert _is_partition(groups, n, size)


def _refine_swap_reference(m, groups, max_rounds=4):
    """``refine_swap`` without the dirty-pair skip: every group pair is
    rescored on every round.  The optimized version must reproduce this
    bit-for-bit — skipping is only legal because an unchanged pair would
    rebuild the identical gain matrix and reach the identical verdict.
    """
    groups = [list(g) for g in groups]
    for _ in range(max_rounds):
        improved = False
        for ga in range(len(groups)):
            for gb in range(ga + 1, len(groups)):
                A, B = groups[ga], groups[gb]
                mAA = m[np.ix_(A, A)]
                mBB = m[np.ix_(B, B)]
                mAB = m[np.ix_(A, B)]
                mBA = m[np.ix_(B, A)]
                a_in_A = mAA.sum(axis=0) - np.diag(mAA)
                b_in_B = mBB.sum(axis=0) - np.diag(mBB)
                a_in_B = mBA.sum(axis=0)
                b_in_A = mAB.sum(axis=0)
                gain = (
                    (a_in_B[:, None] + b_in_A[None, :])
                    - (a_in_A[:, None] + b_in_B[None, :])
                    - 2.0 * mAB
                )
                flat = int(np.argmax(gain))
                ia, ib = divmod(flat, len(B))
                if gain[ia, ib] > 1e-12:
                    A[ia], B[ib] = B[ib], A[ia]
                    improved = True
        if not improved:
            break
    return [sorted(g) for g in groups]


@settings(max_examples=30, deadline=None)
@given(
    n_groups=st.integers(min_value=2, max_value=5),
    size=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    rounds=st.integers(min_value=1, max_value=6),
)
def test_refine_swap_matches_unskipped_reference(n_groups, size, seed, rounds):
    """The dirty-pair skip must be invisible in the output."""
    rng = np.random.default_rng(seed)
    n = n_groups * size
    m = _sym(n, rng)
    # A shuffled partition (not greedy output) so many swaps fire.
    perm = rng.permutation(n)
    base = [sorted(int(x) for x in perm[i * size:(i + 1) * size])
            for i in range(n_groups)]
    assert refine_swap(m, base, max_rounds=rounds) == _refine_swap_reference(
        m, base, max_rounds=rounds
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_exact_is_optimal_brute_force(seed):
    """Exact search must match brute-force enumeration on tiny inputs."""
    import itertools

    rng = np.random.default_rng(seed)
    m = _sym(6, rng)
    best = -1.0
    ids = list(range(6))
    for combo in itertools.combinations(ids[1:], 2):
        g1 = (0, *combo)
        rest = tuple(i for i in ids if i not in g1)
        val = intra_group_volume(m, [g1, rest])
        best = max(best, val)
    exact = group_exact(m, 3)
    assert intra_group_volume(m, exact) == pytest.approx(best)
