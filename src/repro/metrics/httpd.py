"""Minimal HTTP exposition: ``/metrics`` (Prometheus) + ``/healthz``.

Stdlib-only (``http.server`` on a daemon thread) so the repo stays
dependency-free.  Used by ``repro.tools.place serve --http PORT``; bind
port 0 to let the OS pick (the bound port is on
:attr:`MetricsServer.port`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.metrics import core
from repro.metrics.core import MetricRegistry
from repro.metrics.expose import render_text

__all__ = ["MetricsServer"]

HealthFn = Callable[[], dict[str, Any]]


def _default_health() -> dict[str, Any]:
    return {"status": "ok"}


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_text(self.server.registry_fn()).encode()
            self._send(
                200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/healthz":
            health = self.server.health_fn()
            status = 200 if health.get("status", "ok") == "ok" else 503
            body = (json.dumps(health, sort_keys=True) + "\n").encode()
            self._send(status, body, "application/json")
        else:
            self._send(404, b"not found\n", "text/plain")

    def log_message(self, format: str, *args: Any) -> None:
        pass  # silent: the serve loop owns stdout/stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry_fn: Callable[[], MetricRegistry]
    health_fn: HealthFn


class MetricsServer:
    """A background ``/metrics`` + ``/healthz`` HTTP server.

    ``health_fn`` supplies the ``/healthz`` payload (e.g.
    ``PlacementService.health``); a non-``"ok"`` status turns into HTTP
    503 so load balancers can act on it.
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        registry: MetricRegistry | None = None,
        health_fn: HealthFn | None = None,
    ) -> None:
        self._server = _Server((host, port), _Handler)
        self._server.registry_fn = (
            (lambda: registry) if registry is not None else core.registry
        )
        self._server.health_fn = health_fn or _default_health
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
