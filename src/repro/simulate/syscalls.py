"""Syscalls: the requests a simulated thread body may yield.

A thread body is a Python generator.  Each ``yield`` hands the machine
one of these objects; the machine performs it (advancing simulated time,
blocking, moving data) and resumes the generator when done.  This is the
simulated analogue of a pthread calling into libc/the ORWL runtime.

* :class:`Compute` — occupy the current PU for a CPU-work duration.
* :class:`Receive` — pull bytes last produced by another thread; the
  cost depends on the topological distance between the two threads'
  PUs (this is where placement pays off or doesn't).
* :class:`Wait` — park on a :class:`~repro.simulate.engine.SimEvent`
  (lock grants, barrier releases).
* :class:`Yield` — give up the PU to other ready threads (cooperative
  scheduling point, zero-cost otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulate.engine import SimEvent


class Syscall:
    """Marker base class for thread requests."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Syscall):
    """Burn *duration* seconds of CPU on the thread's current PU."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative compute duration {self.duration}")


@dataclass(frozen=True)
class ComputeFlops(Syscall):
    """Burn *flops* of work, priced at the executing PU's rate.

    Unlike :class:`Compute` (fixed seconds), the duration is resolved
    when the work starts, on whatever PU the thread occupies — the
    syscall for heterogeneous machines where PUs differ in speed.
    """

    flops: float

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"negative flop count {self.flops}")


@dataclass(frozen=True)
class Receive(Syscall):
    """Consume *nbytes* produced by thread *producer* (by thread id).

    ``producer`` may be ``-1`` to denote main memory at a NUMA node
    (see :class:`ReceiveFromNode`); prefer the explicit class.
    """

    producer: int
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative transfer size {self.nbytes}")


@dataclass(frozen=True)
class ReceiveFromNode(Syscall):
    """Stream *nbytes* from the DRAM of NUMA node *node_index*.

    Models first-touch memory traffic: the OpenMP comparator's workers
    read their matrix slice from wherever it was allocated.
    """

    node_index: int
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative transfer size {self.nbytes}")


@dataclass(frozen=True)
class Wait(Syscall):
    """Block until the event fires."""

    event: SimEvent


@dataclass(frozen=True)
class Yield(Syscall):
    """Cooperative scheduling point (lets queued threads on this PU run)."""
