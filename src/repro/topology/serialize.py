"""Topology serialization: JSON round-trip (hwloc-XML-like).

hwloc exports topologies to XML so tools can analyze machines offline;
we provide the equivalent with JSON.  The format is a direct nested dump
of the object tree with attributes, versioned for forward compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.topology.objects import (
    CacheAttributes,
    MemoryAttributes,
    ObjType,
    TopologyObject,
)
from repro.topology.tree import Topology, TopologyError

FORMAT_VERSION = 1


def _obj_to_dict(obj: TopologyObject) -> dict[str, Any]:
    d: dict[str, Any] = {"type": obj.type.name}
    if obj.os_index is not None:
        d["os_index"] = obj.os_index
    if obj.name:
        d["name"] = obj.name
    if obj.cache is not None:
        d["cache"] = {
            "size": obj.cache.size,
            "line_size": obj.cache.line_size,
            "associativity": obj.cache.associativity,
            "latency": obj.cache.latency,
        }
    if obj.memory is not None:
        d["memory"] = {
            "local_bytes": obj.memory.local_bytes,
            "latency": obj.memory.latency,
            "bandwidth": obj.memory.bandwidth,
        }
    if obj.children:
        d["children"] = [_obj_to_dict(c) for c in obj.children]
    return d


def _obj_from_dict(d: dict[str, Any]) -> TopologyObject:
    try:
        type_ = ObjType[d["type"]]
    except KeyError:
        raise TopologyError(f"unknown object type {d.get('type')!r}") from None
    obj = TopologyObject(
        type_,
        os_index=d.get("os_index"),
        name=d.get("name", ""),
    )
    if "cache" in d:
        c = d["cache"]
        obj.cache = CacheAttributes(
            size=c["size"],
            line_size=c.get("line_size", 64),
            associativity=c.get("associativity", 8),
            latency=c.get("latency", 0.0),
        )
    if "memory" in d:
        m = d["memory"]
        obj.memory = MemoryAttributes(
            local_bytes=m["local_bytes"],
            latency=m.get("latency", 0.0),
            bandwidth=m.get("bandwidth", 0.0),
        )
    for child_d in d.get("children", ()):
        obj.add_child(_obj_from_dict(child_d))
    return obj


def to_dict(topo: Topology) -> dict[str, Any]:
    """Serialize a topology to a JSON-safe dict."""
    return {
        "format": "repro-topology",
        "version": FORMAT_VERSION,
        "name": topo.name,
        "root": _obj_to_dict(topo.root),
    }


def from_dict(d: dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`to_dict` output."""
    if d.get("format") != "repro-topology":
        raise TopologyError(f"not a repro-topology document: format={d.get('format')!r}")
    if d.get("version", 0) > FORMAT_VERSION:
        raise TopologyError(f"unsupported format version {d.get('version')}")
    root = _obj_from_dict(d["root"])
    return Topology(root, name=d.get("name", ""))


def dumps(topo: Topology, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(topo), indent=indent)


def loads(text: str) -> Topology:
    """Deserialize from a JSON string."""
    return from_dict(json.loads(text))


def save(topo: Topology, path: Union[str, Path]) -> None:
    """Write the topology to *path* as JSON."""
    Path(path).write_text(dumps(topo), encoding="utf-8")


def load(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
