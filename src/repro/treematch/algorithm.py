"""Algorithm 1: the adapted TreeMatch mapping algorithm.

This module implements the paper's Algorithm 1 end to end::

    Input: T  (topology tree)    Input: m (communication matrix)
    1  m <- extend_to_manage_control_threads(m)
    2  T <- manage_oversubscription(T, m)
    3  groups[1..D-1] = {}
    4  foreach depth <- D-1..1:        # from the leaves
    5      p <- order of m
    6      groups[depth] <- GroupProcesses(T, m, depth)
    7      m <- AggregateComMatrix(m, groups[depth])
    8  MapGroups(T, groups)

Line 1 lives in :mod:`repro.treematch.control` (it needs topology
context), line 2 in :mod:`repro.treematch.oversubscription`, lines 4–7
here, and line 8 in :mod:`repro.treematch.mapping`.  The algorithm runs
once at launch time, exactly as the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.topology.cpuset import CpuSet
from repro.topology.objects import ObjType
from repro.topology.tree import Topology
from repro.treematch import control as control_mod
from repro.treematch import oversubscription as over_mod
from repro.treematch.control import ControlPlan, ControlStrategy
from repro.treematch.grouping import group_processes
from repro.treematch.mapping import Mapping, map_groups
from repro.util.validate import ValidationError


@dataclass
class TreeMatchResult:
    """Everything Algorithm 1 produced, for inspection and reports.

    Attributes
    ----------
    mapping:
        Thread → PU os_index assignment for all matrix entities
        (compute threads first, then any control threads added by the
        matrix extension).
    control_mapping:
        PU assignment for control threads when the hyperthread-
        reservation strategy applies (otherwise ``None``; under
        SPARE_CORES control threads are part of *mapping*).
    plan:
        The oversubscription plan that was applied.
    control_plan:
        The control-thread branch that was applied (``None`` if control
        threads were not considered).
    hierarchy:
        The per-level groups, deepest level first, for ablation studies.
    """

    mapping: Mapping
    control_mapping: Optional[Mapping] = None
    plan: Optional[over_mod.OversubscriptionPlan] = None
    control_plan: Optional[ControlPlan] = None
    hierarchy: list[list[list[int]]] = field(default_factory=list)


def _physical_arities(topo: Topology, use_cores_as_leaves: bool) -> tuple[list[int], list[int]]:
    """Arity vector and leaf PU os_indices for the chosen leaf granularity.

    With *use_cores_as_leaves* the PU level is folded away: the mapping
    targets one slot per core (whose representative PU is the core's
    first PU), leaving sibling hyperthreads free for control threads.
    """
    arities = topo.arities()
    pus = topo.pus()
    if not use_cores_as_leaves:
        return arities, [pu.os_index for pu in pus]
    core_depth = topo.type_depth(ObjType.CORE)
    if core_depth is None:
        raise ValidationError("topology has no CORE level to use as leaves")
    # Drop arities below the core level (cores become the leaves).
    cores = topo.objects_by_type(ObjType.CORE)
    leaf_os = [next(core.pus()).os_index for core in cores]
    return arities[:core_depth], leaf_os


def tree_match_arities(
    arities: Sequence[int],
    matrix: CommMatrix,
    strategy: str = "auto",
    refine: bool = True,
) -> tuple[list[int], over_mod.OversubscriptionPlan, list[list[list[int]]]]:
    """Core of Algorithm 1 on an abstract balanced tree.

    Returns ``(slot_of, plan, hierarchy)`` where ``slot_of[e]`` is the
    virtual leaf slot of entity *e* in left-to-right DFS order.  The
    physical interpretation of slots is up to the caller.
    """
    oplan = over_mod.plan(tuple(arities), matrix.order)
    padded = matrix.extended(oplan.padded_order - matrix.order)
    m = np.array(padded.values, dtype=np.float64)

    hierarchy: list[list[list[int]]] = []
    # Lines 4-7: group from the leaf-parent level up to the root.
    for arity in reversed(oplan.arities):
        groups = group_processes(m, arity, strategy=strategy, refine=refine)
        hierarchy.append(groups)
        agg = CommMatrix(m).aggregated(groups)
        m = np.array(agg.values, dtype=np.float64)
    if m.shape[0] != 1:
        raise AssertionError("grouping did not reduce the matrix to order 1")

    slot_of = map_groups(hierarchy, oplan.padded_order)
    return slot_of, oplan, hierarchy


def tree_match(
    topo: Topology,
    matrix: CommMatrix,
    n_control: int = 0,
    control_pairing: Optional[Sequence[int]] = None,
    control_volume: Optional[float] = None,
    strategy: str = "auto",
    refine: bool = True,
    allowed: Optional["CpuSet"] = None,
) -> TreeMatchResult:
    """Run the full Algorithm 1 against a topology.

    Parameters
    ----------
    topo:
        The target machine.
    matrix:
        Communication matrix over the *compute* threads.
    n_control:
        Number of ORWL control threads to handle (0 to skip line 1).
    control_pairing:
        ``pairing[k]`` = compute thread served by control thread *k*
        (defaults to round-robin).
    control_volume:
        Synthetic affinity used when control threads are folded into the
        matrix (SPARE_CORES branch); default is scale-free (mean positive
        volume).
    strategy, refine:
        Grouping options, see
        :func:`repro.treematch.grouping.group_processes`.
    allowed:
        Optional cpuset constraint: only PUs inside it are used (the
        topology is restricted first; os indices in the result remain
        those of the full machine).  The restricted tree must still be
        balanced — restrict whole sockets/cores.

    Returns
    -------
    :class:`TreeMatchResult`; ``result.mapping`` covers the compute
    threads (plus folded-in control threads under SPARE_CORES), and
    ``result.control_mapping`` covers control threads under
    hyperthread reservation.
    """
    if matrix.order == 0:
        raise ValidationError("cannot map an empty matrix")

    if allowed is not None:
        from repro.topology.restrict import restrict

        topo = restrict(topo, allowed)

    control_plan: Optional[ControlPlan] = None
    work_matrix = matrix
    use_cores_as_leaves = False
    if n_control > 0:
        control_plan = control_mod.decide_strategy(
            topo, matrix.order, n_control, pairing=control_pairing
        )
        if control_plan.strategy is ControlStrategy.SPARE_CORES:
            work_matrix = control_mod.extend_matrix(
                matrix, control_plan, control_volume=control_volume
            )
        elif control_plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED:
            use_cores_as_leaves = True

    arities, leaf_os = _physical_arities(topo, use_cores_as_leaves)
    slot_of, oplan, hierarchy = tree_match_arities(
        arities, work_matrix, strategy=strategy, refine=refine
    )

    # Translate virtual slots to PU os indices (several slots share a PU
    # when oversubscribed).
    f = oplan.virtual_per_leaf
    pu_of = [leaf_os[slot_of[e] // f] for e in range(work_matrix.order)]
    mapping = Mapping(tuple(pu_of), labels=work_matrix.labels, policy="treematch")

    control_mapping: Optional[Mapping] = None
    if control_plan is not None and control_plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED:
        ctl_pus = []
        for comp in control_plan.pairing:
            sib = control_mod.sibling_pu_of(topo, mapping.pu(comp))
            ctl_pus.append(sib if sib is not None else -1)
        control_mapping = Mapping(
            tuple(ctl_pus),
            labels=tuple(f"ctl{k}" for k in range(control_plan.n_control)),
            policy="treematch-control",
        )

    return TreeMatchResult(
        mapping=mapping,
        control_mapping=control_mapping,
        plan=oplan,
        control_plan=control_plan,
        hierarchy=hierarchy,
    )
