"""Progress events emitted by :class:`repro.exec.SweepRunner`.

A sweep is minutes of silent CPU burn; these events are how tools and
tests watch it move.  The runner calls every registered callback with a
:class:`SweepEvent` from the *parent* process (worker processes never
emit), so callbacks are free to print, log, or append to shared state.

Three ready-made sinks:

* :func:`log_progress` — one log line per event via ``repro.util.log``;
* :func:`tracer_progress` — mirror events into a
  :class:`repro.observe.Tracer` stream as kind-``"sweep"`` instants, so
  a sweep's schedule lands in the same JSONL/Chrome exports as the
  simulations it ran;
* :class:`ProgressBar` — a single in-place terminal progress line with
  a cache-aware ETA.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, TextIO

from repro.util.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

#: Event kinds, in the order a healthy sweep emits them.  ``worker_crash``,
#: ``retry`` and ``serial_fallback`` only appear on the resilience path;
#: ``cache_stats`` fires once before ``sweep_end`` when any caching
#: tier saw traffic (``detail`` holds ``key=count`` pairs aggregated
#: over the parent and every worker — see :mod:`repro.exec.cache`);
#: ``point_stats`` is emitted by :mod:`repro.stats.sweep` after a
#: replicated sweep aggregates one point (one event per point, after
#: ``sweep_end``; ``label`` is the point label, ``detail`` the
#: rendered :class:`~repro.stats.aggregate.SeedStats`).  In a
#: replicated sweep each replicate is its own task, so ``point_done``
#: fires once per replicate with a ``label#s<r>`` suffix; replicates
#: served by the point cache carry ``detail="cached"``.
SWEEP_EVENT_KINDS = (
    "sweep_start",
    "point_done",
    "chunk_done",
    "worker_crash",
    "retry",
    "serial_fallback",
    "cache_stats",
    "sweep_end",
    "point_stats",
)


@dataclass(frozen=True)
class SweepEvent:
    """One progress notification from a sweep.

    Attributes
    ----------
    kind:
        One of :data:`SWEEP_EVENT_KINDS`.
    ts:
        Wall-clock seconds since the sweep started (parent-process time,
        *not* simulated time).
    index:
        Point index for ``point_done`` (-1 otherwise).
    done, total:
        Points completed so far / points in the sweep.
    label:
        The task's label (``point_done``) or a free-form tag.
    detail:
        Extra context: worker counts, retry attempt, crash reason.
    """

    kind: str
    ts: float
    index: int = -1
    done: int = 0
    total: int = 0
    label: str = ""
    detail: str = ""


#: Signature of a progress sink.
ProgressCallback = Callable[[SweepEvent], None]


def log_progress(event: SweepEvent) -> None:
    """Log one line per event (a ready-made ``on_event`` callback)."""
    log = get_logger("exec")
    msg = f"[{event.ts:8.2f}s] {event.kind} {event.done}/{event.total}"
    if event.label:
        msg += f" {event.label}"
    if event.detail:
        msg += f" ({event.detail})"
    if event.kind in ("worker_crash", "serial_fallback"):
        log.warning(msg)
    else:
        log.info(msg)


def tracer_progress(tracer: "Tracer") -> ProgressCallback:
    """An ``on_event`` callback mirroring sweep events into *tracer*.

    Events are emitted as kind-``"sweep"`` instants whose ``ts`` is the
    wall-clock offset; ``detail`` packs the sweep-event kind, progress
    counter, and label.  Exporters pass unknown kinds through verbatim,
    so sweeps show up in Chrome/JSONL exports alongside machine events.
    """

    def callback(event: SweepEvent) -> None:
        tracer.emit(
            "sweep",
            ts=event.ts,
            detail=f"{event.kind}:{event.done}/{event.total}"
            + (f":{event.label}" if event.label else ""),
        )

    return callback


class ProgressBar:
    """An in-place terminal progress line with a cache-aware ETA.

    ``[########------------] 12/40 done (5 cached) eta 12s``

    Cached points complete in microseconds, so folding them into the
    per-point cost estimate makes the ETA collapse toward zero the
    moment a warm sweep starts and then balloon when real work begins.
    The bar instead derives cost from *simulated* points only —
    ``elapsed / (done - cached)`` — and projects it over the points
    still outstanding, which assumes the worst case (none of them
    cached) and therefore only ever shortens.

    Use as an ``on_event`` callback::

        runner = SweepRunner(on_event=ProgressBar())

    Writes to *stream* (default stderr) with ``\\r`` redraws; emits a
    final newline on ``sweep_end``.  Renders nothing for non-progress
    events, so it composes with :func:`log_progress` for crash/retry
    visibility.
    """

    def __init__(self, stream: Optional[TextIO] = None, width: int = 20):
        self.stream = stream if stream is not None else sys.stderr
        self.width = width
        self.cached = 0
        self._open = False

    def render(self, event: SweepEvent) -> str:
        """The bar line for *event* (pure; exercised directly by tests)."""
        total = max(event.total, 1)
        frac = min(1.0, event.done / total)
        filled = int(frac * self.width)
        bar = "#" * filled + "-" * (self.width - filled)
        line = f"[{bar}] {event.done}/{event.total} done"
        if self.cached:
            line += f" ({self.cached} cached)"
        simulated = event.done - self.cached
        remaining = event.total - event.done
        if remaining <= 0:
            line += f" in {event.ts:.1f}s"
        elif simulated > 0 and event.ts > 0:
            eta = remaining * (event.ts / simulated)
            line += f" eta {eta:.0f}s"
        return line

    def __call__(self, event: SweepEvent) -> None:
        if event.kind == "sweep_start":
            self.cached = 0
        elif event.kind == "point_done" and event.detail == "cached":
            self.cached += 1
        if event.kind in ("sweep_start", "point_done", "sweep_end"):
            self.stream.write("\r" + self.render(event) + "\x1b[K")
            self._open = True
            if event.kind == "sweep_end":
                self.stream.write("\n")
                self._open = False
            self.stream.flush()
