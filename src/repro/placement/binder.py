"""The binder: the paper's placement add-on, end to end.

:func:`bind_program` is the single entry point gluing everything
together, mirroring the paper's module boundary:

1. extract the thread affinity matrix from the ORWL program composition
   (:mod:`repro.placement.affinity`);
2. obtain the machine topology (a :class:`~repro.topology.tree.Topology`
   — in the paper, from HWLOC);
3. run the chosen placement policy (TreeMatch or a baseline);
4. derive control/communication-thread placement per the paper's
   strategy rules;
5. return a :class:`BindPlan` the runtime consumes directly.

Granularity
-----------
The paper maps the *computation* threads — one main operation per task —
and treats the frontier sub-operations together with the runtime's
control threads as "control and communication threads" covered by the
Algorithm-1 extension (hyperthread reservation / spare cores /
unmapped).  That is ``granularity="task"``, the default: the matrix
TreeMatch sees has one row per task (the op-level affinities aggregated
per task), and on the paper's 192-core machine with 192 tasks the
mapping is a clean one-main-per-core assignment.

``granularity="op"`` instead maps every operation thread individually
(matrix order = number of operations, oversubscription extension
engaged); kept for ablations.

The plan also exposes the binding in OS terms (PU os-index per thread) —
what a real implementation would feed to ``pthread_setaffinity_np`` —
so the add-on's output is inspectable even though execution happens on
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.comm.matrix import CommMatrix
from repro.orwl.program import Program
from repro.placement.affinity import static_matrix
from repro.placement.policies import (
    NoBindPolicy,
    PlacementPolicy,
    TreeMatchPolicy,
    make_policy,
)
from repro.topology.cpuset import CpuSet
from repro.topology.objects import ObjType
from repro.topology.tree import Topology
from repro.treematch.control import ControlStrategy, sibling_pu_of
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError


@dataclass
class BindPlan:
    """A complete placement decision for an ORWL program."""

    #: PU assignment of compute operations (program declaration order,
    #: one entry per operation — sub-operations included).
    mapping: Mapping
    #: PU assignment of per-task runtime control threads (task order).
    control_mapping: Optional[Mapping]
    #: the affinity matrix the decision was based on.
    matrix: Optional[CommMatrix]
    #: control strategy actually applied (None when control unplaced).
    control_strategy: Optional[ControlStrategy]
    #: policy name, for reports.
    policy: str
    #: mapping at the granularity the policy ran at (tasks or ops).
    placed_mapping: Optional[Mapping] = None

    def cpuset_of_thread(self, index: int) -> CpuSet:
        """The binding cpuset of compute thread *index* (empty = unbound)."""
        pu = self.mapping.pu(index)
        return CpuSet.singleton(pu) if pu >= 0 else CpuSet()

    def os_binding_script(self) -> str:
        """Render the plan as ``taskset``-style lines (documentation aid)."""
        lines = []
        for k, label in enumerate(self.mapping.labels):
            pu = self.mapping.pu(k)
            target = str(pu) if pu >= 0 else "unbound"
            lines.append(f"{label}\t-> PU {target}")
        if self.control_mapping is not None:
            for k, label in enumerate(self.control_mapping.labels):
                pu = self.control_mapping.pu(k)
                target = str(pu) if pu >= 0 else "unbound"
                lines.append(f"{label}\t-> PU {target}")
        return "\n".join(lines)


def task_matrix(program: Program, op_matrix: Optional[CommMatrix] = None) -> CommMatrix:
    """Aggregate the op-level affinity matrix to task granularity."""
    if op_matrix is None:
        op_matrix = static_matrix(program)
    ops = program.operations()
    if op_matrix.order != len(ops):
        raise ValidationError(
            f"op matrix order {op_matrix.order} != {len(ops)} operations"
        )
    groups: list[list[int]] = []
    for task in program.tasks.values():
        groups.append(
            [k for k, op in enumerate(ops) if op.task is task]
        )
    agg = op_matrix.aggregated(groups)
    return CommMatrix(agg.values, labels=list(program.tasks))


def _comm_thread_slots(program: Program) -> tuple[list[int], list[int]]:
    """(op_index, task_index) pairs of the communication threads.

    Communication threads = every non-main operation.  Returned as two
    parallel lists: the op indices, and for each the index of its task
    (the compute entity it pairs with).
    """
    ops = program.operations()
    task_index = {name: k for k, name in enumerate(program.tasks)}
    op_idx: list[int] = []
    pair: list[int] = []
    for k, op in enumerate(ops):
        if not op.is_main:
            op_idx.append(k)
            pair.append(task_index[op.task.name])
    return op_idx, pair


def bind_program(
    program: Program,
    topo: Topology,
    policy: PlacementPolicy | str = "treematch",
    matrix: Optional[CommMatrix] = None,
    place_control: bool = True,
    granularity: str = "task",
    control_fallback: str = "unmapped",
    **policy_kwargs,
) -> BindPlan:
    """Compute a :class:`BindPlan` for *program* on *topo*.

    Parameters
    ----------
    policy:
        A policy instance or registry name (``"treematch"``,
        ``"compact"``, ``"scatter"``, ``"round-robin"``, ``"random"``,
        ``"nobind"``).
    matrix:
        Affinity-matrix override at *op* granularity; defaults to the
        static extraction from the program composition.
    place_control:
        Apply the paper's control/communication-thread strategies.  If
        false they stay unbound regardless of policy.
    granularity:
        ``"task"`` (paper mode, default) or ``"op"`` (map every thread).
    control_fallback:
        What to do when no control branch fits (the paper's third case):
        ``"unmapped"`` (paper behaviour — OS-scheduled) or
        ``"colocate"`` (pin each communication/control thread to its
        task's PU; required for distributed/cluster topologies where
        threads cannot leave their node).
    policy_kwargs:
        Forwarded to the policy constructor when *policy* is a name.
    """
    ops = program.operations()
    n_ops = len(ops)
    if n_ops == 0:
        raise ValidationError("program has no operations to place")
    if granularity not in ("task", "op"):
        raise ValidationError(f"granularity must be 'task' or 'op', got {granularity!r}")
    if control_fallback not in ("unmapped", "colocate"):
        raise ValidationError(
            f"control_fallback must be 'unmapped' or 'colocate', got {control_fallback!r}"
        )

    op_labels = [op.name for op in ops]
    task_names = list(program.tasks)
    n_tasks = len(task_names)
    op_mat = matrix if matrix is not None else static_matrix(program)

    if granularity == "op":
        return _bind_at_op_granularity(
            program, topo, policy, op_mat, place_control, **policy_kwargs
        )

    # ---- task granularity (paper mode) --------------------------------
    tmat = task_matrix(program, op_mat)
    comm_ops, comm_pairing = _comm_thread_slots(program)
    # Control entities = communication threads + one runtime control
    # thread per task, all paired with their task's compute slot.
    n_control = (len(comm_ops) + n_tasks) if place_control else 0
    control_pairing = tuple(comm_pairing) + tuple(range(n_tasks))

    if isinstance(policy, str):
        if policy == "treematch" and n_control > 0:
            policy_kwargs = dict(policy_kwargs)
            policy_kwargs.setdefault("n_control", n_control)
            policy_kwargs.setdefault("control_pairing", control_pairing)
        policy = make_policy(policy, **policy_kwargs)

    placed = policy.place(topo, n_tasks, matrix=tmat, labels=task_names)

    # Expand the task mapping to per-operation and control assignments.
    main_pu = {task_names[k]: placed.pu(k) for k in range(n_tasks)}
    strategy: Optional[ControlStrategy] = None
    comm_pu: dict[int, int] = {}  # op index -> PU
    ctl_pus: list[int] = [-1] * n_tasks

    if isinstance(policy, NoBindPolicy):
        strategy = None
    elif isinstance(policy, TreeMatchPolicy) and policy.last_result is not None:
        result = policy.last_result
        plan = result.control_plan
        strategy = plan.strategy if plan is not None else None
        if plan is not None and plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED:
            cm = result.control_mapping
            assert cm is not None
            for slot, op_k in enumerate(comm_ops):
                comm_pu[op_k] = cm.pu(slot)
            for t in range(n_tasks):
                ctl_pus[t] = cm.pu(len(comm_ops) + t)
        elif plan is not None and plan.strategy is ControlStrategy.SPARE_CORES:
            full = result.mapping
            for slot, op_k in enumerate(comm_ops):
                comm_pu[op_k] = full.pu(n_tasks + slot)
            for t in range(n_tasks):
                ctl_pus[t] = full.pu(n_tasks + len(comm_ops) + t)
        # UNMAPPED: leave at -1 (OS scheduler), per the paper.
    elif place_control:
        # Baselines: apply the same three-branch rule around the base
        # mapping — sibling hyperthread, else co-locate with the main
        # when PUs are plentiful, else unmapped.
        if topo.has_hyperthreading() and n_tasks <= topo.nbobjs_by_type(ObjType.CORE):
            strategy = ControlStrategy.HYPERTHREAD_RESERVED
            for op_k, t in zip(comm_ops, comm_pairing):
                sib = sibling_pu_of(topo, main_pu[task_names[t]])
                comm_pu[op_k] = sib if sib is not None else -1
            for t in range(n_tasks):
                sib = sibling_pu_of(topo, main_pu[task_names[t]])
                ctl_pus[t] = sib if sib is not None else -1
        elif n_tasks + n_control <= topo.nb_pus:
            strategy = ControlStrategy.SPARE_CORES
            for op_k, t in zip(comm_ops, comm_pairing):
                comm_pu[op_k] = main_pu[task_names[t]]
            for t in range(n_tasks):
                ctl_pus[t] = main_pu[task_names[t]]
        else:
            strategy = ControlStrategy.UNMAPPED

    # Extension: when nothing fit (the paper's unmapped case) but the
    # environment requires thread-task co-residency (clusters), pin
    # every communication/control thread to its task's PU.
    if (
        place_control
        and control_fallback == "colocate"
        and strategy in (None, ControlStrategy.UNMAPPED)
        and not isinstance(policy, NoBindPolicy)
    ):
        for op_k, t in zip(comm_ops, comm_pairing):
            comm_pu.setdefault(op_k, main_pu[task_names[t]])
        for t in range(n_tasks):
            if ctl_pus[t] < 0:
                ctl_pus[t] = main_pu[task_names[t]]
        strategy = ControlStrategy.COLOCATED

    op_pus = []
    for k, op in enumerate(ops):
        if op.is_main:
            op_pus.append(main_pu[op.task.name])
        else:
            op_pus.append(comm_pu.get(k, -1))
    mapping = Mapping(tuple(op_pus), tuple(op_labels), policy=placed.policy)
    control_mapping = Mapping(
        tuple(ctl_pus),
        tuple(f"{t}/ctl" for t in task_names),
        policy=f"{placed.policy}-control",
    )
    return BindPlan(
        mapping=mapping,
        control_mapping=control_mapping,
        matrix=tmat,
        control_strategy=strategy,
        policy=getattr(policy, "name", str(policy)),
        placed_mapping=placed,
    )


def _bind_at_op_granularity(
    program: Program,
    topo: Topology,
    policy: PlacementPolicy | str,
    op_mat: CommMatrix,
    place_control: bool,
    **policy_kwargs,
) -> BindPlan:
    """Map every operation thread individually (ablation mode)."""
    ops = program.operations()
    n_ops = len(ops)
    labels = [op.name for op in ops]
    task_names = list(program.tasks)
    n_tasks = len(task_names)

    if isinstance(policy, str):
        if policy == "treematch" and place_control:
            policy_kwargs = dict(policy_kwargs)
            op_index = {op.name: k for k, op in enumerate(ops)}
            pairing = []
            for task in program.tasks.values():
                main = task.main_operation or next(iter(task.operations.values()))
                pairing.append(op_index[main.name])
            policy_kwargs.setdefault("n_control", n_tasks)
            policy_kwargs.setdefault("control_pairing", tuple(pairing))
        policy = make_policy(policy, **policy_kwargs)

    mapping = policy.place(topo, n_ops, matrix=op_mat, labels=labels)

    control_mapping: Optional[Mapping] = None
    strategy: Optional[ControlStrategy] = None
    task_labels = tuple(f"{t}/ctl" for t in task_names)
    if place_control and not isinstance(policy, NoBindPolicy):
        if isinstance(policy, TreeMatchPolicy) and policy.last_result is not None:
            result = policy.last_result
            plan = result.control_plan
            strategy = plan.strategy if plan is not None else None
            if plan is not None and plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED:
                assert result.control_mapping is not None
                control_mapping = Mapping(
                    result.control_mapping.pu_of, task_labels, policy="treematch-control"
                )
            elif plan is not None and plan.strategy is ControlStrategy.SPARE_CORES:
                ctl = tuple(result.mapping.pu(n_ops + k) for k in range(plan.n_control))
                control_mapping = Mapping(ctl, task_labels, policy="treematch-control")
        else:
            # Baselines: co-locate each control thread with its task's main.
            op_index = {op.name: k for k, op in enumerate(ops)}
            ctl = []
            for task in program.tasks.values():
                main = task.main_operation or next(iter(task.operations.values()))
                ctl.append(mapping.pu(op_index[main.name]))
            control_mapping = Mapping(
                tuple(ctl), task_labels, policy=f"{policy.name}-control"
            )
            strategy = ControlStrategy.SPARE_CORES
    return BindPlan(
        mapping=mapping,
        control_mapping=control_mapping,
        matrix=op_mat,
        control_strategy=strategy,
        policy=getattr(policy, "name", str(policy)),
        placed_mapping=mapping,
    )
