"""The ORWL event-based runtime, executing programs on the simulator.

"The implementation of the model reaches high performances thanks to a
decentralized event-based runtime."  This module is that runtime, built
on :class:`repro.simulate.Machine`:

* every **operation** runs as its own simulated thread (paper: "each
  operation is executed by an independent thread");
* every **task** additionally owns a **control thread** — the event/FIFO
  manager of the task's locations.  Lock grants are routed through it,
  so where the control thread is placed genuinely affects grant latency
  (this is what the paper's control-thread mapping extension optimizes);
* the **init protocol** inserts every handle's first request in global
  declaration order before any thread starts, giving the deterministic
  initial FIFO ordering ORWL prescribes;
* read acquisitions physically pull the location payload from its last
  writer, priced by topological distance — the locality being optimized.

Placement enters exclusively through the ``mapping`` /
``control_mapping`` arguments: the same program, machine, and seeds run
bound or unbound, which is exactly the paper's ORWL-Bind vs ORWL-NoBind
comparison.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.comm.trace import CommTracer
from repro.orwl.fifo import AccessMode, Request
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.orwl.program import Operation, Program
from repro.simulate.engine import SimEvent
from repro.simulate.machine import Machine
from repro.simulate.metrics import MachineMetrics
from repro.simulate.syscalls import Compute, Receive, Wait
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables of the ORWL runtime model.

    ``grant_cost`` is the control-thread service time per lock grant
    (event handling, FIFO bookkeeping, the message to the waiter) and
    ``direct_grant_latency`` the fallback cost when control threads are
    disabled.  Both are a few microseconds, the magnitude of a futex
    wake plus queue manipulation.
    """

    control_threads: bool = True
    grant_cost: float = 2e-6
    direct_grant_latency: float = 1e-6
    trace: bool = True


@dataclass
class RunResult:
    """Outcome of one runtime execution."""

    #: total simulated processing time in seconds.
    time: float
    #: the machine's counters.
    metrics: MachineMetrics
    #: op-level communication trace (None if tracing disabled).
    tracer: Optional[CommTracer]
    #: the mapping that was applied to compute ops.
    mapping: Mapping
    #: events processed by the simulation engine (diagnostics).
    engine_events: int = 0
    #: structured machine trace (None unless a repro.observe.Tracer was
    #: attached to the machine before the run).
    trace: Optional["Tracer"] = None


class _ControlQueue:
    """Service queue of one task's control thread."""

    __slots__ = ("jobs", "waiter", "shutdown")

    def __init__(self) -> None:
        self.jobs: deque[Request] = deque()
        self.waiter: Optional[SimEvent] = None
        self.shutdown = False


class OpContext:
    """The API surface an operation body sees (its ``ctx`` argument).

    Methods that can block are generators — call them as
    ``yield from ctx.acquire(h)``.  Non-blocking ones are plain calls.
    """

    def __init__(self, runtime: "Runtime", op: Operation, tid: int) -> None:
        self._rt = runtime
        self.op = op
        #: simulator thread id of this operation.
        self.tid = tid

    # -- work ------------------------------------------------------------

    def compute(self, seconds: Optional[float] = None, flops: Optional[float] = None):
        """A compute burst; give either wall seconds or flops.

        Flops are priced at the executing PU's rate when the work runs
        (heterogeneous machines: a slow core takes proportionally
        longer); seconds are taken literally.
        """
        if (seconds is None) == (flops is None):
            raise ValidationError("give exactly one of seconds= or flops=")
        if seconds is None:
            from repro.simulate.syscalls import ComputeFlops

            return ComputeFlops(flops)
        return Compute(seconds)

    def current_node(self) -> int:
        """NUMA node this op's thread currently runs on (first-touch
        homing: call once at iteration 0 and remember the result)."""
        return self._rt.machine.node_of_thread(self.tid)

    @property
    def now(self) -> float:
        """Current simulated time (seconds) — for schedule recording
        (e.g. the DAG frontend's per-task ready/done timestamps)."""
        return self._rt.machine.engine.now

    # -- lock protocol ------------------------------------------------------

    def acquire(self, handle: Handle) -> Generator:
        """Block until the handle's request is granted; readers then pull
        the payload from its last writer (the locality-priced transfer)."""
        req = handle.request
        if req is None:
            raise ValidationError(
                f"{handle.op_name!r}: acquire without a pending request "
                "(the runtime inserts the initial one; use ctx.next afterwards)"
            )
        event = self._rt.event_of(req)
        if not event.fired:
            yield Wait(event)
        if handle.mode is AccessMode.READ:
            loc = handle.location
            writer = loc.last_writer_tid
            if writer >= 0 and writer != self.tid and loc.nbytes > 0:
                if self._rt.tracer is not None:
                    self._rt.tracer.record_by_id(
                        self._rt.trace_id_of_tid(writer),
                        self._rt.trace_id_of_tid(self.tid),
                        loc.nbytes,
                    )
                yield Receive(writer, loc.nbytes)

    def release(self, handle: Handle) -> None:
        """Release the grant (``orwl_release``); writers stamp provenance."""
        if handle.mode is AccessMode.WRITE:
            handle.location.note_write(self.tid, self.op.name)
        handle.release()

    def next(self, handle: Handle) -> None:
        """``orwl_next``: finish this iteration's access and queue the
        next one (insert-at-tail then release, keeping round order)."""
        if handle.mode is AccessMode.WRITE:
            handle.location.note_write(self.tid, self.op.name)
        handle.next_request()


class Runtime:
    """Instantiate and execute a :class:`Program` on a :class:`Machine`."""

    def __init__(
        self,
        program: Program,
        machine: Machine,
        mapping: Optional[Mapping] = None,
        control_mapping: Optional[Mapping] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        """
        Parameters
        ----------
        program:
            The validated ORWL program.
        machine:
            A fresh machine (one run per machine).
        mapping:
            PU assignment for the compute operations, in program
            declaration order.  ``None`` (or -1 entries) = unbound.
        control_mapping:
            PU assignment for the per-task control threads, in task
            declaration order.  ``None`` = unbound control threads.
        """
        program.validate()
        self.program = program
        self.machine = machine
        self.config = config or RuntimeConfig()
        self.tracer = CommTracer() if self.config.trace else None

        ops = program.operations()
        n_ops = len(ops)
        if mapping is None:
            mapping = Mapping(tuple(-1 for _ in ops), policy="nobind")
        if mapping.n_threads != n_ops:
            raise ValidationError(
                f"mapping covers {mapping.n_threads} threads, program has {n_ops} ops"
            )
        self.mapping = mapping

        task_names = list(program.tasks)
        if control_mapping is not None and control_mapping.n_threads != len(task_names):
            raise ValidationError(
                f"control mapping covers {control_mapping.n_threads} threads, "
                f"program has {len(task_names)} tasks"
            )

        # -- create op threads (declaration order == thread order) ---------
        self._op_tid: dict[str, int] = {}
        self._trace_id_of_tid: dict[int, int] = {}
        for k, op in enumerate(ops):
            pu = mapping.pu(k)
            tid = machine.add_thread(op.name, bound_pu_os=pu if pu >= 0 else None)
            self._op_tid[op.name] = tid
            if self.tracer is not None:
                self._trace_id_of_tid[tid] = self.tracer.register(op.name)

        # -- create control threads (one per task) -------------------------
        self._control_queue_of_task: dict[str, _ControlQueue] = {}
        self._control_tids: list[int] = []
        if self.config.control_threads:
            for k, tname in enumerate(task_names):
                pu = control_mapping.pu(k) if control_mapping is not None else -1
                # Control threads are mostly-sleeping event handlers: they
                # preempt briefly rather than queue behind compute bursts.
                tid = machine.add_thread(
                    f"{tname}/ctl", bound_pu_os=pu if pu >= 0 else None, priority=True
                )
                cq = _ControlQueue()
                self._control_queue_of_task[tname] = cq
                self._control_tids.append(tid)
                machine.set_body(tid, self._control_body(cq, tid))

        # -- wire grant routing before inserting any request ----------------
        self._events: dict[int, SimEvent] = {}
        for loc in program.locations.values():
            loc.set_grant_callback(self._make_grant_router(loc))

        # -- the ORWL init protocol: initial requests ordered by the
        # handles' init phase, then declaration order.  This is the
        # deterministic global insertion order that seeds every FIFO.
        all_handles = [(h.init_phase, k, j, h)
                       for k, op in enumerate(ops)
                       for j, h in enumerate(op.handles)]
        all_handles.sort(key=lambda t: t[:3])
        for _, _, _, h in all_handles:
            h.insert_request()

        # -- attach op bodies ------------------------------------------------
        self._ops_remaining = n_ops
        for k, op in enumerate(ops):
            tid = self._op_tid[op.name]
            ctx = OpContext(self, op, tid)
            machine.set_body(tid, self._op_wrapper(op, ctx))

        self._ran = False

    # -- grant plumbing ------------------------------------------------------

    def event_of(self, req: Request) -> SimEvent:
        """The grant event of a request (created lazily, one per request).

        Stored on the request itself (``payload``) — a dict keyed by
        ``id(req)`` would collide when a released request is garbage
        collected and a new one reuses its id.
        """
        ev = req.payload
        if ev is None:
            ev = self.machine.new_event(f"grant:{req.tag}")
            req.payload = ev
        return ev

    def trace_id_of_tid(self, tid: int) -> int:
        return self._trace_id_of_tid[tid]

    def _make_grant_router(self, loc: Location):
        owner = loc.owner_task

        def route(req: Request) -> None:
            cq = self._control_queue_of_task.get(owner)
            if cq is None:
                # No control thread for this location: direct grant.
                self.event_of(req).fire(delay=self.config.direct_grant_latency)
                self._trace_grant(-1, req)
                return
            cq.jobs.append(req)
            if cq.waiter is not None:
                w, cq.waiter = cq.waiter, None
                w.fire()

        return route

    def _trace_grant(self, ctl_tid: int, req: Request) -> None:
        """Emit a structured grant event (ctl_tid -1 = direct grant)."""
        tracer = self.machine.tracer
        if tracer is None:
            return
        pu = self.machine.thread(ctl_tid).current_pu if ctl_tid >= 0 else -1
        tracer.emit(
            "grant",
            ts=self.machine.engine.now,
            tid=ctl_tid,
            thread=self.machine.thread(ctl_tid).name if ctl_tid >= 0 else "",
            pu=pu,
            node=self.machine.node_of_thread(ctl_tid) if ctl_tid >= 0 else -1,
            detail=req.tag,
        )

    def _grant_message_latency(self, ctl_tid: int, req: Request) -> float:
        """Latency of the grant message from control thread to waiter.

        Priced by the topological distance between the two threads'
        PUs: tens of nanoseconds under a shared cache, microseconds
        across a cluster network — the decentralized runtime's messages
        are not free, and their cost follows placement like everything
        else.
        """
        waiter_tid = self._op_tid.get(req.tag)
        if waiter_tid is None:
            return 0.0
        src = self.machine.thread(ctl_tid).current_pu
        dst = self.machine.thread(waiter_tid).current_pu
        if src < 0 or dst < 0:
            return 0.0
        return self.machine.distances.latency(src, dst)

    def _control_body(self, cq: _ControlQueue, ctl_tid: int) -> Generator:
        """Control-thread loop: service grant messages until shutdown."""
        while True:
            while cq.jobs:
                req = cq.jobs.popleft()
                yield Compute(self.config.grant_cost)
                self.event_of(req).fire(
                    delay=self._grant_message_latency(ctl_tid, req)
                )
                self._trace_grant(ctl_tid, req)
            if cq.shutdown:
                return
            ev = self.machine.new_event("ctl-wake")
            cq.waiter = ev
            yield Wait(ev)

    def _op_wrapper(self, op: Operation, ctx: OpContext) -> Generator:
        """Run the user body, then tear down: cancel leftover requests and,
        when the last op finishes, shut the control threads down."""
        try:
            yield from op.body(ctx)
        finally:
            for h in op.handles:
                h.cancel()
            self._ops_remaining -= 1
            if self._ops_remaining == 0:
                for cq in self._control_queue_of_task.values():
                    cq.shutdown = True
                    if cq.waiter is not None:
                        w, cq.waiter = cq.waiter, None
                        w.fire()

    # -- execution ----------------------------------------------------------

    def run(self) -> RunResult:
        """Execute to completion; returns the :class:`RunResult`."""
        if self._ran:
            raise ValidationError("runtime already ran; build a fresh one")
        self._ran = True
        total = self.machine.run()
        return RunResult(
            time=total,
            metrics=self.machine.metrics,
            tracer=self.tracer,
            mapping=self.mapping,
            engine_events=self.machine.engine.events_fired,
            trace=self.machine.tracer,
        )

    def tid_of_op(self, op_name: str) -> int:
        return self._op_tid[op_name]
