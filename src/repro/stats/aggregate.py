"""Per-point seed statistics: mean / median / stddev / bootstrap CI.

One :class:`SeedStats` summarizes the N replicate measurements of a
single sweep point.  Everything here is deterministic and *seed-order
invariant*: the replicate values are sorted before any arithmetic, and
the bootstrap resampler uses a fixed internal stream, so the same
multiset of values produces the same bits regardless of the order the
replicates finished in (serial vs parallel sweeps hand them over in
different internal orders only on the wire — the runner re-orders — but
the invariance is pinned by tests anyway).

The confidence interval is the percentile bootstrap of the mean,
widened (if necessary) to include the sample mean itself, so "the CI
contains the point estimate" is an invariant callers may rely on.  With
a single replicate the interval degenerates to ``[mean, mean]`` and the
stddev is 0 — aggregating N=1 is exactly the single-run number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validate import ValidationError

#: Fixed stream for the bootstrap resampler.  A constant (not a knob):
#: the CI of a given sample must be a pure function of the sample.
_BOOTSTRAP_SEED = 20160926  # the paper's CLUSTER 2016 week

#: Default resample count; 2000 keeps the quantile noise well under the
#: run-to-run spread it measures while staying sub-millisecond for the
#: replicate counts sweeps use (N <= a few dozen).
DEFAULT_N_BOOT = 2000


@dataclass(frozen=True)
class SeedStats:
    """Summary of the replicate values of one sweep point.

    Attributes
    ----------
    n:
        Number of replicates.
    mean, median, stddev:
        Sample statistics (stddev is the n-1 sample estimate; 0.0 when
        ``n == 1``).
    ci_lo, ci_hi:
        Bootstrap percentile CI of the mean at *confidence*, widened to
        contain :attr:`mean`.  Equal to the mean when ``n == 1``.
    confidence:
        The confidence level the interval was computed at.
    values:
        The replicate values, sorted ascending — the raw material for
        pairwise significance tests.
    """

    n: int
    mean: float
    median: float
    stddev: float
    ci_lo: float
    ci_hi: float
    confidence: float
    values: tuple[float, ...]

    @property
    def ci(self) -> tuple[float, float]:
        return (self.ci_lo, self.ci_hi)

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_hi - self.ci_lo) / 2.0

    def overlaps(self, other: "SeedStats") -> bool:
        """Whether the two confidence intervals intersect."""
        return self.ci_lo <= other.ci_hi and other.ci_lo <= self.ci_hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.4f} ±{self.stddev:.4f} "
            f"[{self.ci_lo:.4f}, {self.ci_hi:.4f}] (n={self.n})"
        )


def summarize(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = DEFAULT_N_BOOT,
) -> SeedStats:
    """Aggregate replicate *values* into a :class:`SeedStats`.

    Deterministic and order-invariant: any permutation of *values*
    yields bit-identical output.
    """
    if len(values) == 0:
        raise ValidationError("cannot summarize zero replicate values")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot <= 0:
        raise ValidationError(f"n_boot must be > 0, got {n_boot}")
    vals = np.sort(np.asarray(values, dtype=float))
    n = int(vals.size)
    mean = float(vals.mean())
    median = float(np.median(vals))
    if n == 1:
        return SeedStats(
            n=1, mean=mean, median=median, stddev=0.0,
            ci_lo=mean, ci_hi=mean, confidence=confidence,
            values=(float(vals[0]),),
        )
    stddev = float(vals.std(ddof=1))
    rng = np.random.default_rng(_BOOTSTRAP_SEED)
    idx = rng.integers(0, n, size=(n_boot, n))
    boot_means = vals[idx].mean(axis=1)
    alpha = 1.0 - confidence
    lo = float(np.quantile(boot_means, alpha / 2.0))
    hi = float(np.quantile(boot_means, 1.0 - alpha / 2.0))
    return SeedStats(
        n=n, mean=mean, median=median, stddev=stddev,
        ci_lo=min(lo, mean), ci_hi=max(hi, mean), confidence=confidence,
        values=tuple(float(v) for v in vals),
    )


def summarize_map(
    rows: Sequence[dict],
    confidence: float = 0.95,
    n_boot: int = DEFAULT_N_BOOT,
) -> dict[str, SeedStats]:
    """Aggregate replicate *metric dicts* key by key.

    *rows* are flat ``{metric name -> value}`` dicts, one per replicate
    (e.g. :meth:`repro.perf.PerfReport.summary` across seeds).  Only
    keys present in **every** row are aggregated — a metric missing from
    one replicate (a bucket that never occurred under that seed) has no
    defensible fill value, so it is dropped rather than silently
    zero-padded.  Keys come back sorted; inherits :func:`summarize`'s
    determinism and order invariance.
    """
    if len(rows) == 0:
        raise ValidationError("cannot summarize zero replicate rows")
    common = set(rows[0])
    for row in rows[1:]:
        common &= set(row)
    return {
        key: summarize(
            [float(row[key]) for row in rows],
            confidence=confidence,
            n_boot=n_boot,
        )
        for key in sorted(common)
    }
