"""Validation helpers for numeric arguments and matrices.

The mapping algorithms work on dense communication matrices; malformed
input (non-square, negative volumes, asymmetry) produces wrong placements
silently, so every public entry point validates eagerly with these
helpers and raises :class:`ValidationError` with a precise message.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ValidationError(ValueError):
    """Raised when a public API receives structurally invalid input."""


def check_square_matrix(m: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that *m* is a 2-D square array; return it as ``float64``."""
    a = np.asarray(m, dtype=np.float64)
    if a.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={a.ndim}")
    if a.shape[0] != a.shape[1]:
        raise ValidationError(f"{name} must be square, got shape={a.shape}")
    return a


def check_symmetric(m: np.ndarray, name: str = "matrix", rtol: float = 1e-9) -> np.ndarray:
    """Validate that *m* is square and symmetric (within *rtol*)."""
    a = check_square_matrix(m, name)
    if a.size and not np.allclose(a, a.T, rtol=rtol, atol=1e-12):
        worst = float(np.abs(a - a.T).max())
        raise ValidationError(f"{name} must be symmetric (max |m - m.T| = {worst:g})")
    return a


def check_nonnegative(m: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that all entries of *m* are >= 0."""
    a = np.asarray(m, dtype=np.float64)
    if a.size and float(a.min()) < 0:
        raise ValidationError(f"{name} must be non-negative, min = {a.min():g}")
    return a


def check_positive(value: float, name: str = "value") -> float:
    """Validate that a scalar is strictly positive."""
    v = float(value)
    if not v > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return v


def check_in_range(
    value: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    name: str = "value",
) -> float:
    """Validate ``lo <= value <= hi`` (either bound may be ``None``)."""
    v = float(value)
    if lo is not None and v < lo:
        raise ValidationError(f"{name} must be >= {lo}, got {value!r}")
    if hi is not None and v > hi:
        raise ValidationError(f"{name} must be <= {hi}, got {value!r}")
    return v
