"""Replicated sweeps: N independent seeds per point, one flat dispatch.

This is the layer between an experiment ("these are my sweep points")
and :class:`repro.exec.SweepRunner` ("here are independent tasks").
Each :class:`ReplicateSpec` names one point — an importable function,
its kwargs minus the seed, and a hashable key — and
:func:`run_replicated` expands it into *seeds* tasks:

* replicate 0 runs with the **base seed unchanged**, so an N=1
  replicated sweep is bit-identical to the historical single-run sweep
  (and replicate 0 of an N>1 sweep *is* that historical run);
* replicate r > 0 runs with ``derive_seed(base, scope, *key, r)`` —
  sha-256-derived, so the schedule of seeds is identical across
  processes, platforms and worker counts.

All replicates of all points go to the runner as one flat task list
(points outer, replicates inner), so a parallel sweep load-balances
across the full ``points × seeds`` grid while the returned structure is
grouped back per point in submission order — serial and parallel runs
are bit-identical, inheriting the runner's contract.

Progress: each replicate is a task, so the runner's ``point_done``
events fire once per replicate with a ``label#s<r>`` label; after
grouping, one ``point_stats`` event per point reports the aggregate
(see :data:`repro.exec.progress.SWEEP_EVENT_KINDS`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.exec.cache import point_key, resolve_point_cache
from repro.exec.progress import ProgressCallback, SweepEvent
from repro.exec.runner import SweepRunner, Task, derive_seed
from repro.stats.aggregate import SeedStats, summarize
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class ReplicateSpec:
    """One sweep point to be replicated.

    ``kwargs`` must *not* contain the seed argument; the expansion adds
    it under *seed_arg* per replicate.  ``key`` feeds the seed
    derivation and names the point in the grouped result.  ``weight``
    is the point's expected relative cost, forwarded to every replicate
    :class:`~repro.exec.runner.Task` so the runner's weight-aware
    chunker keeps giant points from starving the pool.
    """

    fn: Callable[..., Any]
    kwargs: dict[str, Any]
    key: tuple
    label: str = ""
    seed_arg: str = "seed"
    weight: float = 1.0


@dataclass
class ReplicatedPoint:
    """All replicates of one point, in replicate order."""

    key: tuple
    label: str
    seeds: tuple[int, ...]
    results: list[Any]
    stats: Optional[SeedStats] = None

    @property
    def first(self) -> Any:
        """Replicate 0 — the historical base-seed run."""
        return self.results[0]


@dataclass
class ReplicatedSweep:
    """The grouped outcome of :func:`run_replicated`."""

    points: list[ReplicatedPoint]
    n_seeds: int
    base_seed: int
    scope: str
    runner_stats: dict[str, Any] = field(default_factory=dict)

    def by_key(self) -> dict[tuple, ReplicatedPoint]:
        return {p.key: p for p in self.points}

    def stats_by_key(self) -> dict[tuple, SeedStats]:
        return {p.key: p.stats for p in self.points if p.stats is not None}


def replicate_seeds(base: int, scope: str, key: tuple, n: int) -> list[int]:
    """The seed schedule of one point: base first, derived children after.

    Stable across processes (`derive_seed` is sha-256 based) and
    collision-free across points and replicate indices for any
    practical sweep.
    """
    if n < 1:
        raise ValidationError(f"need at least one replicate, got {n}")
    return [
        int(base) if r == 0 else derive_seed(base, scope, *key, r)
        for r in range(n)
    ]


def run_replicated(
    specs: Sequence[ReplicateSpec],
    seeds: int,
    base_seed: int = 0,
    scope: str = "sweep",
    value_of: Optional[Callable[[Any], float]] = None,
    confidence: float = 0.95,
    runner: Optional[SweepRunner] = None,
    n_workers: int = 1,
    on_event: Optional[ProgressCallback] = None,
    point_cache: Any = None,
    shared_topologies: Sequence[Any] = (),
) -> ReplicatedSweep:
    """Run every spec *seeds* times and group the results per point.

    With *value_of* (result → measurement, e.g. ``lambda p: p.time``)
    each point also carries a :class:`SeedStats` aggregate and emits a
    ``point_stats`` progress event.  *runner* overrides *n_workers* and
    may carry its own callbacks; *on_event* subscribes to both the
    runner's task events and the aggregation events.

    *point_cache* follows :func:`repro.exec.cache.resolve_point_cache`
    (``None`` = the environment default, ``False`` = off): when a cache
    is active, every task gets its content address as ``cache_key`` and
    the runner serves stored replicates without re-simulating.
    *shared_topologies* forwards machine specs to the runner's
    shared-memory export (parallel sweeps only).
    """
    specs = list(specs)
    if seeds < 1:
        raise ValidationError(f"seeds must be >= 1, got {seeds}")
    if len({s.key for s in specs}) != len(specs):
        raise ValidationError("replicate spec keys must be unique")
    cache = resolve_point_cache(point_cache)
    schedule = [replicate_seeds(base_seed, scope, s.key, seeds) for s in specs]
    tasks = []
    for spec, point_seeds in zip(specs, schedule):
        for r, seed in enumerate(point_seeds):
            kwargs = {**spec.kwargs, spec.seed_arg: seed}
            tasks.append(
                Task(
                    spec.fn,
                    kwargs,
                    label=f"{spec.label}#s{r}" if seeds > 1 else spec.label,
                    weight=spec.weight,
                    cache_key=(
                        point_key(spec.fn, kwargs) if cache is not None else None
                    ),
                )
            )
    if runner is None:
        runner = SweepRunner(n_workers=n_workers)
    if cache is not None and runner.point_cache is None:
        runner.point_cache = cache
    if shared_topologies and not runner.shared_topologies:
        runner.shared_topologies = list(shared_topologies)
    if on_event is not None:
        runner.add_callback(on_event)
    t0 = time.perf_counter()
    flat = runner.map(tasks)

    points: list[ReplicatedPoint] = []
    for k, (spec, point_seeds) in enumerate(zip(specs, schedule)):
        results = flat[k * seeds : (k + 1) * seeds]
        stats = None
        if value_of is not None:
            stats = summarize(
                [value_of(r) for r in results], confidence=confidence
            )
            if on_event is not None:
                on_event(
                    SweepEvent(
                        "point_stats",
                        time.perf_counter() - t0,
                        index=k,
                        done=k + 1,
                        total=len(specs),
                        label=spec.label,
                        detail=str(stats),
                    )
                )
        points.append(
            ReplicatedPoint(
                key=spec.key,
                label=spec.label,
                seeds=tuple(point_seeds),
                results=results,
                stats=stats,
            )
        )
    return ReplicatedSweep(
        points=points,
        n_seeds=seeds,
        base_seed=int(base_seed),
        scope=scope,
        runner_stats=dict(runner.last_stats),
    )
