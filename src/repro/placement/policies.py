"""Placement policies: TreeMatch plus the standard baselines.

Every policy maps *n* threads (optionally with a communication matrix)
onto a topology, returning a :class:`~repro.treematch.mapping.Mapping`.
The baselines are the ones placement papers conventionally compare
against:

* :class:`CompactPolicy` — fill PUs in logical order (OpenMP
  ``OMP_PROC_BIND=close``);
* :class:`ScatterPolicy` — spread threads as far apart as possible
  (``OMP_PROC_BIND=spread``);
* :class:`RoundRobinPolicy` — PU *t mod P* for thread *t*;
* :class:`RandomPolicy` — uniform random PUs (seeded);
* :class:`NoBindPolicy` — no binding at all (mapping of ``-1`` entries):
  the OS-scheduler model in the simulator takes over, this is the
  paper's "ORWL NoBind" configuration;
* :class:`TreeMatchPolicy` — the paper's contribution, wrapping
  :func:`repro.treematch.tree_match`.

Policies are registered in :data:`POLICY_REGISTRY` for lookup by name.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

from repro.comm.matrix import CommMatrix
from repro.exec.cache import cached_tree_match
from repro.topology.query import distribute
from repro.topology.tree import Topology
from repro.treematch.algorithm import TreeMatchResult
from repro.treematch.mapping import Mapping
from repro.util.rng import SeedLike, make_rng
from repro.util.validate import ValidationError

if TYPE_CHECKING:
    from repro.placement.service import Decision, PlacementService


class PlacementPolicy(abc.ABC):
    """Interface: produce a thread → PU mapping for a topology."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        """Map *n_threads* threads onto *topo*.

        *matrix* is the thread communication matrix; affinity-blind
        policies ignore it.  *labels* names the threads in the result.
        """

    def _labels(self, n: int, labels: Optional[Sequence[str]]) -> tuple[str, ...]:
        if labels is None:
            return tuple(f"t{i}" for i in range(n))
        if len(labels) != n:
            raise ValidationError(f"{len(labels)} labels for {n} threads")
        return tuple(labels)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class CompactPolicy(PlacementPolicy):
    """Fill PUs in logical order; wraps around when oversubscribed."""

    name = "compact"

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        pus = topo.pus()
        pu_of = tuple(pus[t % len(pus)].os_index for t in range(n_threads))
        return Mapping(pu_of, self._labels(n_threads, labels), policy=self.name)


class ScatterPolicy(PlacementPolicy):
    """Maximize spread using the hwloc-distrib style apportionment."""

    name = "scatter"

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        chosen = distribute(topo, n_threads)
        pu_of = tuple(pu.os_index for pu in chosen)
        return Mapping(pu_of, self._labels(n_threads, labels), policy=self.name)


class RoundRobinPolicy(PlacementPolicy):
    """Thread *t* on PU ``t mod P`` by *os* index order."""

    name = "round-robin"

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        os_indices = sorted(pu.os_index for pu in topo.pus())
        pu_of = tuple(os_indices[t % len(os_indices)] for t in range(n_threads))
        return Mapping(pu_of, self._labels(n_threads, labels), policy=self.name)


class RandomPolicy(PlacementPolicy):
    """Uniform random placement (with replacement), seeded."""

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        os_indices = [pu.os_index for pu in topo.pus()]
        picks = self._rng.integers(0, len(os_indices), size=n_threads)
        pu_of = tuple(os_indices[int(k)] for k in picks)
        return Mapping(pu_of, self._labels(n_threads, labels), policy=self.name)


class NoBindPolicy(PlacementPolicy):
    """No binding: every thread is left to the OS scheduler (PU = -1).

    This is the paper's "ORWL NoBind" configuration; in the simulator
    the :mod:`repro.simulate.scheduler` model decides actual placement
    and migrations.
    """

    name = "nobind"

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        return Mapping(
            tuple(-1 for _ in range(n_threads)),
            self._labels(n_threads, labels),
            policy=self.name,
        )


class TreeMatchPolicy(PlacementPolicy):
    """The paper's topology-aware policy (Algorithm 1).

    Parameters mirror :func:`repro.treematch.tree_match`; *n_control*
    and the pairing are typically supplied by the ORWL runtime glue in
    :mod:`repro.placement.binder`.
    """

    name = "treematch"

    def __init__(
        self,
        n_control: int = 0,
        control_pairing: Optional[Sequence[int]] = None,
        strategy: str = "auto",
        refine: bool = True,
    ) -> None:
        self.n_control = n_control
        self.control_pairing = control_pairing
        self.strategy = strategy
        self.refine = refine
        self.last_result: Optional[TreeMatchResult] = None

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        if matrix is None:
            raise ValidationError("TreeMatchPolicy requires a communication matrix")
        if matrix.order != n_threads:
            raise ValidationError(
                f"matrix order {matrix.order} != n_threads {n_threads}"
            )
        # The memoized front end of tree_match: placement is seed-free,
        # so replicated sweeps derive each mapping once (see
        # repro.exec.cache; a pure pass-through under REPRO_CACHE=off).
        result = cached_tree_match(
            topo,
            matrix,
            n_control=self.n_control,
            control_pairing=self.control_pairing,
            strategy=self.strategy,
            refine=self.refine,
        )
        self.last_result = result
        mapping = result.mapping.restricted(n_threads)
        return Mapping(
            mapping.pu_of, self._labels(n_threads, labels), policy=self.name
        )


class ServicePolicy(PlacementPolicy):
    """Placement through a long-lived :class:`~repro.placement.service.PlacementService`.

    Functionally TreeMatch, but every ``place`` call goes through the
    service's decision memo and honors its fault state: PUs the service
    has marked failed or drained are never used, and repairs are
    incremental (survivor bindings stay put).  One service instance is
    kept per topology fingerprint, so experiments that sweep multiple
    machines through a single policy object work unchanged.

    The underlying services are exposed via :meth:`service_for` so a
    harness can inject faults (``policy.service_for(topo).fail(4)``)
    between placement calls.
    """

    name = "service"

    def __init__(self, strategy: str = "auto", refine: bool = True) -> None:
        self.strategy = strategy
        self.refine = refine
        self._services: dict[str, PlacementService] = {}
        self.last_decision: Optional[Decision] = None

    def service_for(self, topo: Topology) -> "PlacementService":
        """The (lazily created) service bound to *topo*."""
        from repro.exec.cache import topology_fingerprint
        from repro.placement.service import PlacementService

        key = topology_fingerprint(topo)
        svc = self._services.get(key)
        if svc is None:
            svc = PlacementService(
                topo, strategy=self.strategy, refine=self.refine
            )
            self._services[key] = svc
        return svc

    def place(
        self,
        topo: Topology,
        n_threads: int,
        matrix: Optional[CommMatrix] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Mapping:
        if matrix is None:
            raise ValidationError("ServicePolicy requires a communication matrix")
        if matrix.order != n_threads:
            raise ValidationError(
                f"matrix order {matrix.order} != n_threads {n_threads}"
            )
        decision = self.service_for(topo).query_sync(matrix)
        self.last_decision = decision
        mapping = decision.mapping.restricted(n_threads)
        return Mapping(
            mapping.pu_of, self._labels(n_threads, labels), policy=self.name
        )


#: name → policy factory (zero-argument callables).
POLICY_REGISTRY: dict[str, type[PlacementPolicy]] = {
    CompactPolicy.name: CompactPolicy,
    ScatterPolicy.name: ScatterPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    RandomPolicy.name: RandomPolicy,
    NoBindPolicy.name: NoBindPolicy,
    TreeMatchPolicy.name: TreeMatchPolicy,
    ServicePolicy.name: ServicePolicy,
}


def make_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a policy by registry name."""
    try:
        cls = POLICY_REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown policy {name!r}; available: {', '.join(sorted(POLICY_REGISTRY))}"
        ) from None
    return cls(**kwargs)
