"""Perf-trajectory mining over accumulated ``BENCH_*.json`` reports.

``repro.tools.bench`` emits one report per invocation; this module
turns the pile into a **trend-aware regression detector** (the ISSUE-10
tentpole): load every report (plus the committed
``benchmarks/baseline_ci.json``), order by ``meta.timestamp``, extract
per-headline series, and flag drift with the existing ``repro.stats``
machinery.

Two classes of series, two detectors:

* **Deterministic stats rows** (fig1 / dag per-point simulated means
  with bootstrap CIs): the latest mean is gated against the *oldest*
  row's CI band — ``mean > ci_hi × (1 + threshold)`` — exactly the
  standing 25 % CI-band gate, but anchored at the start of the
  trajectory so slow multi-commit creep cannot hide inside successive
  re-baselines.
* **Wall-clock headlines** (placement-service latency/throughput,
  cohort speedup, cache warm speedup): host-dependent, so a band gate
  would misfire.  Instead the series is split into older/newer halves
  and drift requires *both* a relative median change beyond the
  threshold in the harmful direction *and* a medium/large Cliff's
  delta between the halves — direction plus effect size, not noise.

A single-report trajectory (the committed baseline alone) has nothing
to compare and reports every headline ``ok`` — the acceptance
criterion's "stays green on the committed trajectory".
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Sequence

from repro.stats.significance import cliffs_delta, cliffs_delta_label

__all__ = [
    "HEADLINES",
    "extract_headline_series",
    "extract_stats_rows",
    "history_report",
    "load_reports",
    "render_history",
]

#: Wall-clock headline series: (section, metric, better-direction).
HEADLINES: tuple[tuple[str, str, str], ...] = (
    ("cohort", "batched_over_scalar", "higher"),
    ("fig1", "speedup", "higher"),
    ("cache", "warm_speedup", "higher"),
    ("placement_service", "warm_p50_s", "lower"),
    ("placement_service", "warm_p99_s", "lower"),
    ("placement_service", "queries_per_s", "higher"),
    ("dag", "speedup", "higher"),
)

#: Minimum series length before the half-split detector speaks; below
#: it every verdict is "ok" with note "insufficient history".
MIN_SERIES = 4


def load_reports(
    paths: Sequence[str] | None = None,
    *,
    directory: str = ".",
    baseline: str | None = "benchmarks/baseline_ci.json",
) -> list[dict[str, Any]]:
    """Load BENCH reports, sorted by ``meta.timestamp``.

    With *paths* ``None``, globs ``BENCH_*.json`` under *directory* and
    prepends *baseline* when it exists.  Files that fail to parse or
    lack a ``meta`` section are skipped (a truncated artifact must not
    take the detector down).  Each returned report gains a
    ``meta._source`` path for provenance.
    """
    if paths is None:
        found = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
        candidates = list(found)
        if baseline and os.path.exists(baseline):
            candidates.insert(0, baseline)
    else:
        candidates = list(paths)
    reports = []
    for path in candidates:
        try:
            with open(path) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(report, dict) or "meta" not in report:
            continue
        report["meta"]["_source"] = path
        reports.append(report)
    reports.sort(key=lambda r: str(r["meta"].get("timestamp", "")))
    return reports


def extract_headline_series(
    reports: Sequence[dict[str, Any]],
) -> list[dict[str, Any]]:
    """One ``{section, metric, direction, values, sources}`` per headline.

    Reports missing a section (e.g. ``--no-cache`` runs have no
    ``cache``) simply contribute nothing to that series.
    """
    out = []
    for section, metric, direction in HEADLINES:
        values: list[float] = []
        sources: list[str] = []
        for report in reports:
            value = report.get(section, {}).get(metric)
            if isinstance(value, (int, float)):
                values.append(float(value))
                sources.append(report["meta"].get("_source", "?"))
        out.append(
            {
                "section": section,
                "metric": metric,
                "direction": direction,
                "values": values,
                "sources": sources,
            }
        )
    return out


def extract_stats_rows(
    reports: Sequence[dict[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Deterministic per-point rows keyed ``"fig1 bind@8"`` style.

    Each value is the row's trajectory in report order (rows carry
    ``mean`` / ``ci_lo`` / ``ci_hi`` from the replicated sweeps).
    """
    series: dict[str, list[dict[str, Any]]] = {}
    for report in reports:
        for row in report.get("fig1", {}).get("stats", []) or []:
            key = f"fig1 {row['implementation']}@{row['cores']}"
            series.setdefault(key, []).append(row)
        for row in report.get("dag", {}).get("stats", []) or []:
            key = f"dag {row['workload']}/{row['policy']}"
            series.setdefault(key, []).append(row)
    return series


def _judge_walltime(
    values: Sequence[float], direction: str, threshold: float
) -> dict[str, Any]:
    """Half-split drift verdict for one host-dependent headline."""
    n = len(values)
    if n < MIN_SERIES:
        return {
            "verdict": "ok",
            "note": f"insufficient history (n={n} < {MIN_SERIES})",
        }
    half = n // 2
    older, newer = list(values[:half]), list(values[half:])
    med_old = sorted(older)[len(older) // 2]
    med_new = sorted(newer)[len(newer) // 2]
    rel = (med_new - med_old) / med_old if med_old else 0.0
    delta = cliffs_delta(newer, older)
    label = cliffs_delta_label(delta)
    harmful = rel > threshold if direction == "lower" else rel < -threshold
    drift = harmful and label in ("medium", "large")
    return {
        "verdict": "drift" if drift else "ok",
        "relative_change": rel,
        "cliffs_delta": delta,
        "effect": label,
        "median_older": med_old,
        "median_newer": med_new,
    }


def history_report(
    reports: Sequence[dict[str, Any]], threshold: float = 0.25
) -> dict[str, Any]:
    """Build the full trajectory report over loaded BENCH files."""
    headlines = []
    for series in extract_headline_series(reports):
        judged = _judge_walltime(
            series["values"], series["direction"], threshold
        )
        headlines.append({**series, **judged})

    rows = []
    for key, trajectory in sorted(extract_stats_rows(reports).items()):
        first, last = trajectory[0], trajectory[-1]
        limit = first["ci_hi"] * (1.0 + threshold)
        drift = len(trajectory) > 1 and last["mean"] > limit
        rows.append(
            {
                "key": key,
                "n": len(trajectory),
                "means": [t["mean"] for t in trajectory],
                "baseline_mean": first["mean"],
                "baseline_ci_hi": first["ci_hi"],
                "limit": limit,
                "latest_mean": last["mean"],
                "verdict": "drift" if drift else "ok",
            }
        )

    drifts = [
        f"{h['section']}.{h['metric']}: median "
        f"{h['median_older']:.6g} -> {h['median_newer']:.6g} "
        f"({h['relative_change']:+.0%}, delta {h['cliffs_delta']:+.2f} "
        f"{h['effect']})"
        for h in headlines
        if h["verdict"] == "drift"
    ] + [
        f"{r['key']}: latest mean {r['latest_mean']:.6g} exceeds baseline "
        f"CI limit {r['limit']:.6g}"
        for r in rows
        if r["verdict"] == "drift"
    ]
    return {
        "n_reports": len(reports),
        "sources": [r["meta"].get("_source", "?") for r in reports],
        "threshold": threshold,
        "headlines": headlines,
        "stats_rows": rows,
        "drifts": drifts,
        "ok": not drifts,
    }


_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """A unicode sparkline of *values*, resampled to at most *width*."""
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK[0] * len(vals)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in vals
    )


def render_history(report: dict[str, Any]) -> str:
    """Human-readable trajectory table for the CLI."""
    lines = [
        f"bench history: {report['n_reports']} report(s), "
        f"threshold {report['threshold']:.0%}"
    ]
    for h in report["headlines"]:
        name = f"{h['section']}.{h['metric']}"
        if not h["values"]:
            lines.append(f"  {name:<38} (no data)")
            continue
        spark = sparkline(h["values"])
        latest = h["values"][-1]
        note = h.get("note", "")
        if "relative_change" in h:
            note = (
                f"{h['relative_change']:+.0%} "
                f"delta {h['cliffs_delta']:+.2f} ({h['effect']})"
            )
        mark = "DRIFT" if h["verdict"] == "drift" else "ok"
        lines.append(
            f"  {name:<38} {spark:<24} latest {latest:.6g}  "
            f"[{mark}] {note}"
        )
    for r in report["stats_rows"]:
        mark = "DRIFT" if r["verdict"] == "drift" else "ok"
        lines.append(
            f"  {r['key']:<38} {sparkline(r['means']):<24} "
            f"latest {r['latest_mean']:.6g}  [{mark}] "
            f"limit {r['limit']:.6g} (n={r['n']})"
        )
    if report["drifts"]:
        lines.append(f"  -> {len(report['drifts'])} drift(s) detected")
    else:
        lines.append("  -> trajectory green")
    return "\n".join(lines)
