"""Terminal plotting: ASCII line charts for experiment results.

No plotting library is available offline, so figures are rendered as
text — good enough to eyeball the crossovers the paper's Figure 1
shows.  :func:`ascii_plot` is generic; :func:`plot_fig1` adapts a
:class:`~repro.experiments.fig1.Fig1Result`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Marker per series, cycled.
MARKERS = "ox+*#@"


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    logy: bool = False,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Points are placed on a *width* × *height* grid scaled to the data
    bounds; each series uses the next marker from :data:`MARKERS`.
    """
    import math

    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return "(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    if logy:
        if min(ys) <= 0:
            raise ValueError("logy requires positive y values")
        ys = [math.log10(y) for y in ys]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, data) in enumerate(series.items()):
        marker = MARKERS[k % len(MARKERS)]
        for x, y in data:
            yy = math.log10(y) if logy else y
            col = int((x - x0) / xspan * (width - 1))
            row = int((yy - y0) / yspan * (height - 1))
            grid[height - 1 - row][col] = marker

    top = 10 ** y1 if logy else y1
    bot = 10 ** y0 if logy else y0
    lines = [f"{top:10.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{bot:10.4g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x0:<10.4g}" + " " * max(width - 20, 0) + f"{x1:>10.4g}"
    )
    legend = "   ".join(
        f"{MARKERS[k % len(MARKERS)]} = {name}" for k, name in enumerate(series)
    )
    footer = []
    if xlabel or ylabel:
        footer.append(f"x: {xlabel}   y: {ylabel}".strip())
    footer.append(legend)
    return "\n".join(lines + footer)


def plot_fig1(result, width: int = 64, height: int = 18, logy: bool = True) -> str:
    """ASCII rendering of a Figure-1 sweep (time vs cores, log y)."""
    from repro.experiments.fig1 import IMPLEMENTATIONS

    series = {impl: result.series(impl) for impl in IMPLEMENTATIONS}
    series = {k: v for k, v in series.items() if v}
    return ascii_plot(
        series,
        width=width,
        height=height,
        logy=logy,
        xlabel="cores",
        ylabel="processing time (simulated s)",
    )
