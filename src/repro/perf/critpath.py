"""Critical-path extraction from a traced run.

Two complementary views of the same dependency structure:

* :func:`extract_critical_path` — the **longest weighted chain** through
  the span dependency DAG.  Nodes are spans; edges are program order
  (consecutive spans of one thread) and wakeup causality (a ``wait``
  span depends on the activity that released it); weights are the work
  durations (compute + transfer — waits and run-queue time are elapsed
  time, not work).  The chain length is the dependency-limited lower
  bound on the makespan: no schedule of this run's work on any number
  of PUs finishes faster.  Structurally ``length <= makespan <=
  serial_time`` — the invariant :class:`repro.observe.invariants.
  InvariantChecker` audits as ``critical-path-bound``.

* :func:`attribute_makespan` — the **backward walk**: starting from the
  span that finishes last, walk the causal chain toward time zero and
  charge every second of ``[0, makespan]`` to a bucket (``compute``,
  ``transfer:<level>``, ``wait``, ``runq``, ``migration``, ``idle``).
  The buckets partition the makespan *exactly*, which is what lets the
  top-down report (:mod:`repro.perf.topdown`) attribute a time gap
  between two runs to buckets that sum to the gap.

Wakeup edges use the standard trace-analysis heuristic (the latest
activity on another thread finishing no later than the wait's release),
because the stream records *when* a wait released, not *who* fired the
event.  Migration penalties are charged by the simulator into the head
of the next work span of the migrated thread; the walk carves them back
out into the ``migration`` bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.observe.tracer import TraceEvent
from repro.perf.spans import WORK_KINDS, TraceIndex, bucket_of, ensure_index

#: Absolute slack used when comparing simulated timestamps.
_ABS_TOL = 1e-12
#: Relative slack (float summation drift over long runs).
_REL_TOL = 1e-9


def _tol(at: float) -> float:
    return _ABS_TOL + _REL_TOL * abs(at)


@dataclass
class CriticalPath:
    """The longest weighted dependency chain of one traced run.

    ``length`` is the chain's work seconds; ``chain`` the spans on it in
    time order (wait/runq links appear with zero weight — they carry the
    dependency, not work).  ``by_kind`` breaks the *weighted* length
    down per bucket; ``elapsed_by_kind`` the chain's elapsed durations
    (including waits), useful to see where the chain parks.
    """

    length: float = 0.0
    makespan: float = 0.0
    serial_time: float = 0.0
    work_time: float = 0.0
    n_spans: int = 0
    n_edges: int = 0
    by_kind: dict[str, float] = field(default_factory=dict)
    elapsed_by_kind: dict[str, float] = field(default_factory=dict)
    #: Spans on the chain (dropped by JSON round-trips — ``n_chain``
    #: preserves the count).
    chain: tuple[TraceEvent, ...] = ()
    n_chain: int = 0

    @property
    def coverage(self) -> float:
        """Chain work as a fraction of the makespan (1.0 = one thread's
        work explains the whole run — no parallel slack)."""
        return self.length / self.makespan if self.makespan > 0 else 0.0

    @property
    def parallelism(self) -> float:
        """Average parallelism: total work / critical work.  The upper
        bound on the speedup more PUs could ever deliver."""
        return self.work_time / self.length if self.length > 0 else 0.0

    def bound_ok(self) -> bool:
        """``critical_path <= makespan <= serial_time`` (with float slack)."""
        return bool(
            self.length <= self.makespan + _tol(self.makespan)
            and self.makespan <= self.serial_time + _tol(self.serial_time)
        )

    def to_json_dict(self) -> dict:
        return {
            "length": self.length,
            "makespan": self.makespan,
            "serial_time": self.serial_time,
            "work_time": self.work_time,
            "n_spans": self.n_spans,
            "n_edges": self.n_edges,
            "chain_spans": self.n_chain,
            "coverage": self.coverage,
            "parallelism": self.parallelism,
            "by_kind": dict(sorted(self.by_kind.items())),
            "elapsed_by_kind": dict(sorted(self.elapsed_by_kind.items())),
            "bound_ok": self.bound_ok(),
        }

    def render(self) -> str:
        lines = [
            f"critical path : {self.length:.6g} s work over "
            f"{self.n_chain} chained spans "
            f"({self.coverage:.1%} of makespan)",
            f"makespan      : {self.makespan:.6g} s    "
            f"serial time: {self.serial_time:.6g} s    "
            f"avg parallelism: {self.parallelism:.2f}x",
        ]
        if self.by_kind:
            parts = [
                f"{k}={v:.4g}s" for k, v in sorted(self.by_kind.items())
            ]
            lines.append("on-chain work : " + "  ".join(parts))
        waits = self.elapsed_by_kind.get("wait", 0.0)
        runq = self.elapsed_by_kind.get("runq", 0.0)
        if waits or runq:
            lines.append(
                f"on-chain stall: wait={waits:.4g}s  runq={runq:.4g}s "
                "(dependency links, zero work weight)"
            )
        lines.append(
            "bound         : critical_path <= makespan <= serial_time — "
            + ("OK" if self.bound_ok() else "VIOLATED")
        )
        return "\n".join(lines)


def extract_critical_path(
    events: "Sequence[TraceEvent] | TraceIndex",
) -> CriticalPath:
    """Longest weighted chain through the span dependency DAG.

    Runs one pass in emission order — the tracer's ``seq`` is a
    topological order of the run (a span is emitted no later than
    anything it causes) — so the DP needs no explicit sort.
    """
    idx = ensure_index(events)
    spans = idx.spans
    n = len(spans)
    if n == 0:
        return CriticalPath()

    best = [0.0] * n
    pred = [-1] * n
    pos_of_seq = {s.seq: i for i, s in enumerate(spans)}
    last_of_thread: dict[int, int] = {}
    n_edges = 0

    for i, s in enumerate(spans):
        weight = s.dur if s.kind in WORK_KINDS else 0.0
        base = 0.0
        p = -1
        j = last_of_thread.get(s.tid, -1)
        if j >= 0:
            n_edges += 1
            if best[j] > base:
                base, p = best[j], j
        if s.kind == "wait":
            r = idx.last_ending_before(
                s.end + _tol(s.end), exclude_tid=s.tid, require_dur=0.0
            )
            # Causality: the releaser must have been emitted before the
            # wait's release was recorded.
            if r is not None and r.seq < s.seq:
                k = pos_of_seq[r.seq]
                n_edges += 1
                if best[k] > base:
                    base, p = best[k], k
        best[i] = base + weight
        pred[i] = p
        last_of_thread[s.tid] = i

    end_i = 0
    for i in range(1, n):  # strict > keeps the earliest argmax: deterministic
        if best[i] > best[end_i]:
            end_i = i

    chain: list[TraceEvent] = []
    by_kind: dict[str, float] = {}
    elapsed: dict[str, float] = {}
    i = end_i
    while i >= 0:
        s = spans[i]
        chain.append(s)
        b = bucket_of(s)
        if s.kind in WORK_KINDS:
            by_kind[b] = by_kind.get(b, 0.0) + s.dur
        elapsed[b] = elapsed.get(b, 0.0) + s.dur
        i = pred[i]
    chain.reverse()

    return CriticalPath(
        length=best[end_i],
        makespan=idx.makespan,
        serial_time=idx.serial_time,
        work_time=idx.work_time,
        n_spans=n,
        n_edges=n_edges,
        by_kind=by_kind,
        elapsed_by_kind=elapsed,
        chain=tuple(chain),
        n_chain=len(chain),
    )


@dataclass
class Attribution:
    """The backward walk's exact partition of ``[0, makespan]``.

    ``buckets`` maps bucket name to seconds; the values sum to
    ``makespan`` within float slack (pinned by property tests).
    """

    buckets: dict[str, float] = field(default_factory=dict)
    makespan: float = 0.0
    n_segments: int = 0

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def share(self, bucket: str) -> float:
        return self.buckets.get(bucket, 0.0) / self.makespan if self.makespan else 0.0

    def to_json_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "n_segments": self.n_segments,
            "buckets": dict(sorted(self.buckets.items())),
        }

    def render(self, title: str = "makespan attribution (critical walk)") -> str:
        lines = [title, "-" * len(title)]
        for name, sec in sorted(
            self.buckets.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {name:<20} {sec:>12.6g} s {self.share(name):>7.1%}")
        lines.append(f"  {'total':<20} {self.total:>12.6g} s "
                     f"(makespan {self.makespan:.6g} s)")
        return "\n".join(lines)


def _embedded_penalties(events: Sequence[TraceEvent]) -> dict[int, float]:
    """Migration penalty seconds charged into each work span, by seq.

    The simulator adds a migrated thread's pending cache-refill penalty
    to the duration of its *next* compute or transfer; this maps each
    such span to the penalty it absorbed so the walk can carve it out.
    """
    pending: dict[int, float] = {}
    out: dict[int, float] = {}
    for ev in events:
        if ev.kind == "migration":
            pending[ev.tid] = pending.get(ev.tid, 0.0) + ev.dur
        elif ev.kind in WORK_KINDS:
            pen = pending.pop(ev.tid, 0.0)
            if pen > 0.0:
                out[ev.seq] = min(pen, ev.dur)
    return out


def attribute_makespan(
    events: "Sequence[TraceEvent] | TraceIndex",
    raw_events: "Sequence[TraceEvent] | None" = None,
) -> Attribution:
    """Walk backward from the last finisher and charge every second.

    Pass the raw event sequence (or a :class:`TraceIndex` built from
    one).  When handing in a prebuilt index, also pass *raw_events* so
    migration instants (not spans, hence not indexed) are visible;
    without them the ``migration`` bucket stays merged into compute.
    """
    idx = ensure_index(events)
    if raw_events is None and not isinstance(events, TraceIndex):
        raw_events = events
    makespan = idx.makespan
    out = Attribution(makespan=makespan)
    if makespan <= 0.0 or not idx.spans:
        return out
    pen_of = _embedded_penalties(raw_events) if raw_events is not None else {}
    buckets = out.buckets

    def add(bucket: str, seconds: float) -> None:
        if seconds > 0.0:
            buckets[bucket] = buckets.get(bucket, 0.0) + seconds
            out.n_segments += 1

    last = idx.last_finisher()
    assert last is not None
    tid = last.tid
    cursor = makespan
    guard = 4 * len(idx.spans) + 64

    while cursor > _tol(makespan) and guard > 0:
        guard -= 1
        tol = _tol(cursor)
        s = idx.span_covering(tid, cursor)
        if s is None or s.end < cursor - tol:
            # Nothing on this thread explains the time below the cursor:
            # jump to whatever finished last globally, counting the gap
            # (if any) as idle.
            g = idx.last_ending_before(cursor + tol, require_dur=_ABS_TOL)
            if g is None:
                add("idle", cursor)
                cursor = 0.0
                break
            if g.end < cursor - tol:
                add("idle", cursor - g.end)
                cursor = g.end
            tid = g.tid
            continue
        if s.kind == "wait":
            hi = min(s.end, cursor)
            r = idx.last_ending_before(
                hi + tol, exclude_tid=tid, require_dur=_ABS_TOL, prefer_work=True
            )
            usable = r is not None and r.end > s.ts + tol
            # A wait-kind releaser must strictly advance the walk, or two
            # co-ending waits would hand the cursor back and forth forever.
            if usable and r.kind == "wait" and r.end >= cursor - tol:
                usable = False
            if usable:
                if r.end < cursor:
                    add("wait", cursor - r.end)  # release latency tail
                    cursor = r.end
                tid = r.tid
                continue
            # No releaser found — the wait itself eats the time.
        lo = max(s.ts, 0.0)
        hi = min(s.end, cursor)
        if hi > lo:
            pen = pen_of.get(s.seq, 0.0)
            if pen > 0.0:
                charged = min(max(0.0, min(s.ts + pen, hi) - lo), hi - lo)
                if charged > 0.0:
                    add("migration", charged)
                add(bucket_of(s), (hi - lo) - charged)
            else:
                add(bucket_of(s), hi - lo)
        cursor = min(cursor, lo)

    if cursor > _tol(makespan):
        # Guard exhausted on a pathological stream: keep the partition
        # exact by charging the unexplained remainder as wait.
        add("wait", cursor)
    return out
