"""Distance, latency, and bandwidth matrices derived from the tree.

The simulator and the mapping-cost metrics both need "how far apart are
PU *i* and PU *j*".  Three related notions are provided:

* **hop distance** — ``depth(i) + depth(j) - 2 * depth(lca(i, j))``, the
  tree distance used by TreeMatch's cost analysis;
* **level distance** — the depth of the lowest common ancestor itself,
  which indexes the memory-hierarchy level a transfer lands in;
* **latency / bandwidth matrices** — physical cost numbers attached to
  each sharing level, the simulator's inputs.

All matrices are indexed by PU *logical* index (0..nb_pus-1), the same
indexing the mapping uses.  They are computed once per topology by a
vectorized per-level ancestor sweep — O(depth) numpy passes over the
P × P grid instead of the former pure-Python O(P^2) chain walk — so
even the multi-thousand-PU machines of the scaling study build in well
under a second.  Internally the model keeps the per-pair tables in the
narrowest dtype that fits (depths in int16, object types in int8),
which is what makes a 4096-PU machine cost tens of MB rather than a
GB-class set of int64 matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.topology.objects import ObjType, TopologyObject
from repro.topology.tree import Topology


def _ancestor_chain(obj: TopologyObject) -> list[TopologyObject]:
    chain = [obj]
    node = obj.parent
    while node is not None:
        chain.append(node)
        node = node.parent
    chain.reverse()  # root first
    return chain


def _ancestor_tables(topo: Topology) -> tuple[np.ndarray, np.ndarray]:
    """Per-PU ancestor tables: ``(ids, types)``, each shaped (P, depth+1).

    ``ids[i, d]`` is a dense integer naming the ancestor of PU *i* at
    tree depth *d* (column 0 is the machine root, the last column the PU
    itself); ``types[i, d]`` is that ancestor's :class:`ObjType` value.
    Topologies are leaf-uniform (every PU sits at the same depth), so
    the tables are rectangular.
    """
    pus = topo.pus()
    n = len(pus)
    depth = pus[0].depth + 1 if n else 1
    ids = np.empty((n, depth), dtype=np.int64)
    types = np.empty((n, depth), dtype=np.int8)
    seq: dict[int, int] = {}
    for i, pu in enumerate(pus):
        for d, obj in enumerate(_ancestor_chain(pu)):
            key = id(obj)
            num = seq.get(key)
            if num is None:
                num = seq[key] = len(seq)
            ids[i, d] = num
            types[i, d] = int(obj.type)
    return ids, types


def _lca_tables(topo: Topology) -> tuple[np.ndarray, np.ndarray]:
    """``(lca_depth, lca_type)`` pairwise PU tables, compact dtypes.

    ``lca_depth`` (int16) holds the tree depth of the lowest common
    ancestor (diagonal: the PU depth itself); ``lca_type`` (int8) its
    :class:`ObjType` value (diagonal: the PU type).  Computed as one
    cumulative same-ancestor mask refined level by level — a handful of
    vectorized P × P passes, no Python-level pair loop.
    """
    ids, types = _ancestor_tables(topo)
    n, depth = ids.shape
    lca_depth = np.zeros((n, n), dtype=np.int16)
    lca_type = np.zeros((n, n), dtype=np.int8)
    if n == 0:
        return lca_depth, lca_type
    lca_type[:] = types[0, 0]  # depth 0 is the shared machine root
    same = np.ones((n, n), dtype=bool)
    for d in range(1, depth):
        col = ids[:, d]
        same &= col[:, None] == col[None, :]
        lca_depth[same] = d
        lca_type = np.where(same, types[:, d][:, None], lca_type)
    return lca_depth, lca_type


def lca_depth_matrix(topo: Topology) -> np.ndarray:
    """Matrix ``L[i, j]`` = depth of the lowest common ancestor of PUs i, j.

    Indexed by PU logical index.  Diagonal holds the PU depth itself.
    """
    return _lca_tables(topo)[0].astype(np.int64)


def hop_distance_matrix(topo: Topology) -> np.ndarray:
    """Tree hop distance between PUs: ``d(i)+d(j)-2*d(lca)``."""
    lca = lca_depth_matrix(topo)
    pus = topo.pus()
    depths = np.array([pu.depth for pu in pus], dtype=np.int64)
    out = depths[:, None] + depths[None, :] - 2 * lca
    np.fill_diagonal(out, 0)
    return out


@dataclass
class LinkCosts:
    """Physical cost of sharing data at one tree level.

    ``latency`` is the one-way transfer setup cost in seconds and
    ``bandwidth`` the sustained byte rate for data that must cross this
    level to get from producer to consumer.
    """

    latency: float
    bandwidth: float

    def transfer_time(self, nbytes: float) -> float:
        """Time to move *nbytes* across this level."""
        if nbytes <= 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


#: Calibrated per-sharing-level costs.  Keys are the *type* of the lowest
#: common ancestor; values follow published NUMA-era measurements: core-
#: private cache sharing is nearly free, same-socket L3 sharing costs tens
#: of ns at ~30 GB/s, same-board DRAM ~100 ns at ~10 GB/s, and remote
#: sockets on a large SMP pay several-fold more with interconnect hops.
DEFAULT_LEVEL_COSTS: dict[ObjType, LinkCosts] = {
    ObjType.CORE: LinkCosts(latency=5e-9, bandwidth=80e9),  # sibling hyperthreads
    ObjType.L1: LinkCosts(latency=4e-9, bandwidth=100e9),
    ObjType.L2: LinkCosts(latency=12e-9, bandwidth=60e9),
    ObjType.L3: LinkCosts(latency=40e-9, bandwidth=30e9),
    ObjType.PACKAGE: LinkCosts(latency=60e-9, bandwidth=25e9),
    ObjType.NUMANODE: LinkCosts(latency=100e-9, bandwidth=10e9),
    ObjType.GROUP: LinkCosts(latency=250e-9, bandwidth=5e9),
    ObjType.MACHINE: LinkCosts(latency=400e-9, bandwidth=3e9),
}

#: Costs for *cluster* trees (the ``cluster`` preset): the GROUP level
#: is a compute node's internal cross-socket link, and the MACHINE root
#: is the inter-node network (InfiniBand-class: microseconds of latency,
#: NIC-limited bandwidth).
CLUSTER_LEVEL_COSTS: dict[ObjType, LinkCosts] = {
    **DEFAULT_LEVEL_COSTS,
    ObjType.GROUP: LinkCosts(latency=400e-9, bandwidth=3e9),  # within a node
    ObjType.MACHINE: LinkCosts(latency=2e-6, bandwidth=1.5e9),  # the network
}


def cluster_distance_model(topo: "Topology") -> "DistanceModel":
    """A :class:`DistanceModel` using :data:`CLUSTER_LEVEL_COSTS`."""
    return DistanceModel(topo, level_costs=dict(CLUSTER_LEVEL_COSTS))


@dataclass
class DistanceModel:
    """Bundles the per-topology distance matrices and physical costs.

    Parameters
    ----------
    topo:
        The finalized topology.
    level_costs:
        Mapping from LCA object type to :class:`LinkCosts`; defaults to
        :data:`DEFAULT_LEVEL_COSTS`.  A type missing from the dict falls
        back to the MACHINE entry (worst case).
    """

    topo: Topology
    level_costs: dict[ObjType, LinkCosts] = field(
        default_factory=lambda: dict(DEFAULT_LEVEL_COSTS)
    )

    def __post_init__(self) -> None:
        # One vectorized sweep yields both per-pair tables in compact
        # dtypes (int16 depths, int8 types) — the memory-lean layout the
        # generator-built mega-topologies rely on.
        lca_depth, lca_type = _lca_tables(self.topo)
        # Same PU: core-local (warm cache), not the PU object itself.
        np.fill_diagonal(lca_type, int(ObjType.CORE))
        self._install_tables(lca_depth, lca_type)

    def _install_tables(
        self,
        lca_depth: np.ndarray,
        lca_type: np.ndarray,
        lat_table: Optional[np.ndarray] = None,
        bw_table: Optional[np.ndarray] = None,
    ) -> None:
        """Wire finalized tables in (shared by build and zero-copy paths).

        *lca_type* must already have its diagonal core-filled; the
        tables are installed as-is and never written to afterwards, so
        read-only shared-memory views are fine.
        """
        self._lca_depth = lca_depth
        self._lca_type = lca_type
        self._hops: Optional[np.ndarray] = None
        # os_index -> logical index translation for runtime callers.
        self._os_to_logical = {
            pu.os_index: pu.logical_index for pu in self.topo.pus()
        }
        if lat_table is None or bw_table is None:
            machine_cost = self.level_costs.get(
                ObjType.MACHINE, DEFAULT_LEVEL_COSTS[ObjType.MACHINE]
            )
            max_type = max(int(t) for t in ObjType)
            lat_table = np.zeros(max_type + 1, dtype=np.float64)
            bw_table = np.full(
                max_type + 1, machine_cost.bandwidth, dtype=np.float64
            )
            for t in ObjType:
                costs = self.level_costs.get(t, machine_cost)
                lat_table[int(t)] = costs.latency
                bw_table[int(t)] = costs.bandwidth
        self._lat_table = lat_table
        self._bw_table = bw_table

    @classmethod
    def from_tables(
        cls,
        topo: Topology,
        lca_depth: np.ndarray,
        lca_type: np.ndarray,
        level_costs: Optional[dict[ObjType, LinkCosts]] = None,
        lat_table: Optional[np.ndarray] = None,
        bw_table: Optional[np.ndarray] = None,
    ) -> "DistanceModel":
        """Assemble a model around externally provided pairwise tables.

        This is the zero-copy path of :mod:`repro.exec.shm`: the tables
        come from a finalized model of the *same* topology (diagonal
        already core-filled), typically as read-only shared-memory
        views, and are never copied or mutated — skipping the O(P²) LCA
        sweep entirely.  *lat_table* / *bw_table* default to rebuilding
        the (tiny) flat cost tables from *level_costs*.
        """
        model = cls.__new__(cls)
        model.topo = topo
        model.level_costs = (
            dict(level_costs) if level_costs is not None
            else dict(DEFAULT_LEVEL_COSTS)
        )
        model._install_tables(lca_depth, lca_type, lat_table, bw_table)
        return model

    # -- lookups (hot path: called per halo exchange in the simulator) ------

    def logical_of_os(self, os_index: int) -> int:
        """Translate a PU os_index to its logical index."""
        try:
            return self._os_to_logical[os_index]
        except KeyError:
            raise KeyError(f"no PU with os_index {os_index}") from None

    def lca_type(self, pu_i: int, pu_j: int) -> ObjType:
        """Sharing level (object type of the LCA) between two logical PUs."""
        return ObjType(int(self._lca_type[pu_i, pu_j]))

    def transfer_time(self, pu_i: int, pu_j: int, nbytes: float) -> float:
        """Time for PU *pu_j* to consume *nbytes* produced on PU *pu_i*.

        Indexed by logical PU index; same-PU transfers cost only the
        core-level latency (warm cache).
        """
        t = self._lca_type[pu_i, pu_j]
        if nbytes <= 0:
            return 0.0
        return float(self._lat_table[t] + nbytes / self._bw_table[t])

    def latency(self, pu_i: int, pu_j: int) -> float:
        return float(self._lat_table[self._lca_type[pu_i, pu_j]])

    def bandwidth(self, pu_i: int, pu_j: int) -> float:
        return float(self._bw_table[self._lca_type[pu_i, pu_j]])

    # -- matrices ---------------------------------------------------------

    @property
    def lca_depths(self) -> np.ndarray:
        """The PU × PU LCA-depth matrix (read-only view, int16)."""
        v = self._lca_depth.view()
        v.flags.writeable = False
        return v

    def hop_matrix(self) -> np.ndarray:
        """The PU × PU hop-distance matrix (computed lazily, cached).

        Derived from the cached LCA depths — no second tree sweep.
        """
        if self._hops is None:
            pus = self.topo.pus()
            depths = np.array([pu.depth for pu in pus], dtype=np.int64)
            hops = depths[:, None] + depths[None, :] - 2 * self._lca_depth
            np.fill_diagonal(hops, 0)
            self._hops = hops
        v = self._hops.view()
        v.flags.writeable = False
        return v

    def latency_matrix(self) -> np.ndarray:
        """PU × PU matrix of pairwise latencies in seconds."""
        return self._lat_table[self._lca_type]

    def bandwidth_matrix(self) -> np.ndarray:
        """PU × PU matrix of pairwise bandwidths in bytes/second."""
        return self._bw_table[self._lca_type]
