"""Scaling-study benchmark — the beyond-the-paper sweep, CI-sized.

Runs the machine-size sweep on the paper's machine plus the 48-socket
generated preset at a reduced per-core workload, records the simulated
times and speedups, and asserts the qualitative shape: topology-aware
placement wins at both sizes.
"""

from repro.experiments.scaling import run_scaling
from repro.topology.distance import DistanceModel
from repro.topology.generate import SCALING_SPECS, build


def test_scaling_sweep_small(benchmark):
    result = benchmark.pedantic(
        run_scaling,
        kwargs=dict(
            presets=("paper", "smp48x8"),
            iterations=1,
            cells_per_core=65536,
            seeds=1,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = result.speedup_table()
    for preset in result.presets:
        for impl in result.implementations():
            key = f"{impl}@{preset}_sim_time_s"
            benchmark.extra_info[key] = result.point_of(preset, impl).time

    # Placement must pay off at both sizes at this workload.
    for preset in result.presets:
        assert result.speedup(preset, "orwl-nobind") > 1.2


def test_mega_topology_construction(benchmark):
    def construct():
        topo = build(SCALING_SPECS["smp512x8"])
        DistanceModel(topo)
        return topo

    topo = benchmark.pedantic(construct, rounds=1, iterations=1)
    benchmark.extra_info["n_pus"] = topo.nb_pus
    assert topo.nb_pus == 4096
