"""Lower a :class:`~repro.tasks.graph.TaskGraph` onto ORWL.

The compilation is a direct dataflow encoding in the existing model —
no runtime or engine changes, which is the point: DAG programs run on
the same decentralized event-based runtime, the same batched simulator,
and the same placement pipeline as the paper's iterative stencils.

* every DAG task becomes one ``orwl_task`` with a single ``main``
  operation (one simulated thread — the unit the placement maps);
* every dependency edge ``u -> v`` becomes one ``orwl_location`` named
  ``"u->v"``, owned by the producer's task, with the edge's payload as
  its size (0 bytes for pure control/serialization edges — ORWL's
  documented pure-synchronization locations);
* the producer holds the location's WRITE handle, the consumer its READ
  handle.  The ORWL init protocol inserts all WRITE requests first
  (``init_phase`` 0) and all READ requests after (phase 1), so each
  edge FIFO is ``[WRITE, READ]``: the write grant fires immediately,
  the read is granted only when the producer releases — exactly the
  happens-before of the DAG edge, expressed purely in FIFO ordering.

A task body therefore: acquires its input edges (blocking until every
producer published, pulling each payload priced by producer→consumer
topological distance), optionally streams its private working set from
its first-touch NUMA home, computes, then acquires-and-releases its
output edges (the release is the publication that wakes consumers).
Since spawn order is topological and only READ acquisitions block on
other tasks, compiled programs cannot deadlock — the hypothesis suite
in ``tests/test_dag_differential.py`` hammers this on random DAGs.

:func:`dag_matrix` extracts the task×task communication matrix straight
from the DAG edge set; it is bit-identical to running the generic ORWL
static extraction over the compiled program (property-tested), and its
labels are the task names — so the DAG structure is hashed into the
content-addressed placement key (`repro.exec.cache.matrix_digest`
folds labels and values) and a cached mapping can never be served for
a different graph.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.comm.matrix import CommMatrix
from repro.orwl.fifo import AccessMode
from repro.orwl.handle import Handle
from repro.orwl.program import Program
from repro.tasks.graph import TaskGraph, TaskNode
from repro.util.validate import ValidationError


class TaskTimes:
    """Per-task simulated timestamps recorded during one run.

    ``ready[name]``  — all inputs acquired (the task became runnable);
    ``published[name]`` — compute finished, outputs about to be released;
    ``done[name]``   — body completed (outputs released).

    The dependency-respect invariant the tests assert: for every edge
    ``u -> v``, ``ready[v] >= published[u]``.
    """

    def __init__(self) -> None:
        self.ready: dict[str, float] = {}
        self.published: dict[str, float] = {}
        self.done: dict[str, float] = {}

    def completion_order(self) -> list[str]:
        """Task names sorted by (done time, ready time, name)."""
        return sorted(self.done, key=lambda n: (self.done[n], self.ready[n], n))


def edge_location_name(producer: str, consumer: str) -> str:
    return f"{producer}->{consumer}"


def _task_body(
    node: TaskNode,
    read_handles: list[Handle],
    write_handles: list[Handle],
    times: Optional[TaskTimes],
) -> Callable[[object], Generator]:
    from repro.simulate.syscalls import ReceiveFromNode

    def body(ctx) -> Generator:
        for h in read_handles:
            yield from ctx.acquire(h)
        if times is not None:
            times.ready[node.name] = ctx.now
        if node.stream_bytes > 0:
            home = ctx.current_node()
            if home >= 0:
                yield ReceiveFromNode(home, node.stream_bytes)
        if node.flops > 0:
            yield ctx.compute(flops=node.flops)
        if node.seconds > 0:
            yield ctx.compute(seconds=node.seconds)
        for h in read_handles:
            ctx.release(h)
        if times is not None:
            times.published[node.name] = ctx.now
        for h in write_handles:
            yield from ctx.acquire(h)
            ctx.release(h)
        if times is not None:
            times.done[node.name] = ctx.now

    return body


def compile_graph(
    graph: TaskGraph, times: Optional[TaskTimes] = None
) -> Program:
    """Compile *graph* into a validated ORWL :class:`Program`.

    With *times*, the compiled bodies record per-task simulated
    timestamps into it (see :class:`TaskTimes`) — the hook the golden
    schedules and the dependency-respect property tests use.
    """
    graph.validate()
    prog = Program(f"dag:{graph.name}")
    tasks = graph.tasks()

    # Pass 1: one location per dependency edge (owner = the producer).
    out_edges: dict[int, list[tuple[int, float]]] = {}
    in_edges: dict[int, list[int]] = {}
    for u, v, nbytes in graph.edges():
        out_edges.setdefault(u, []).append((v, nbytes))
        in_edges.setdefault(v, []).append(u)
        prog.location(
            edge_location_name(tasks[u].name, tasks[v].name),
            nbytes,
            owner_task=tasks[u].name,
        )

    # Pass 2: one task + one "main" operation per DAG task, in spawn
    # order (declaration order = thread ids = matrix rows).
    for node in tasks:
        decl = prog.task(node.name)
        op = decl.operation("main", body=None)
        read_handles: list[Handle] = []
        for u in in_edges.get(node.index, ()):
            loc = prog.locations[edge_location_name(tasks[u].name, node.name)]
            h = op.handle(loc, AccessMode.READ)
            h.init_phase = 1  # behind every producer's initial WRITE
            read_handles.append(h)
        write_handles: list[Handle] = []
        for v, _nbytes in out_edges.get(node.index, ()):
            loc = prog.locations[edge_location_name(node.name, tasks[v].name)]
            h = op.handle(loc, AccessMode.WRITE)
            h.init_phase = 0  # granted at startup; released = published
            write_handles.append(h)
        op.body = _task_body(node, read_handles, write_handles, times)

    prog.validate()
    return prog


def dag_matrix(graph: TaskGraph) -> CommMatrix:
    """The task×task communication matrix straight from the DAG edges.

    Entry ``(u, v)`` is the payload flowing along ``u -> v`` (plus the
    symmetric reflection — total pairwise traffic is what TreeMatch
    consumes).  Pure synchronization edges carry no bytes and therefore
    no affinity.  Labels are the task names, so the matrix digest —
    hence the content-addressed placement key — covers the DAG
    structure, not just the volumes.

    Equal (bit-for-bit) to aggregating the compiled program's static
    ORWL extraction to task granularity; ``tests/test_tasks.py`` pins
    the equivalence.
    """
    n = graph.n_tasks
    if n == 0:
        raise ValidationError(f"graph {graph.name!r} has no tasks")
    m = np.zeros((n, n))
    for u, v, nbytes in graph.edges():
        m[u, v] += nbytes
        m[v, u] += nbytes
    return CommMatrix(m, labels=[t.name for t in graph.tasks()])
