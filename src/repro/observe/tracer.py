"""Structured trace events and the tracer that collects them.

The simulator's counters (:class:`~repro.simulate.metrics.MachineMetrics`)
are write-only aggregates: good for headline numbers, useless for
auditing *where* each byte and second went.  The tracer records one
:class:`TraceEvent` per machine activity — compute bursts, transfers
(tagged with the sharing level the bytes crossed), lock waits, run-queue
waits, migrations, lock grants, scheduler decisions — forming an
append-only stream that

* exports to JSON-lines and Chrome ``trace_event`` format
  (:mod:`repro.observe.export`),
* is audited against the aggregate counters by
  :class:`repro.observe.invariants.InvariantChecker`,
* hashes to a determinism fingerprint
  (:mod:`repro.observe.determinism`).

Overhead discipline: a machine without a tracer pays one ``is None``
check per activity; with a tracer, one object construction and append.
``benchmarks/bench_trace_overhead.py`` pins the enabled/disabled ratio.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Iterable, Iterator, Optional

#: Event kinds whose ``[ts, ts + dur]`` is an exclusive occupation of the
#: thread (spans must not overlap within one thread).  All other kinds
#: are instants or annotations: ``migration`` carries the cache-refill
#: penalty in ``dur`` but the penalty is *charged into* the next span.
SPAN_KINDS = frozenset({"compute", "transfer", "wait", "runq"})

#: All kinds the simulator emits (exporters map anything else verbatim).
KNOWN_KINDS = SPAN_KINDS | frozenset(
    {"migration", "grant", "sched", "thread_start", "thread_end"}
)


@dataclass(slots=True)
class TraceEvent:
    """One traced activity of the simulated machine.

    Attributes
    ----------
    seq:
        Emission order (monotonic per tracer; ties the stream together).
    kind:
        Activity class — see :data:`SPAN_KINDS` / :data:`KNOWN_KINDS`.
    ts, dur:
        Span start and duration in simulated seconds.  Instants have
        ``dur == 0``; ``migration`` events carry the charged penalty.
    tid, thread:
        Simulator thread id and name (``-1`` / ``""`` for machine-level
        events such as scheduler decisions).
    pu, node:
        Logical PU and NUMA-node indices where the activity happened
        (``-1`` when not applicable).
    level:
        Sharing level a transfer crossed (``"L3"``, ``"NUMANODE"``,
        ``"MACHINE"``, ...); empty for non-transfers.
    nbytes:
        Payload size for transfers, 0 otherwise.
    detail:
        Free-form tag: the awaited event's name for waits, the request
        tag for grants, ``"pull:src->dst"`` style for migrations.
    """

    seq: int
    kind: str
    ts: float
    dur: float = 0.0
    tid: int = -1
    thread: str = ""
    pu: int = -1
    node: int = -1
    level: str = ""
    nbytes: float = 0.0
    detail: str = ""

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def is_span(self) -> bool:
        return self.kind in SPAN_KINDS


#: A probe receives every event as it is emitted (live monitoring,
#: streaming export, online invariant checks).
Probe = Callable[[TraceEvent], None]


class Tracer:
    """Collects :class:`TraceEvent` s and fans them out to probes.

    One tracer per machine run.  Attach with
    ``Machine(..., tracer=Tracer())`` or
    :meth:`repro.simulate.machine.Machine.attach_tracer`.
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._probes: list[Probe] = []
        self._seq = 0
        #: engine steps observed (wired to :attr:`Engine.probe`).
        self.engine_steps = 0
        #: simulated-clock regressions seen (should stay 0 forever).
        self.clock_regressions = 0
        self._last_engine_ts = 0.0

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        kind: str,
        ts: float,
        dur: float = 0.0,
        tid: int = -1,
        thread: str = "",
        pu: int = -1,
        node: int = -1,
        level: str = "",
        nbytes: float = 0.0,
        detail: str = "",
    ) -> TraceEvent:
        """Record one event; returns it (probes already notified)."""
        ev = TraceEvent(
            self._seq, kind, ts, dur, tid, thread, pu, node, level, nbytes, detail
        )
        self._seq += 1
        self._events.append(ev)
        for probe in self._probes:
            probe(ev)
        return ev

    def add_probe(self, probe: Probe) -> None:
        """Subscribe *probe* to every future event."""
        self._probes.append(probe)

    def on_engine_step(self, now: float) -> None:
        """Engine hook: count steps, watch for clock regressions."""
        if now < self._last_engine_ts:
            self.clock_regressions += 1
        self._last_engine_ts = now
        self.engine_steps += 1

    # -- queries -----------------------------------------------------------

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def for_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self._events if e.tid == tid]

    def for_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Counter:
        """``{kind: number of events}``."""
        return Counter(e.kind for e in self._events)

    def total(self, kind: str, field_: str = "dur") -> float:
        """Sum of a numeric field over all events of *kind*."""
        return sum(getattr(e, field_) for e in self._events if e.kind == kind)

    def stream_hash(self) -> str:
        """Determinism fingerprint of the full stream (sha-256 hex)."""
        from repro.observe.determinism import stream_hash

        return stream_hash(self._events)


@dataclass(frozen=True)
class EventFilter:
    """Predicate over :class:`TraceEvent` s, parsed from a spec string.

    The spec is a comma-separated list of ``key=value`` clauses; an
    event must satisfy every clause (AND), and a clause with several
    ``|``-separated values matches any of them (OR)::

        kind=transfer|wait,level=MACHINE     remote transfers and waits
        thread=*ctl*,min-dur=1e-6            slow control-thread spans
        tid=0|1,node=1                       two threads, one NUMA node

    Keys: ``kind``, ``thread`` (glob per :mod:`fnmatch`), ``tid``,
    ``pu``, ``node`` (integers), ``level``, ``min-dur`` (a single
    float, in seconds).  Unknown keys raise ``ValueError`` — a typoed
    clause silently matching everything would be worse.
    """

    kinds: Optional[frozenset[str]] = None
    thread_glob: str = ""
    tids: Optional[frozenset[int]] = None
    pus: Optional[frozenset[int]] = None
    nodes: Optional[frozenset[int]] = None
    levels: Optional[frozenset[str]] = None
    min_dur: float = 0.0

    @classmethod
    def parse(cls, spec: str) -> "EventFilter":
        """Build a filter from a spec string (empty spec matches all)."""
        kwargs: dict = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            key = key.strip()
            if not sep or not value.strip():
                raise ValueError(
                    f"bad filter clause {clause!r}: expected key=value"
                )
            alts = [v.strip() for v in value.split("|") if v.strip()]
            if key == "kind":
                kwargs["kinds"] = frozenset(alts)
            elif key == "thread":
                kwargs["thread_glob"] = value.strip()
            elif key in ("tid", "pu", "node"):
                try:
                    kwargs[key + "s"] = frozenset(int(v) for v in alts)
                except ValueError:
                    raise ValueError(
                        f"filter clause {clause!r}: {key} takes integers"
                    ) from None
            elif key == "level":
                kwargs["levels"] = frozenset(v.upper() for v in alts)
            elif key == "min-dur":
                try:
                    kwargs["min_dur"] = float(value.strip())
                except ValueError:
                    raise ValueError(
                        f"filter clause {clause!r}: min-dur takes a float"
                    ) from None
            else:
                raise ValueError(
                    f"unknown filter key {key!r}; one of "
                    "kind, thread, tid, pu, node, level, min-dur"
                )
        return cls(**kwargs)

    def __call__(self, ev: TraceEvent) -> bool:
        if self.kinds is not None and ev.kind not in self.kinds:
            return False
        if self.thread_glob and not fnmatchcase(ev.thread, self.thread_glob):
            return False
        if self.tids is not None and ev.tid not in self.tids:
            return False
        if self.pus is not None and ev.pu not in self.pus:
            return False
        if self.nodes is not None and ev.node not in self.nodes:
            return False
        if self.levels is not None and ev.level not in self.levels:
            return False
        if self.min_dur > 0.0 and ev.dur < self.min_dur:
            return False
        return True

    def apply(self, events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
        """Lazily yield the matching events, order preserved."""
        return (ev for ev in events if self(ev))


@dataclass
class TraceSummary:
    """Cheap aggregate view of a stream (for reports and sanity prints)."""

    events: int = 0
    spans: int = 0
    by_kind: Counter = field(default_factory=Counter)
    busy_by_kind: dict = field(default_factory=dict)
    bytes_by_level: Counter = field(default_factory=Counter)
    makespan: float = 0.0

    @classmethod
    def of(cls, events: Iterable[TraceEvent]) -> "TraceSummary":
        s = cls()
        busy: dict[str, float] = {}
        for e in events:
            s.events += 1
            s.by_kind[e.kind] += 1
            if e.is_span():
                s.spans += 1
                busy[e.kind] = busy.get(e.kind, 0.0) + e.dur
                s.makespan = max(s.makespan, e.end)
            if e.kind == "transfer" and e.level:
                s.bytes_by_level[e.level] += e.nbytes
        s.busy_by_kind = busy
        return s
