"""TreeMatch-style mapping CLI.

Computes a thread → PU mapping from a communication-matrix file (the
TreeMatch text format: order on the first line, then the matrix rows)
and a topology, and prints it with its quality scores — the same
workflow the original TreeMatch binary offers.

Usage::

    python -m repro.tools.treematch comm.mat paper-smp
    python -m repro.tools.treematch comm.mat "numa:2 core:8 pu:1" --policy compact
    python -m repro.tools.treematch --demo          # built-in stencil demo
"""

from __future__ import annotations

import argparse

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.placement.policies import POLICY_REGISTRY, make_policy
from repro.placement.report import render_report
from repro.tools._common import resolve_topology


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.treematch", description=__doc__.splitlines()[0]
    )
    parser.add_argument("matrix", nargs="?", help="communication matrix file")
    parser.add_argument(
        "topology", nargs="?", default="paper-smp",
        help="preset name, 'host', JSON file, or synthetic spec",
    )
    parser.add_argument(
        "--policy", default="treematch", choices=sorted(POLICY_REGISTRY),
        help="placement policy (default: treematch)",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="use a built-in 8x8 stencil matrix instead of a file",
    )
    parser.add_argument("--seed", type=int, default=0, help="seed for 'random'")
    parser.add_argument(
        "--output", metavar="FILE", help="write the mapping as a rankfile"
    )
    args = parser.parse_args(argv)

    topo_source = args.topology
    if args.demo:
        matrix = patterns.stencil_2d(8, 8, edge_volume=1000.0)
        # With --demo the first positional (if any) is the topology.
        if args.matrix:
            topo_source = args.matrix
    elif args.matrix:
        matrix = CommMatrix.load(args.matrix)
    else:
        parser.error("give a matrix file or --demo")
        return 2  # unreachable; parser.error exits

    topo = resolve_topology(topo_source)
    kwargs = {"seed": args.seed} if args.policy == "random" else {}
    policy = make_policy(args.policy, **kwargs)
    mapping = policy.place(topo, matrix.order, matrix=matrix, labels=matrix.labels)

    print(render_report(mapping, matrix, topo, title=f"{args.policy} on {topo.name}"))
    print()
    for t in range(mapping.n_threads):
        pu = mapping.pu(t)
        print(f"{mapping.labels[t]}\t{pu if pu >= 0 else 'unbound'}")
    if args.output:
        mapping.save(args.output)
        print(f"\nwrote rankfile to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
