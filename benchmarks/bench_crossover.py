"""Claim C4 — "as soon as we scale beyond one or two sockets, standard
approaches that do not take into account the affinity and the topology
fail [to] improve performance."

Sweeps sockets 1 → 24 on the paper workload and checks where each
implementation stops improving: OpenMP must stall (< 5 % gain per
doubling) within the sweep — its master-node first-touch traffic
saturates one memory controller — while ORWL-Bind keeps scaling to the
full 192 cores.
"""

import pytest

from repro.experiments.fig1 import run_fig1

CORE_COUNTS = (8, 16, 32, 64, 96, 192)
ITERATIONS = 3
N = 16384


def test_crossover(benchmark):
    result = benchmark.pedantic(
        run_fig1,
        kwargs=dict(core_counts=CORE_COUNTS, iterations=ITERATIONS, n=N, seed=0),
        rounds=1,
        iterations=1,
    )
    stall = result.openmp_scaling_stalls_after()
    benchmark.extra_info["openmp_stalls_after_cores"] = stall
    benchmark.extra_info["table"] = result.table()

    # OpenMP stalls inside the sweep; ORWL-Bind never does.
    assert stall is not None, "OpenMP never stalled — crossover not reproduced"
    assert stall < CORE_COUNTS[-1], f"OpenMP stalled only at the sweep end ({stall})"

    bind = dict(result.series("orwl-bind"))
    for c0, c1 in zip(CORE_COUNTS, CORE_COUNTS[1:]):
        assert bind[c1] < bind[c0], f"ORWL-Bind stopped scaling at {c0} cores"

    # At one socket the three implementations are within 10% of each
    # other: topology-blindness costs nothing before NUMA kicks in.
    t8 = {impl: result.time_of(impl, 8) for impl in ("orwl-bind", "orwl-nobind", "openmp")}
    assert max(t8.values()) < 1.1 * min(t8.values())

    # Beyond two sockets the gap is open and grows with scale.
    gap32 = result.time_of("openmp", 32) / result.time_of("orwl-bind", 32)
    gap192 = result.time_of("openmp", 192) / result.time_of("orwl-bind", 192)
    assert gap32 > 1.2
    assert gap192 > gap32
