"""Tests for the simulated-annealing mapping baseline."""

import pytest

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.topology import presets
from repro.treematch import cost as cost_mod
from repro.treematch.algorithm import tree_match
from repro.treematch.anneal import AnnealConfig, anneal_mapping
from repro.util.validate import ValidationError


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            AnnealConfig(moves=0)
        with pytest.raises(ValidationError):
            AnnealConfig(cooling=1.5)
        with pytest.raises(ValidationError):
            AnnealConfig(t0_fraction=0)


class TestAnneal:
    def test_valid_mapping(self, small_topo, clustered_matrix):
        mp = anneal_mapping(small_topo, clustered_matrix, seed=1)
        assert mp.n_threads == clustered_matrix.order
        mp.validate_against(small_topo)
        assert mp.bound_fraction() == 1.0
        assert mp.max_load() == 1  # 8 threads, 8 PUs, slot-unique

    def test_oversubscription_balanced(self, small_topo, stencil_matrix):
        # 16 threads on 8 PUs: slot layout caps the per-PU load at 2.
        mp = anneal_mapping(small_topo, stencil_matrix,
                            AnnealConfig(moves=4000), seed=1)
        assert mp.max_load() <= 2

    def test_deterministic_under_seed(self, small_topo, clustered_matrix):
        a = anneal_mapping(small_topo, clustered_matrix, seed=9)
        b = anneal_mapping(small_topo, clustered_matrix, seed=9)
        assert a.pu_of == b.pu_of

    def test_finds_cluster_optimum(self, small_topo, clustered_matrix):
        """On the 2x4 clustered instance the optimum is known: each
        cluster on one NUMA node (cut = 16)."""
        mp = anneal_mapping(small_topo, clustered_matrix,
                            AnnealConfig(moves=8000), seed=2)
        assert cost_mod.numa_cut(mp, clustered_matrix, small_topo) == pytest.approx(16.0)

    def test_improves_on_random_start(self, paper_topo_small):
        m = patterns.stencil_2d(4, 8, edge_volume=100.0)
        short = anneal_mapping(paper_topo_small, m, AnnealConfig(moves=50), seed=3)
        long = anneal_mapping(paper_topo_small, m, AnnealConfig(moves=15000), seed=3)
        assert cost_mod.hop_bytes(long, m, paper_topo_small) < cost_mod.hop_bytes(
            short, m, paper_topo_small
        )

    def test_treematch_close_to_annealed_bound(self, small_topo, clustered_matrix):
        """The quality claim of ablation A8: TreeMatch's one-pass result
        is within a modest factor of the annealed reference."""
        tm = tree_match(small_topo, clustered_matrix).mapping
        sa = anneal_mapping(small_topo, clustered_matrix,
                            AnnealConfig(moves=8000), seed=4)
        hb_tm = cost_mod.hop_bytes(tm, clustered_matrix, small_topo)
        hb_sa = cost_mod.hop_bytes(sa, clustered_matrix, small_topo)
        assert hb_tm <= 1.3 * hb_sa

    def test_empty_matrix_rejected(self, small_topo):
        with pytest.raises(ValidationError):
            anneal_mapping(small_topo, CommMatrix.zeros(0))
