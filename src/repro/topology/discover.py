"""Topology discovery from the running Linux host.

The paper obtains the machine topology from HWLOC; on a real deployment
of this library the equivalent is reading the kernel's sysfs topology
export.  :func:`discover_linux` parses
``/sys/devices/system/cpu/cpu*/topology`` and the node/cache entries
into a :class:`~repro.topology.tree.Topology`, so placements computed
here are directly meaningful for ``os.sched_setaffinity`` on the host.

This is best-effort: machines with asymmetric topologies (different
core counts per socket, offline CPUs) fall back to the *balanced
envelope* — the smallest balanced tree containing the observed
structure — because the mapping algorithm requires a balanced tree
(hwloc-based TreeMatch deployments do the same symmetrization).  On
non-Linux hosts :func:`discover` returns ``None``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.topology.builder import TopologyBuilder
from repro.topology.objects import ObjType
from repro.topology.tree import Topology

_SYS_CPU = Path("/sys/devices/system/cpu")


def _read_int(path: Path) -> Optional[int]:
    try:
        return int(path.read_text().strip())
    except (OSError, ValueError):
        return None


def _read_list(path: Path) -> Optional[list[int]]:
    """Parse a kernel cpulist file like ``0-3,8``."""
    try:
        text = path.read_text().strip()
    except OSError:
        return None
    if not text:
        return []
    out: list[int] = []
    for part in text.split(","):
        if "-" in part:
            lo, hi = part.split("-")
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(part))
    return out


def _online_cpus() -> list[int]:
    cpus = _read_list(_SYS_CPU / "online")
    if cpus:
        return cpus
    # Fallback: enumerate cpu directories.
    found = []
    try:
        for entry in _SYS_CPU.iterdir():
            name = entry.name
            if name.startswith("cpu") and name[3:].isdigit():
                found.append(int(name[3:]))
    except OSError:
        pass
    return sorted(found)


def discover_linux() -> Optional[Topology]:
    """Build the host topology from sysfs; ``None`` if unreadable.

    The result is the *balanced envelope*: ``nodes × packages-per-node ×
    cores-per-package × threads-per-core`` using the maximum observed
    count at each level, which always contains the real machine.
    """
    cpus = _online_cpus()
    if not cpus:
        return None

    # Gather (node, package, core, cpu) tuples.
    records: list[tuple[int, int, int, int]] = []
    for cpu in cpus:
        base = _SYS_CPU / f"cpu{cpu}"
        pkg = _read_int(base / "topology" / "physical_package_id")
        core = _read_int(base / "topology" / "core_id")
        if pkg is None or core is None:
            pkg = pkg if pkg is not None else 0
            core = core if core is not None else cpu
        node = 0
        try:
            for entry in base.iterdir():
                if entry.name.startswith("node") and entry.name[4:].isdigit():
                    node = int(entry.name[4:])
                    break
        except OSError:
            pass
        records.append((node, pkg, core, cpu))

    nodes = sorted({r[0] for r in records})
    pkgs_per_node = max(
        len({r[1] for r in records if r[0] == n}) for n in nodes
    )
    cores_per_pkg = max(
        len({r[2] for r in records if r[0] == n and r[1] == p})
        for n in nodes
        for p in {r[1] for r in records if r[0] == n}
    )
    threads_per_core = max(
        sum(1 for r in records if r[:3] == key)
        for key in {r[:3] for r in records}
    )

    builder = (
        TopologyBuilder(f"host-{os.uname().nodename}")
        .add_level(ObjType.NUMANODE, len(nodes))
        .add_level(ObjType.PACKAGE, pkgs_per_node)
        .add_level(ObjType.L3, 1)
        .add_level(ObjType.CORE, cores_per_pkg)
        .add_level(ObjType.PU, threads_per_core)
    )
    return builder.build()


def discover() -> Optional[Topology]:
    """Host topology if discoverable (Linux sysfs), else ``None``."""
    if _SYS_CPU.is_dir():
        try:
            return discover_linux()
        except Exception:
            return None
    return None
