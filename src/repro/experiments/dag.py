"""E7 — does topology-aware placement still win on irregular DAGs?

The paper evaluates Bind/NoBind only on iterative barrier-synchronized
stencils.  This experiment runs the same question over the
:mod:`repro.tasks` dependency-graph frontend's three workload families
— tiled Cholesky (regular recursion, panel broadcasts),
level-synchronous BFS on generated irregular graphs (data-dependent
frontier exchange), and skewed divide-and-conquer (fat-tree traffic) —
comparing the placement policies:

* ``bind``    — TreeMatch over the DAG communication matrix (the
  paper's ORWL-Bind, fed by :func:`repro.tasks.compile.dag_matrix`);
* ``nobind``  — identity placement, the OS-order baseline;
* ``service`` — the dedicated-service-core strategy of PR 8.

Statistics are the matched-seed paired layer of
:mod:`repro.experiments.scaling`: every policy replays the same seed
schedule per workload, per-workload comparisons are paired sign-flip
permutation tests, and Holm–Bonferroni corrects each baseline's family
across the three workloads.  With ``perf_report``, points carry the
:func:`repro.perf.analyze` report plus a DAG-specific critical-path
attribution (span flops, busy time along the span, span fraction of
the makespan) — the DAG-intrinsic bound no placement can beat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.exec.runner import SweepRunner
from repro.kernels.bfs import BfsConfig, build_bfs_graph
from repro.kernels.cholesky import CholeskyConfig, build_cholesky_graph
from repro.kernels.divconq import DivConqConfig, build_divconq_graph
from repro.stats.aggregate import SeedStats
from repro.stats.significance import PairedVerdict, compare_paired, correct_verdicts
from repro.stats.sweep import ReplicateSpec, run_replicated
from repro.tasks.graph import TaskGraph
from repro.tasks.run import run_graph
from repro.util.validate import ValidationError

#: The DAG workload families, in headline order.
WORKLOADS = ("cholesky", "bfs", "divconq")

#: The compared placements, in headline order.
POLICIES = ("bind", "nobind", "service")

#: experiment policy name -> placement registry name.
POLICY_OF = {"bind": "treematch", "nobind": "nobind", "service": "service"}


def build_workload(
    workload: str, scale: int = 2, graph_seed: int = 0, parts: int = 8
) -> TaskGraph:
    """Build one family's :class:`TaskGraph` at integer *scale*.

    *graph_seed* drives the BFS input graph and the divide-and-conquer
    split coins — the *structure* seed, deliberately separate from the
    simulation seed so replicates re-run the same DAG under different
    machine jitter (that separation is what makes the comparisons
    paired per DAG instance).
    """
    if scale < 1:
        raise ValidationError(f"scale must be >= 1, got {scale}")
    if workload == "cholesky":
        return build_cholesky_graph(CholeskyConfig(blocks=3 + scale, tile=96))
    if workload == "bfs":
        return build_bfs_graph(
            BfsConfig(n_vertices=128 * scale, parts=parts, graph_seed=graph_seed)
        )
    if workload == "divconq":
        return build_divconq_graph(
            DivConqConfig(depth=3 + scale, split_seed=graph_seed)
        )
    raise ValidationError(f"unknown workload {workload!r}; one of {WORKLOADS}")


@dataclass
class DagPoint:
    """One (workload, policy) measurement."""

    workload: str
    policy: str
    n_cores: int
    n_tasks: int
    n_edges: int
    time: float
    local_fraction: float
    migrations: int
    remote_bytes: float
    #: digest of the executed DAG (structure + costs).
    graph_digest: str
    #: joint run fingerprint (``None`` unless run with ``fingerprint``).
    fingerprint: Optional[str] = None
    #: JSON dict of the point's perf report plus DAG critical-path
    #: attribution (``None`` unless run with ``perf_report``).
    perf: Optional[dict] = None


def run_dag_point(
    workload: str,
    policy: str,
    n_cores: int = 32,
    cores_per_socket: int = 8,
    scale: int = 2,
    graph_seed: int = 0,
    seed: int = 0,
    fingerprint: bool = False,
    perf_report: bool = False,
    engine_mode: Optional[str] = None,
) -> DagPoint:
    """Run one workload family under one placement; returns the point.

    The machine is the paper's SMP shape (``n_cores`` over
    ``cores_per_socket``-core sockets) from the per-process construction
    cache.  With *fingerprint*, the run is traced and the point carries
    its :func:`repro.observe.determinism.run_fingerprint`; with
    *perf_report*, the perf analysis plus the DAG's critical-path
    attribution.  *engine_mode* travels in sweep-spec kwargs so pool
    workers honour it.
    """
    if policy not in POLICY_OF:
        raise ValidationError(f"unknown policy {policy!r}; one of {POLICIES}")
    if n_cores % cores_per_socket != 0:
        raise ValidationError(
            f"core count {n_cores} must be whole sockets of {cores_per_socket}"
        )
    graph = build_workload(workload, scale=scale, graph_seed=graph_seed)
    trace = fingerprint or perf_report
    res = run_graph(
        graph,
        preset="paper-smp",
        preset_args=(n_cores // cores_per_socket, cores_per_socket),
        policy=POLICY_OF[policy],
        seed=seed,
        engine_mode=engine_mode,
        record_times=perf_report,
        trace=trace,
    )

    fp = res.fingerprint() if fingerprint else None
    perf = None
    if perf_report:
        from repro.perf import analyze
        from repro.topology.objects import ObjType

        topo = res.machine.topo
        perf = analyze(
            res.machine.tracer.events,
            label=f"{workload}/{policy}@{n_cores}",
            measured_time=res.time,
            n_pus=topo.nb_pus,
            n_nodes=topo.nbobjs_by_type(ObjType.NUMANODE),
        ).to_json_dict()
        cp_flops, cp_tasks = graph.critical_path()
        times = res.times
        assert times is not None  # record_times=perf_report above
        cp_busy = sum(times.done[t] - times.ready[t] for t in cp_tasks)
        perf["dag"] = {
            "critical_path_tasks": len(cp_tasks),
            "critical_path_flops": cp_flops,
            "critical_path_busy_s": cp_busy,
            "span_fraction": cp_busy / res.time if res.time > 0 else 0.0,
            "parallelism": graph.parallelism(),
        }

    return DagPoint(
        workload=workload,
        policy=policy,
        n_cores=n_cores,
        n_tasks=graph.n_tasks,
        n_edges=graph.n_edges,
        time=res.time,
        local_fraction=res.metrics.local_fraction,
        migrations=res.metrics.migrations,
        remote_bytes=res.metrics.remote_bytes,
        graph_digest=res.graph_digest,
        fingerprint=fp,
        perf=perf,
    )


def _point_time(point: DagPoint) -> float:
    return point.time


@dataclass
class DagResult:
    """All points of an E7 sweep plus the paired statistics."""

    workloads: list[str] = field(default_factory=list)
    policies: list[str] = field(default_factory=list)
    n_cores: int = 32
    scale: int = 2
    graph_seed: int = 0
    n_seeds: int = 1
    alpha: float = 0.05
    points: list[DagPoint] = field(default_factory=list)
    seed_stats: dict[tuple[str, str], SeedStats] = field(default_factory=dict)
    replicates: dict[tuple[str, str], tuple[DagPoint, ...]] = field(
        default_factory=dict
    )

    # -- lookups -----------------------------------------------------------

    def _missing_key_error(self, workload: str, policy: str) -> KeyError:
        return KeyError(
            f"no point (workload={workload!r}, policy={policy!r}); swept "
            f"{self.workloads or '(none)'} x {self.policies or '(none)'}"
        )

    def point_of(self, workload: str, policy: str) -> DagPoint:
        for p in self.points:
            if p.workload == workload and p.policy == policy:
                return p
        raise self._missing_key_error(workload, policy)

    def times_of(self, workload: str, policy: str) -> list[float]:
        """Replicate times in **replicate order** (the seed pairing)."""
        try:
            return [p.time for p in self.replicates[workload, policy]]
        except KeyError:
            raise self._missing_key_error(workload, policy) from None

    def mean_time(self, workload: str, policy: str) -> float:
        try:
            return self.seed_stats[workload, policy].mean
        except KeyError:
            raise self._missing_key_error(workload, policy) from None

    # -- paired significance ----------------------------------------------

    def paired_verdicts(self) -> dict[str, list[tuple[str, PairedVerdict]]]:
        """Matched-seed Bind comparisons, Holm-corrected per baseline.

        For each baseline policy the family is "Bind vs this baseline on
        every swept workload"; Holm–Bonferroni runs across that family.
        Keys are baseline names, values ``(workload, verdict)`` pairs in
        headline order.
        """
        if "bind" not in self.policies:
            return {}
        out: dict[str, list[tuple[str, PairedVerdict]]] = {}
        for baseline in self.policies:
            if baseline == "bind":
                continue
            family = [
                compare_paired(
                    baseline,
                    self.times_of(workload, baseline),
                    "bind",
                    self.times_of(workload, "bind"),
                    alpha=self.alpha,
                )
                for workload in self.workloads
            ]
            out[baseline] = list(zip(self.workloads, correct_verdicts(family)))
        return out

    def speedup(self, workload: str, baseline: str) -> float:
        """Mean-time speedup of Bind over *baseline* on one workload."""
        return self.mean_time(workload, baseline) / self.mean_time(workload, "bind")

    # -- rendering ---------------------------------------------------------

    def table(self) -> str:
        """The headline table: per-workload times, speedups, p, delta."""
        verdicts = self.paired_verdicts()
        by_key = {
            (baseline, workload): v
            for baseline, rows in verdicts.items()
            for workload, v in rows
        }
        name_w = max([len("workload")] + [len(w) for w in self.workloads])
        header = f"{'workload':<{name_w}} {'tasks':>6} {'edges':>6}"
        for policy in self.policies:
            header += f" {policy + ' mean':>14}"
        for baseline in self.policies:
            if baseline == "bind":
                continue
            header += f" {'vs ' + baseline:>11} {'p-corr':>8} {'delta':>7}"
        lines = [header, "-" * len(header)]
        for workload in self.workloads:
            first = self.point_of(workload, self.policies[0])
            row = f"{workload:<{name_w}} {first.n_tasks:>6} {first.n_edges:>6}"
            for policy in self.policies:
                try:
                    row += f" {self.mean_time(workload, policy):>14.6f}"
                except KeyError:
                    row += f" {'-':>14}"
            for baseline in self.policies:
                if baseline == "bind":
                    continue
                v = by_key.get((baseline, workload))
                if v is None:
                    row += f" {'-':>11} {'-':>8} {'-':>7}"
                    continue
                mark = "*" if v.significant else " "
                p = f"{v.p_corrected:.4f}" if v.p_corrected is not None else "n/a"
                row += f" {f'{v.speedup_mean:.2f}x{mark}':>11} {p:>8} {v.delta:>+7.2f}"
            lines.append(row)
        if self.n_seeds > 1:
            lines.append("")
            lines.append(
                f"paired sign-flip permutation tests over {self.n_seeds} matched "
                f"seeds; p-values Holm-Bonferroni-corrected across the "
                f"{len(self.workloads)} workload families; * = significant at "
                f"alpha={self.alpha:g}; delta = Cliff's effect size."
            )
            for _baseline, rows in verdicts.items():
                for workload, v in rows:
                    lines.append(f"  [{workload}] {v}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """JSON-safe dump of the sweep (the CI artifact)."""
        verdicts = self.paired_verdicts()
        return {
            "format": "repro-dag",
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "n_cores": self.n_cores,
            "scale": self.scale,
            "graph_seed": self.graph_seed,
            "n_seeds": self.n_seeds,
            "alpha": self.alpha,
            "points": [
                {
                    "workload": p.workload,
                    "policy": p.policy,
                    "cores": p.n_cores,
                    "tasks": p.n_tasks,
                    "edges": p.n_edges,
                    "time": p.time,
                    "local_fraction": p.local_fraction,
                    "migrations": p.migrations,
                    "remote_bytes": p.remote_bytes,
                    "graph_digest": p.graph_digest,
                    **({"fingerprint": p.fingerprint} if p.fingerprint else {}),
                    **({"perf": p.perf} if p.perf is not None else {}),
                }
                for p in self.points
            ],
            "stats": [
                {
                    "workload": workload,
                    "policy": policy,
                    "n": s.n,
                    "mean": s.mean,
                    "median": s.median,
                    "stddev": s.stddev,
                    "ci_lo": s.ci_lo,
                    "ci_hi": s.ci_hi,
                    "confidence": s.confidence,
                }
                for (workload, policy), s in sorted(self.seed_stats.items())
            ],
            "paired_significance": [
                {
                    "workload": workload,
                    "baseline": v.baseline,
                    "candidate": v.candidate,
                    "n_pairs": v.n_pairs,
                    "speedup_mean": v.speedup_mean,
                    "speedup_ci": [v.speedup_ci_lo, v.speedup_ci_hi],
                    "delta": v.delta,
                    "effect": v.effect_label,
                    "p_value": v.p_value,
                    "p_corrected": v.p_corrected,
                    "verdict": v.verdict,
                    "method": v.method,
                }
                for rows in verdicts.values()
                for workload, v in rows
            ],
        }


def run_dag(
    workloads: Sequence[str] = WORKLOADS,
    policies: Sequence[str] = POLICIES,
    n_cores: int = 32,
    cores_per_socket: int = 8,
    scale: int = 2,
    graph_seed: int = 0,
    seed: int = 0,
    seeds: int = 1,
    confidence: float = 0.95,
    alpha: float = 0.05,
    n_workers: int = 1,
    runner: Optional[SweepRunner] = None,
    fingerprint: bool = False,
    perf_report: bool = False,
    engine_mode: Optional[str] = None,
    point_cache: Any = None,
) -> DagResult:
    """The full E7 sweep: workload families × placement policies.

    Every (workload, policy) point replicates *seeds* times on the
    matched schedule of :func:`repro.stats.run_replicated` — same
    derived seeds across policies, which is what makes the per-workload
    tests paired.  Point weights scale with task count so the heavy
    Cholesky instances dispatch first under a parallel runner.
    *point_cache* follows :func:`repro.exec.cache.resolve_point_cache`
    (``None`` = environment default, ``False`` = off); the DAG digest
    rides in the spec kwargs via *graph_seed*/*scale*, so a cached point
    can never be served for a different graph.
    """
    for w in workloads:
        if w not in WORKLOADS:
            raise ValidationError(f"unknown workload {w!r}; one of {WORKLOADS}")
    for p in policies:
        if p not in POLICY_OF:
            raise ValidationError(f"unknown policy {p!r}; one of {POLICIES}")
    result = DagResult(
        workloads=list(workloads),
        policies=list(policies),
        n_cores=n_cores,
        scale=scale,
        graph_seed=graph_seed,
        n_seeds=seeds,
        alpha=alpha,
    )
    weight_of = {
        w: float(build_workload(w, scale=scale, graph_seed=graph_seed).n_tasks)
        for w in workloads
    }
    specs = [
        ReplicateSpec(
            run_dag_point,
            dict(
                workload=workload,
                policy=policy,
                n_cores=n_cores,
                cores_per_socket=cores_per_socket,
                scale=scale,
                graph_seed=graph_seed,
                fingerprint=fingerprint,
                perf_report=perf_report,
                engine_mode=engine_mode,
            ),
            key=(workload, policy),
            label=f"{workload}/{policy}",
            weight=weight_of[workload],
        )
        for workload in workloads
        for policy in policies
    ]
    sweep = run_replicated(
        specs,
        seeds=seeds,
        base_seed=seed,
        scope="dag",
        value_of=_point_time,
        confidence=confidence,
        runner=runner,
        n_workers=n_workers,
        point_cache=point_cache,
        shared_topologies=[
            ("paper-smp", (n_cores // cores_per_socket, cores_per_socket), "default")
        ],
    )
    for point in sweep.points:
        result.points.append(point.first)
        result.replicates[point.key] = tuple(point.results)
        if point.stats is not None:
            result.seed_stats[point.key] = point.stats
    return result
