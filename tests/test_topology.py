"""Tests for topology objects, tree finalization, builder, and presets."""

import pytest

from repro.topology.builder import (
    DEFAULT_CACHE_ATTRS,
    TopologyBuilder,
    flat_topology,
    from_spec,
)
from repro.topology.objects import (
    CacheAttributes,
    MemoryAttributes,
    ObjType,
    TopologyObject,
)
from repro.topology.tree import Topology, TopologyError
from repro.topology import presets


class TestObjects:
    def test_add_child_sets_parent(self):
        root = TopologyObject(ObjType.MACHINE)
        child = TopologyObject(ObjType.NUMANODE)
        root.add_child(child)
        assert child.parent is root
        assert root.children == [child]

    def test_add_child_twice_rejected(self):
        root = TopologyObject(ObjType.MACHINE)
        other = TopologyObject(ObjType.PACKAGE)
        child = TopologyObject(ObjType.NUMANODE)
        root.add_child(child)
        with pytest.raises(ValueError):
            other.add_child(child)

    def test_containment_order_enforced(self):
        pu = TopologyObject(ObjType.PU)
        with pytest.raises(ValueError):
            pu.add_child(TopologyObject(ObjType.CORE))

    def test_cache_attrs_validation(self):
        with pytest.raises(ValueError):
            CacheAttributes(size=0)
        with pytest.raises(ValueError):
            CacheAttributes(size=1024, line_size=0)

    def test_memory_attrs_validation(self):
        with pytest.raises(ValueError):
            MemoryAttributes(local_bytes=-1)

    def test_is_cache(self):
        assert ObjType.L1.is_cache and ObjType.L2.is_cache and ObjType.L3.is_cache
        assert not ObjType.CORE.is_cache
        assert not ObjType.MACHINE.is_cache

    def test_descendants_preorder(self, small_topo):
        names = [o.type for o in small_topo.root.descendants()]
        assert names[0] is ObjType.NUMANODE

    def test_type_label(self, small_topo):
        pu = small_topo.pus()[3]
        assert pu.type_label() == "Pu#3"


class TestTreeFinalization:
    def test_depth_and_levels(self, small_topo):
        # machine > numa > package > l3 > core > pu = 6 levels
        assert small_topo.depth == 6
        assert small_topo.nbobjs_at_depth(0) == 1
        assert small_topo.nbobjs_at_depth(5) == 8

    def test_nb_pus(self, small_topo):
        assert small_topo.nb_pus == 8

    def test_logical_indices_sequential(self, small_topo):
        pus = small_topo.pus()
        assert [p.logical_index for p in pus] == list(range(8))

    def test_os_index_defaults(self, small_topo):
        assert [p.os_index for p in small_topo.pus()] == list(range(8))

    def test_cpusets_bottom_up(self, small_topo):
        node0 = small_topo.objects_by_type(ObjType.NUMANODE)[0]
        assert node0.cpuset.to_list_string() == "0-3"
        assert small_topo.cpuset.weight() == 8

    def test_root_must_be_machine(self):
        with pytest.raises(TopologyError):
            Topology(TopologyObject(ObjType.PACKAGE))

    def test_leaves_must_be_pu(self):
        root = TopologyObject(ObjType.MACHINE)
        root.add_child(TopologyObject(ObjType.CORE))
        with pytest.raises(TopologyError):
            Topology(root)

    def test_leaf_uniform_depth_required(self):
        root = TopologyObject(ObjType.MACHINE)
        core = root.add_child(TopologyObject(ObjType.CORE))
        core.add_child(TopologyObject(ObjType.PU))
        root.add_child(TopologyObject(ObjType.PU))  # a PU at wrong depth
        with pytest.raises(TopologyError):
            Topology(root)

    def test_duplicate_os_index_rejected(self):
        root = TopologyObject(ObjType.MACHINE)
        for _ in range(2):
            core = root.add_child(TopologyObject(ObjType.CORE))
            core.add_child(TopologyObject(ObjType.PU, os_index=0))
        with pytest.raises(TopologyError):
            Topology(root)


class TestTreeQueries:
    def test_arities(self, small_topo):
        assert small_topo.arities() == [2, 1, 1, 4, 1]

    def test_arities_nonuniform_rejected(self):
        root = TopologyObject(ObjType.MACHINE)
        c1 = root.add_child(TopologyObject(ObjType.CORE))
        c2 = root.add_child(TopologyObject(ObjType.CORE))
        c1.add_child(TopologyObject(ObjType.PU))
        c2.add_child(TopologyObject(ObjType.PU))
        c2.add_child(TopologyObject(ObjType.PU))
        topo = Topology(root)
        with pytest.raises(TopologyError):
            topo.arities()

    def test_common_ancestor_same_node(self, small_topo):
        a = small_topo.pu_by_os_index(0)
        b = small_topo.pu_by_os_index(1)
        anc = small_topo.common_ancestor(a, b)
        assert anc.type is ObjType.L3

    def test_common_ancestor_cross_node(self, small_topo):
        assert small_topo.common_ancestor_depth(0, 4) == 0  # machine

    def test_common_ancestor_self(self, small_topo):
        a = small_topo.pu_by_os_index(2)
        assert small_topo.common_ancestor(a, a) is a

    def test_numa_node_of(self, small_topo):
        assert small_topo.numa_node_of(0).logical_index == 0
        assert small_topo.numa_node_of(5).logical_index == 1

    def test_package_core_of(self, small_topo):
        assert small_topo.package_of(0).type is ObjType.PACKAGE
        assert small_topo.core_of(7).type is ObjType.CORE

    def test_core_of_missing_level(self):
        t = from_spec("numa:2 pu:2")
        assert t.core_of(0) is None

    def test_has_hyperthreading(self, small_topo, ht_topo):
        assert not small_topo.has_hyperthreading()
        assert ht_topo.has_hyperthreading()

    def test_pu_lookup_errors(self, small_topo):
        with pytest.raises(TopologyError):
            small_topo.pu_by_os_index(99)
        with pytest.raises(TopologyError):
            small_topo.pu_by_logical_index(99)

    def test_type_depth(self, small_topo):
        assert small_topo.type_depth(ObjType.CORE) == 4
        assert small_topo.type_depth(ObjType.L1) is None

    def test_objects_inside(self, small_topo):
        node0 = small_topo.objects_by_type(ObjType.NUMANODE)[0]
        cores = small_topo.objects_inside(node0.cpuset, ObjType.CORE)
        assert len(cores) == 4

    def test_render_contains_levels(self, small_topo):
        text = small_topo.render()
        assert "Machine#0" in text
        assert text.count("Pu#") == 8

    def test_iter_covers_all(self, small_topo):
        objs = list(small_topo)
        assert len(objs) == 1 + 2 + 2 + 2 + 8 + 8


class TestBuilder:
    def test_paper_machine_shape(self):
        t = presets.paper_smp()
        assert t.nb_pus == 192
        assert t.nbobjs_by_type(ObjType.NUMANODE) == 24
        assert t.nbobjs_by_type(ObjType.CORE) == 192
        assert t.arities() == [24, 1, 1, 8, 1]

    def test_builder_requires_pu_innermost(self):
        b = TopologyBuilder().add_level(ObjType.CORE, 4)
        with pytest.raises(TopologyError):
            b.build()

    def test_builder_rejects_bad_nesting(self):
        b = TopologyBuilder().add_level(ObjType.CORE, 2)
        with pytest.raises(ValueError):
            b.add_level(ObjType.PACKAGE, 2)

    def test_builder_rejects_children_under_pu(self):
        b = TopologyBuilder().add_level(ObjType.PU, 2)
        with pytest.raises(ValueError):
            b.add_level(ObjType.PU, 2)

    def test_builder_rejects_machine_level(self):
        with pytest.raises(ValueError):
            TopologyBuilder().add_level(ObjType.MACHINE, 1)

    def test_builder_empty_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().build()

    def test_default_cache_attrs_attached(self):
        t = presets.small_numa()
        l3 = t.objects_by_type(ObjType.L3)[0]
        assert l3.cache is not None and l3.cache.size > 0

    def test_default_memory_attached(self):
        t = presets.small_numa()
        node = t.objects_by_type(ObjType.NUMANODE)[0]
        assert node.memory is not None and node.memory.local_bytes > 0

    def test_flat_topology(self):
        t = flat_topology(5)
        assert t.nb_pus == 5
        assert t.arities() == [5, 1]

    def test_flat_topology_invalid(self):
        with pytest.raises(TopologyError):
            flat_topology(0)


class TestFromSpec:
    def test_basic_spec(self):
        t = from_spec("numa:2 package:1 core:4 pu:2")
        assert t.nb_pus == 16
        assert t.has_hyperthreading()

    def test_spec_synonyms(self):
        t1 = from_spec("node:2 socket:2 core:2 pu:1")
        assert t1.nbobjs_by_type(ObjType.PACKAGE) == 4

    def test_bare_number_is_group(self):
        t = from_spec("2 core:2 pu:1")
        assert t.nbobjs_by_type(ObjType.GROUP) == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TopologyError):
            from_spec("gadget:2 pu:1")

    def test_bad_count_rejected(self):
        with pytest.raises(TopologyError):
            from_spec("core:x pu:1")

    def test_empty_spec_rejected(self):
        with pytest.raises(TopologyError):
            from_spec("   ")


class TestPresets:
    def test_by_name(self):
        t = presets.by_name("small-numa")
        assert t.nb_pus == 8

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            presets.by_name("nonexistent")

    def test_all_presets_build(self):
        for name in presets.PRESETS:
            t = presets.by_name(name)
            assert t.nb_pus > 0
            assert t.arities()  # balanced

    def test_hyperthreaded_preset(self):
        t = presets.hyperthreaded_smp(2, 4)
        assert t.has_hyperthreading()
        assert t.nb_pus == 16

    def test_deep_hierarchy_depth(self):
        t = presets.deep_hierarchy()
        assert t.depth == 7
