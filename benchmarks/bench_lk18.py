"""Extension experiment E1 — a second Livermore workload (Kernel 18).

The paper validates on LK23 only; this bench repeats the Bind/NoBind
comparison with Livermore Kernel 18 (2-D explicit hydrodynamics: seven
fields, three halo exchanges per time step) to show the placement win
is not an artifact of LK23's particular compute/communication ratio.
"""

import pytest

from repro.kernels import lk18
from repro.kernels.lk23_orwl import build_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.topology import presets


def _run(policy: str) -> float:
    topo = presets.paper_smp(12, 8)  # 96 cores
    cfg = lk18.orwl_config(n=8192, grid_rows=8, grid_cols=12, iterations=2)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy=policy)
    machine = Machine(topo, seed=0)
    rt = Runtime(prog, machine, mapping=plan.mapping,
                 control_mapping=plan.control_mapping)
    return rt.run().time


@pytest.mark.parametrize("policy", ["treematch", "nobind"])
def test_lk18_point(benchmark, policy):
    t = benchmark.pedantic(_run, args=(policy,), rounds=1, iterations=1)
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["sim_time_s"] = t
    assert t > 0


def test_lk18_binding_wins(benchmark):
    def both():
        return _run("treematch"), _run("nobind")

    t_bind, t_nobind = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = t_nobind / t_bind
    benchmark.extra_info["bind_s"] = t_bind
    benchmark.extra_info["nobind_s"] = t_nobind
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 1.3, f"LK18 binding speedup only {speedup:.2f}x"
