"""Tests for repro.util: RNG handling, validation, logging."""

import logging

import numpy as np
import pytest

from repro.util.log import enable_console_logging, get_logger
from repro.util.rng import make_rng, spawn_rngs
from repro.util.validate import (
    ValidationError,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_square_matrix,
    check_symmetric,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        a = make_rng(ss)
        assert isinstance(a, np.random.Generator)

    def test_spawn_independent_and_reproducible(self):
        a1, b1 = spawn_rngs(9, 2)
        a2, b2 = spawn_rngs(9, 2)
        assert a1.random() == a2.random()
        assert b1.random() == b2.random()
        assert a1.random() != b1.random()

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        children = spawn_rngs(g, 3)
        assert len(children) == 3

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(1, 0) == []


class TestValidate:
    def test_square_ok(self):
        m = check_square_matrix([[1, 2], [3, 4]])
        assert m.dtype == np.float64

    def test_square_rejects_1d(self):
        with pytest.raises(ValidationError):
            check_square_matrix([1, 2, 3])

    def test_square_rejects_rect(self):
        with pytest.raises(ValidationError):
            check_square_matrix([[1, 2, 3], [4, 5, 6]])

    def test_symmetric_ok(self):
        check_symmetric([[0, 1], [1, 0]])

    def test_symmetric_rejects(self):
        with pytest.raises(ValidationError):
            check_symmetric([[0, 1], [2, 0]])

    def test_symmetric_empty_ok(self):
        check_symmetric(np.zeros((0, 0)))

    def test_nonnegative(self):
        check_nonnegative([[0, 1]])
        with pytest.raises(ValidationError):
            check_nonnegative([[-1]])

    def test_positive(self):
        assert check_positive(2) == 2.0
        with pytest.raises(ValidationError):
            check_positive(0)
        with pytest.raises(ValidationError):
            check_positive(-1)

    def test_in_range(self):
        assert check_in_range(0.5, 0, 1) == 0.5
        check_in_range(5, lo=0)  # open above
        check_in_range(-5, hi=0)  # open below
        with pytest.raises(ValidationError):
            check_in_range(2, 0, 1)
        with pytest.raises(ValidationError):
            check_in_range(-1, 0, 1)


class TestLog:
    def test_get_logger_namespacing(self):
        assert get_logger("treematch").name == "repro.treematch"
        assert get_logger("repro.orwl").name == "repro.orwl"

    def test_enable_console_idempotent(self):
        enable_console_logging(logging.DEBUG)
        root = logging.getLogger("repro")
        n = len(root.handlers)
        enable_console_logging(logging.DEBUG)
        assert len(root.handlers) == n
