"""Post-mortem performance analysis of traced runs.

Usage::

    # The paper machine: critical path, counter groups, NUMA heatmap,
    # and the top-down Bind-vs-NoBind gap attribution:
    python -m repro.tools.perf --preset paper --impl orwl-bind,orwl-nobind

    # Multi-seed: per-metric mean / CI across 5 matched seeds:
    python -m repro.tools.perf --preset smp48x8 --seeds 5

    # Artifacts: JSON reports + folded stacks for flamegraph.pl:
    python -m repro.tools.perf --json perf.json --flamegraph stacks/

    # Analyze an archived JSONL trace instead of running anything:
    python -m repro.tools.perf --trace-in lk23.jsonl
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.comm.patterns import square_grid_shape
from repro.exec.cache import machine_inputs
from repro.exec.runner import derive_seed
from repro.experiments.fig1 import IMPLEMENTATIONS
from repro.experiments.scaling import matrix_order
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.kernels.openmp import OpenMpConfig, run_openmp_lk23
from repro.observe.tracer import Tracer
from repro.orwl.runtime import Runtime
from repro.perf import PerfReport, analyze, attribute_gap, write_folded
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.stats.aggregate import summarize_map
from repro.topology.generate import SCALING_SPECS
from repro.topology.objects import ObjType


def _impl_list(value: str) -> list[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("need at least one implementation")
    for name in names:
        if name not in IMPLEMENTATIONS:
            raise argparse.ArgumentTypeError(
                f"unknown implementation {name!r}; one of {IMPLEMENTATIONS}"
            )
    return names


def run_traced(
    preset: str,
    implementation: str,
    n: int,
    iterations: int,
    seed: int,
) -> tuple[PerfReport, list]:
    """One traced run on a generated preset; the report and raw events."""
    topo, dm = machine_inputs(preset)
    n_cores = topo.nb_pus
    tracer = Tracer()
    machine = Machine(topo, distance_model=dm, seed=seed, tracer=tracer)
    if implementation == "openmp":
        result = run_openmp_lk23(
            machine, OpenMpConfig(n=n, n_threads=n_cores, iterations=iterations)
        )
        time = result.time
    else:
        rows, cols = square_grid_shape(n_cores)
        prog = build_program(
            Lk23Config(n=n, grid_rows=rows, grid_cols=cols, iterations=iterations)
        )
        policy = "treematch" if implementation == "orwl-bind" else "nobind"
        plan = bind_program(prog, topo, policy=policy)
        time = Runtime(
            prog, machine, mapping=plan.mapping,
            control_mapping=plan.control_mapping,
        ).run().time
    events = tracer.events
    report = analyze(
        events,
        label=implementation,
        measured_time=time,
        n_pus=topo.nb_pus,
        n_nodes=topo.nbobjs_by_type(ObjType.NUMANODE),
    )
    return report, events


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--preset", default="paper",
        help="generated machine preset "
        f"(one of {','.join(sorted(SCALING_SPECS))}; default paper)",
    )
    parser.add_argument(
        "--impl", type=_impl_list, default=["orwl-bind", "orwl-nobind"],
        metavar="A,B,...",
        help="comma-separated implementations to run and compare "
        f"(of {','.join(IMPLEMENTATIONS)}; default orwl-bind,orwl-nobind)",
    )
    parser.add_argument("--n", type=int, default=None,
                        help="matrix order (default: the preset's "
                             "weak-scaling order, 16384-ish on paper)")
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=1,
                        help="replicates per implementation; > 1 adds "
                             "per-metric mean/CI tables (replicate 0 keeps "
                             "the base seed)")
    parser.add_argument("--trace-in", metavar="FILE",
                        help="analyze a JSONL trace (from repro.tools.trace "
                             "--format jsonl) instead of running anything")
    parser.add_argument("--json", metavar="FILE",
                        help="write every report plus the gap attribution "
                             "as one JSON document")
    parser.add_argument("--flamegraph", metavar="DIR",
                        help="write per-implementation folded stacks "
                             "(<impl>.folded) for flamegraph.pl/speedscope")
    args = parser.parse_args(argv)

    reports: list[PerfReport] = []
    events_of: dict[str, list] = {}
    summaries: dict[str, list[dict]] = {}

    if args.trace_in:
        from repro.observe.export import read_jsonl

        events = list(read_jsonl(args.trace_in))
        label = Path(args.trace_in).stem
        reports.append(analyze(events, label=label))
        events_of[label] = events
    else:
        if args.preset not in SCALING_SPECS:
            parser.error(
                f"unknown preset {args.preset!r}; one of "
                f"{sorted(SCALING_SPECS)}"
            )
        topo, _ = machine_inputs(args.preset)
        n = args.n if args.n is not None else matrix_order(topo.nb_pus)
        for impl in args.impl:
            rows = []
            for r in range(args.seeds):
                seed = (
                    args.seed if r == 0
                    else derive_seed(args.seed, "perf", impl, r)
                )
                report, events = run_traced(
                    args.preset, impl, n, args.iterations, seed
                )
                rows.append(report.summary())
                if r == 0:
                    reports.append(report)
                    events_of[impl] = events
            summaries[impl] = rows

    for report in reports:
        print(report.render())
        print()

    gaps = []
    if len(reports) > 1:
        fastest = min(reports, key=lambda r: r.measured_time)
        for report in reports:
            if report is fastest:
                continue
            gap = attribute_gap(
                report.attribution, fastest.attribution,
                slow_label=report.label, fast_label=fastest.label,
                measured_slow=report.measured_time,
                measured_fast=fastest.measured_time,
            )
            gaps.append(gap)
            print(gap.render())
            print()

    if args.seeds > 1 and summaries:
        for impl, rows in summaries.items():
            stats = summarize_map(rows)
            head = f"Across {len(rows)} seeds — {impl}"
            print(head)
            print("-" * len(head))
            width = max(len(k) for k in stats)
            for key, s in stats.items():
                print(f"  {key:<{width}} {s.mean:>12.6g} ±{s.stddev:.3g} "
                      f"[{s.ci_lo:.6g}, {s.ci_hi:.6g}] (n={s.n})")
            print()

    if args.flamegraph:
        out_dir = Path(args.flamegraph)
        out_dir.mkdir(parents=True, exist_ok=True)
        for label, events in events_of.items():
            dst = out_dir / f"{label}.folded"
            n_stacks = write_folded(events, dst, root=label)
            print(f"wrote {n_stacks} stacks to {dst}")

    if args.json:
        doc = {
            "format": "repro-perf",
            "reports": [r.to_json_dict() for r in reports],
            "gaps": [g.to_json_dict() for g in gaps],
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(reports)} reports to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
