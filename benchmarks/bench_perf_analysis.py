"""Perf analysis must stay post-mortem-cheap: 10^5 events under 2 s.

``repro.perf.analyze`` is meant to run after *every* traced experiment
(the sweeps attach a report per point with ``--perf-report``), so its
cost has to stay a small multiple of the simulation it explains.  The
gate: a synthetic 100k-event stream — realistic span mix, hundreds of
threads, cross-thread wait/release structure that exercises the
critical-path DP and the backward walk — analyzed end to end (critical
path, attribution, counter groups, traffic matrix) in under 2 seconds.

The stream is generated deterministically (fixed seed), so the gate
measures the analyzer, not the generator's mood.
"""

import random
import time

from repro.observe.tracer import TraceEvent
from repro.perf import analyze

N_EVENTS = 100_000
N_THREADS = 256
N_NODES = 16
TIME_BUDGET_S = 2.0


def synth_trace(n_events: int = N_EVENTS, seed: int = 20230213) -> list:
    """A deterministic synthetic stream shaped like a real LK23 run.

    Per thread, spans tile the timeline (compute / transfer / wait /
    runq in a weighted rotation) exactly as the tracer guarantees;
    migrations fire occasionally as instants.  Emission order is by
    span start, which preserves the causal-order property the analyses
    rely on.
    """
    rng = random.Random(seed)
    clock = [0.0] * N_THREADS
    staged = []
    kinds = ("compute", "transfer", "wait", "runq")
    weights = (0.45, 0.25, 0.2, 0.1)
    levels = ("CORE", "L3", "NUMANODE", "MACHINE")
    made = 0
    while made < n_events:
        tid = rng.randrange(N_THREADS)
        kind = rng.choices(kinds, weights)[0]
        dur = rng.uniform(1e-6, 2e-4)
        ts = clock[tid]
        clock[tid] = ts + dur
        node = tid * N_NODES // N_THREADS
        extra = {}
        if kind == "transfer":
            level = rng.choice(levels)
            src = rng.randrange(N_NODES) if level == "MACHINE" else node
            extra = dict(
                level=level, nbytes=rng.uniform(1e3, 1e6),
                detail=f"from-node:{src}",
            )
        staged.append((ts, tid, kind, dur, node, extra))
        made += 1
        if rng.random() < 0.01 and made < n_events:
            staged.append((clock[tid], tid, "migration", 1e-5, node, {}))
            made += 1
    staged.sort(key=lambda s: (s[0], s[1]))
    return [
        TraceEvent(
            seq, kind, ts, dur, tid=tid, thread=f"T{tid}",
            pu=tid, node=node, **extra,
        )
        for seq, (ts, tid, kind, dur, node, extra) in enumerate(staged)
    ]


def test_analyze_100k_events_under_budget(benchmark):
    events = synth_trace()
    assert len(events) == N_EVENTS
    analyze(events[:1000])  # warm imports and numpy before timing

    t0 = time.perf_counter()
    report = benchmark.pedantic(
        lambda: analyze(events, n_pus=N_THREADS, n_nodes=N_NODES),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - t0

    benchmark.extra_info["n_events"] = len(events)
    benchmark.extra_info["elapsed_s"] = elapsed
    assert elapsed < TIME_BUDGET_S, (
        f"analyzing {len(events)} events took {elapsed:.2f}s "
        f"(budget {TIME_BUDGET_S}s)"
    )
    # The report must also be *right*: exact partition and valid bounds.
    assert report.critical_path.bound_ok()
    total = report.attribution.total
    assert abs(total - report.makespan) <= 1e-9 * max(1.0, report.makespan)
