"""Tests for topology restriction and the `allowed` mapping constraint."""

import pytest

from repro.comm import patterns
from repro.topology import presets, restrict, restrict_to_objects
from repro.topology.cpuset import CpuSet
from repro.topology.objects import ObjType
from repro.topology.tree import TopologyError
from repro.treematch.algorithm import tree_match


class TestRestrict:
    def test_keep_one_node(self, small_topo):
        sub = restrict(small_topo, CpuSet.from_range(0, 4))
        assert sub.nb_pus == 4
        assert sub.nbobjs_by_type(ObjType.NUMANODE) == 1
        assert [p.os_index for p in sub.pus()] == [0, 1, 2, 3]

    def test_os_indices_preserved(self, small_topo):
        sub = restrict(small_topo, CpuSet.from_range(4, 8))
        assert [p.os_index for p in sub.pus()] == [4, 5, 6, 7]

    def test_attributes_preserved(self, small_topo):
        sub = restrict(small_topo, CpuSet.from_range(0, 4))
        l3 = sub.objects_by_type(ObjType.L3)[0]
        assert l3.cache is not None and l3.cache.size > 0

    def test_partial_core_restriction(self, ht_topo):
        # Keep only one hyperthread of each core of node 0.
        sub = restrict(ht_topo, CpuSet([0, 2]))
        assert sub.nb_pus == 2
        assert sub.nbobjs_by_type(ObjType.CORE) == 2

    def test_empty_intersection_rejected(self, small_topo):
        with pytest.raises(TopologyError):
            restrict(small_topo, CpuSet([99]))

    def test_original_untouched(self, small_topo):
        restrict(small_topo, CpuSet.from_range(0, 4))
        assert small_topo.nb_pus == 8

    def test_restrict_to_objects(self):
        t = presets.paper_smp(8, 8)
        sub = restrict_to_objects(t, ObjType.NUMANODE, 3)
        assert sub.nb_pus == 24
        assert sub.nbobjs_by_type(ObjType.NUMANODE) == 3
        assert sub.arities() == [3, 1, 1, 8, 1]

    def test_restrict_to_objects_bad_count(self, small_topo):
        with pytest.raises(TopologyError):
            restrict_to_objects(small_topo, ObjType.NUMANODE, 5)
        with pytest.raises(TopologyError):
            restrict_to_objects(small_topo, ObjType.NUMANODE, 0)


class TestAllowedConstraint:
    def test_mapping_stays_inside_allowed(self):
        topo = presets.paper_smp(4, 8)
        allowed = CpuSet.from_range(8, 24)  # sockets 1 and 2 only
        m = patterns.stencil_2d(4, 4, edge_volume=100.0)
        result = tree_match(topo, m, allowed=allowed)
        for t in range(result.mapping.n_threads):
            assert result.mapping.pu(t) in allowed

    def test_allowed_oversubscription(self):
        topo = presets.paper_smp(4, 8)
        allowed = CpuSet.from_range(0, 8)  # one socket for 16 threads
        m = patterns.stencil_2d(4, 4, edge_volume=100.0)
        result = tree_match(topo, m, allowed=allowed)
        assert result.mapping.max_load() == 2
        assert all(result.mapping.pu(t) in allowed for t in range(16))

    def test_allowed_mapping_valid_on_full_machine(self):
        topo = presets.paper_smp(4, 8)
        allowed = CpuSet.from_range(16, 32)
        m = patterns.ring(8)
        result = tree_match(topo, m, allowed=allowed)
        result.mapping.validate_against(topo)  # os indices are global
