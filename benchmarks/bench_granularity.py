"""Ablation A7 — mapping granularity: task (paper mode) vs op.

The paper maps compute threads (one per task) and handles the
communication threads via the control extension; the alternative is to
feed every operation thread through the oversubscribed mapping.  This
bench measures both on the paper workload: task granularity must win
(or tie) because it guarantees one compute-heavy main per core, whereas
op granularity optimizes total clustered volume at the expense of
compute balance.
"""

import pytest

from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.topology import presets


def _run(granularity: str) -> float:
    topo = presets.paper_smp(8, 8)  # 64 cores
    cfg = Lk23Config(n=16384, grid_rows=8, grid_cols=8, iterations=3)
    prog = build_program(cfg)
    plan = bind_program(prog, topo, policy="treematch", granularity=granularity)
    machine = Machine(topo, seed=0)
    rt = Runtime(prog, machine, mapping=plan.mapping,
                 control_mapping=plan.control_mapping)
    return rt.run().time


@pytest.mark.parametrize("granularity", ["task", "op"])
def test_granularity_point(benchmark, granularity):
    t = benchmark.pedantic(_run, args=(granularity,), rounds=1, iterations=1)
    benchmark.extra_info["granularity"] = granularity
    benchmark.extra_info["sim_time_s"] = t
    assert t > 0


def test_task_granularity_wins(benchmark):
    def both():
        return _run("task"), _run("op")

    t_task, t_op = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["task_s"] = t_task
    benchmark.extra_info["op_s"] = t_op
    benchmark.extra_info["op_over_task"] = t_op / t_task
    # Task granularity guarantees main-thread balance; op granularity
    # may pack several mains per core and must not be better.
    assert t_task <= t_op * 1.02
