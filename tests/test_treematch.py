"""Tests for Algorithm 1: oversubscription, control threads, mapping, cost."""

import numpy as np
import pytest

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.topology import presets
from repro.topology.builder import from_spec
from repro.treematch import cost as cost_mod
from repro.treematch import oversubscription as over
from repro.treematch import control
from repro.treematch.algorithm import tree_match, tree_match_arities
from repro.treematch.control import ControlStrategy
from repro.treematch.mapping import Mapping, map_groups
from repro.util.validate import ValidationError


class TestOversubscription:
    def test_no_extension_when_fits(self):
        plan = over.plan([2, 4], 8)
        assert not plan.oversubscribed
        assert plan.arities == (2, 4)
        assert plan.padded_order == 8

    def test_padding_below_capacity(self):
        plan = over.plan([2, 4], 5)
        assert plan.padded_order == 8  # padded up to the leaves

    def test_extension_when_oversubscribed(self):
        plan = over.plan([2, 4], 17)
        assert plan.oversubscribed
        assert plan.virtual_per_leaf == 3
        assert plan.arities == (2, 4, 3)
        assert plan.n_virtual_leaves == 24

    def test_exact_multiple(self):
        plan = over.plan([2, 2], 8)
        assert plan.virtual_per_leaf == 2
        assert plan.n_virtual_leaves == 8

    def test_invalid_order(self):
        with pytest.raises(ValidationError):
            over.plan([2, 2], 0)

    def test_leaf_count_validation(self):
        with pytest.raises(ValidationError):
            over.leaf_count([2, 0])


class TestControlStrategies:
    def test_hyperthread_branch(self, ht_topo):
        # 4 cores, 8 PUs with HT: 4 compute threads fit one per core.
        plan = control.decide_strategy(ht_topo, n_compute=4, n_control=4)
        assert plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED

    def test_spare_cores_branch(self, small_topo):
        plan = control.decide_strategy(small_topo, n_compute=4, n_control=2)
        assert plan.strategy is ControlStrategy.SPARE_CORES

    def test_unmapped_branch(self, small_topo):
        plan = control.decide_strategy(small_topo, n_compute=8, n_control=4)
        assert plan.strategy is ControlStrategy.UNMAPPED

    def test_no_control_threads(self, small_topo):
        plan = control.decide_strategy(small_topo, n_compute=4, n_control=0)
        assert plan.strategy is ControlStrategy.UNMAPPED

    def test_default_pairing_round_robin(self):
        assert control.default_pairing(3, 5) == (0, 1, 2, 0, 1)

    def test_bad_pairing_rejected(self, small_topo):
        with pytest.raises(ValidationError):
            control.decide_strategy(small_topo, 4, 2, pairing=[0, 9])

    def test_extend_matrix_spare_cores(self, small_topo):
        m = CommMatrix([[0, 10], [10, 0]])
        plan = control.decide_strategy(small_topo, 2, 2)
        ext = control.extend_matrix(m, plan)
        assert ext.order == 4
        assert ext.volume(2, 0) > 0  # ctl0 attached to compute 0
        assert ext.volume(3, 1) > 0

    def test_extend_matrix_noop_other_strategies(self, ht_topo):
        m = CommMatrix([[0, 10], [10, 0]])
        plan = control.decide_strategy(ht_topo, 2, 2)
        assert plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED
        assert control.extend_matrix(m, plan) is m

    def test_extend_matrix_order_mismatch(self, small_topo):
        m = CommMatrix.zeros(3)
        plan = control.decide_strategy(small_topo, 2, 2)
        with pytest.raises(ValidationError):
            control.extend_matrix(m, plan)

    def test_sibling_pu(self, ht_topo, small_topo):
        assert control.sibling_pu_of(ht_topo, 0) == 1
        assert control.sibling_pu_of(ht_topo, 1) == 0
        assert control.sibling_pu_of(small_topo, 0) is None


class TestMapping:
    def test_basic_queries(self):
        m = Mapping((3, -1, 3), labels=("a", "b", "c"), policy="x")
        assert m.pu(0) == 3
        assert not m.is_bound(1)
        assert m.bound_fraction() == pytest.approx(2 / 3)
        assert m.threads_on(3) == [0, 2]
        assert m.max_load() == 2

    def test_default_labels(self):
        m = Mapping((0, 1))
        assert m.labels == ("t0", "t1")

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Mapping((0,), labels=("a", "b"))

    def test_invalid_pu_rejected(self):
        with pytest.raises(ValidationError):
            Mapping((-2,))

    def test_validate_against(self, small_topo):
        Mapping((0, 7)).validate_against(small_topo)
        with pytest.raises(ValidationError):
            Mapping((0, 99)).validate_against(small_topo)

    def test_restricted(self):
        m = Mapping((0, 1, 2), labels=("a", "b", "c"))
        r = m.restricted(2)
        assert r.pu_of == (0, 1)
        assert r.labels == ("a", "b")

    def test_occupancy_excludes_unbound(self):
        m = Mapping((0, -1, 0))
        assert dict(m.occupancy()) == {0: 2}


class TestMapGroups:
    def test_single_level(self):
        # 4 entities grouped in pairs: [[0,2],[1,3]] then top [[0,1]]
        hierarchy = [[[0, 2], [1, 3]], [[0, 1]]]
        slots = map_groups(hierarchy, 4)
        # expansion order: group0 (0,2) then group1 (1,3)
        assert slots == [0, 2, 1, 3]

    def test_empty_hierarchy_identity(self):
        assert map_groups([], 3) == [0, 1, 2]

    def test_invalid_hierarchy_rejected(self):
        with pytest.raises(ValidationError):
            map_groups([[[0, 0]], [[0]]], 2)


class TestTreeMatchArities:
    def test_clusters_land_on_leaves(self):
        cm = patterns.clustered(2, 4, intra_volume=100, inter_volume=1, seed=1)
        slot_of, plan, hierarchy = tree_match_arities([2, 4], cm)
        # slots 0..3 are the first subtree; each cluster must fill one.
        by_subtree = [set(), set()]
        for e in range(8):
            by_subtree[slot_of[e] // 4].add(cm.labels[e])
        # cluster labels were permuted, so check via the matrix instead:
        # entities in the same subtree must be the heavy-affinity group.
        vals = cm.values
        for side in by_subtree:
            idx = [cm.labels.index(l) for l in side]
            intra = sum(vals[i, j] for i in idx for j in idx) / 2
            assert intra == pytest.approx(6 * 100.0)

    def test_slots_are_permutation(self, stencil_matrix):
        slot_of, plan, _ = tree_match_arities([4, 4], stencil_matrix)
        assert sorted(slot_of) == list(range(16))

    def test_oversubscription_path(self):
        cm = patterns.ring(8)
        slot_of, plan, _ = tree_match_arities([4], cm)  # 4 leaves, 8 entities
        assert plan.oversubscribed
        assert plan.virtual_per_leaf == 2
        assert sorted(slot_of)[:8] == list(range(8))


class TestTreeMatchFull:
    def test_one_thread_per_pu_when_fits(self, small_topo, stencil_matrix):
        # 16 threads on 8 PUs: 2 per PU, never 3.
        res = tree_match(small_topo, stencil_matrix)
        assert res.mapping.max_load() == 2

    def test_mapping_covers_matrix(self, small_topo, clustered_matrix):
        res = tree_match(small_topo, clustered_matrix)
        assert res.mapping.n_threads == clustered_matrix.order
        assert res.mapping.bound_fraction() == 1.0
        res.mapping.validate_against(small_topo)

    def test_clusters_on_separate_nodes(self, small_topo, clustered_matrix):
        res = tree_match(small_topo, clustered_matrix)
        cut = cost_mod.numa_cut(res.mapping, clustered_matrix, small_topo)
        # only the inter-cluster traffic (4x4 pairs at volume 1) crosses
        assert cut == pytest.approx(16.0)

    def test_beats_random_on_stencil(self, paper_topo_small):
        m = patterns.stencil_2d(4, 8, edge_volume=1000.0)
        res = tree_match(paper_topo_small, m)
        from repro.placement.policies import RandomPolicy

        rnd = RandomPolicy(seed=3).place(paper_topo_small, m.order, matrix=m)
        assert cost_mod.hop_bytes(res.mapping, m, paper_topo_small) < cost_mod.hop_bytes(
            rnd, m, paper_topo_small
        )

    def test_empty_matrix_rejected(self, small_topo):
        with pytest.raises(ValidationError):
            tree_match(small_topo, CommMatrix.zeros(0))

    def test_control_spare_cores_colocated(self, small_topo):
        m = patterns.ring(4, volume=10.0)
        res = tree_match(small_topo, m, n_control=2)
        assert res.control_plan.strategy is ControlStrategy.SPARE_CORES
        # control rows exist in the extended mapping
        assert res.mapping.n_threads == 6

    def test_control_hyperthread_siblings(self, ht_topo):
        m = patterns.ring(4, volume=10.0)
        res = tree_match(ht_topo, m, n_control=4)
        assert res.control_plan.strategy is ControlStrategy.HYPERTHREAD_RESERVED
        assert res.control_mapping is not None
        for k in range(4):
            comp_pu = res.mapping.pu(res.control_plan.pairing[k])
            ctl_pu = res.control_mapping.pu(k)
            # sibling = same core, different PU
            assert ctl_pu != comp_pu
            assert ht_topo.core_of(ctl_pu) is ht_topo.core_of(comp_pu)

    def test_control_unmapped_when_full(self, small_topo):
        m = patterns.ring(8, volume=10.0)
        res = tree_match(small_topo, m, n_control=8)
        assert res.control_plan.strategy is ControlStrategy.UNMAPPED
        assert res.control_mapping is None

    def test_hierarchy_recorded(self, small_topo, clustered_matrix):
        res = tree_match(small_topo, clustered_matrix)
        assert len(res.hierarchy) == len(res.plan.arities)


class TestCostMetrics:
    def _identity_mapping(self, n):
        return Mapping(tuple(range(n)), policy="identity")

    def test_hop_bytes_zero_for_zero_matrix(self, small_topo):
        m = CommMatrix.zeros(8)
        assert cost_mod.hop_bytes(self._identity_mapping(8), m, small_topo) == 0.0

    def test_hop_bytes_unbound_charged_worst(self, small_topo):
        m = CommMatrix([[0, 10], [10, 0]])
        bound = Mapping((0, 1))
        unbound = Mapping((-1, -1))
        assert cost_mod.hop_bytes(unbound, m, small_topo) > cost_mod.hop_bytes(
            bound, m, small_topo
        )

    def test_numa_cut_detects_split(self, small_topo):
        m = CommMatrix([[0, 10], [10, 0]])
        same = Mapping((0, 1))
        split = Mapping((0, 4))
        assert cost_mod.numa_cut(same, m, small_topo) == 0.0
        assert cost_mod.numa_cut(split, m, small_topo) == 10.0

    def test_numa_cut_no_numa_level(self):
        t = from_spec("core:4 pu:1")
        m = CommMatrix([[0, 5], [5, 0]])
        assert cost_mod.numa_cut(Mapping((0, 3)), m, t) == 0.0

    def test_cache_share_fraction(self, small_topo):
        m = CommMatrix([[0, 10], [10, 0]])
        same_l3 = Mapping((0, 1))
        cross = Mapping((0, 4))
        assert cost_mod.cache_share_fraction(same_l3, m, small_topo) == 1.0
        assert cost_mod.cache_share_fraction(cross, m, small_topo) == 0.0

    def test_cache_share_zero_matrix(self, small_topo):
        m = CommMatrix.zeros(4)
        assert cost_mod.cache_share_fraction(Mapping((0, 1, 2, 3)), m, small_topo) == 0.0

    def test_comm_time_estimate_prefers_local(self, small_topo):
        from repro.topology.distance import DistanceModel

        dm = DistanceModel(small_topo)
        m = CommMatrix([[0, 1e6], [1e6, 0]])
        local = cost_mod.comm_time_estimate(Mapping((0, 1)), m, dm)
        remote = cost_mod.comm_time_estimate(Mapping((0, 4)), m, dm)
        assert remote > local

    def test_score_report_keys(self, small_topo, clustered_matrix):
        res = tree_match(small_topo, clustered_matrix)
        report = cost_mod.score_report(res.mapping, clustered_matrix, small_topo)
        assert set(report) == {
            "hop_bytes",
            "comm_time_estimate",
            "numa_cut",
            "cache_share_fraction",
            "max_load",
        }

    def test_mapping_smaller_than_matrix_rejected(self, small_topo):
        m = CommMatrix.zeros(4)
        with pytest.raises(ValidationError):
            cost_mod.hop_bytes(Mapping((0,)), m, small_topo)
