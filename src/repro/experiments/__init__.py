"""Experiment harnesses reproducing the paper's evaluation.

* :mod:`~repro.experiments.fig1` — the paper's Figure 1 (LK23 processing
  time for ORWL-Bind / ORWL-NoBind / OpenMP across core counts) plus
  the three scalar claims (11 s minimum, 5× vs OpenMP, 2.8× vs NoBind)
  and the "fails beyond one or two sockets" crossover check.
* :mod:`~repro.experiments.ablations` — the design-choice studies from
  DESIGN.md (mapping quality vs baselines, algorithm cost, control
  strategies, oversubscription, affinity-extraction fidelity).
* :mod:`~repro.experiments.scaling` — the beyond-the-paper machine-size
  sweep over generated mega-topologies, with paired significance and
  saturation detection.
* :mod:`~repro.experiments.dag` — E7: Bind/NoBind/service placement on
  the :mod:`repro.tasks` DAG workload families (tiled Cholesky,
  level-synchronous BFS, divide-and-conquer), paired and Holm-corrected.
"""

from repro.experiments.fig1 import (
    IMPLEMENTATIONS,
    Fig1Point,
    Fig1Result,
    run_fig1,
    run_point,
)
from repro.experiments.plotting import ascii_plot, plot_fig1
from repro.experiments.scaling import (
    ScalingPoint,
    ScalingResult,
    run_scaling,
    run_scaling_point,
)
from repro.experiments.dag import (
    POLICIES,
    WORKLOADS,
    DagPoint,
    DagResult,
    build_workload,
    run_dag,
    run_dag_point,
)
from repro.experiments import ablations, cluster, dag, scaling

__all__ = [
    "ascii_plot",
    "plot_fig1",
    "IMPLEMENTATIONS",
    "Fig1Point",
    "Fig1Result",
    "ScalingPoint",
    "ScalingResult",
    "run_fig1",
    "run_point",
    "run_scaling",
    "run_scaling_point",
    "POLICIES",
    "WORKLOADS",
    "DagPoint",
    "DagResult",
    "build_workload",
    "run_dag",
    "run_dag_point",
    "ablations",
    "cluster",
    "dag",
    "scaling",
]
