"""Machine-size scaling sweep over generated mega-topologies.

Usage::

    python -m repro.tools.scaling                          # full sweep
    python -m repro.tools.scaling --preset paper,smp48x8,smp96x8 \
        --seeds 3 --workers 4
    python -m repro.tools.scaling --json scaling.json --chart scaling.txt
"""

from __future__ import annotations

import argparse
import json

from repro.experiments.scaling import CELLS_PER_CORE, DEFAULT_PRESETS, run_scaling
from repro.tools._cache_args import add_cache_arguments, apply_cache_arguments
from repro.topology.generate import SCALING_SPECS


def _preset_list(value: str) -> list[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("need at least one preset name")
    for name in names:
        if name not in SCALING_SPECS:
            raise argparse.ArgumentTypeError(
                f"unknown preset {name!r}; one of {sorted(SCALING_SPECS)}"
            )
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.scaling", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--preset",
        type=_preset_list,
        default=list(DEFAULT_PRESETS),
        metavar="A,B,...",
        help="comma-separated generated presets to sweep "
        f"(default {','.join(DEFAULT_PRESETS)}; "
        f"available {','.join(sorted(SCALING_SPECS))})",
    )
    parser.add_argument("--iterations", type=int, default=3,
                        help="kernel iterations per point")
    parser.add_argument("--cells-per-core", type=int, default=CELLS_PER_CORE,
                        help="weak-scaling workload: matrix cells per core "
                             "(default = the paper's 16384^2 / 192)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=1,
                        help="matched replicates per point (> 1 enables the "
                             "paired permutation tests and Holm correction)")
    parser.add_argument("--alpha", type=float, default=0.05,
                        help="family-wise significance level")
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep worker processes (0 = all host cores, "
                             "1 = serial; results are identical either way)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the full sweep (points, stats, paired "
                             "significance, saturation) as JSON")
    parser.add_argument("--chart", metavar="FILE",
                        help="write the ASCII speedup chart to a file")
    parser.add_argument("--plot", action="store_true",
                        help="print the ASCII speedup chart")
    parser.add_argument("--perf-report", metavar="DIR",
                        help="trace every point and write per-point perf "
                             "reports (JSON + text) and per-preset "
                             "top-down gap attributions into DIR")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    apply_cache_arguments(args)

    result = run_scaling(
        presets=tuple(args.preset),
        iterations=args.iterations,
        cells_per_core=args.cells_per_core,
        seed=args.seed,
        seeds=args.seeds,
        alpha=args.alpha,
        n_workers=args.workers,
        perf_report=args.perf_report is not None,
    )
    print(result.speedup_table())
    if args.plot:
        print()
        print(result.chart())
    if args.chart:
        with open(args.chart, "w") as fh:
            fh.write(result.chart() + "\n")
        print(f"\nwrote chart to {args.chart}")
    if args.perf_report:
        from repro.tools._perf_artifacts import write_point_reports

        n_files = write_point_reports(
            args.perf_report,
            [
                (f"scaling-{p.implementation}-{p.preset}",
                 (p.preset,), p.perf)
                for p in result.points
            ],
        )
        print(f"\nwrote {n_files} perf artifacts to {args.perf_report}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(result.points)} points to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
