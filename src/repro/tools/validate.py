"""Cost-model self-check CLI.

Usage::

    python -m repro.tools.validate                 # the default paper machine
    python -m repro.tools.validate host            # the discovered host model
    python -m repro.tools.validate cluster --cluster-costs

Exits non-zero if any physical invariant of the model is violated —
run it after customizing level costs, contention, or scheduler configs.
"""

from __future__ import annotations

import argparse

from repro.simulate.machine import Machine
from repro.simulate.validate_model import validate_machine_model
from repro.tools._common import resolve_topology


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.validate", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "topology", nargs="?", default="paper-smp",
        help="preset name, 'host', JSON/XML file, or synthetic spec",
    )
    parser.add_argument(
        "--cluster-costs", action="store_true",
        help="use the cluster cost table (network at the tree root)",
    )
    args = parser.parse_args(argv)

    topo = resolve_topology(args.topology)
    if args.cluster_costs:
        from repro.topology.distance import cluster_distance_model

        machine = Machine(topo, distance_model=cluster_distance_model(topo), seed=0)
    else:
        machine = Machine(topo, seed=0)
    report = validate_machine_model(machine)
    print(f"machine: {topo}")
    print(f"checks : {report.checks_run}")
    if report.ok:
        print("result : OK — all physical invariants hold")
        return 0
    print(f"result : {len(report.problems)} problem(s)")
    for p in report.problems:
        print(f"  - {p}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
