"""Level-synchronous BFS over generated irregular graphs, as a task DAG.

The input graph is generated deterministically from ``graph_seed``
(a random attachment tree backbone — guaranteeing connectivity — plus
extra uniform edges for irregularity), levelized host-side from vertex
0, and block-partitioned across ``parts`` owners.  The DAG then has one
task ``BFS[l, p]`` per (level, partition) with a non-empty frontier:

* it *writes* the frontier region ``F[l][p]`` (one 8-byte word per
  frontier vertex the partition discovered);
* it *reads* ``F[l-1][q]`` for every partition *q* whose level-(l-1)
  frontier has an edge into its own level-l vertices — the frontier
  exchange of a distributed level-synchronous BFS;
* its flop cost is the number of edges it scans (the degrees of its
  frontier vertices), so work per task is irregular by construction.

Unlike Cholesky's regular recursion this yields a DAG whose shape —
level widths, cross-partition exchange pattern, per-task cost — all
depend on the random graph, which is exactly the kind of structure the
paper's static stencil extraction never sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tasks.graph import Region, TaskGraph
from repro.util.validate import ValidationError, check_in_range, check_positive


#: cost of scanning one edge, in flops (relaxation + frontier update).
FLOPS_PER_EDGE = 16.0
#: bytes per frontier vertex in the exchange payload.
BYTES_PER_VERTEX = 8.0


@dataclass(frozen=True)
class BfsConfig:
    """Shape of a BFS-on-random-graph instance."""

    #: number of vertices in the generated graph.
    n_vertices: int = 256
    #: extra random edges per vertex on top of the attachment tree.
    extra_degree: float = 2.0
    #: number of frontier partitions (owners).
    parts: int = 8
    #: seed of the graph generator (independent of the simulation seed).
    graph_seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.n_vertices, "n_vertices")
        check_positive(self.parts, "parts")
        check_in_range(self.extra_degree, 0.0, 1e6, "extra_degree")
        if self.parts > self.n_vertices:
            raise ValidationError("more partitions than vertices")


def generate_graph(cfg: BfsConfig) -> list[list[int]]:
    """Deterministic irregular undirected graph as an adjacency list.

    Vertex ``v > 0`` attaches to a uniformly random earlier vertex
    (connected, power-law-ish degrees near the root), then
    ``extra_degree * n`` uniform random edges are layered on top
    (self-loops and duplicates dropped).  Same ``graph_seed``, same
    graph — on every platform, via :class:`numpy.random.Generator`
    (PCG64).
    """
    n = cfg.n_vertices
    rng = np.random.default_rng(cfg.graph_seed)
    edges: set[tuple[int, int]] = set()
    for v in range(1, n):
        u = int(rng.integers(0, v))
        edges.add((u, v))
    n_extra = int(cfg.extra_degree * n)
    if n_extra > 0:
        us = rng.integers(0, n, size=n_extra)
        vs = rng.integers(0, n, size=n_extra)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            edges.add((min(u, v), max(u, v)))
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in sorted(edges):
        adj[u].append(v)
        adj[v].append(u)
    return adj


def bfs_levels(adj: list[list[int]], root: int = 0) -> list[int]:
    """Host-side BFS distance of every vertex from *root*.

    The attachment-tree backbone makes every vertex reachable; a
    disconnected vertex would be a generator bug, so it raises.
    """
    n = len(adj)
    level = [-1] * n
    level[root] = 0
    frontier = [root]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for v in adj[u]:
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(v)
        frontier = nxt
    if min(level) < 0:
        raise ValidationError("generated graph is disconnected")
    return level


def partition_of(v: int, n: int, parts: int) -> int:
    """Block partition: vertex *v* of *n* belongs to owner ``v*parts//n``."""
    return v * parts // n


def build_bfs_graph(config: BfsConfig | None = None) -> TaskGraph:
    """Build the level-synchronous BFS DAG for *config*."""
    cfg = config or BfsConfig()
    adj = generate_graph(cfg)
    level = bfs_levels(adj)
    n, parts = cfg.n_vertices, cfg.parts
    depth = max(level) + 1

    # frontier vertex lists per (level, part)
    frontier: dict[tuple[int, int], list[int]] = {}
    for v in range(n):
        frontier.setdefault((level[v], partition_of(v, n, parts)), []).append(v)

    g = TaskGraph(
        f"bfs-n{n}-d{cfg.extra_degree:g}-p{parts}-s{cfg.graph_seed}"
    )
    regions: dict[tuple[int, int], Region] = {}
    for (lv, p), verts in sorted(frontier.items()):
        regions[lv, p] = g.region(
            f"F[{lv}][{p}]", nbytes=len(verts) * BYTES_PER_VERTEX
        )

    space = g.space("BFS")
    for lv in range(depth):
        for p in range(parts):
            verts = frontier.get((lv, p))
            if not verts:
                continue
            # partitions whose level-(l-1) frontier discovered our vertices
            producers: set[int] = set()
            if lv > 0:
                for v in verts:
                    for u in adj[v]:
                        if level[u] == lv - 1:
                            producers.add(partition_of(u, n, parts))
            edges_scanned = sum(len(adj[v]) for v in verts)
            g.spawn(
                space[lv, p],
                flops=edges_scanned * FLOPS_PER_EDGE,
                reads=[regions[lv - 1, q] for q in sorted(producers)],
                writes=[regions[lv, p]],
            )
    return g
