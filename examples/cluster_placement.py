#!/usr/bin/env python3
"""Placement across a cluster: the network makes locality 10× pricier.

Runs LK23 over a 4-node cluster model (one GROUP per machine, a
microsecond-latency network at the tree root) and compares how much
traffic each placement policy pushes over the NICs.  The block
declaration order is shuffled — tasks rarely get created in data-
geometry order in real applications — which is precisely when the
affinity-aware mapping earns its keep.

Run:  python examples/cluster_placement.py
"""

from repro.experiments.cluster import run_cluster_lk23, table


def main() -> None:
    print("LK23 on a 4-node x 2-socket x 8-core cluster "
          "(64 tasks, shuffled declaration order)\n")
    points = run_cluster_lk23(
        nodes=4,
        sockets_per_node=2,
        cores_per_socket=8,
        n=8192,
        iterations=3,
        policies=("treematch", "round-robin", "random"),
        shuffle_declaration=True,
    )
    print(table(points))

    tm = points["treematch"]
    rr = points["round-robin"]
    print(f"\nTreeMatch sends {rr.network_bytes / tm.network_bytes:.1f}x less "
          "data over the network than declaration-order placement.")
    print("\nSame workload, geometry-friendly (row-major) declaration order:")
    friendly = run_cluster_lk23(
        nodes=4, sockets_per_node=2, cores_per_socket=8, n=8192, iterations=3,
        policies=("treematch", "round-robin"), shuffle_declaration=False,
    )
    print(table(friendly))
    print("\n(The blind baseline is accidentally optimal here — and the "
          "affinity-aware mapping ties it instead of losing.)")


if __name__ == "__main__":
    main()
