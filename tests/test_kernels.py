"""Tests for the LK23 kernel: geometry, numerics, ORWL program, OpenMP model."""

import numpy as np
import pytest

from repro.kernels import (
    BlockGrid,
    Direction,
    FLOPS_PER_POINT,
    Lk23Config,
    OpenMpConfig,
    build_program,
    describe,
    lk23_blocked,
    lk23_jacobi,
    lk23_jacobi_step,
    lk23_reference,
    make_arrays,
    run_openmp_lk23,
    total_flops,
)
from repro.kernels.stencil import ALL_DIRECTIONS, CORNERS, EDGES
from repro.orwl import Runtime
from repro.simulate.machine import Machine
from repro.treematch.mapping import Mapping
from repro.placement import bind_program
from repro.util.validate import ValidationError


class TestDirections:
    def test_opposites(self):
        assert Direction.N.opposite is Direction.S
        assert Direction.NE.opposite is Direction.SW
        assert Direction.W.opposite is Direction.E

    def test_corner_classification(self):
        assert all(d.is_corner for d in CORNERS)
        assert not any(d.is_corner for d in EDGES)

    def test_eight_directions(self):
        assert len(ALL_DIRECTIONS) == 8


class TestBlockGrid:
    def test_even_decomposition(self):
        g = BlockGrid(16, 4, 4)
        assert g.n_blocks == 16
        assert g.block_height == 4.0
        assert g.exact_block_shape(0, 0) == (4, 4)

    def test_uneven_decomposition_covers_matrix(self):
        g = BlockGrid(10, 3, 4)
        total = 0
        for r, c in g.blocks():
            h, w = g.exact_block_shape(r, c)
            assert h >= 3 and w >= 2
            total += h * w
        assert total == 100

    def test_paper_grid_is_legal(self):
        g = BlockGrid(16384, 12, 16)
        assert g.n_blocks == 192
        heights = {g.exact_block_shape(r, 0)[0] for r in range(12)}
        assert heights <= {1365, 1366}

    def test_block_id_coords_roundtrip(self):
        g = BlockGrid(12, 3, 4)
        for r, c in g.blocks():
            assert g.coords(g.block_id(r, c)) == (r, c)

    def test_block_id_out_of_range(self):
        g = BlockGrid(12, 3, 4)
        with pytest.raises(ValidationError):
            g.block_id(3, 0)
        with pytest.raises(ValidationError):
            g.coords(99)

    def test_neighbor_interior(self):
        g = BlockGrid(12, 3, 4)
        assert g.neighbor(1, 1, Direction.N) == (0, 1)
        assert g.neighbor(1, 1, Direction.SE) == (2, 2)

    def test_neighbor_boundary_none(self):
        g = BlockGrid(12, 3, 4)
        assert g.neighbor(0, 0, Direction.N) is None
        assert g.neighbor(2, 3, Direction.SE) is None

    def test_neighbor_directions_counts(self):
        g = BlockGrid(12, 3, 4)
        assert len(g.neighbor_directions(0, 0)) == 3  # corner
        assert len(g.neighbor_directions(0, 1)) == 5  # edge
        assert len(g.neighbor_directions(1, 1)) == 8  # interior

    def test_frontier_bytes(self):
        g = BlockGrid(16, 4, 2, element_bytes=8)
        assert g.frontier_bytes(Direction.N) == 8 * 8  # width 8
        assert g.frontier_bytes(Direction.E) == 4 * 8  # height 4
        assert g.frontier_bytes(Direction.NE) == 8  # one element

    def test_invalid_grid(self):
        with pytest.raises(ValidationError):
            BlockGrid(0, 1, 1)
        with pytest.raises(ValidationError):
            BlockGrid(4, 8, 1)

    def test_slice_of(self):
        g = BlockGrid(12, 3, 4)
        rs, cs = g.slice_of(1, 2)
        assert (rs.start, rs.stop) == (4, 8)
        assert (cs.start, cs.stop) == (6, 9)


class TestNumerics:
    def test_jacobi_matches_manual_step(self):
        a = make_arrays(5, seed=3)
        new = lk23_jacobi_step(a)
        # manual check of one interior point
        k, j = 2, 3
        qa = (
            a.za[k, j + 1] * a.zr[k, j]
            + a.za[k, j - 1] * a.zb[k, j]
            + a.za[k + 1, j] * a.zu[k, j]
            + a.za[k - 1, j] * a.zv[k, j]
            + a.zz[k, j]
        )
        expected = a.za[k, j] + 0.175 * (qa - a.za[k, j])
        assert new[k, j] == pytest.approx(expected)

    def test_jacobi_preserves_boundary(self):
        a = make_arrays(6, seed=1)
        new = lk23_jacobi_step(a)
        assert np.array_equal(new[0, :], a.za[0, :])
        assert np.array_equal(new[:, -1], a.za[:, -1])

    def test_blocked_equals_jacobi_even_grid(self):
        a = make_arrays(24, seed=2)
        g = BlockGrid(24, 3, 4)
        assert np.array_equal(lk23_blocked(a, g, 4), lk23_jacobi(a, 4))

    def test_blocked_equals_jacobi_uneven_grid(self):
        a = make_arrays(23, seed=4)
        g = BlockGrid(23, 3, 4)
        assert np.array_equal(lk23_blocked(a, g, 3), lk23_jacobi(a, 3))

    def test_blocked_equals_jacobi_single_block(self):
        a = make_arrays(9, seed=5)
        g = BlockGrid(9, 1, 1)
        assert np.array_equal(lk23_blocked(a, g, 2), lk23_jacobi(a, 2))

    def test_reference_and_jacobi_converge_to_same_fixed_point(self):
        # Gauss-Seidel (reference) and Jacobi differ per-iteration but share
        # the fixed point of the contraction; both must approach it.
        a = make_arrays(8, seed=6)
        gs = lk23_reference(a, iterations=300)
        jac = lk23_jacobi(a, iterations=300)
        assert np.allclose(gs, jac, atol=1e-8)

    def test_reference_single_iteration_differs_from_jacobi(self):
        a = make_arrays(8, seed=7)
        assert not np.array_equal(lk23_reference(a, 1), lk23_jacobi(a, 1))

    def test_inputs_not_mutated(self):
        a = make_arrays(8, seed=8)
        za_before = a.za.copy()
        lk23_jacobi(a, 2)
        lk23_reference(a, 1)
        lk23_blocked(a, BlockGrid(8, 2, 2), 2)
        assert np.array_equal(a.za, za_before)

    def test_make_arrays_validation(self):
        with pytest.raises(ValidationError):
            make_arrays(2)

    def test_make_arrays_shape_check(self):
        from repro.kernels.lk23 import Lk23Arrays

        a = make_arrays(5)
        with pytest.raises(ValidationError):
            Lk23Arrays(a.za, a.zz[:4, :4], a.zr, a.zb, a.zu, a.zv)

    def test_total_flops(self):
        g = BlockGrid(100, 2, 2)
        assert total_flops(g, 10) == 100 * 100 * FLOPS_PER_POINT * 10

    def test_iterations_validation(self):
        a = make_arrays(5)
        with pytest.raises(ValidationError):
            lk23_jacobi(a, 0)
        with pytest.raises(ValidationError):
            lk23_reference(a, 0)


class TestLk23Config:
    def test_paper_config(self):
        cfg = Lk23Config.paper()
        assert cfg.n == 16384
        assert cfg.grid.n_blocks == 192
        assert cfg.iterations == 100

    def test_scaled(self):
        cfg = Lk23Config.scaled(2, 4, iterations=3)
        assert cfg.grid.n_blocks == 8

    def test_validation(self):
        with pytest.raises(ValidationError):
            Lk23Config(iterations=0)
        with pytest.raises(ValidationError):
            Lk23Config(stream_fraction=1.5)

    def test_describe(self):
        text = describe(Lk23Config.paper())
        assert "16384" in text and "192 tasks" in text


class TestLk23Program:
    def test_paper_op_count(self):
        """12x16 grid: 140 interior x9 + 44 edge x6 + 4 corner x4 ops + ...

        Interior blocks have 8 sub-ops, edges 5, corners 3 (one per
        existing neighbour) plus their main op.
        """
        cfg = Lk23Config(n=16384, grid_rows=12, grid_cols=16, iterations=1)
        prog = build_program(cfg)
        expected = 140 * 9 + (2 * 14 + 2 * 10) * 6 + 4 * 4
        assert prog.n_operations == expected
        assert prog.n_tasks == 192

    def test_locations_paired(self):
        cfg = Lk23Config(n=256, grid_rows=2, grid_cols=2, iterations=1)
        prog = build_program(cfg)
        # every src has a matching out
        srcs = {n for n in prog.locations if "/src/" in n}
        outs = {n for n in prog.locations if "/out/" in n}
        assert len(srcs) == len(outs)
        assert {s.replace("/src/", "/out/") for s in srcs} == outs

    def test_src_has_affinity_hint(self):
        cfg = Lk23Config(n=256, grid_rows=2, grid_cols=2, iterations=1)
        prog = build_program(cfg)
        src = next(l for n, l in prog.locations.items() if "/src/" in n)
        out = next(l for n, l in prog.locations.items() if "/out/" in n)
        assert src.affinity_bytes == cfg.grid.block_bytes
        assert out.affinity_bytes is None

    def test_runs_to_completion_bound(self, small_topo):
        cfg = Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=3)
        prog = build_program(cfg)
        plan = bind_program(prog, small_topo, policy="treematch")
        m = Machine(small_topo, seed=1)
        rt = Runtime(prog, m, mapping=plan.mapping, control_mapping=plan.control_mapping)
        res = rt.run()
        assert res.time > 0

    def test_runs_to_completion_unbound(self, small_topo):
        cfg = Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=3)
        prog = build_program(cfg)
        m = Machine(small_topo, seed=1)
        rt = Runtime(prog, m)
        assert rt.run().time > 0

    def test_halo_traffic_traced(self, small_topo):
        cfg = Lk23Config(n=512, grid_rows=1, grid_cols=2, iterations=2)
        prog = build_program(cfg)
        plan = bind_program(prog, small_topo, policy="treematch")
        m = Machine(small_topo, seed=1)
        rt = Runtime(prog, m, mapping=plan.mapping, control_mapping=plan.control_mapping)
        res = rt.run()
        # b0.0's east sub-op must have fed b0.1's main.
        assert res.tracer.volume_between("b0.0/sub_E", "b0.1/main") > 0

    def test_more_iterations_take_longer(self, small_topo):
        times = []
        for iters in (2, 4):
            cfg = Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=iters)
            prog = build_program(cfg)
            plan = bind_program(prog, small_topo, policy="treematch")
            m = Machine(small_topo, seed=1)
            rt = Runtime(prog, m, mapping=plan.mapping, control_mapping=plan.control_mapping)
            times.append(rt.run().time)
        assert times[1] > times[0] * 1.5

    def test_stream_fraction_zero_reduces_traffic(self, small_topo):
        totals = []
        for frac in (1.0, 0.0):
            cfg = Lk23Config(
                n=512, grid_rows=2, grid_cols=2, iterations=2, stream_fraction=frac
            )
            prog = build_program(cfg)
            plan = bind_program(prog, small_topo, policy="treematch")
            m = Machine(small_topo, seed=1)
            rt = Runtime(prog, m, mapping=plan.mapping, control_mapping=plan.control_mapping)
            totals.append(rt.run().metrics.total_bytes)
        assert totals[1] < totals[0]


class TestOpenMpModel:
    def test_runs_and_scales_down_time(self, paper_topo_small):
        times = []
        for p in (8, 32):
            m = Machine(paper_topo_small, seed=1)
            r = run_openmp_lk23(m, OpenMpConfig(n=2048, n_threads=p, iterations=3))
            times.append(r.time)
        assert times[1] < times[0]  # still in the scaling regime

    def test_first_touch_remote_traffic(self, paper_topo_small):
        m = Machine(paper_topo_small, seed=1)
        r = run_openmp_lk23(m, OpenMpConfig(n=2048, n_threads=32, iterations=2))
        assert r.metrics.remote_bytes > 0

    def test_bound_mode_is_local(self, paper_topo_small):
        m = Machine(paper_topo_small, seed=1)
        r = run_openmp_lk23(
            m, OpenMpConfig(n=2048, n_threads=32, iterations=2, bound=True)
        )
        assert r.metrics.local_fraction > 0.9

    def test_bound_beats_unbound_at_scale(self, paper_topo_small):
        times = {}
        for bound in (False, True):
            m = Machine(paper_topo_small, seed=1)
            r = run_openmp_lk23(
                m, OpenMpConfig(n=4096, n_threads=32, iterations=3, bound=bound)
            )
            times[bound] = r.time
        assert times[True] < times[False]

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            OpenMpConfig(n_threads=0)
        with pytest.raises(ValidationError):
            OpenMpConfig(n=4, n_threads=8)
        with pytest.raises(ValidationError):
            OpenMpConfig(iterations=0)

    def test_too_many_bound_workers_rejected(self, small_topo):
        m = Machine(small_topo, seed=1)
        with pytest.raises(ValidationError):
            run_openmp_lk23(m, OpenMpConfig(n=1024, n_threads=16, bound=True))
