"""Ablation A1 — mapping quality: TreeMatch vs baseline placements.

For each synthetic affinity pattern, scores every policy on hop-bytes
and NUMA-cut.  TreeMatch must beat random on every pattern and beat or
tie every baseline on the clustered pattern (where a provably good
grouping exists).
"""

import pytest

from repro.experiments.ablations import BASELINE_POLICIES, mapping_quality

PATTERNS = ("stencil", "clustered", "random")


@pytest.mark.parametrize("pattern", PATTERNS)
def test_mapping_quality(benchmark, pattern):
    scores = benchmark.pedantic(
        mapping_quality, kwargs=dict(pattern=pattern, seed=0), rounds=1, iterations=1
    )
    for policy in BASELINE_POLICIES:
        benchmark.extra_info[f"{policy}_hop_bytes"] = scores[policy]["hop_bytes"]
        benchmark.extra_info[f"{policy}_numa_cut"] = scores[policy]["numa_cut"]

    tm = scores["treematch"]
    assert tm["hop_bytes"] < scores["random"]["hop_bytes"]
    assert tm["numa_cut"] <= scores["random"]["numa_cut"]
    if pattern == "clustered":
        for policy in BASELINE_POLICIES:
            assert tm["numa_cut"] <= scores[policy]["numa_cut"] * 1.001
