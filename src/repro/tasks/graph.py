"""The DAG task-graph frontend: ``TaskSpace`` / ``spawn`` over data regions.

The paper evaluates placement only on iterative barrier-free stencils —
every ORWL program in this repo so far has the same shape: a fixed set
of operations looping over ``orwl_next`` rounds.  This module opens the
*other* family of task-based programs, the Parla / OpenMP-task style
dependency graph: a program is a sequence of ``spawn`` calls, each
declaring the data **regions** it reads and writes plus any explicit
control dependencies, and the frontend derives the DAG:

* **read-after-write**: a task reading region ``R`` depends on the most
  recent spawned writer of ``R`` and receives ``R.nbytes`` from it (the
  true dataflow edge — this is what feeds the placement pipeline with a
  real communication matrix);
* **write-after-write**: successive writers of the same region are
  serialized with a zero-byte synchronization edge (each write creates a
  fresh *version* of the region — renaming semantics, so no
  write-after-read edges are needed: a reader pulls its version's
  payload and is thereafter independent of later writers);
* **explicit** ``deps=[...]`` add zero-byte control edges.

Spawn order is program order: a dependency may only name an
already-spawned task, so every :class:`TaskGraph` is acyclic *by
construction* and spawn order is a topological order — the property the
deadlock-freedom tests lean on.

The graph is a pure description.  :mod:`repro.tasks.compile` lowers it
onto ORWL locations/operations and :mod:`repro.tasks.run` executes the
result on the simulator; :meth:`TaskGraph.digest` content-addresses the
structure so cached placements and sweep points are keyed by the DAG
they were computed for.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.util.validate import ValidationError

_DOUBLE = struct.Struct("<d")
_INT64 = struct.Struct("<q")


@dataclass(frozen=True)
class Region:
    """A named data block tasks read and write.

    ``nbytes`` is the payload a reader pulls from the region's writer —
    the volume the placement pipeline optimizes.  Regions are declared
    once on the graph; versioning (one version per write) is handled by
    the dependency inference, not by the caller.
    """

    name: str
    nbytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("region needs a non-empty name")
        if self.nbytes < 0:
            raise ValidationError(f"region nbytes must be >= 0, got {self.nbytes}")


@dataclass(frozen=True)
class TaskRef:
    """A task identity inside a :class:`TaskSpace` (``space[i, j]``)."""

    space: str
    index: tuple[int, ...]

    @property
    def name(self) -> str:
        if not self.index:
            return self.space
        return f"{self.space}[{','.join(str(i) for i in self.index)}]"

    def __str__(self) -> str:
        return self.name


class TaskSpace:
    """A Parla-style indexable namespace of task identities.

    ``space[k]`` / ``space[i, j]`` return :class:`TaskRef` handles that
    can be spawned once and referenced as dependencies afterwards::

        T = graph.space("T")
        graph.spawn(T[0], flops=1e6, writes=[a])
        graph.spawn(T[1], flops=1e6, reads=[a], deps=[T[0]])
    """

    def __init__(self, graph: "TaskGraph", name: str) -> None:
        if not name:
            raise ValidationError("task space needs a non-empty name")
        self.graph = graph
        self.name = name

    def __getitem__(self, index: Union[int, tuple[int, ...]]) -> TaskRef:
        idx = index if isinstance(index, tuple) else (index,)
        if not all(isinstance(i, int) for i in idx):
            raise ValidationError(
                f"task space {self.name!r} indices must be ints, got {index!r}"
            )
        return TaskRef(self.name, tuple(int(i) for i in idx))

    def __call__(self) -> TaskRef:
        """The space's unindexed singleton task (``space()``)."""
        return TaskRef(self.name, ())

    def __repr__(self) -> str:
        return f"<TaskSpace {self.name!r}>"


#: Anything that names a task: a ref, a spawned node, or a plain name.
TaskLike = Union[TaskRef, "TaskNode", str]


@dataclass(frozen=True)
class TaskNode:
    """One spawned task (immutable once spawned).

    ``deps`` are spawn indices of *all* predecessors — data-inferred and
    explicit alike; ``reads_payload`` maps each data predecessor to the
    bytes flowing along that edge (explicit/serialization-only
    predecessors are absent from it).
    """

    index: int
    name: str
    flops: float
    seconds: float
    reads: tuple[Region, ...]
    writes: tuple[Region, ...]
    deps: tuple[int, ...]
    reads_payload: tuple[tuple[int, float], ...]
    #: bytes streamed from the task's first-touch NUMA home before the
    #: compute burst (models the task's private working set).
    stream_bytes: float = 0.0

    @property
    def cost_flops(self) -> float:
        """The task's weight on the critical path (flops; seconds-priced
        tasks contribute zero flops and are tracked separately)."""
        return self.flops


class TaskGraph:
    """A dependency graph of spawned tasks over shared data regions.

    The builder API (``region`` / ``space`` / ``spawn``) is the whole
    frontend; everything else is introspection consumed by the compiler,
    the placement pipeline, and the tests.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValidationError("task graph needs a non-empty name")
        self.name = name
        self.regions: dict[str, Region] = {}
        self._tasks: list[TaskNode] = []
        self._index_of: dict[str, int] = {}
        #: region name -> spawn index of its most recent writer.
        self._last_writer: dict[str, int] = {}
        #: (producer, consumer) -> payload bytes (0.0 = pure sync edge).
        self._edges: dict[tuple[int, int], float] = {}

    # -- declaration --------------------------------------------------------

    def region(self, name: str, nbytes: float) -> Region:
        """Declare a data region; names are unique graph-wide."""
        if name in self.regions:
            raise ValidationError(f"duplicate region {name!r}")
        region = Region(name, float(nbytes))
        self.regions[name] = region
        return region

    def space(self, name: str) -> TaskSpace:
        """A fresh :class:`TaskSpace` bound to this graph."""
        return TaskSpace(self, name)

    def _resolve(self, task: TaskLike) -> int:
        name = task if isinstance(task, str) else task.name
        try:
            return self._index_of[name]
        except KeyError:
            raise ValidationError(
                f"dependency {name!r} has not been spawned yet; dependencies "
                "must reference already-spawned tasks (spawn order is the "
                "program order, which keeps every graph acyclic)"
            ) from None

    def spawn(
        self,
        task: Union[TaskRef, str],
        *,
        flops: float = 0.0,
        seconds: float = 0.0,
        reads: Sequence[Region] = (),
        writes: Sequence[Region] = (),
        deps: Sequence[TaskLike] = (),
        stream_bytes: float = 0.0,
    ) -> TaskNode:
        """Spawn one task; returns its immutable :class:`TaskNode`.

        *flops* is priced at the executing PU's rate when the task runs;
        *seconds* is taken literally (give either, both, or neither —
        a zero-cost task is a pure synchronization point).  *reads* /
        *writes* drive the dependency inference described in the module
        docstring; *deps* add explicit zero-byte control edges.
        """
        name = task if isinstance(task, str) else task.name
        if not name:
            raise ValidationError("task needs a non-empty name")
        if name in self._index_of:
            raise ValidationError(f"task {name!r} already spawned")
        if flops < 0 or seconds < 0 or stream_bytes < 0:
            raise ValidationError(
                f"task {name!r}: flops/seconds/stream_bytes must be >= 0"
            )
        for region in tuple(reads) + tuple(writes):
            if self.regions.get(region.name) is not region:
                raise ValidationError(
                    f"task {name!r} uses region {region.name!r} not declared "
                    "on this graph"
                )
        index = len(self._tasks)

        dep_set: set[int] = set()
        payload: dict[int, float] = {}
        for region in reads:
            writer = self._last_writer.get(region.name)
            if writer is not None and writer != index:
                dep_set.add(writer)
                payload[writer] = payload.get(writer, 0.0) + region.nbytes
        for region in writes:
            prev = self._last_writer.get(region.name)
            if prev is not None and prev != index:
                dep_set.add(prev)  # WAW serialization (no payload)
        for dep in deps:
            dep_set.add(self._resolve(dep))

        node = TaskNode(
            index=index,
            name=name,
            flops=float(flops),
            seconds=float(seconds),
            reads=tuple(reads),
            writes=tuple(writes),
            deps=tuple(sorted(dep_set)),
            reads_payload=tuple(sorted(payload.items())),
            stream_bytes=float(stream_bytes),
        )
        self._tasks.append(node)
        self._index_of[name] = index
        for u in node.deps:
            key = (u, index)
            self._edges[key] = self._edges.get(key, 0.0) + payload.get(u, 0.0)
        for region in writes:
            self._last_writer[region.name] = index
        return node

    # -- introspection ------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def tasks(self) -> list[TaskNode]:
        """All tasks in spawn (= topological) order."""
        return list(self._tasks)

    def task(self, name: str) -> TaskNode:
        return self._tasks[self._resolve(name)]

    def edges(self) -> list[tuple[int, int, float]]:
        """``(producer, consumer, payload bytes)`` triples, sorted."""
        return [(u, v, b) for (u, v), b in sorted(self._edges.items())]

    def successors(self, index: int) -> list[int]:
        return sorted(v for (u, v) in self._edges if u == index)

    def sources(self) -> list[int]:
        """Tasks with no predecessors (ready at t=0)."""
        return [t.index for t in self._tasks if not t.deps]

    def sinks(self) -> list[int]:
        """Tasks no other task depends on."""
        have_succ = {u for (u, _v) in self._edges}
        return [t.index for t in self._tasks if t.index not in have_succ]

    def validate(self) -> None:
        """Static sanity checks (cheap; acyclicity holds by construction)."""
        if not self._tasks:
            raise ValidationError(f"graph {self.name!r} has no tasks")
        for u, v in self._edges:
            if not u < v:
                raise ValidationError(
                    f"graph {self.name!r}: edge {u}->{v} violates spawn order"
                )

    # -- analysis -----------------------------------------------------------

    def critical_path(self) -> tuple[float, list[str]]:
        """(flops along the heaviest dependency chain, its task names).

        The DAG-intrinsic lower bound on parallel execution: no
        placement can beat the span.  Seconds-priced tasks contribute no
        flops (mixed-cost graphs should compare spans in one unit).
        """
        dist: list[float] = [0.0] * len(self._tasks)
        prev: list[int] = [-1] * len(self._tasks)
        for node in self._tasks:  # spawn order is topological
            base = 0.0
            for u in node.deps:
                if dist[u] > base:
                    base = dist[u]
                    prev[node.index] = u
                elif dist[u] == base and prev[node.index] == -1:
                    prev[node.index] = u
            dist[node.index] = base + node.cost_flops
        if not dist:
            return 0.0, []
        end = max(range(len(dist)), key=lambda k: (dist[k], -k))
        path: list[str] = []
        k = end
        while k >= 0:
            path.append(self._tasks[k].name)
            k = prev[k]
        path.reverse()
        return dist[end], path

    def total_flops(self) -> float:
        return sum(t.flops for t in self._tasks)

    def total_payload_bytes(self) -> float:
        """Sum of all dataflow edge payloads (the traffic placement sees)."""
        return sum(self._edges.values())

    def parallelism(self) -> float:
        """Average parallelism = total flops / critical-path flops."""
        span, _ = self.critical_path()
        return self.total_flops() / span if span > 0 else float(len(self._tasks))

    def levels(self) -> list[list[int]]:
        """Tasks grouped by dependency depth (level 0 = sources)."""
        depth: list[int] = [0] * len(self._tasks)
        for node in self._tasks:
            if node.deps:
                depth[node.index] = 1 + max(depth[u] for u in node.deps)
        out: list[list[int]] = [[] for _ in range(max(depth, default=-1) + 1)]
        for node in self._tasks:
            out[depth[node.index]].append(node.index)
        return out

    # -- content addressing -------------------------------------------------

    def digest(self) -> str:
        """Canonical sha-256 of the DAG structure (hex digest).

        Covers task names, costs, the full edge set with payloads, and
        region declarations — any structural change flips the digest.
        Floats are folded as IEEE-754 doubles, so the digest is exact,
        platform-independent, and insertion-order-independent (regions
        are hashed sorted; tasks and edges are already canonical —
        spawn order *is* part of the structure).  This is what keys DAG
        sweep points and pins golden schedules in the tests.
        """
        h = hashlib.sha256()

        def feed_str(s: str) -> None:
            b = s.encode("utf-8")
            h.update(_INT64.pack(len(b)))
            h.update(b)

        feed_str("repro-taskgraph-v1")
        feed_str(self.name)
        for rname in sorted(self.regions):
            feed_str(rname)
            h.update(_DOUBLE.pack(self.regions[rname].nbytes))
        for node in self._tasks:
            feed_str(node.name)
            h.update(_DOUBLE.pack(node.flops))
            h.update(_DOUBLE.pack(node.seconds))
            h.update(_DOUBLE.pack(node.stream_bytes))
            for u in node.deps:
                h.update(_INT64.pack(u))
        for u, v, b in self.edges():
            h.update(_INT64.pack(u))
            h.update(_INT64.pack(v))
            h.update(_DOUBLE.pack(b))
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"<TaskGraph {self.name!r}: {self.n_tasks} tasks, "
            f"{self.n_edges} edges, {len(self.regions)} regions>"
        )


def topological_check(order: Iterable[str], graph: TaskGraph) -> Optional[str]:
    """Return an error string if *order* violates the graph's edges.

    Test helper: given task names in (claimed) execution order, verify
    every task appears after all of its dependencies.  ``None`` = valid.
    """
    pos: dict[str, int] = {}
    for k, name in enumerate(order):
        if name in pos:
            return f"task {name!r} appears twice"
        pos[name] = k
    tasks = graph.tasks()
    for node in tasks:
        if node.name not in pos:
            return f"task {node.name!r} missing from the order"
        for u in node.deps:
            dep = tasks[u].name
            if pos[dep] > pos[node.name]:
                return f"{node.name!r} ran before its dependency {dep!r}"
    return None
