#!/usr/bin/env python3
"""A ring pipeline written directly against the ORWL API.

The paper's intro motivates ORWL as a general framework for "the
decomposition of an application and the management of synchronizations
and communications" — not just stencils.  This example builds a
classic streaming pipeline on a ring: each of P stages repeatedly

1. reads a work packet from its predecessor's output location,
2. processes it (compute burst),
3. publishes its own output for the successor,

with all synchronization done by the ordered read-write locks (no
barriers, no condition variables).  It then shows that the
topology-aware binding shortens the ring's wrap-around latency compared
to an unbound run.

Run:  python examples/ring_pipeline.py
"""

from repro.orwl import AccessMode, Program, Runtime
from repro.placement import bind_program
from repro.simulate import Machine
from repro.topology import presets

STAGES = 8  # fits one 8-core socket when placed well
ROUNDS = 40
PACKET_BYTES = 1024 * 1024  # a 1-MiB work packet
STAGE_SECONDS = 50e-6  # per-packet processing (transfer-dominated regime)


def build_ring(stages: int, rounds: int, packet_bytes: float) -> Program:
    prog = Program(f"ring-{stages}")
    # One output location per stage; stage i+1 reads stage i's output.
    for s in range(stages):
        prog.location(f"stage{s}/out", packet_bytes, owner_task=f"stage{s}")

    for s in range(stages):
        task = prog.task(f"stage{s}")
        op = task.operation("main", body=None)
        write_h = op.handle(prog.locations[f"stage{s}/out"], AccessMode.WRITE)
        prev = (s - 1) % stages
        read_h = op.handle(prog.locations[f"stage{prev}/out"], AccessMode.READ)
        # Init protocol: all first writes are queued before any read, so
        # round 0 consumes every stage's initial packet without waiting.
        write_h.init_phase = 0
        read_h.init_phase = 1

        def body(ctx, write_h=write_h, read_h=read_h):
            # Publish the initial packet.
            yield from ctx.acquire(write_h)
            ctx.next(write_h)
            for _ in range(rounds):
                yield from ctx.acquire(read_h)  # pull predecessor's packet
                yield ctx.compute(seconds=STAGE_SECONDS)
                ctx.next(read_h)
                yield from ctx.acquire(write_h)  # publish our result
                ctx.next(write_h)

        op.body = body
    prog.validate()
    return prog


def run(policy: str) -> tuple[float, float]:
    topo = presets.paper_smp(4, 8)  # 32 cores
    prog = build_ring(STAGES, ROUNDS, PACKET_BYTES)
    plan = bind_program(prog, topo, policy=policy)
    machine = Machine(topo, seed=7)
    result = Runtime(
        prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
    ).run()
    return result.time, result.metrics.local_fraction


def main() -> None:
    print(f"{STAGES}-stage ring pipeline, {ROUNDS} rounds, "
          f"{PACKET_BYTES // 1024} KiB packets\n")
    for policy in ("treematch", "scatter", "nobind"):
        t, local = run(policy)
        print(f"{policy:>10}: {t * 1000:8.2f} ms   NUMA-local traffic {local:6.1%}")
    print("\nThe whole ring fits under one shared L3 when placed well: "
          "TreeMatch packs it into a single socket, so every packet "
          "hand-off stays cache-local.  Scatter spreads the stages "
          "across sockets — every hand-off crosses the interconnect — "
          "and nobind adds scheduler noise on top.  (With more stages "
          "than one socket holds, a ring is bound by its worst edge and "
          "placement can no longer help: try STAGES = 16.)")


if __name__ == "__main__":
    main()
