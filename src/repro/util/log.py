"""Minimal logging setup.

We use the stdlib :mod:`logging` module under the ``repro`` namespace.
Nothing is configured globally on import; callers (examples, benches)
opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    ``get_logger("treematch")`` and ``get_logger("repro.treematch")`` are
    equivalent.
    """
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` root logger (idempotent)."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s"))
        root.addHandler(handler)
