"""Tests for topology queries (hwloc API surface) and JSON serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.topology import presets, query, serialize
from repro.topology.builder import from_spec
from repro.topology.cpuset import CpuSet
from repro.topology.objects import ObjType
from repro.topology.tree import TopologyError


class TestQueries:
    def test_get_nbobjs_by_type(self, small_topo):
        assert query.get_nbobjs_by_type(small_topo, ObjType.CORE) == 8
        assert query.get_nbobjs_by_type(small_topo, ObjType.L1) == 0

    def test_get_obj_by_type(self, small_topo):
        core3 = query.get_obj_by_type(small_topo, ObjType.CORE, 3)
        assert core3.logical_index == 3

    def test_get_obj_by_type_out_of_range(self, small_topo):
        with pytest.raises(TopologyError):
            query.get_obj_by_type(small_topo, ObjType.CORE, 42)

    def test_objs_inside_cpuset(self, small_topo):
        cs = CpuSet.from_range(0, 4)
        cores = query.get_objs_inside_cpuset_by_type(small_topo, cs, ObjType.CORE)
        assert len(cores) == 4

    def test_first_largest_cover(self, small_topo):
        # 0-3 is exactly node 0: the cover should be a single object.
        cover = query.get_first_largest_objs_inside_cpuset(
            small_topo, CpuSet.from_range(0, 4)
        )
        assert len(cover) == 1
        assert cover[0].cpuset == CpuSet.from_range(0, 4)

    def test_first_largest_cover_fragmented(self, small_topo):
        cover = query.get_first_largest_objs_inside_cpuset(
            small_topo, CpuSet([0, 1, 5])
        )
        covered = CpuSet()
        for obj in cover:
            covered = covered | obj.cpuset
        assert covered == CpuSet([0, 1, 5])

    def test_closest_pus_orders_by_distance(self, small_topo):
        pu0 = small_topo.pu_by_os_index(0)
        closest = query.get_closest_pus(small_topo, pu0)
        # same-node PUs come before cross-node ones
        same_node = {1, 2, 3}
        assert {p.os_index for p in closest[:3]} == same_node

    def test_closest_pus_limit(self, small_topo):
        pu0 = small_topo.pu_by_os_index(0)
        assert len(query.get_closest_pus(small_topo, pu0, n=2)) == 2

    def test_closest_pus_requires_pu(self, small_topo):
        with pytest.raises(TopologyError):
            query.get_closest_pus(small_topo, small_topo.root)

    def test_cpuset_of_numa_node(self, small_topo):
        assert query.cpuset_of_numa_node(small_topo, 1) == CpuSet.from_range(4, 8)

    def test_distribute_spreads(self, small_topo):
        chosen = query.distribute(small_topo, 2)
        nodes = {small_topo.numa_node_of(p.os_index).logical_index for p in chosen}
        assert nodes == {0, 1}

    def test_distribute_exact_count(self, small_topo):
        assert len(query.distribute(small_topo, 5)) == 5

    def test_distribute_oversubscribed_wraps(self, small_topo):
        chosen = query.distribute(small_topo, 20)
        assert len(chosen) == 20

    def test_distribute_invalid(self, small_topo):
        with pytest.raises(ValueError):
            query.distribute(small_topo, 0)

    def test_summarize(self, small_topo):
        s = query.summarize(small_topo)
        assert s["NUMANODE"] == 2
        assert s["PU"] == 8
        assert "L1" not in s


class TestSerialize:
    def test_roundtrip_preserves_shape(self, small_topo):
        t2 = serialize.loads(serialize.dumps(small_topo))
        assert t2.nb_pus == small_topo.nb_pus
        assert t2.arities() == small_topo.arities()
        assert t2.name == small_topo.name

    def test_roundtrip_preserves_attributes(self, small_topo):
        t2 = serialize.loads(serialize.dumps(small_topo))
        l3 = t2.objects_by_type(ObjType.L3)[0]
        orig = small_topo.objects_by_type(ObjType.L3)[0]
        assert l3.cache.size == orig.cache.size
        node = t2.objects_by_type(ObjType.NUMANODE)[0]
        assert node.memory.local_bytes > 0

    def test_roundtrip_preserves_os_indices(self, ht_topo):
        t2 = serialize.loads(serialize.dumps(ht_topo))
        assert [p.os_index for p in t2.pus()] == [p.os_index for p in ht_topo.pus()]

    def test_file_roundtrip(self, small_topo, tmp_path):
        path = tmp_path / "topo.json"
        serialize.save(small_topo, path)
        t2 = serialize.load(path)
        assert t2.nb_pus == 8

    def test_rejects_wrong_format(self):
        with pytest.raises(TopologyError):
            serialize.from_dict({"format": "something-else"})

    def test_rejects_future_version(self, small_topo):
        d = serialize.to_dict(small_topo)
        d["version"] = 999
        with pytest.raises(TopologyError):
            serialize.from_dict(d)

    def test_rejects_unknown_type(self):
        d = {
            "format": "repro-topology",
            "version": 1,
            "root": {"type": "QUANTUM"},
        }
        with pytest.raises(TopologyError):
            serialize.from_dict(d)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=2),
    )
    def test_roundtrip_property(self, nodes, cores, pus):
        t = from_spec(f"numa:{nodes} core:{cores} pu:{pus}")
        t2 = serialize.loads(serialize.dumps(t))
        assert t2.nb_pus == t.nb_pus
        assert t2.arities() == t.arities()
        assert [p.os_index for p in t2.pus()] == [p.os_index for p in t.pus()]
