"""Extension experiment E2 — placement across a cluster.

LK23 on a 4-node cluster (GROUP level per machine, network-class costs
at the root), comm threads co-located with their tasks (threads cannot
leave their node).  The declaration order of the blocks is shuffled —
the realistic case where task creation order does not follow data
geometry — so declaration-order policies lose network locality while
the affinity-aware mapping recovers it from the communication matrix.
"""

import pytest

from repro.experiments.cluster import run_cluster_lk23, table


def test_cluster_placement(benchmark):
    points = benchmark.pedantic(
        run_cluster_lk23,
        kwargs=dict(iterations=3, policies=("treematch", "round-robin", "random"),
                    shuffle_declaration=True, seed=0),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["table"] = table(points)
    for name, p in points.items():
        benchmark.extra_info[f"{name}_time_s"] = p.time
        benchmark.extra_info[f"{name}_network_MB"] = p.network_bytes / 1e6

    tm, rr, rnd = points["treematch"], points["round-robin"], points["random"]
    # TreeMatch recovers the geometry: far less traffic over the NICs.
    assert tm.network_bytes < 0.5 * rr.network_bytes
    # And never loses on time (compute-bound here, so roughly tied).
    assert tm.time <= 1.1 * rr.time
    # Random placement collapses on load balance.
    assert rnd.time > 2.0 * tm.time


def test_cluster_friendly_order_ties(benchmark):
    """With a geometry-friendly declaration order the blind baseline is
    accidentally optimal — and TreeMatch must match it, not lose."""
    points = benchmark.pedantic(
        run_cluster_lk23,
        kwargs=dict(iterations=3, policies=("treematch", "round-robin"),
                    shuffle_declaration=False, seed=0),
        rounds=1,
        iterations=1,
    )
    tm, rr = points["treematch"], points["round-robin"]
    benchmark.extra_info["treematch_network_MB"] = tm.network_bytes / 1e6
    benchmark.extra_info["round_robin_network_MB"] = rr.network_bytes / 1e6
    assert tm.network_bytes <= 1.25 * rr.network_bytes
    assert tm.time <= 1.1 * rr.time
