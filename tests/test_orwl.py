"""Tests for ORWL locations, handles, programs, and the runtime."""

import pytest

from repro.orwl import (
    AccessMode,
    FifoError,
    Handle,
    Location,
    Program,
    Runtime,
    RuntimeConfig,
)
from repro.orwl.fifo import RequestState
from repro.simulate.machine import Machine
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError

R, W = AccessMode.READ, AccessMode.WRITE


class TestLocation:
    def test_creation(self):
        loc = Location("x", 1024, owner_task="t")
        assert loc.nbytes == 1024.0
        assert loc.version == 0
        assert loc.last_writer_tid == -1

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            Location("", 10)
        with pytest.raises(ValidationError):
            Location("x", -1)
        with pytest.raises(ValidationError):
            Location("x", 1, affinity_bytes=-2)

    def test_note_write(self):
        loc = Location("x", 10)
        loc.note_write(5, "op")
        assert loc.last_writer_tid == 5
        assert loc.last_writer_op == "op"
        assert loc.version == 1


class TestHandle:
    def test_insert_and_release(self):
        loc = Location("x", 10)
        h = Handle(loc, W, "op")
        req = h.insert_request()
        assert h.is_granted
        h.release()
        assert h.request is None

    def test_double_insert_rejected(self):
        loc = Location("x", 10)
        h = Handle(loc, W, "op")
        h.insert_request()
        with pytest.raises(FifoError):
            h.insert_request()

    def test_release_without_request_rejected(self):
        h = Handle(Location("x", 10), W, "op")
        with pytest.raises(FifoError):
            h.release()

    def test_next_requires_grant(self):
        loc = Location("x", 10)
        h1 = Handle(loc, W, "a")
        h2 = Handle(loc, W, "b")
        h1.insert_request()
        h2.insert_request()
        with pytest.raises(FifoError):
            h2.next_request()  # pending, not granted

    def test_next_keeps_round_order(self):
        """orwl_next: re-insertion happens before release, so the handle's
        next-round request precedes anything inserted afterwards."""
        loc = Location("x", 10)
        a = Handle(loc, W, "a")
        b = Handle(loc, W, "b")
        a.insert_request()
        b.insert_request()
        a.next_request()
        # queue now: b (granted), a (pending) — strict alternation
        assert b.is_granted
        assert a.is_pending
        b.next_request()
        assert a.is_granted

    def test_cancel_idempotent(self):
        loc = Location("x", 10)
        h = Handle(loc, W, "op")
        h.insert_request()
        h.cancel()
        h.cancel()
        assert h.request is None


class TestProgram:
    def test_declaration(self):
        p = Program("demo")
        loc = p.location("l", 10)
        t = p.task("t")
        op = t.operation("main", body=lambda ctx: iter(()))
        h = op.handle(loc, W)
        assert p.n_tasks == 1
        assert p.n_operations == 1
        assert op.is_main
        assert h.op_name == "t/main"

    def test_duplicate_location_rejected(self):
        p = Program("demo")
        p.location("l", 10)
        with pytest.raises(ValidationError):
            p.location("l", 20)

    def test_duplicate_operation_rejected(self):
        p = Program("demo")
        t = p.task("t")
        t.operation("main", body=lambda ctx: iter(()))
        with pytest.raises(ValidationError):
            t.operation("main", body=lambda ctx: iter(()))

    def test_task_idempotent(self):
        p = Program("demo")
        assert p.task("t") is p.task("t")

    def test_readers_writers_of(self):
        p = Program("demo")
        loc = p.location("l", 10)
        t = p.task("t")
        a = t.operation("main", body=lambda ctx: iter(()))
        b = t.operation("sub", body=lambda ctx: iter(()))
        a.handle(loc, W)
        b.handle(loc, R)
        assert p.writers_of(loc) == [a]
        assert p.readers_of(loc) == [b]

    def test_validate_missing_body(self):
        p = Program("demo")
        p.task("t").operation("main", body=None)
        with pytest.raises(ValidationError):
            p.validate()

    def test_validate_unwritten_location(self):
        p = Program("demo")
        loc = p.location("l", 10)
        op = p.task("t").operation("main", body=lambda ctx: iter(()))
        op.handle(loc, R)
        with pytest.raises(ValidationError, match="never written"):
            p.validate()

    def test_operation_index_order(self):
        p = Program("demo")
        t = p.task("t")
        a = t.operation("main", body=lambda ctx: iter(()))
        b = t.operation("x", body=lambda ctx: iter(()))
        assert p.operation_index(a) == 0
        assert p.operation_index(b) == 1


def build_pingpong(iterations=3, nbytes=4096):
    """Writer task A and reader task B alternating on one location."""
    prog = Program("pingpong")
    loc = prog.location("shared", nbytes=nbytes, owner_task="A")
    opA = prog.task("A").operation("main", body=None)
    hA = opA.handle(loc, W)

    def writer(ctx):
        for _ in range(iterations):
            yield from ctx.acquire(hA)
            yield ctx.compute(seconds=1e-4)
            ctx.next(hA)

    opA.body = writer
    opB = prog.task("B").operation("main", body=None)
    hB = opB.handle(loc, R)

    def reader(ctx):
        for _ in range(iterations):
            yield from ctx.acquire(hB)
            yield ctx.compute(seconds=5e-5)
            ctx.next(hB)

    opB.body = reader
    return prog


class TestRuntime:
    def test_pingpong_completes(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0, 4)))
        res = rt.run()
        assert res.time > 0
        assert res.metrics.transfers == 3  # one payload pull per round

    def test_pingpong_traces_volumes(self, small_topo):
        prog = build_pingpong(iterations=4, nbytes=1000)
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0, 4)))
        res = rt.run()
        mat = res.tracer.to_matrix()
        assert mat.volume(0, 1) == 4 * 1000.0

    def test_trace_disabled(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0, 4)), config=RuntimeConfig(trace=False))
        res = rt.run()
        assert res.tracer is None

    def test_placement_changes_time(self, small_topo):
        times = {}
        for key, pus in [("near", (0, 1)), ("far", (0, 4))]:
            prog = build_pingpong(iterations=10, nbytes=1 << 20)
            m = Machine(small_topo, seed=0)
            rt = Runtime(prog, m, mapping=Mapping(pus))
            times[key] = rt.run().time
        assert times["far"] > times["near"]

    def test_unbound_runs_fine(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m)  # no mapping: all unbound
        res = rt.run()
        assert res.time > 0
        assert res.mapping.bound_fraction() == 0.0

    def test_without_control_threads(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        rt = Runtime(
            prog, m, mapping=Mapping((0, 4)), config=RuntimeConfig(control_threads=False)
        )
        res = rt.run()
        assert res.time > 0

    def test_control_threads_add_grant_cost(self, small_topo):
        t_with = t_without = None
        for flag in (True, False):
            prog = build_pingpong(iterations=20)
            m = Machine(small_topo, seed=0)
            rt = Runtime(
                prog,
                m,
                mapping=Mapping((0, 4)),
                config=RuntimeConfig(control_threads=flag, grant_cost=1e-4,
                                     direct_grant_latency=0.0),
            )
            t = rt.run().time
            if flag:
                t_with = t
            else:
                t_without = t
        assert t_with > t_without

    def test_mapping_order_mismatch_rejected(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        with pytest.raises(ValidationError):
            Runtime(prog, m, mapping=Mapping((0, 1, 2)))

    def test_control_mapping_order_mismatch_rejected(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        with pytest.raises(ValidationError):
            Runtime(prog, m, mapping=Mapping((0, 1)), control_mapping=Mapping((0,)))

    def test_double_run_rejected(self, small_topo):
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0, 4)))
        rt.run()
        with pytest.raises(ValidationError):
            rt.run()

    def test_teardown_cancels_leftover_requests(self, small_topo):
        """After the run, no location FIFO retains live requests, even
        though each handle's final orwl_next left one pending."""
        prog = build_pingpong()
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0, 4)))
        rt.run()
        for loc in prog.locations.values():
            assert len(loc.fifo) == 0

    def test_acquire_without_request_rejected(self, small_topo):
        prog = Program("bad")
        loc = prog.location("l", 10, owner_task="t")
        op = prog.task("t").operation("main", body=None)
        h = op.handle(loc, W)

        def body(ctx):
            ctx.release(h)  # release the init grant
            yield from ctx.acquire(h)  # no request live -> error

        op.body = body
        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0,)))
        with pytest.raises(Exception):
            rt.run()

    def test_compute_arg_validation(self, small_topo):
        prog = Program("c")
        loc = prog.location("l", 0, owner_task="t")
        op = prog.task("t").operation("main", body=None)
        h = op.handle(loc, W)

        def body(ctx):
            with pytest.raises(ValidationError):
                ctx.compute()
            with pytest.raises(ValidationError):
                ctx.compute(seconds=1, flops=1)
            yield ctx.compute(flops=2e9)
            ctx.release(h)

        op.body = body
        m = Machine(small_topo, seed=0, core_rate=1e9)
        rt = Runtime(prog, m, mapping=Mapping((0,)))
        res = rt.run()
        assert res.time >= 2.0

    def test_reader_pulls_from_last_writer_pu(self, small_topo):
        """The transfer is charged producer->consumer: moving the writer
        farther away increases simulated time for identical programs."""
        times = []
        for writer_pu in (1, 4):
            prog = build_pingpong(iterations=5, nbytes=1 << 20)
            m = Machine(small_topo, seed=0)
            rt = Runtime(prog, m, mapping=Mapping((writer_pu, 0)))
            times.append(rt.run().time)
        assert times[1] > times[0]

    def test_init_phase_orders_requests(self, small_topo):
        """A later-declared op with lower init_phase gets the lock first."""
        prog = Program("phases")
        loc = prog.location("l", 0, owner_task="t")
        order = []

        t = prog.task("t")
        op1 = t.operation("late", body=None)
        h1 = op1.handle(loc, W)
        h1.init_phase = 1

        def late(ctx):
            yield from ctx.acquire(h1)
            order.append("late")
            ctx.release(h1)

        op1.body = late

        op2 = t.operation("early", body=None)
        h2 = op2.handle(loc, W)
        h2.init_phase = 0

        def early(ctx):
            yield from ctx.acquire(h2)
            order.append("early")
            ctx.release(h2)

        op2.body = early

        m = Machine(small_topo, seed=0)
        rt = Runtime(prog, m, mapping=Mapping((0, 1)))
        rt.run()
        assert order == ["early", "late"]
