#!/usr/bin/env python3
"""Quickstart: run LK23 under topology-aware placement in ~20 lines.

Builds the paper's 24-socket SMP model, runs the Livermore Kernel 23
ORWL program once with the TreeMatch binding and once unbound, and
prints the processing times plus locality counters.

Run:  python examples/quickstart.py
"""

from repro import run_lk23


def main() -> None:
    print("LK23 on the paper's 192-core SMP (reduced to 3 sweeps)\n")

    bind = run_lk23(topology="paper-smp", policy="treematch", iterations=3)
    nobind = run_lk23(topology="paper-smp", policy="nobind", iterations=3)

    for name, result in [("ORWL-Bind (TreeMatch)", bind), ("ORWL-NoBind", nobind)]:
        m = result.metrics
        print(f"{name}:")
        print(f"  processing time : {result.time * 1000:.1f} ms (simulated)")
        print(f"  traffic local to a NUMA node : {m.local_fraction:.1%}")
        print(f"  OS migrations   : {m.migrations}")
        print(f"  control strategy: {result.plan.control_strategy}")
        print()

    speedup = nobind.time / bind.time
    print(f"Binding speedup over NoBind: {speedup:.2f}x (paper reports ~2.8x)")


if __name__ == "__main__":
    main()
