"""Tests for placement policies, affinity extraction, binder, and reports."""

import pytest

from repro.comm import patterns
from repro.comm.matrix import CommMatrix
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.orwl import AccessMode, Program
from repro.placement import (
    POLICY_REGISTRY,
    bind_program,
    make_policy,
    matrix_correlation,
    static_matrix,
    traced_matrix,
)
from repro.placement.binder import task_matrix
from repro.placement.policies import (
    CompactPolicy,
    NoBindPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ScatterPolicy,
    TreeMatchPolicy,
)
from repro.placement import report as report_mod
from repro.topology.objects import ObjType
from repro.treematch.control import ControlStrategy
from repro.treematch.mapping import Mapping
from repro.util.validate import ValidationError


class TestPolicies:
    def test_registry_complete(self):
        assert set(POLICY_REGISTRY) == {
            "compact",
            "scatter",
            "round-robin",
            "random",
            "nobind",
            "treematch",
            "service",
        }

    def test_make_policy_unknown(self):
        with pytest.raises(ValidationError):
            make_policy("quantum")

    def test_compact_fills_in_order(self, small_topo):
        m = CompactPolicy().place(small_topo, 4)
        assert m.pu_of == (0, 1, 2, 3)

    def test_compact_wraps(self, small_topo):
        m = CompactPolicy().place(small_topo, 10)
        assert m.pu(8) == 0 and m.pu(9) == 1

    def test_scatter_spreads_nodes(self, small_topo):
        m = ScatterPolicy().place(small_topo, 2)
        nodes = {small_topo.numa_node_of(m.pu(k)).logical_index for k in range(2)}
        assert nodes == {0, 1}

    def test_round_robin(self, small_topo):
        m = RoundRobinPolicy().place(small_topo, 10)
        assert m.pu(0) == 0 and m.pu(9) == 1

    def test_random_reproducible(self, small_topo):
        a = RandomPolicy(seed=5).place(small_topo, 6)
        b = RandomPolicy(seed=5).place(small_topo, 6)
        assert a.pu_of == b.pu_of

    def test_nobind_all_unbound(self, small_topo):
        m = NoBindPolicy().place(small_topo, 5)
        assert m.bound_fraction() == 0.0

    def test_treematch_requires_matrix(self, small_topo):
        with pytest.raises(ValidationError):
            TreeMatchPolicy().place(small_topo, 4)

    def test_treematch_order_mismatch(self, small_topo, stencil_matrix):
        with pytest.raises(ValidationError):
            TreeMatchPolicy().place(small_topo, 4, matrix=stencil_matrix)

    def test_treematch_stores_result(self, small_topo, clustered_matrix):
        p = TreeMatchPolicy()
        p.place(small_topo, clustered_matrix.order, matrix=clustered_matrix)
        assert p.last_result is not None

    def test_labels_applied(self, small_topo):
        m = CompactPolicy().place(small_topo, 2, labels=["x", "y"])
        assert m.labels == ("x", "y")

    def test_label_count_mismatch(self, small_topo):
        with pytest.raises(ValidationError):
            CompactPolicy().place(small_topo, 2, labels=["x"])


def tiny_program(nbytes=1000):
    """Two tasks: A/main writes la (read by B/main); each task also has
    one sub op reading its own task's location."""
    p = Program("tiny")
    la = p.location("la", nbytes, owner_task="A")
    lb = p.location("lb", nbytes / 2, owner_task="B")
    opA = p.task("A").operation("main", body=lambda ctx: iter(()))
    opA.handle(la, AccessMode.WRITE)
    subA = p.task("A").operation("sub", body=lambda ctx: iter(()))
    subA.handle(lb, AccessMode.READ)
    opB = p.task("B").operation("main", body=lambda ctx: iter(()))
    opB.handle(la, AccessMode.READ)
    opB.handle(lb, AccessMode.WRITE)
    return p


class TestAffinity:
    def test_static_matrix_structure(self):
        p = tiny_program(nbytes=1000)
        m = static_matrix(p)
        # ops: A/main(0), A/sub(1), B/main(2)
        assert m.order == 3
        assert m.volume(0, 2) == 1000.0  # la: A/main -> B/main
        assert m.volume(1, 2) == 500.0  # lb: B/main -> A/sub
        assert m.volume(0, 1) == 0.0

    def test_static_matrix_iterations_scale(self):
        p = tiny_program(nbytes=100)
        m1 = static_matrix(p, iterations=1)
        m5 = static_matrix(p, iterations=5)
        assert m5.volume(0, 2) == 5 * m1.volume(0, 2)

    def test_static_matrix_affinity_hints(self):
        p = Program("hints")
        loc = p.location("l", 10, owner_task="t", affinity_bytes=9999)
        a = p.task("t").operation("main", body=lambda ctx: iter(()))
        b = p.task("t").operation("sub", body=lambda ctx: iter(()))
        a.handle(loc, AccessMode.WRITE)
        b.handle(loc, AccessMode.READ)
        assert static_matrix(p).volume(0, 1) == 9999.0
        assert static_matrix(p, use_affinity_hints=False).volume(0, 1) == 10.0

    def test_static_matrix_zero_payload_ignored(self):
        p = Program("z")
        loc = p.location("l", 0, owner_task="t")
        a = p.task("t").operation("main", body=lambda ctx: iter(()))
        b = p.task("t").operation("sub", body=lambda ctx: iter(()))
        a.handle(loc, AccessMode.WRITE)
        b.handle(loc, AccessMode.READ)
        assert static_matrix(p).total_volume() == 0.0

    def test_traced_matrix_reindexes(self):
        from repro.comm.trace import CommTracer

        p = tiny_program()
        tr = CommTracer()
        tr.record("B/main", "A/sub", 77)  # note: trace order differs
        m = traced_matrix(p, tr)
        assert m.volume(1, 2) == 77.0

    def test_matrix_correlation_identical(self):
        m = patterns.stencil_2d(3, 3)
        assert matrix_correlation(m, m) == pytest.approx(1.0)

    def test_matrix_correlation_order_mismatch(self):
        with pytest.raises(ValidationError):
            matrix_correlation(CommMatrix.zeros(2), CommMatrix.zeros(3))

    def test_matrix_correlation_zero_matrices(self):
        assert matrix_correlation(CommMatrix.zeros(3), CommMatrix.zeros(3)) == 1.0

    def test_task_matrix_aggregates(self):
        p = tiny_program(nbytes=1000)
        tm = task_matrix(p)
        assert tm.order == 2
        # cross-task volume: la (1000) + lb (500)
        assert tm.volume(0, 1) == 1500.0
        assert tm.labels == ("A", "B")


class TestBinder:
    @pytest.fixture
    def lk23_small(self):
        return build_program(Lk23Config(n=512, grid_rows=2, grid_cols=2, iterations=2))

    def test_task_granularity_mains_spread(self, lk23_small, small_topo):
        plan = bind_program(lk23_small, small_topo, policy="treematch")
        ops = lk23_small.operations()
        mains = [plan.mapping.pu(k) for k, op in enumerate(ops) if op.is_main]
        assert len(set(mains)) == 4  # 4 tasks on distinct PUs

    def test_spare_cores_strategy_on_roomy_machine(self, lk23_small, paper_topo_small):
        plan = bind_program(lk23_small, paper_topo_small, policy="treematch")
        # 4 tasks, 9*4=36 threads total on 32 PUs... comm+ctl = 4 subs*4+4
        # tasks -> fits? 4 mains + 16 subs + 4 ctl = 24 <= 32 PUs
        assert plan.control_strategy is ControlStrategy.SPARE_CORES
        # every comm thread got a PU
        assert plan.mapping.bound_fraction() == 1.0
        assert plan.control_mapping.bound_fraction() == 1.0

    def test_unmapped_strategy_when_full(self, small_topo):
        prog = build_program(Lk23Config(n=512, grid_rows=2, grid_cols=4, iterations=2))
        plan = bind_program(prog, small_topo, policy="treematch")
        assert plan.control_strategy is ControlStrategy.UNMAPPED
        ops = prog.operations()
        subs = [plan.mapping.pu(k) for k, op in enumerate(ops) if not op.is_main]
        assert all(pu == -1 for pu in subs)

    def test_hyperthread_strategy(self, lk23_small, ht_topo):
        plan = bind_program(lk23_small, ht_topo, policy="treematch")
        assert plan.control_strategy is ControlStrategy.HYPERTHREAD_RESERVED
        ops = lk23_small.operations()
        for k, op in enumerate(ops):
            if op.is_main:
                main_pu = plan.mapping.pu(k)
                core = ht_topo.core_of(main_pu)
                for j, other in enumerate(ops):
                    if other.task is op.task and not other.is_main:
                        sib_pu = plan.mapping.pu(j)
                        assert ht_topo.core_of(sib_pu) is core
                        assert sib_pu != main_pu

    def test_nobind_plan_all_unbound(self, lk23_small, small_topo):
        plan = bind_program(lk23_small, small_topo, policy="nobind")
        assert plan.mapping.bound_fraction() == 0.0
        assert plan.control_mapping.bound_fraction() == 0.0

    def test_baseline_control_colocated(self, lk23_small, paper_topo_small):
        plan = bind_program(lk23_small, paper_topo_small, policy="compact")
        ops = lk23_small.operations()
        main_pu = {op.task.name: plan.mapping.pu(k) for k, op in enumerate(ops) if op.is_main}
        for k, name in enumerate(lk23_small.tasks):
            assert plan.control_mapping.pu(k) == main_pu[name]

    def test_op_granularity(self, lk23_small, small_topo):
        plan = bind_program(lk23_small, small_topo, policy="treematch", granularity="op")
        assert plan.mapping.bound_fraction() == 1.0
        assert plan.mapping.n_threads == lk23_small.n_operations

    def test_bad_granularity(self, lk23_small, small_topo):
        with pytest.raises(ValidationError):
            bind_program(lk23_small, small_topo, granularity="socket")

    def test_place_control_false(self, lk23_small, paper_topo_small):
        plan = bind_program(
            lk23_small, paper_topo_small, policy="treematch", place_control=False
        )
        ops = lk23_small.operations()
        subs = [plan.mapping.pu(k) for k, op in enumerate(ops) if not op.is_main]
        assert all(pu == -1 for pu in subs)

    def test_empty_program_rejected(self, small_topo):
        with pytest.raises(ValidationError):
            bind_program(Program("empty"), small_topo)

    def test_os_binding_script(self, lk23_small, small_topo):
        plan = bind_program(lk23_small, small_topo, policy="treematch")
        script = plan.os_binding_script()
        assert "b0.0/main" in script
        assert "-> PU" in script

    def test_cpuset_of_thread(self, lk23_small, small_topo):
        plan = bind_program(lk23_small, small_topo, policy="treematch")
        cs = plan.cpuset_of_thread(0)
        assert cs.weight() == 1


class TestReport:
    def test_occupancy_by_type(self, small_topo):
        m = Mapping((0, 1, 4))
        occ = report_mod.occupancy_by_type(m, small_topo, ObjType.NUMANODE)
        assert occ == {0: 2, 1: 1}

    def test_occupancy_skips_unbound(self, small_topo):
        m = Mapping((0, -1))
        occ = report_mod.occupancy_by_type(m, small_topo, ObjType.NUMANODE)
        assert occ == {0: 1, 1: 0}

    def test_balance_score_even(self, small_topo):
        m = Mapping((0, 4))
        assert report_mod.balance_score(m, small_topo, ObjType.NUMANODE) == 1.0

    def test_balance_score_skewed(self, small_topo):
        m = Mapping((0, 1, 2, 3))
        assert report_mod.balance_score(m, small_topo, ObjType.NUMANODE) == 0.5

    def test_render_report(self, small_topo, clustered_matrix):
        from repro.treematch.algorithm import tree_match

        res = tree_match(small_topo, clustered_matrix)
        text = report_mod.render_report(res.mapping, clustered_matrix, small_topo)
        assert "numa-cut" in text
        assert "occupancy" in text

    def test_compare_policies_table(self, small_topo, clustered_matrix):
        maps = [
            CompactPolicy().place(small_topo, 8),
            ScatterPolicy().place(small_topo, 8),
        ]
        text = report_mod.compare_policies(maps, clustered_matrix, small_topo)
        assert "compact" in text and "scatter" in text
