"""DAG differential suite: determinism and liveness of repro.tasks.

Three layers pin the frontend's contract:

* **property layer** — hypothesis generates random task graphs (random
  region sizes, read/write sets, explicit dependency edges, mixed task
  costs) and every one must (a) compile and run to completion — no
  deadlock, which holds by construction because spawn order is
  topological and only READ acquisitions block — and (b) respect every
  declared dependency in the simulated schedule
  (``ready[consumer] >= published[producer]``).
* **engine layer** — the same random DAGs must produce bit-identical
  run fingerprints on the batched and the scalar engine.
* **sweep layer** — the E7 experiment must be bit-identical between
  serial and multi-process sweeps and between cold and warm-cache
  reruns (the content-addressed point store serving every point).

Example counts are CI-bounded; crank ``max_examples`` locally when
touching the frontend or the compiler.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.experiments.dag import run_dag
from repro.tasks import TaskGraph, run_graph, topological_check

REGION_SIZES = st.sampled_from([0.0, 64.0, 1024.0, 65536.0])
TASK_FLOPS = st.sampled_from([0.0, 1e4, 1e6])


@st.composite
def task_graphs(draw) -> TaskGraph:
    """A random DAG: regions, read/write sets, explicit control edges."""
    n_regions = draw(st.integers(1, 5))
    sizes = [draw(REGION_SIZES) for _ in range(n_regions)]
    n_tasks = draw(st.integers(2, 10))
    g = TaskGraph("rand")
    regions = [g.region(f"r{k}", sizes[k]) for k in range(n_regions)]
    t = g.space("T")
    region_idx = st.sets(st.integers(0, n_regions - 1), max_size=3)
    for i in range(n_tasks):
        reads = [regions[k] for k in sorted(draw(region_idx))]
        writes = [regions[k] for k in sorted(draw(region_idx))]
        deps = []
        if i > 0:
            deps = [
                t[j]
                for j in sorted(draw(st.sets(st.integers(0, i - 1), max_size=3)))
            ]
        g.spawn(
            t[i],
            flops=draw(TASK_FLOPS),
            reads=reads,
            writes=writes,
            deps=deps,
        )
    return g


class TestRandomDagProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph=task_graphs(), seed=st.integers(0, 3))
    def test_never_deadlocks_and_respects_dependencies(self, graph, seed):
        res = run_graph(graph, seed=seed, record_times=True)
        # every task completed: the liveness half of the contract
        assert len(res.times.done) == graph.n_tasks
        # every edge respected: the safety half
        assert res.schedule_ok(graph)
        assert topological_check(res.times.completion_order(), graph) is None

    @settings(max_examples=30, deadline=None)
    @given(graph=task_graphs())
    def test_compiled_program_validates(self, graph):
        from repro.tasks import compile_graph

        prog = compile_graph(graph)
        prog.validate()
        assert len(prog.tasks) == graph.n_tasks

    @settings(max_examples=30, deadline=None)
    @given(graph=task_graphs(), seed=st.integers(0, 3))
    def test_batched_and_scalar_engines_identical(self, graph, seed):
        batched = run_graph(graph, seed=seed, trace=True, engine_mode="batched")
        scalar = run_graph(graph, seed=seed, trace=True, engine_mode="scalar")
        assert batched.time == scalar.time
        assert batched.fingerprint() == scalar.fingerprint()

    @settings(max_examples=20, deadline=None)
    @given(graph=task_graphs())
    def test_digest_is_injective_on_reruns(self, graph):
        # same structure -> same digest, and the matrix digest keys the
        # placement cache by that structure
        assert graph.digest() == graph.digest()
        from repro.exec.cache import matrix_digest
        from repro.tasks import dag_matrix

        if graph.n_edges:
            assert matrix_digest(dag_matrix(graph)) == matrix_digest(
                dag_matrix(graph)
            )


class TestSweepIdentity:
    WORKLOADS = ("cholesky", "bfs")
    KW = dict(
        workloads=WORKLOADS,
        policies=("bind", "nobind"),
        n_cores=16,
        scale=1,
        seeds=2,
        fingerprint=True,
    )

    @staticmethod
    def _flat(result):
        return [
            (p.workload, p.policy, p.time, p.fingerprint, p.graph_digest)
            for reps in result.replicates.values()
            for p in reps
        ]

    def test_serial_equals_parallel_workers(self):
        serial = run_dag(n_workers=1, point_cache=False, **self.KW)
        parallel = run_dag(n_workers=2, point_cache=False, **self.KW)
        assert self._flat(serial) == self._flat(parallel)

    def test_warm_cache_rerun_is_bit_identical(self, tmp_path):
        from repro.exec.cache import PointCache

        cold_cache = PointCache(tmp_path / "points")
        cold = run_dag(n_workers=1, point_cache=cold_cache, **self.KW)
        assert cold_cache.misses > 0 and cold_cache.hits == 0

        warm_cache = PointCache(tmp_path / "points")
        warm = run_dag(n_workers=1, point_cache=warm_cache, **self.KW)
        assert warm_cache.hits > 0 and warm_cache.misses == 0
        assert self._flat(cold) == self._flat(warm)

    def test_graph_seed_changes_the_cache_key(self, tmp_path):
        # a different DAG structure must never be served a cached point
        from repro.exec.cache import PointCache

        cache = PointCache(tmp_path / "points")
        first = run_dag(
            n_workers=1, point_cache=cache, graph_seed=0, **self.KW
        )
        second = run_dag(
            n_workers=1, point_cache=cache, graph_seed=1, **self.KW
        )
        # bfs structure changed with the graph seed -> fresh misses
        assert cache.misses > len(self._flat(first))
        bfs_digests = {
            p.graph_digest
            for p in first.points + second.points
            if p.workload == "bfs"
        }
        assert len(bfs_digests) == 2
