"""Tests for repro.observe: tracer, exporters, invariants, determinism.

The fault-injection cases are the load-bearing ones: they prove the
InvariantChecker actually catches the accounting corruptions it exists
to catch, by running a machine through a deliberately mis-charging
metrics double and asserting the *specific* invariant trips.
"""

import io
import json
import math

import pytest

from repro import observe
from repro.observe import (
    InvariantChecker,
    InvariantError,
    TraceEvent,
    Tracer,
    TraceSummary,
    check_run,
    chrome_payload,
    dumps_jsonl,
    loads_jsonl,
    metrics_fingerprint,
    read_jsonl,
    run_fingerprint,
    stream_hash,
    write_chrome,
    write_jsonl,
)
from repro.simulate.engine import SimulationError
from repro.simulate.machine import Machine
from repro.simulate.metrics import MachineMetrics
from repro.simulate.syscalls import Compute, Receive, Wait
from repro.topology import presets
from repro.topology.objects import ObjType


def two_thread_machine(topo, tracer=None, producer_pu=0, consumer_pu=4):
    """Producer computes then fires; consumer waits then pulls 1 MB."""
    machine = Machine(topo, tracer=tracer)
    ready = machine.new_event("payload-ready")
    prod = machine.add_thread("producer", bound_pu_os=producer_pu)
    cons = machine.add_thread("consumer", bound_pu_os=consumer_pu)

    def producer_body():
        yield Compute(1e-3)
        ready.fire()

    def consumer_body():
        yield Wait(ready)
        yield Receive(prod, 1e6)
        yield Compute(2e-3)

    machine.set_body(prod, producer_body())
    machine.set_body(cons, consumer_body())
    return machine


class TestTracer:
    def test_emits_expected_kinds(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        counts = tracer.counts()
        assert counts["thread_start"] == 2
        assert counts["thread_end"] == 2
        assert counts["compute"] == 2
        assert counts["transfer"] == 1
        assert counts["wait"] == 1

    def test_transfer_tagged_with_level_and_node(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        (ev,) = tracer.for_kind("transfer")
        # PU 0 and PU 4 sit on different NUMA nodes of small_numa(2, 4).
        assert ev.level == "MACHINE"
        assert ev.nbytes == 1e6
        assert ev.node == 1  # consumer's node
        assert ev.detail == "from-node:0"
        assert ev.tid == 1 and ev.thread == "consumer"

    def test_wait_span_covers_block(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        (ev,) = tracer.for_kind("wait")
        assert ev.ts == 0.0
        assert ev.dur == pytest.approx(1e-3)
        assert ev.detail == "payload-ready"

    def test_engine_probe_counts_steps(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        assert tracer.engine_steps == machine.engine.events_fired
        assert tracer.clock_regressions == 0

    def test_probe_subscription_sees_every_event(self, small_topo):
        tracer = Tracer()
        seen = []
        tracer.add_probe(seen.append)
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        assert seen == list(tracer.events)

    def test_attach_twice_rejected(self, small_topo):
        machine = Machine(small_topo, tracer=Tracer())
        with pytest.raises(SimulationError):
            machine.attach_tracer(Tracer())

    def test_attach_after_run_rejected(self, small_topo):
        machine = two_thread_machine(small_topo)
        machine.run()
        with pytest.raises(SimulationError):
            machine.attach_tracer(Tracer())

    def test_summary_aggregates(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        s = TraceSummary.of(tracer.events)
        assert s.events == len(tracer)
        assert s.bytes_by_level == {"MACHINE": 1e6}
        assert s.busy_by_kind["compute"] == pytest.approx(3e-3)
        assert s.makespan == pytest.approx(machine.engine.now)

    def test_untraced_machine_pays_nothing(self, small_topo):
        machine = two_thread_machine(small_topo)
        machine.run()
        assert machine.tracer is None


class TestSchedulerProbe:
    def test_unbound_run_emits_sched_decisions(self, small_topo):
        tracer = Tracer()
        machine = Machine(small_topo, tracer=tracer)
        for k in range(12):  # oversubscribed: forces queueing + pulls
            tid = machine.add_thread(f"w{k}")
            machine.set_body(tid, iter([Compute(1e-3), Compute(1e-3)]))
        machine.run()
        sched = tracer.for_kind("sched")
        assert len(sched) >= 12  # at least one "initial" per thread
        kinds = {e.detail.split(":", 1)[0] for e in sched}
        assert "initial" in kinds
        for ev in sched:
            assert ev.tid == -1 and ev.pu >= 0


class TestExport:
    def test_jsonl_round_trip_lossless(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        text = dumps_jsonl(tracer.events)
        back = loads_jsonl(text)
        assert back == list(tracer.events)
        assert stream_hash(back) == stream_hash(tracer.events)

    def test_jsonl_file_round_trip(self, small_topo, tmp_path):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(tracer.events, path)
        assert n == len(tracer)
        assert read_jsonl(path) == list(tracer.events)

    def test_chrome_payload_shape(self, small_topo):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        payload = chrome_payload(tracer.events)
        events = payload["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        metas = [e for e in events if e.get("ph") == "M"]
        assert len(spans) == sum(1 for e in tracer if e.is_span())
        # Process name + one thread_name record per simulated thread.
        assert any(m["name"] == "process_name" for m in metas)
        names = {m["args"]["name"] for m in metas if m["name"] == "thread_name"}
        assert {"producer", "consumer"} <= names
        # Microsecond conversion.
        (transfer,) = [e for e in spans if e["cat"] == "transfer"]
        ev = tracer.for_kind("transfer")[0]
        assert transfer["ts"] == pytest.approx(ev.ts * 1e6)
        assert transfer["dur"] == pytest.approx(ev.dur * 1e6)
        assert transfer["args"]["level"] == "MACHINE"

    def test_chrome_file_is_valid_json(self, small_topo, tmp_path):
        tracer = Tracer()
        machine = two_thread_machine(small_topo, tracer)
        machine.run()
        path = tmp_path / "trace.json"
        n = write_chrome(tracer.events, path)
        assert n == len(tracer)
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]


class TestInvariants:
    def test_clean_run_passes(self, small_topo):
        machine = two_thread_machine(small_topo, Tracer())
        machine.run()
        report = check_run(machine)
        assert report.ok
        assert report.events_audited == len(machine.tracer)
        assert "OK" in report.render()

    def test_requires_tracer(self, small_topo):
        machine = two_thread_machine(small_topo)
        machine.run()
        with pytest.raises(ValueError, match="tracer"):
            InvariantChecker().check(machine)

    def test_thread_ledger_closes_exactly(self, small_topo):
        machine = two_thread_machine(small_topo, Tracer())
        machine.run()
        for tid in range(machine.n_threads):
            stats = machine.thread_stats(tid)
            ledger = (stats["compute_time"] + stats["transfer_time"]
                      + stats["wait_time"] + stats["runq_time"])
            assert stats["done_at"] == pytest.approx(ledger)


class TestFaultInjection:
    """Corrupt one account, assert the checker names that invariant."""

    def run_with_metrics_double(self, topo, double):
        machine = two_thread_machine(topo, Tracer())
        machine.metrics = double
        machine.run()
        return check_run(machine, raise_on_violation=False)

    def test_mischarged_transfer_duration_is_caught(self, small_topo):
        class MischargingMetrics(MachineMetrics):
            def record_transfer(self, level, nbytes, duration):
                super().record_transfer(level, nbytes, duration * 1.5)

        report = self.run_with_metrics_double(small_topo, MischargingMetrics())
        assert not report.ok
        violated = {v.invariant for v in report.violations}
        assert violated == {"transfer-time-conservation"}
        (v,) = report.violated("transfer-time-conservation")[:1]
        assert v.magnitude > 0

    def test_dropped_bytes_are_caught(self, small_topo):
        class LeakyMetrics(MachineMetrics):
            def record_transfer(self, level, nbytes, duration):
                super().record_transfer(level, 0.0, duration)

        report = self.run_with_metrics_double(small_topo, LeakyMetrics())
        # The dropped bytes break the per-level ledger *and* its
        # reconciliation against the trace-derived NUMA traffic matrix.
        assert {v.invariant for v in report.violations} == {
            "transfer-bytes-conservation",
            "numa-traffic-reconciliation",
        }

    def test_double_counted_transfer_is_caught(self, small_topo):
        class DoubleCounting(MachineMetrics):
            def record_transfer(self, level, nbytes, duration):
                super().record_transfer(level, nbytes, duration)
                super().record_transfer(level, nbytes, duration)

        report = self.run_with_metrics_double(small_topo, DoubleCounting())
        violated = {v.invariant for v in report.violations}
        assert "transfer-count" in violated
        assert "transfer-bytes-conservation" in violated

    def test_lost_wait_time_is_caught(self, small_topo):
        class ForgetfulMetrics(MachineMetrics):
            def record_wait(self, duration):
                pass  # drops the account entirely

        report = self.run_with_metrics_double(small_topo, ForgetfulMetrics())
        assert {v.invariant for v in report.violations} == {
            "wait-time-conservation"
        }

    def test_corrupted_event_stream_is_caught(self, small_topo):
        machine = two_thread_machine(small_topo, Tracer())
        machine.run()
        # Negative duration smuggled into the stream post-hoc.
        machine.tracer._events[3].dur = -1e-9
        report = check_run(machine, raise_on_violation=False)
        assert report.violated("non-negative-duration")

    def test_overlapping_spans_are_caught(self, small_topo):
        machine = two_thread_machine(small_topo, Tracer())
        machine.run()
        spans = [e for e in machine.tracer._events
                 if e.is_span() and e.tid == 1]
        spans[-1].ts = spans[0].ts  # rewind the last span onto the first
        report = check_run(machine, raise_on_violation=False)
        assert report.violated("monotonic-timestamps")

    def test_raise_carries_structured_report(self, small_topo):
        class MischargingMetrics(MachineMetrics):
            def record_compute(self, duration):
                super().record_compute(duration * 2.0)

        machine = two_thread_machine(small_topo, Tracer())
        machine.metrics = MischargingMetrics()
        machine.run()
        with pytest.raises(InvariantError) as exc:
            check_run(machine)
        report = exc.value.report
        assert report.violated("compute-time-conservation")
        assert "compute-time-conservation" in str(exc.value)


class TestDeterminism:
    def test_stream_hash_is_order_and_value_sensitive(self):
        a = TraceEvent(0, "compute", 0.0, 1.0, tid=1, thread="t1", pu=0, node=0)
        b = TraceEvent(1, "compute", 1.0, 1.0, tid=1, thread="t1", pu=0, node=0)
        assert stream_hash([a, b]) != stream_hash([b, a])
        c = TraceEvent(1, "compute", 1.0, 1.0 + 1e-15, tid=1, thread="t1",
                       pu=0, node=0)
        assert stream_hash([a, b]) != stream_hash([a, c])

    def test_metrics_fingerprint_sensitive_to_levels(self):
        m1 = MachineMetrics()
        m2 = MachineMetrics()
        m1.record_transfer(ObjType.L3, 100.0, 1e-6)
        m2.record_transfer(ObjType.MACHINE, 100.0, 1e-6)
        assert metrics_fingerprint(m1) != metrics_fingerprint(m2)
        assert metrics_fingerprint(m1) == metrics_fingerprint(m1)

    def test_run_fingerprint_requires_tracer(self, small_topo):
        machine = two_thread_machine(small_topo)
        machine.run()
        with pytest.raises(ValueError):
            run_fingerprint(machine)

    def test_identical_machines_identical_fingerprints(self, small_topo):
        fps = []
        for _ in range(2):
            machine = two_thread_machine(small_topo, Tracer())
            machine.run()
            fps.append(run_fingerprint(machine))
        assert fps[0] == fps[1]


class TestCapture:
    def test_capture_attaches_and_audits(self, small_topo):
        with observe.capture() as cap:
            machine = two_thread_machine(small_topo)
            machine.run()
        assert cap.machines == [machine]
        assert machine.tracer is not None
        reports = cap.check_all()
        assert len(reports) == 1 and reports[0].ok

    def test_capture_skips_machines_that_never_ran(self, small_topo):
        with observe.capture() as cap:
            two_thread_machine(small_topo)  # built, never run
        assert cap.check_all() == []

    def test_capture_restores_hook(self, small_topo):
        from repro.simulate import machine as machine_mod

        before = machine_mod.new_machine_hook
        with observe.capture():
            pass
        assert machine_mod.new_machine_hook is before

    def test_capture_keeps_existing_tracer(self, small_topo):
        mine = Tracer()
        with observe.capture() as cap:
            machine = two_thread_machine(small_topo, tracer=mine)
            machine.run()
        assert machine.tracer is mine
        assert cap.machines == [machine]
