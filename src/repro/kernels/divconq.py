"""Recursive divide-and-conquer (mergesort-shaped) as a task DAG.

A binary recursion over a buffer of ``nbytes``: SPLIT tasks partition
their span and hand each half to a child (writing the child's input
region — real bytes move down), LEAF tasks do the per-element work at
the bottom, MERGE tasks combine child results back up (reading both
child result regions, writing their own).  The *skew* parameter makes
the splits uneven — a seeded coin per internal node decides how lopsided
— so the tree is cost-imbalanced the way real task-parallel recursion
is (Wittmann & Hager's ccNUMA task queues), while staying bit-reproducible
from ``split_seed``.

The communication matrix is a fat binary tree: heavy near the root
(whole-buffer payloads), geometrically lighter toward the leaves —
the opposite gradient of BFS's frontier exchange and a useful third
point for the placement comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tasks.graph import Region, TaskGraph, TaskSpace
from repro.util.validate import check_in_range, check_positive


#: per-byte flop cost of leaf work (sort-ish: touch every element).
LEAF_FLOPS_PER_BYTE = 8.0
#: per-byte flop cost of a merge pass.
MERGE_FLOPS_PER_BYTE = 2.0
#: per-byte flop cost of a split pass.
SPLIT_FLOPS_PER_BYTE = 1.0


@dataclass(frozen=True)
class DivConqConfig:
    """Shape of a divide-and-conquer instance."""

    #: recursion depth (2**depth leaves).
    depth: int = 4
    #: buffer size at the root, in bytes.
    root_bytes: float = 1 << 22
    #: split imbalance in [0, 1): 0 = even halves, 0.5 = up to 75/25.
    skew: float = 0.3
    #: seed of the per-node split coins (independent of the sim seed).
    split_seed: int = 0

    def __post_init__(self) -> None:
        check_in_range(self.depth, 1, 16, "depth")
        check_positive(self.root_bytes, "root_bytes")
        check_in_range(self.skew, 0.0, 0.999, "skew")

    @property
    def n_tasks(self) -> int:
        # 2**depth - 1 splits, 2**depth leaves, 2**depth - 1 merges.
        return 3 * 2**self.depth - 2


def build_divconq_graph(config: DivConqConfig | None = None) -> TaskGraph:
    """Build the divide-and-conquer DAG for *config*."""
    cfg = config or DivConqConfig()
    rng = np.random.default_rng(cfg.split_seed)
    g = TaskGraph(
        f"divconq-d{cfg.depth}-n{cfg.root_bytes:g}"
        f"-k{cfg.skew:g}-s{cfg.split_seed}"
    )
    split: TaskSpace = g.space("SPLIT")
    leaf: TaskSpace = g.space("LEAF")
    merge: TaskSpace = g.space("MERGE")

    def recurse(lv: int, idx: int, nbytes: float, inp: Region | None) -> Region:
        """Build the subtree for node (lv, idx); returns its result region."""
        if lv == cfg.depth:
            out = g.region(f"res[{lv}][{idx}]", nbytes=nbytes)
            g.spawn(
                leaf[lv, idx],
                flops=nbytes * LEAF_FLOPS_PER_BYTE,
                reads=[inp] if inp is not None else [],
                writes=[out],
            )
            return out
        frac = 0.5 + cfg.skew * (float(rng.random()) - 0.5)
        left_b = max(1.0, round(nbytes * frac))
        right_b = max(1.0, nbytes - left_b)
        left_in = g.region(f"in[{lv + 1}][{2 * idx}]", nbytes=left_b)
        right_in = g.region(f"in[{lv + 1}][{2 * idx + 1}]", nbytes=right_b)
        g.spawn(
            split[lv, idx],
            flops=nbytes * SPLIT_FLOPS_PER_BYTE,
            reads=[inp] if inp is not None else [],
            writes=[left_in, right_in],
        )
        left_res = recurse(lv + 1, 2 * idx, left_b, left_in)
        right_res = recurse(lv + 1, 2 * idx + 1, right_b, right_in)
        out = g.region(f"res[{lv}][{idx}]", nbytes=nbytes)
        g.spawn(
            merge[lv, idx],
            flops=nbytes * MERGE_FLOPS_PER_BYTE,
            reads=[left_res, right_res],
            writes=[out],
        )
        return out

    recurse(0, 0, float(cfg.root_bytes), None)
    return g
