"""E7: placement policies on DAG workloads (the repro.tasks frontend).

Usage::

    python -m repro.tools.dag                              # full E7
    python -m repro.tools.dag --workloads cholesky,bfs --seeds 5 \
        --cores 32 --workers 4
    python -m repro.tools.dag --json dag.json --perf-report perf/
"""

from __future__ import annotations

import argparse
import json

from repro.experiments.dag import POLICIES, WORKLOADS, run_dag
from repro.tools._cache_args import add_cache_arguments, apply_cache_arguments


def _name_list(universe: tuple[str, ...], what: str):
    def parse(value: str) -> list[str]:
        names = [name.strip() for name in value.split(",") if name.strip()]
        if not names:
            raise argparse.ArgumentTypeError(f"need at least one {what}")
        for name in names:
            if name not in universe:
                raise argparse.ArgumentTypeError(
                    f"unknown {what} {name!r}; one of {','.join(universe)}"
                )
        return names

    return parse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.dag", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--workloads",
        type=_name_list(WORKLOADS, "workload"),
        default=list(WORKLOADS),
        metavar="A,B,...",
        help=f"comma-separated DAG families (default {','.join(WORKLOADS)})",
    )
    parser.add_argument(
        "--policies",
        type=_name_list(POLICIES, "policy"),
        default=list(POLICIES),
        metavar="A,B,...",
        help=f"comma-separated placements (default {','.join(POLICIES)})",
    )
    parser.add_argument("--cores", type=int, default=32,
                        help="machine size in cores (paper-SMP shape)")
    parser.add_argument("--cores-per-socket", type=int, default=8)
    parser.add_argument("--scale", type=int, default=2,
                        help="integer workload scale (tile grid order, "
                             "vertex count, recursion depth)")
    parser.add_argument("--graph-seed", type=int, default=0,
                        help="DAG structure seed (BFS input graph, "
                             "divide-and-conquer split coins); separate "
                             "from the simulation seed")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=1,
                        help="matched replicates per point (> 1 enables the "
                             "paired permutation tests and Holm correction)")
    parser.add_argument("--alpha", type=float, default=0.05,
                        help="family-wise significance level")
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep worker processes (0 = all host cores, "
                             "1 = serial; results are identical either way)")
    parser.add_argument("--engine-mode", choices=("batched", "scalar"),
                        help="discrete-event engine variant (default: "
                             "process default; results are bit-identical)")
    parser.add_argument("--fingerprint", action="store_true",
                        help="trace every point and record its run "
                             "fingerprint in the JSON dump")
    parser.add_argument("--json", metavar="FILE",
                        help="write the full sweep (points, stats, paired "
                             "significance) as JSON")
    parser.add_argument("--perf-report", metavar="DIR",
                        help="trace every point and write per-point perf "
                             "reports with DAG critical-path attribution "
                             "(JSON + text) into DIR")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    apply_cache_arguments(args)

    result = run_dag(
        workloads=tuple(args.workloads),
        policies=tuple(args.policies),
        n_cores=args.cores,
        cores_per_socket=args.cores_per_socket,
        scale=args.scale,
        graph_seed=args.graph_seed,
        seed=args.seed,
        seeds=args.seeds,
        alpha=args.alpha,
        n_workers=args.workers,
        fingerprint=args.fingerprint,
        perf_report=args.perf_report is not None,
        engine_mode=args.engine_mode,
    )
    print(result.table())
    if args.perf_report:
        from repro.tools._perf_artifacts import write_point_reports

        n_files = write_point_reports(
            args.perf_report,
            [
                (f"dag-{p.workload}-{p.policy}", (p.workload,), p.perf)
                for p in result.points
            ],
        )
        print(f"\nwrote {n_files} perf artifacts to {args.perf_report}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(result.points)} points to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
