"""Simulation counters.

One :class:`MachineMetrics` per machine run.  Everything the analysis
and EXPERIMENTS.md report comes from here: where bytes moved in the
hierarchy, how much time went to compute vs. transfers vs. lock waits,
and how often the OS-scheduler model migrated unbound threads.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.topology.objects import ObjType

#: Reusable repeated-index buffer for :meth:`MachineMetrics
#: .record_wait_batch` (grown on demand, shared by every machine in the
#: process — it is read-only zeros).
_ZERO_INDEX = np.zeros(0, dtype=np.intp)


def _zero_index(n: int) -> np.ndarray:
    global _ZERO_INDEX
    if len(_ZERO_INDEX) < n:
        _ZERO_INDEX = np.zeros(max(n, 2 * len(_ZERO_INDEX), 64), dtype=np.intp)
    return _ZERO_INDEX[:n]


@dataclass
class MachineMetrics:
    """Aggregated counters for one simulation run."""

    #: bytes transferred, keyed by the sharing level (LCA object type).
    bytes_by_level: Counter = field(default_factory=Counter)
    #: seconds spent in transfers, keyed by sharing level.
    transfer_time_by_level: defaultdict = field(
        default_factory=lambda: defaultdict(float)
    )
    #: total CPU seconds of Compute work executed.
    compute_time: float = 0.0
    #: total seconds threads spent parked on events (lock/barrier waits).
    wait_time: float = 0.0
    #: total seconds threads spent queued behind other threads on a PU.
    runq_time: float = 0.0
    #: number of OS-scheduler migrations of unbound threads.
    migrations: int = 0
    #: cache-refill penalty seconds charged after migrations.
    migration_penalty_time: float = 0.0
    #: number of transfers that were slowed by contention.
    contended_transfers: int = 0
    #: number of Receive/ReceiveFromNode operations.
    transfers: int = 0

    # -- recording hooks (called by the machine) ---------------------------

    def record_transfer(self, level: ObjType, nbytes: float, duration: float) -> None:
        self.bytes_by_level[level] += nbytes
        self.transfer_time_by_level[level] += duration
        self.transfers += 1

    def record_compute(self, duration: float) -> None:
        self.compute_time += duration

    def record_wait(self, duration: float) -> None:
        self.wait_time += duration

    def record_wait_batch(self, waited: np.ndarray) -> None:
        """Accumulate a whole wakeup cohort's wait durations at once.

        ``np.add.at`` is unbuffered and applies repeated-index additions
        in element order, so the running total goes through exactly the
        same sequence of float64 additions as N scalar
        :meth:`record_wait` calls — bit-identical, which the golden
        fingerprints and the engine differential harness both pin.
        """
        acc = np.empty(1)
        acc[0] = self.wait_time
        np.add.at(acc, _zero_index(len(waited)), waited)
        self.wait_time = float(acc[0])

    def record_runq(self, duration: float) -> None:
        self.runq_time += duration

    def record_migration(self, penalty: float) -> None:
        self.migrations += 1
        self.migration_penalty_time += penalty

    def record_contention(self) -> None:
        self.contended_transfers += 1

    # -- derived -------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        return float(sum(self.bytes_by_level.values()))

    @property
    def remote_bytes(self) -> float:
        """Bytes that crossed a NUMA boundary.

        An LCA of NUMANODE means both endpoints share the node (local
        DRAM); only GROUP/MACHINE-level transfers are off-node.
        """
        wide = (ObjType.GROUP, ObjType.MACHINE)
        return float(sum(self.bytes_by_level.get(t, 0) for t in wide))

    @property
    def local_fraction(self) -> float:
        """Fraction of traffic kept inside a NUMA node (1.0 if no traffic)."""
        total = self.total_bytes
        if total == 0:
            return 1.0
        return 1.0 - self.remote_bytes / total

    def summary(self) -> dict[str, float]:
        """Flat dict for reports and EXPERIMENTS.md tables."""
        return {
            "compute_time": self.compute_time,
            "wait_time": self.wait_time,
            "runq_time": self.runq_time,
            "total_bytes": self.total_bytes,
            "remote_bytes": self.remote_bytes,
            "local_fraction": self.local_fraction,
            "migrations": float(self.migrations),
            "migration_penalty_time": self.migration_penalty_time,
            "transfers": float(self.transfers),
            "contended_transfers": float(self.contended_transfers),
        }

    def __repr__(self) -> str:
        return (
            f"<MachineMetrics compute={self.compute_time:.3g}s "
            f"wait={self.wait_time:.3g}s bytes={self.total_bytes:.3g} "
            f"local={self.local_fraction:.0%} migrations={self.migrations}>"
        )
