"""Multi-seed statistics over sweeps (``repro.stats``).

The paper reports single runs per core count; this layer makes the
reproduction say something stronger — it runs N independent seeds per
sweep point (on top of :class:`repro.exec.SweepRunner`, so serial and
parallel replication are bit-identical), aggregates each point into
mean / median / stddev / bootstrap confidence interval, and compares
implementation pairs with a significance verdict.

Three modules:

* :mod:`repro.stats.aggregate` — :class:`SeedStats` and
  :func:`summarize` (deterministic, seed-order invariant, bootstrap
  percentile CI that always contains the sample mean);
* :mod:`repro.stats.significance` — :func:`compare` /
  :class:`SpeedupVerdict` (speedup distribution with CI + permutation
  test, "insufficient-data" for single runs);
* :mod:`repro.stats.sweep` — :func:`run_replicated` /
  :class:`ReplicateSpec` (the points × seeds expansion; replicate 0
  keeps the base seed so N=1 reproduces the historical single-run
  results bit-identically, replicate r > 0 uses
  :func:`repro.exec.derive_seed`).

The experiments wire this behind a ``seeds=N`` knob (CLI ``--seeds``),
default 1 = today's single-run behavior, unchanged to the byte.
"""

from __future__ import annotations

from repro.stats.aggregate import (
    DEFAULT_N_BOOT,
    SeedStats,
    summarize,
    summarize_map,
)
from repro.stats.significance import (
    PairedVerdict,
    SpeedupVerdict,
    cliffs_delta,
    cliffs_delta_label,
    compare,
    compare_paired,
    compare_stats,
    correct_verdicts,
    holm_bonferroni,
    paired_permutation_pvalue,
    permutation_pvalue,
    speedup_distribution,
)
from repro.stats.sweep import (
    ReplicatedPoint,
    ReplicatedSweep,
    ReplicateSpec,
    replicate_seeds,
    run_replicated,
)

__all__ = [
    "DEFAULT_N_BOOT",
    "PairedVerdict",
    "ReplicatedPoint",
    "ReplicatedSweep",
    "ReplicateSpec",
    "SeedStats",
    "SpeedupVerdict",
    "cliffs_delta",
    "cliffs_delta_label",
    "compare",
    "compare_paired",
    "compare_stats",
    "correct_verdicts",
    "holm_bonferroni",
    "paired_permutation_pvalue",
    "permutation_pvalue",
    "replicate_seeds",
    "run_replicated",
    "speedup_distribution",
    "summarize",
    "summarize_map",
]
