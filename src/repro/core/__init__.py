"""Top-level façade: one-call experiment running.

Re-exports :func:`run_lk23` and :class:`ExperimentConfig` from
:mod:`repro.core.api` — the API the examples and quickstart use.
"""

from repro.core.api import ExperimentConfig, ExperimentResult, run_lk23, compare_policies

__all__ = ["ExperimentConfig", "ExperimentResult", "run_lk23", "compare_policies"]
