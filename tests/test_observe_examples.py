"""Acceptance: the invariant checker runs green on every example.

Each example script is executed under :func:`repro.observe.capture`,
which attaches a tracer to every :class:`Machine` the script builds, and
then every machine that actually ran is audited against the full
conservation-law set.  This is the strongest end-to-end statement the
test suite makes: the accounting in the simulator closes on every
workload the repo ships, not just the hand-built fixtures.

Also covers the trace CLI acceptance path: chrome export for the ring
pipeline, and a JSON-lines export that round-trips losslessly.
"""

import json
import sys
from pathlib import Path

import pytest

from repro import observe
from repro.observe import read_jsonl, stream_hash, write_jsonl
from repro.tools import trace as trace_cli

from .test_examples import load_example

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def run_audited(name: str, argv: list[str] | None = None, monkeypatch=None,
                expect_runs: bool = True):
    """Run examples/<name>.py under capture() and audit every machine."""
    if argv is not None:
        monkeypatch.setattr(sys, "argv", argv)
    with observe.capture() as cap:
        load_example(name).main()
    reports = cap.check_all(raise_on_violation=False)
    if expect_runs:
        assert reports, f"{name} built no machine that ran"
    for report in reports:
        assert report.ok, report.render()
    return cap, reports


def test_quickstart_invariants(capsys):
    cap, reports = run_audited("quickstart")
    assert all(r.events_audited > 0 for r in reports)


def test_custom_topology_invariants(capsys):
    # Pure topology/placement demo: no simulation, so the audit set may
    # be empty — green either way is what the acceptance asks for.
    run_audited("custom_topology", expect_runs=False)


def test_trace_affinity_invariants(capsys):
    run_audited("trace_affinity")


def test_ring_pipeline_invariants(capsys):
    cap, _ = run_audited("ring_pipeline")
    # Ring stages synchronize by lock handoff: wait spans must show up.
    assert any(t.counts().get("wait") for t in cap.tracers)


def test_timeline_debug_invariants(capsys):
    run_audited("timeline_debug")


@pytest.mark.slow
def test_cluster_placement_invariants(capsys):
    run_audited("cluster_placement")


@pytest.mark.slow
def test_fig1_reproduce_invariants(capsys, monkeypatch):
    run_audited(
        "fig1_reproduce",
        argv=["fig1_reproduce.py", "--cores", "8", "16"],
        monkeypatch=monkeypatch,
    )


@pytest.mark.slow
def test_placement_compare_invariants(capsys):
    run_audited("placement_compare")


class TestTraceCli:
    def test_ring_chrome_export(self, tmp_path, capsys):
        out = tmp_path / "ring.json"
        rc = trace_cli.main(
            ["--workload", "ring", "--stages", "4", "--rounds", "10",
             "--packet-kib", "64", "--format", "chrome",
             "--out", str(out), "--check", "--hash"]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        fp_lines = [l for l in printed.splitlines()
                    if l.startswith("fingerprint:")]
        assert len(fp_lines) == 1
        assert len(fp_lines[0].split(":", 1)[1].strip()) == 64  # sha256 hex
        assert "invariants" in printed and "OK" in printed
        payload = json.loads(out.read_text())
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert spans and all(e["dur"] >= 0 for e in spans)
        assert {e["cat"] for e in spans} >= {"compute", "transfer"}

    def test_jsonl_export_round_trips(self, tmp_path, capsys):
        out = tmp_path / "ring.jsonl"
        rc = trace_cli.main(
            ["--workload", "ring", "--stages", "4", "--rounds", "10",
             "--packet-kib", "64", "--format", "jsonl", "--out", str(out)]
        )
        assert rc == 0
        events = read_jsonl(out)
        assert events
        # Lossless: re-export is byte-identical and hash-stable.
        copy = tmp_path / "copy.jsonl"
        write_jsonl(events, copy)
        assert copy.read_text() == out.read_text()
        assert stream_hash(read_jsonl(copy)) == stream_hash(events)

    def test_lk23_traffic_table(self, capsys):
        rc = trace_cli.main(
            ["--workload", "lk23", "--topology", "small-numa",
             "--policy", "nobind", "--n", "1024", "--iterations", "1",
             "--traffic", "--check"]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "Traffic by sharing level" in printed
        assert "NUMA-local" in printed
