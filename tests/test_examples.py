"""Smoke tests: every example script runs end to end.

Examples are part of the public deliverable; they must not rot.  Each
is imported from the examples/ directory and executed with reduced
arguments where the script accepts them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "fig1_reproduce", "custom_topology",
            "placement_compare", "trace_affinity", "ring_pipeline",
            "timeline_debug", "cluster_placement"} <= names


def test_timeline_debug_runs(capsys):
    load_example("timeline_debug").main()
    out = capsys.readouterr().out
    assert "per-PU utilization" in out


@pytest.mark.slow
def test_cluster_placement_runs(capsys):
    load_example("cluster_placement").main()
    out = capsys.readouterr().out
    assert "less data over the network" in out


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "ORWL-Bind" in out
    assert "speedup" in out


def test_custom_topology_runs(capsys):
    load_example("custom_topology").main()
    out = capsys.readouterr().out
    assert "Topology from spec" in out
    assert "OS binding script" in out


def test_trace_affinity_runs(capsys):
    load_example("trace_affinity").main()
    out = capsys.readouterr().out
    assert "Pearson correlation" in out


def test_ring_pipeline_runs(capsys):
    load_example("ring_pipeline").main()
    out = capsys.readouterr().out
    assert "treematch" in out


@pytest.mark.slow
def test_fig1_reproduce_runs_reduced(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["fig1_reproduce.py", "--cores", "8", "16"])
    load_example("fig1_reproduce").main()
    out = capsys.readouterr().out
    assert "Figure 1 sweep" in out
    assert "C2 speedup" in out


@pytest.mark.slow
def test_placement_compare_runs(capsys):
    load_example("placement_compare").main()
    out = capsys.readouterr().out
    assert "Fastest policy" in out
