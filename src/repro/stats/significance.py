"""Pairwise speedup distributions and significance verdicts.

The paper's Figure 1 reports single runs, so a reproduction that also
runs once per point cannot say whether "ORWL-Bind is 5× faster than
OpenMP" is a placement effect or seed luck.  This module turns two
replicate samples (baseline vs candidate processing times) into:

* a **speedup distribution** — bootstrap resamples of
  ``mean(baseline) / mean(candidate)`` with a percentile CI;
* a **permutation test** p-value on the difference of means (exact
  enumeration when the group sizes allow, seeded Monte Carlo
  otherwise);
* a **verdict**: ``significant`` when the two per-group confidence
  intervals do not overlap *or* the permutation p-value clears *alpha*;
  ``insufficient-data`` when either side has fewer than two replicates
  (a single run supports no inference — exactly the paper's situation).

Everything is deterministic: fixed internal streams, inputs sorted
before use, so serial and parallel sweeps produce bit-identical
verdicts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.aggregate import SeedStats, summarize
from repro.util.validate import ValidationError

#: Fixed streams, distinct from the aggregation bootstrap.
_SPEEDUP_SEED = 20160927
_PERMUTE_SEED = 20160928

#: Exact permutation enumeration is used while C(n_a+n_b, n_a) stays
#: below this; beyond it a seeded Monte Carlo sample is drawn instead.
EXACT_PERMUTATION_LIMIT = 20_000


@dataclass(frozen=True)
class SpeedupVerdict:
    """The comparison of one implementation pair.

    ``speedup_mean`` is ``mean(baseline times) / mean(candidate times)``
    — > 1 means the candidate is faster.  ``p_value`` is ``None`` when
    either sample is a single run.
    """

    baseline: str
    candidate: str
    speedup_mean: float
    speedup_ci_lo: float
    speedup_ci_hi: float
    p_value: Optional[float]
    alpha: float
    significant: bool
    verdict: str  #: "significant" | "not-significant" | "insufficient-data"
    method: str  #: "exact-permutation" | "monte-carlo-permutation" | "none"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = f"p={self.p_value:.4f}" if self.p_value is not None else "p=n/a"
        return (
            f"{self.candidate} vs {self.baseline}: "
            f"{self.speedup_mean:.2f}x "
            f"[{self.speedup_ci_lo:.2f}, {self.speedup_ci_hi:.2f}] "
            f"{p} -> {self.verdict}"
        )


def permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_perm: int = 10_000,
) -> tuple[Optional[float], str]:
    """Two-sided permutation test on the difference of means.

    Returns ``(p_value, method)``; ``(None, "none")`` when either group
    has fewer than two observations.  Exact enumeration of the
    ``C(n_a+n_b, n_a)`` group relabelings is used when feasible,
    otherwise *n_perm* seeded random relabelings (with the +1 additive
    smoothing that keeps a Monte Carlo p-value valid and non-zero).
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size < 2 or b.size < 2:
        return None, "none"
    observed = abs(a.mean() - b.mean())
    pooled = np.concatenate([a, b])
    n_total, n_a = pooled.size, a.size
    total_sum = float(pooled.sum())
    # A relabeling is characterized by which indices form group A; the
    # difference of means is then a pure function of group A's sum.
    eps = 1e-12 * max(1.0, abs(observed))
    if math.comb(n_total, n_a) <= EXACT_PERMUTATION_LIMIT:
        hits = 0
        count = 0
        for combo in itertools.combinations(range(n_total), n_a):
            sum_a = float(pooled[list(combo)].sum())
            mean_a = sum_a / n_a
            mean_b = (total_sum - sum_a) / (n_total - n_a)
            if abs(mean_a - mean_b) >= observed - eps:
                hits += 1
            count += 1
        return hits / count, "exact-permutation"
    rng = np.random.default_rng(_PERMUTE_SEED)
    hits = 0
    for _ in range(n_perm):
        perm = rng.permutation(n_total)
        sum_a = float(pooled[perm[:n_a]].sum())
        mean_a = sum_a / n_a
        mean_b = (total_sum - sum_a) / (n_total - n_a)
        if abs(mean_a - mean_b) >= observed - eps:
            hits += 1
    return (hits + 1) / (n_perm + 1), "monte-carlo-permutation"


def speedup_distribution(
    baseline_times: Sequence[float],
    candidate_times: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
) -> tuple[float, float, float]:
    """``(speedup, ci_lo, ci_hi)`` of mean(baseline)/mean(candidate).

    The CI is a percentile bootstrap resampling both groups
    independently; with single-run groups it degenerates to the point
    estimate.  Deterministic (fixed stream, sorted inputs).
    """
    a = np.sort(np.asarray(baseline_times, dtype=float))
    b = np.sort(np.asarray(candidate_times, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValidationError("speedup needs at least one time per group")
    if float(b.mean()) == 0.0:
        raise ValidationError("candidate mean time is zero")
    point = float(a.mean()) / float(b.mean())
    if a.size < 2 or b.size < 2:
        return point, point, point
    rng = np.random.default_rng(_SPEEDUP_SEED)
    means_a = a[rng.integers(0, a.size, size=(n_boot, a.size))].mean(axis=1)
    means_b = b[rng.integers(0, b.size, size=(n_boot, b.size))].mean(axis=1)
    ratios = means_a / means_b
    alpha = 1.0 - confidence
    lo = float(np.quantile(ratios, alpha / 2.0))
    hi = float(np.quantile(ratios, 1.0 - alpha / 2.0))
    return point, min(lo, point), max(hi, point)


def compare(
    baseline: str,
    baseline_times: Sequence[float],
    candidate: str,
    candidate_times: Sequence[float],
    alpha: float = 0.05,
    confidence: float = 0.95,
    n_perm: int = 10_000,
) -> SpeedupVerdict:
    """Full pairwise comparison of two replicate samples.

    *baseline_times* / *candidate_times* are processing times (lower is
    better); the verdict says whether the candidate's advantage (or
    deficit) is distinguishable from seed noise.
    """
    speedup, lo, hi = speedup_distribution(
        baseline_times, candidate_times, confidence=confidence
    )
    p_value, method = permutation_pvalue(
        baseline_times, candidate_times, n_perm=n_perm
    )
    if p_value is None:
        return SpeedupVerdict(
            baseline=baseline, candidate=candidate,
            speedup_mean=speedup, speedup_ci_lo=lo, speedup_ci_hi=hi,
            p_value=None, alpha=alpha, significant=False,
            verdict="insufficient-data", method=method,
        )
    stats_a = summarize(baseline_times, confidence=confidence)
    stats_b = summarize(candidate_times, confidence=confidence)
    significant = (not stats_a.overlaps(stats_b)) or p_value < alpha
    return SpeedupVerdict(
        baseline=baseline, candidate=candidate,
        speedup_mean=speedup, speedup_ci_lo=lo, speedup_ci_hi=hi,
        p_value=p_value, alpha=alpha, significant=significant,
        verdict="significant" if significant else "not-significant",
        method=method,
    )


def compare_stats(
    baseline: str,
    baseline_stats: SeedStats,
    candidate: str,
    candidate_stats: SeedStats,
    alpha: float = 0.05,
    n_perm: int = 10_000,
) -> SpeedupVerdict:
    """:func:`compare` on two :class:`SeedStats` (uses their values)."""
    return compare(
        baseline, baseline_stats.values,
        candidate, candidate_stats.values,
        alpha=alpha, confidence=baseline_stats.confidence, n_perm=n_perm,
    )
