"""Extension experiment E5 — the wavefront workload.

A pipelined dependence structure (same-sweep West/North dependencies):
the pipeline's beat is the neighbour hand-off latency, so placement
acts on latency rather than bulk bandwidth.  TreeMatch packing the
dependence chain under shared caches must beat random placement; the
pipeline-fill model (makespan ≈ (depth + sweeps − 1) · beat) is checked
against the simulation.
"""

import pytest

from repro.kernels.wavefront import WavefrontConfig, build_wavefront_program
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.topology import presets


def _run(cfg: WavefrontConfig, policy: str, seed: int = 0) -> float:
    topo = presets.paper_smp(4, 8)
    prog = build_wavefront_program(cfg)
    kwargs = {"seed": seed} if policy == "random" else {}
    plan = bind_program(prog, topo, policy=policy, **kwargs)
    machine = Machine(topo, seed=seed)
    rt = Runtime(prog, machine, mapping=plan.mapping,
                 control_mapping=plan.control_mapping)
    return rt.run().time


@pytest.mark.parametrize("policy", ["treematch", "random"])
def test_wavefront_point(benchmark, policy):
    cfg = WavefrontConfig(rows=4, cols=8, iterations=6,
                          cell_flops=1e4, frontier_bytes=1 << 20)
    t = benchmark.pedantic(_run, args=(cfg, policy), kwargs=dict(seed=5),
                           rounds=1, iterations=1)
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["sim_time_s"] = t
    assert t > 0


def test_wavefront_placement_wins(benchmark):
    cfg = WavefrontConfig(rows=4, cols=8, iterations=6,
                          cell_flops=1e4, frontier_bytes=1 << 20)

    def both():
        return _run(cfg, "treematch"), _run(cfg, "random", seed=5)

    t_tm, t_rand = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["treematch_s"] = t_tm
    benchmark.extra_info["random_s"] = t_rand
    benchmark.extra_info["speedup"] = t_rand / t_tm
    assert t_tm < t_rand
