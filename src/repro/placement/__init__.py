"""The paper's placement add-on: policies, affinity extraction, binder.

* :mod:`~repro.placement.policies` — TreeMatch plus compact / scatter /
  round-robin / random / nobind baselines, with a registry.
* :mod:`~repro.placement.affinity` — communication-matrix extraction
  from ORWL program composition (static) or from runtime traces.
* :mod:`~repro.placement.binder` — :func:`bind_program`, the end-to-end
  add-on (matrix → policy → thread and control-thread placement).
* :mod:`~repro.placement.report` — occupancy/locality reports.
"""

from repro.placement.affinity import (
    control_pairing,
    matrix_correlation,
    static_matrix,
    traced_matrix,
)
from repro.placement.binder import BindPlan, bind_program
from repro.placement.profiled import ProfiledBind, profile_and_bind
from repro.placement.policies import (
    POLICY_REGISTRY,
    CompactPolicy,
    NoBindPolicy,
    PlacementPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ScatterPolicy,
    ServicePolicy,
    TreeMatchPolicy,
    make_policy,
)
from repro.placement.service import CommSketch, Decision, PlacementService
from repro.placement import report

__all__ = [
    "control_pairing",
    "matrix_correlation",
    "static_matrix",
    "traced_matrix",
    "BindPlan",
    "bind_program",
    "ProfiledBind",
    "profile_and_bind",
    "POLICY_REGISTRY",
    "CompactPolicy",
    "NoBindPolicy",
    "PlacementPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ScatterPolicy",
    "ServicePolicy",
    "TreeMatchPolicy",
    "make_policy",
    "CommSketch",
    "Decision",
    "PlacementService",
    "report",
]
