"""Parallel sweep execution (``repro.exec``).

Every experiment in this repo — the Fig. 1 sweep, the ablations, the
cluster comparison, the benchmarks — is a set of *independent*
simulation points: same code, different parameters, no shared state.
Each point is a full discrete-event simulation firing millions of pure
Python events, so a paper-scale sweep is dominated by CPU time that
parallelizes embarrassingly across the host's own cores.

:class:`SweepRunner` fans such points over a process pool while keeping
the repo's determinism contract intact:

* **deterministic ordering** — results come back in submission order,
  regardless of which worker finished first;
* **bit-identical to serial** — a point's outcome depends only on its
  arguments (every simulation is seeded), so ``n_workers=8`` and
  ``n_workers=1`` produce byte-identical results and determinism
  fingerprints (``tests/test_exec.py`` pins this);
* **per-point seeds** — :func:`derive_seed` derives stable,
  process-independent child seeds from a base seed and a point key;
* **worker-side caching** — :mod:`repro.exec.cache` memoizes topology
  and :class:`~repro.topology.distance.DistanceModel` construction per
  preset inside each worker, so a 192-PU distance matrix is built once
  per process, not once per point;
* **chunked dispatch** — points are shipped in chunks to amortize IPC;
* **crash resilience** — a dying worker (OOM kill, segfault in a native
  extension) breaks the pool; the runner rebuilds it and retries the
  unfinished chunks, finally falling back to in-process serial
  execution so a sweep always completes;
* **progress events** — :class:`~repro.exec.progress.SweepEvent`
  callbacks, optionally mirrored into a
  :class:`repro.observe.Tracer` stream (kind ``"sweep"``).
"""

from __future__ import annotations

from repro.exec.cache import (
    cached_distance_model,
    cached_topology,
    clear_cache,
    machine_inputs,
)
from repro.exec.progress import SweepEvent, log_progress, tracer_progress
from repro.exec.runner import (
    ExecError,
    SweepRunner,
    Task,
    derive_seed,
    resolve_workers,
    run_sweep,
)

__all__ = [
    "ExecError",
    "SweepEvent",
    "SweepRunner",
    "Task",
    "cached_distance_model",
    "cached_topology",
    "clear_cache",
    "derive_seed",
    "log_progress",
    "machine_inputs",
    "resolve_workers",
    "run_sweep",
    "tracer_progress",
]
