"""Discrete-event NUMA machine simulator.

The hardware substitute for the paper's 192-core SMP (see DESIGN.md §1):

* :mod:`~repro.simulate.engine` — event heap, simulated clock, events.
* :mod:`~repro.simulate.syscalls` — the requests thread bodies yield.
* :mod:`~repro.simulate.machine` — PUs, threads, transfer pricing.
* :mod:`~repro.simulate.scheduler` — OS placement/migration model for
  unbound (NoBind) threads.
* :mod:`~repro.simulate.contention` — memory-controller/interconnect
  bandwidth contention.
* :mod:`~repro.simulate.metrics` — per-run counters.
"""

from repro.simulate.engine import ENGINE_MODES, Engine, SimEvent, SimulationError
from repro.simulate.machine import (
    DEFAULT_ENGINE_MODE,
    Machine,
    SimThread,
    ThreadState,
    set_default_engine_mode,
)
from repro.simulate.metrics import MachineMetrics
from repro.simulate.contention import ContentionConfig, ContentionModel
from repro.simulate.scheduler import OsScheduler, SchedulerConfig
from repro.simulate.syscalls import (
    Compute,
    ComputeFlops,
    Receive,
    ReceiveFromNode,
    Wait,
    Yield,
)
from repro.simulate.timeline import Segment, Timeline

__all__ = [
    "ENGINE_MODES",
    "DEFAULT_ENGINE_MODE",
    "set_default_engine_mode",
    "Engine",
    "SimEvent",
    "SimulationError",
    "Machine",
    "SimThread",
    "ThreadState",
    "MachineMetrics",
    "ContentionConfig",
    "ContentionModel",
    "OsScheduler",
    "SchedulerConfig",
    "Compute",
    "ComputeFlops",
    "Receive",
    "ReceiveFromNode",
    "Wait",
    "Yield",
    "Segment",
    "Timeline",
]
