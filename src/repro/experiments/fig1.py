"""Figure 1 reproduction: LK23 processing time, three implementations.

The paper's only figure compares the processing time of three LK23
implementations on the 24-socket × 8-core SMP as the run scales: ORWL
with the topology-aware binding (ORWL-Bind), ORWL left to the OS
scheduler (ORWL-NoBind), and the fork-join OpenMP port.  The text
reports, at the best configuration: ~11 s for ORWL-Bind, a ≈5× speedup
over OpenMP, and ≈2.8× over ORWL-NoBind.

:func:`run_fig1` sweeps core counts (whole sockets at a time, like the
paper's machine partitioning) and runs all three implementations per
point on the simulated machine.  One task per core for ORWL (the
paper's configuration: 192 blocks on 192 cores), one worker per core
for OpenMP.

The result object renders the figure's data as a text table and checks
the three scalar claims as factor bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.comm.patterns import square_grid_shape
from repro.exec.cache import machine_inputs
from repro.exec.runner import SweepRunner
from repro.kernels.lk23_orwl import Lk23Config, build_program
from repro.kernels.openmp import OpenMpConfig, run_openmp_lk23
from repro.orwl.runtime import Runtime
from repro.placement.binder import bind_program
from repro.simulate.machine import Machine
from repro.stats.aggregate import SeedStats
from repro.stats.significance import SpeedupVerdict, compare
from repro.stats.sweep import ReplicateSpec, run_replicated
from repro.util.validate import ValidationError

#: The implementations of the figure, in its legend order.
IMPLEMENTATIONS = ("orwl-bind", "orwl-nobind", "openmp")


@dataclass
class Fig1Point:
    """One (implementation, core count) measurement."""

    implementation: str
    n_cores: int
    time: float
    local_fraction: float
    migrations: int
    remote_bytes: float
    #: sha-256 determinism fingerprint of the traced run (empty unless
    #: the point was run with ``fingerprint=True``); lets serial and
    #: parallel sweeps be compared bit-exactly, see tests/test_exec.py.
    fingerprint: str = ""
    #: JSON dict of the point's :class:`repro.perf.PerfReport` (``None``
    #: unless run with ``perf_report=True``).  Stored as a plain dict so
    #: the point stays picklable across sweep workers; rebuild the
    #: report object with :meth:`repro.perf.PerfReport.from_json_dict`.
    perf: Optional[dict] = None


@dataclass
class Fig1Result:
    """All points of the sweep plus the paper-claim checks.

    With a multi-seed sweep (``run_fig1(..., seeds=N)``), ``points``
    holds replicate 0 of every point — the base-seed run, bit-identical
    to the historical single-seed sweep — while ``replicates`` keeps all
    N :class:`Fig1Point` per ``(implementation, n_cores)`` key and
    ``seed_stats`` their per-point time aggregates.
    """

    points: list[Fig1Point] = field(default_factory=list)
    iterations: int = 0
    n: int = 0
    #: Replicates per sweep point (``run_fig1`` with ``seeds=N``).
    n_seeds: int = 1
    #: ``(implementation, n_cores) -> SeedStats`` over replicate times.
    seed_stats: dict[tuple[str, int], SeedStats] = field(default_factory=dict)
    #: ``(implementation, n_cores) -> all replicate points`` (replicate 0
    #: first; identical to the matching ``points`` entry).
    replicates: dict[tuple[str, int], tuple[Fig1Point, ...]] = field(
        default_factory=dict
    )

    def _missing_key_error(self, implementation: str, n_cores: int) -> KeyError:
        have_impls = sorted({p.implementation for p in self.points})
        have_cores = sorted({p.n_cores for p in self.points})
        return KeyError(
            f"no point (implementation={implementation!r}, n_cores={n_cores}); "
            f"swept implementations {have_impls or '(none)'} "
            f"at core counts {have_cores or '(none)'}"
        )

    def time_of(self, implementation: str, n_cores: int) -> float:
        try:
            return self._index()[implementation, n_cores]
        except KeyError:
            raise self._missing_key_error(implementation, n_cores) from None

    def stats_of(self, implementation: str, n_cores: int) -> SeedStats:
        """The :class:`SeedStats` of one point's replicate times."""
        try:
            return self.seed_stats[implementation, n_cores]
        except KeyError:
            raise self._missing_key_error(implementation, n_cores) from None

    def times_of(self, implementation: str, n_cores: int) -> tuple[float, ...]:
        """All replicate times of one point (sorted ascending)."""
        return self.stats_of(implementation, n_cores).values

    def _index(self) -> dict[tuple[str, int], float]:
        """``(implementation, n_cores) -> time``, built once per points size.

        ``points`` is a public list that callers append to, so the index
        is rebuilt whenever the length changes; like the linear scan it
        replaces, the *first* point wins on duplicates.  Rendering a
        table calls :meth:`time_of` per cell, which made the old scan
        quadratic in sweep size.
        """
        cached = self.__dict__.get("_time_index")
        if cached is None or self.__dict__.get("_time_index_len") != len(self.points):
            cached = {}
            for p in self.points:
                cached.setdefault((p.implementation, p.n_cores), p.time)
            self.__dict__["_time_index"] = cached
            self.__dict__["_time_index_len"] = len(self.points)
        return cached

    def series(self, implementation: str) -> list[tuple[int, float]]:
        """(cores, time) pairs of one curve, sorted by cores."""
        pts = [
            (p.n_cores, p.time)
            for p in self.points
            if p.implementation == implementation
        ]
        return sorted(pts)

    def core_counts(self) -> list[int]:
        return sorted({p.n_cores for p in self.points})

    def best_time(self, implementation: str) -> tuple[int, float]:
        """(cores, time) of the implementation's fastest point."""
        series = self.series(implementation)
        if not series:
            raise KeyError(
                f"no points for implementation={implementation!r}; swept "
                f"implementations {sorted({p.implementation for p in self.points}) or '(none)'}"
            )
        return min(series, key=lambda cv: cv[1])

    # -- multi-seed statistics (populated by ``run_fig1(..., seeds=N)``) ---

    def mean_series(self, implementation: str) -> list[tuple[int, SeedStats]]:
        """(cores, SeedStats) pairs of one curve, sorted by cores."""
        return sorted(
            (c, s) for (impl, c), s in self.seed_stats.items()
            if impl == implementation
        )

    def best_mean(self, implementation: str) -> tuple[int, SeedStats]:
        """(cores, SeedStats) of the point with the lowest mean time."""
        series = self.mean_series(implementation)
        if not series:
            raise KeyError(
                f"no seed statistics for implementation={implementation!r}; "
                "run the sweep with seeds >= 1 via run_fig1()"
            )
        return min(series, key=lambda cs: cs[1].mean)

    def speedup_verdicts(self, alpha: float = 0.05) -> list[SpeedupVerdict]:
        """Pairwise best-point speedup comparisons with significance.

        Compares ORWL-Bind (the paper's winner) against every other
        swept implementation at each side's best-mean core count —
        the multi-seed version of :meth:`speedup_vs_openmp` /
        :meth:`speedup_vs_nobind`.  With a single seed per point the
        verdict is ``insufficient-data``: one run supports no inference,
        which is precisely the caveat on the paper's Figure 1.
        """
        have = {impl for impl, _ in self.seed_stats}
        if "orwl-bind" not in have:
            return []
        _, bind = self.best_mean("orwl-bind")
        out = []
        for impl in IMPLEMENTATIONS:
            if impl == "orwl-bind" or impl not in have:
                continue
            _, other = self.best_mean(impl)
            out.append(
                compare(
                    impl, other.values, "orwl-bind", bind.values,
                    alpha=alpha, confidence=bind.confidence,
                )
            )
        return out

    def stats_table(self) -> str:
        """Per-point mean / stddev / CI as an aligned text table."""
        if not self.seed_stats:
            return "(no seed statistics; run with seeds >= 1)"
        level = next(iter(self.seed_stats.values())).confidence
        impl_w = max(
            [len("implementation")] + [len(impl) for impl, _ in self.seed_stats]
        )
        header = (
            f"{'cores':>6} {'implementation':<{impl_w}} {'n':>3} {'mean':>10} "
            f"{'stddev':>10} {f'{level:.0%} CI':>24}"
        )
        lines = [header, "-" * len(header)]
        for c in self.core_counts():
            for impl in IMPLEMENTATIONS:
                s = self.seed_stats.get((impl, c))
                if s is None:
                    continue
                lines.append(
                    f"{c:>6} {impl:<{impl_w}} {s.n:>3} {s.mean:>10.4f} "
                    f"{s.stddev:>10.4f} "
                    f"{f'[{s.ci_lo:.4f}, {s.ci_hi:.4f}]':>24}"
                )
        verdicts = self.speedup_verdicts()
        if verdicts:
            lines.append("")
            for v in verdicts:
                lines.append(str(v))
        return "\n".join(lines)

    # -- the paper's scalar claims ----------------------------------------

    def speedup_vs_openmp(self) -> float:
        """Best-point speedup of ORWL-Bind over OpenMP (paper: ≈5)."""
        return self.best_time("openmp")[1] / self.best_time("orwl-bind")[1]

    def speedup_vs_nobind(self) -> float:
        """Best-point speedup of ORWL-Bind over ORWL-NoBind (paper: ≈2.8)."""
        return self.best_time("orwl-nobind")[1] / self.best_time("orwl-bind")[1]

    def speedup_curve(self, implementation: str) -> list[tuple[int, float]]:
        """(cores, speedup-vs-smallest-point) for one implementation."""
        series = self.series(implementation)
        if not series:
            return []
        base_cores, base_time = series[0]
        return [(c, base_time / t) for c, t in series]

    def efficiency(self, implementation: str, n_cores: int) -> float:
        """Strong-scaling efficiency at *n_cores*: speedup / ideal.

        Ideal speedup from the smallest measured core count is
        ``n_cores / smallest``; 1.0 = perfect scaling.
        """
        series = self.series(implementation)
        if not series:
            raise KeyError(f"no points for {implementation}")
        base_cores, base_time = series[0]
        t = self.time_of(implementation, n_cores)
        return (base_time / t) / (n_cores / base_cores)

    def openmp_scaling_stalls_after(self) -> Optional[int]:
        """Core count beyond which adding cores stops helping OpenMP.

        The paper's claim C4: "as soon as we scale beyond one or two
        sockets, standard approaches ... fail [to] improve performance."
        Returns the last core count at which OpenMP still improved by
        more than 5 %, or ``None`` if it never stalls within the sweep.
        """
        series = self.series("openmp")
        for (c0, t0), (_, t1) in zip(series, series[1:]):
            if t1 > t0 * 0.95:
                return c0
        return None

    def table(self, show_efficiency: bool = False) -> str:
        """The figure's data as an aligned text table.

        With *show_efficiency*, each cell also shows the strong-scaling
        efficiency relative to the smallest core count.
        """
        cores = self.core_counts()
        # Column width follows the longest implementation name; efficiency
        # cells carry a 6-char "(xxx%)" suffix on top of the time.
        width = max([12] + [len(impl) for impl in IMPLEMENTATIONS])
        if show_efficiency:
            width = max(width, 14)
        header = f"{'cores':>6} | " + " | ".join(
            f"{impl:>{width}}" for impl in IMPLEMENTATIONS
        )
        lines = [header, "-" * len(header)]
        for c in cores:
            cells = []
            for impl in IMPLEMENTATIONS:
                try:
                    cell = f"{self.time_of(impl, c):{width}.4f}"
                    if show_efficiency:
                        cell = (
                            f"{self.time_of(impl, c):{width - 6}.4f}"
                            f"({self.efficiency(impl, c):4.0%})"
                        )
                except KeyError:
                    cell = f"{'-':>{width}}"
                cells.append(cell)
            lines.append(f"{c:>6} | " + " | ".join(cells))
        # Summary lines need all three implementations to be present.
        have = {p.implementation for p in self.points}
        if set(IMPLEMENTATIONS) <= have:
            lines.append("")
            lines.append(
                f"best ORWL-Bind: {self.best_time('orwl-bind')[1]:.4f}s "
                f"at {self.best_time('orwl-bind')[0]} cores"
            )
            lines.append(
                f"speedup vs OpenMP: {self.speedup_vs_openmp():.2f}x (paper ~5)"
            )
            lines.append(
                f"speedup vs ORWL-NoBind: {self.speedup_vs_nobind():.2f}x (paper ~2.8)"
            )
            stall = self.openmp_scaling_stalls_after()
            lines.append(
                "OpenMP stops scaling after "
                + (f"{stall} cores" if stall is not None else "the sweep (never stalled)")
            )
        return "\n".join(lines)


def run_point(
    implementation: str,
    n_cores: int,
    iterations: int = 5,
    n: int = 16384,
    cores_per_socket: int = 8,
    seed: int = 0,
    fingerprint: bool = False,
    perf_report: bool = False,
    engine_mode: Optional[str] = None,
) -> Fig1Point:
    """Run one implementation at one core count; returns the point.

    With *fingerprint*, the run is traced and the point carries its
    :func:`repro.observe.determinism.run_fingerprint` — the cheap way to
    assert two sweeps (e.g. serial vs parallel) did bit-identical work.
    With *perf_report*, the run is traced and the point carries the
    JSON form of its :func:`repro.perf.analyze` report in ``perf``.
    *engine_mode* selects the discrete-event engine variant
    (``"batched"``/``"scalar"``, ``None`` = process default); it travels
    in the sweep-spec kwargs so pool workers honour it too.
    """
    if implementation not in IMPLEMENTATIONS:
        raise ValidationError(
            f"unknown implementation {implementation!r}; one of {IMPLEMENTATIONS}"
        )
    if n_cores % cores_per_socket != 0:
        raise ValidationError(
            f"core count {n_cores} must be whole sockets of {cores_per_socket}"
        )
    # Topology and distance model come from the per-process cache: every
    # point at the same core count (and every worker process re-running
    # the preset) shares one immutable instance instead of re-deriving
    # the O(P²) distance table.
    topo, dm = machine_inputs(
        "paper-smp", n_cores // cores_per_socket, cores_per_socket
    )
    tracer = None
    if fingerprint or perf_report:
        from repro.observe.tracer import Tracer

        tracer = Tracer()
    machine = Machine(
        topo, distance_model=dm, seed=seed, tracer=tracer, engine_mode=engine_mode
    )

    if implementation == "openmp":
        result = run_openmp_lk23(
            machine, OpenMpConfig(n=n, n_threads=n_cores, iterations=iterations)
        )
        metrics = result.metrics
        time = result.time
    else:
        rows, cols = square_grid_shape(n_cores)
        cfg = Lk23Config(n=n, grid_rows=rows, grid_cols=cols, iterations=iterations)
        prog = build_program(cfg)
        policy = "treematch" if implementation == "orwl-bind" else "nobind"
        plan = bind_program(prog, topo, policy=policy)
        runtime = Runtime(
            prog, machine, mapping=plan.mapping, control_mapping=plan.control_mapping
        )
        run = runtime.run()
        metrics = run.metrics
        time = run.time

    fp = ""
    if fingerprint:
        from repro.observe.determinism import run_fingerprint

        fp = run_fingerprint(machine)

    perf = None
    if perf_report:
        from repro.perf import analyze
        from repro.topology.objects import ObjType

        perf = analyze(
            tracer.events,
            label=f"{implementation}@{n_cores}",
            measured_time=time,
            n_pus=topo.nb_pus,
            n_nodes=topo.nbobjs_by_type(ObjType.NUMANODE),
        ).to_json_dict()

    return Fig1Point(
        implementation=implementation,
        n_cores=n_cores,
        time=time,
        local_fraction=metrics.local_fraction,
        migrations=metrics.migrations,
        remote_bytes=metrics.remote_bytes,
        fingerprint=fp,
        perf=perf,
    )


def _point_time(point: Fig1Point) -> float:
    """``value_of`` extractor for the replicated sweep (module-level so
    it stays importable, though aggregation runs in the parent only)."""
    return point.time


def run_fig1(
    core_counts: Sequence[int] = (8, 16, 32, 64, 96, 192),
    iterations: int = 5,
    n: int = 16384,
    implementations: Sequence[str] = IMPLEMENTATIONS,
    seed: int = 0,
    n_workers: int = 1,
    fingerprint: bool = False,
    perf_report: bool = False,
    runner: Optional[SweepRunner] = None,
    seeds: int = 1,
    confidence: float = 0.95,
    engine_mode: Optional[str] = None,
    point_cache: Any = None,
    shared_topologies: Optional[Sequence[Any]] = None,
) -> Fig1Result:
    """The full Figure-1 sweep.

    *iterations* defaults to 5 rather than the paper's 100: the
    simulated per-sweep time is steady after the first round, so the
    curve shape is iteration-count-invariant while the harness stays
    fast.  Scale it up to match the paper's absolute workload.

    Every point is an independent seeded simulation, so the sweep fans
    out over a :class:`repro.exec.SweepRunner` — *n_workers* ``1`` is the
    in-process reference path, ``0`` uses all host cores; results are in
    the same (core count, implementation) order either way and
    bit-identical across worker counts.  Pass a pre-configured *runner*
    (progress callbacks, crash policy) to override *n_workers*.

    *seeds* replicates every point that many times: replicate 0 runs
    with *seed* unchanged (so ``seeds=1`` is bit-identical to the
    historical single-run sweep), replicate r > 0 with
    ``derive_seed(seed, "fig1", implementation, n_cores, r)``.  The
    result then carries per-point :class:`~repro.stats.SeedStats` at
    *confidence* plus all replicate points — see
    :meth:`Fig1Result.stats_table` and
    :meth:`Fig1Result.speedup_verdicts`.

    *point_cache* selects the content-addressed result cache
    (:func:`repro.exec.cache.resolve_point_cache`: ``None`` = the
    environment default, ``False`` = off); re-running a cached sweep
    only simulates points not stored yet, bit-identically.
    *shared_topologies* overrides the machine specs whose distance
    tables parallel sweeps export into shared memory (default: every
    swept machine shape).
    """
    if shared_topologies is None:
        # run_point builds "paper-smp" machines at its default socket
        # width; export exactly those shapes for the pool workers.
        shared_topologies = [
            ("paper-smp", (c // 8, 8), "default") for c in core_counts
        ]
    result = Fig1Result(iterations=iterations, n=n, n_seeds=seeds)
    specs = [
        ReplicateSpec(
            run_point,
            dict(
                implementation=impl,
                n_cores=c,
                iterations=iterations,
                n=n,
                fingerprint=fingerprint,
                perf_report=perf_report,
                engine_mode=engine_mode,
            ),
            key=(impl, c),
            label=f"{impl}@{c}",
        )
        for c in core_counts
        for impl in implementations
    ]
    sweep = run_replicated(
        specs,
        seeds=seeds,
        base_seed=seed,
        scope="fig1",
        value_of=_point_time,
        confidence=confidence,
        runner=runner,
        n_workers=n_workers,
        point_cache=point_cache,
        shared_topologies=shared_topologies,
    )
    for point in sweep.points:
        result.points.append(point.first)
        result.replicates[point.key] = tuple(point.results)
        if point.stats is not None:
            result.seed_stats[point.key] = point.stats
    return result
